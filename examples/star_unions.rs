//! The paper's flagship family: symmetric unions of `s` broadcast stars
//! (Def 6.12, Thm 6.13), where the bounds are **tight**:
//!
//! * `(n − s + 1)`-set agreement is solvable in one round (Thm 3.4), and
//! * `(n − s)`-set agreement is impossible — at any number of rounds.
//!
//! Run with: `cargo run --example star_unions`

use kset_agreement::core::bounds::stars::{star_family_bounds, star_set_is_product_idempotent};
use kset_agreement::prelude::*;
use kset_agreement::runtime::checker::check_exhaustive;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== star unions: tight bounds (Thm 6.13) ==\n");
    println!(
        "{:>3} {:>3} | {:>9} {:>10} | {:>6}",
        "n", "s", "solvable", "impossible", "tight"
    );
    println!("{}", "-".repeat(44));

    for n in 3..=7usize {
        for s in 1..n {
            let b = star_family_bounds(n, s)?;
            let lower = b
                .lower
                .as_ref()
                .map(|l| l.impossible_k.to_string())
                .unwrap_or_else(|| "-".into());
            let tight = b
                .lower
                .as_ref()
                .map(|l| {
                    if b.upper.k == l.impossible_k + 1 {
                        "yes"
                    } else {
                        "no"
                    }
                })
                .unwrap_or("n/a");
            println!("{n:>3} {s:>3} | {:>9} {lower:>10} | {tight:>6}", b.upper.k);
        }
    }

    // Why the lower bound survives multiple rounds: star-union generator
    // sets are idempotent under the path product (App. G).
    println!("\nproduct idempotence of the generator sets (App. G):");
    for (n, s) in [(4, 1), (4, 2), (5, 2)] {
        for r in 1..=3 {
            assert!(star_set_is_product_idempotent(n, s, r)?);
        }
        println!("  n={n}, s={s}: S^r collapses to S for r = 1..3  ✓");
    }

    // Empirical tightness: the flood-and-min algorithm actually hits
    // n − s + 1 distinct decisions on some execution (so no better k is
    // achievable by this algorithm), yet never exceeds it.
    let (n, s) = (5, 2);
    let model = models::named::star_unions(n, s)?;
    let check = check_exhaustive(&MinOfAll::new(), &model, n, 1, 1_000_000_000)?;
    println!(
        "\nempirical (n={n}, s={s}): {} executions, worst distinct = {} (= n − s + 1 = {})",
        check.executions,
        check.worst_distinct,
        n - s + 1
    );
    assert_eq!(check.worst_distinct, n - s + 1);
    let witness = check.witness.expect("worst case witnessed");
    println!(
        "worst-case witness: inputs {:?} -> decisions {:?}",
        witness.inputs, witness.decisions
    );

    Ok(())
}
