//! Simulation under adversaries: how the *observed* agreement degrades
//! from friendly (random) to hostile (generator-minimal) graph choices,
//! and how both respect the theoretical bounds.
//!
//! Run with: `cargo run --example adversarial_sim`

use kset_agreement::prelude::*;
use kset_agreement::runtime::checker::{check_exhaustive, check_with_supersets};
use kset_agreement::runtime::monte_carlo::monte_carlo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = models::registry::builtin();
    let models: Vec<(&str, ClosedAboveModel)> = [
        "kernel{n=4}",
        "stars{n=4,s=2}",
        "ring{n=4,sym}",
        "fig1second{}",
    ]
    .into_iter()
    .map(|name| Ok((name, registry.resolve_closed_above(name, 1_000_000u128)?)))
    .collect::<Result<_, kset_agreement::models::ModelError>>()?;

    println!("one-round agreement under different adversaries (min-of-all algorithm)\n");
    println!(
        "{:<24} {:>7} {:>12} {:>12} {:>10}",
        "model", "bound", "random-mean", "random-worst", "exh-worst"
    );
    println!("{}", "-".repeat(70));

    for (name, model) in &models {
        let report = BoundsReport::compute(model, 1)?;
        // The min algorithm realizes the non-dominating-set bounds.
        let bound = report
            .uppers
            .iter()
            .filter(|u| u.theorem != "Thm 3.2" && u.theorem != "Thm 6.3")
            .map(|u| u.k)
            .min()
            .expect("γ_eq present");

        // Friendly: random graphs from the model (extra edges likely).
        let mc = monte_carlo(&MinOfAll::new(), model, 4, 1, 2000, 42)?;
        // Hostile: exhaustive over generator-minimal schedules.
        let exh = check_exhaustive(&MinOfAll::new(), model, 4, 1, 1_000_000_000)?;

        println!(
            "{name:<24} {bound:>7} {:>12.2} {:>12} {:>10}",
            mc.mean_distinct(),
            mc.worst_distinct,
            exh.worst_distinct
        );
        assert!(mc.worst_distinct <= bound);
        assert!(exh.worst_distinct <= bound);
        assert!(mc.validity_ok && exh.validity_ok);
    }

    // The dominating-set algorithm on a simple model: stronger agreement
    // than flooding, because the generator is known (Thm 3.2 vs Thm 3.4).
    println!("\nsimple ring ↑C4: knowing the generator pays (Thm 3.2)");
    let simple = registry.resolve_closed_above("ring{n=4}", 1_000_000u128)?;
    let flood = check_exhaustive(&MinOfAll::new(), &simple, 3, 1, 1_000_000)?;
    let smart = MinOfDominatingSet::for_graph(&simple.generators()[0]);
    let dom = check_with_supersets(&smart, &simple, 3, 1, 20, 7, 1_000_000)?;
    println!(
        "  flood-and-min worst: {}   min-of-dominating-set worst: {} (γ(C4) = 2)",
        flood.worst_distinct, dom.worst_distinct
    );
    assert_eq!(dom.worst_distinct, 2);

    Ok(())
}
