//! The exact one-round solvability decider (extension): instead of
//! bracketing k-set agreement between upper and lower bounds, *decide* it
//! for small models by synthesizing (or refuting) an oblivious decision
//! map.
//!
//! Run with: `cargo run --release --example solvability`

use kset_agreement::core::solvability::{decide_one_round, decide_one_round_sweep, Solvability};
use kset_agreement::prelude::*;
use kset_agreement::runtime::execution::execute_schedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== exact one-round oblivious solvability on the n = 3 zoo ==\n");
    println!("{:<20} {:>3} | {:>12} | paper", "model", "k", "verdict");
    println!("{}", "-".repeat(60));

    let registry = models::registry::builtin();
    let zoo: Vec<(&str, ClosedAboveModel)> = [
        "stars{n=3,s=1}",
        "stars{n=3,s=2}",
        "ring{n=3,sym}",
        "ring{n=3}",
        "tournament{n=3}",
    ]
    .into_iter()
    .map(|name| Ok((name, registry.resolve_closed_above(name, 1u128 << 10)?)))
    .collect::<Result<_, kset_agreement::models::ModelError>>()?;

    for (name, model) in &zoo {
        let report = BoundsReport::compute(model, 1)?;
        let upper = report.best_upper().expect("exists").k;
        let lower = report.best_lower().map(|l| l.impossible_k).unwrap_or(0);
        // One incremental sweep decides the whole k-range: the binary
        // search lands on the boundary, a witness lift seeds everything
        // above it and downward monotonicity fills everything below.
        let sweep = decide_one_round_sweep(model, 3, 2_000_000, 50_000_000)?;
        for k in 1..=3usize {
            let verdict = &sweep.verdicts[k - 1];
            let shown = match verdict {
                Solvability::Solvable(_) => "solvable",
                Solvability::Unsolvable => "unsolvable",
                Solvability::Unknown => "unknown (budget)",
            };
            let paper = if k >= upper {
                format!("solvable (k ≥ {upper})")
            } else if k <= lower {
                format!("impossible (k ≤ {lower})")
            } else {
                "open in the paper".to_string()
            };
            println!("{name:<20} {k:>3} | {shown:>12} | {paper}");
            // The decider must agree with the paper wherever the paper
            // speaks.
            if k >= upper {
                assert!(verdict.is_solvable());
            }
            if k <= lower {
                assert_eq!(verdict, &Solvability::Unsolvable);
            }
        }
        println!(
            "  (sweep: {} searched, {} seeded, {} pruned)\n",
            sweep.searched, sweep.seeded, sweep.pruned
        );
    }

    // Synthesize a witness and run it as an actual algorithm.
    println!("synthesized 2-set algorithm for the symmetric ring, in action:");
    let model = registry.resolve_closed_above("ring{n=3,sym}", 1u128 << 10)?;
    let Solvability::Solvable(map) = decide_one_round(&model, 2, 2, 2_000_000, 50_000_000)? else {
        unreachable!("shown solvable above");
    };
    println!("  decision map covers {} reachable views", map.len());
    for schedule in models::adversary::generator_schedules(&model, 1).take(2) {
        let trace = execute_schedule(&map, &schedule, &[2, 0, 1])?;
        println!(
            "  inputs {:?} -> decisions {:?} ({} distinct)",
            trace.inputs,
            trace.decisions,
            trace.distinct_decisions()
        );
        assert!(trace.distinct_decisions() <= 2);
    }

    Ok(())
}
