//! A tour of the combinatorial-topology layer: the paper's Figures 2, 3
//! and 4, plus the connectivity theorems made tangible.
//!
//! Run with: `cargo run --example topology_tour`

use kset_agreement::graphs::families;
use kset_agreement::prelude::*;
use kset_agreement::topology::complex::Complex;
use kset_agreement::topology::connectivity::{connectivity, homological_connectivity};
use kset_agreement::topology::pseudosphere::Pseudosphere;
use kset_agreement::topology::shelling::{find_shelling_order, is_shellable};
use kset_agreement::topology::simplex::{Simplex, Vertex};
use kset_agreement::topology::uninterpreted::{closed_above_pseudosphere, uninterpreted_simplex};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Figure 2: a graph and its uninterpreted simplex -----------------
    println!("== Figure 2: uninterpreted simplex ==");
    let g = families::fig2_graph();
    println!("graph: {g}");
    let sigma = uninterpreted_simplex(&g);
    println!("uninterpreted simplex: {sigma:?}\n");

    // --- Figure 3: a pseudosphere ----------------------------------------
    println!("== Figure 3: pseudosphere φ(P0,P1,P2; {{v1,v2}},{{v1,v2}},{{v}}) ==");
    let ps = Pseudosphere::new(vec![(0, vec![1u32, 2]), (1, vec![1, 2]), (2, vec![7])])?;
    let c = ps.to_complex();
    println!("facets: {}", c.facet_count());
    for f in c.facets() {
        println!("  {f:?}");
    }
    println!(
        "connectivity: {:?} (Lemma 4.7 predicts (n−2) = 1-connected)\n",
        connectivity(&c)
    );

    // --- Figure 4: shellable vs not --------------------------------------
    println!("== Figure 4: shellability ==");
    let tri = |a: usize, b: usize, c: usize| {
        Simplex::new(vec![
            Vertex::new(a, 0u32),
            Vertex::new(b, 0),
            Vertex::new(c, 0),
        ])
        .expect("distinct colors")
    };
    // (a) two triangles sharing an edge.
    let shellable = Complex::from_facets(vec![tri(0, 1, 2), tri(0, 2, 3)]);
    let order = find_shelling_order(&shellable)?.expect("Figure 4a is shellable");
    println!(
        "Figure 4a: shellable, order of {} facets found",
        order.len()
    );
    // (b) two triangles sharing only a vertex.
    let not_shellable = Complex::from_facets(vec![tri(0, 1, 2), tri(2, 3, 4)]);
    println!("Figure 4b: shellable? {}\n", is_shellable(&not_shellable)?);

    // --- Theorem 4.12: uninterpreted complexes are (n−2)-connected -------
    println!("== Thm 4.12: connectivity of uninterpreted complexes ==");
    for (name, gens) in [
        ("↑C3 (simple ring)", vec![families::cycle(3)?]),
        (
            "kernel model n=3",
            (0..3)
                .map(|c| families::broadcast_star(3, c).expect("valid"))
                .collect::<Vec<_>>(),
        ),
    ] {
        let mut complex = Complex::void();
        for g in &gens {
            complex = complex.union(&closed_above_pseudosphere(g).to_complex());
        }
        println!(
            "  {name}: homological connectivity {} (need ≥ {})",
            homological_connectivity(&complex),
            gens[0].n() as isize - 2
        );
    }

    // --- Thm 5.4's engine: protocol complex connectivity ------------------
    println!("\n== Thm 5.4: protocol-complex connectivity vs prediction ==");
    let registry = models::registry::builtin();
    for name in ["stars{n=3,s=1}", "ring{n=3,sym}"] {
        let model = registry.resolve_closed_above(name, 1_000_000u128)?;
        let rep = kset_agreement::core::verify::verify_protocol_connectivity(&model, 1, 500_000)?;
        println!(
            "  {name}: predicted l = {}, measured = {}, facets = {}  {}",
            rep.predicted_l,
            rep.measured_connectivity,
            rep.protocol_facets,
            if rep.is_consistent() { "✓" } else { "✗" }
        );
    }

    Ok(())
}
