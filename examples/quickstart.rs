//! Quickstart: bounds and execution for a symmetric ring model.
//!
//! Run with: `cargo run --example quickstart`
//!
//! The scenario: `n` processes communicate in rounds, and the only safety
//! guarantee is that each round's communication graph contains **some**
//! directed ring. What level of agreement can they reach in one round?
//! In two? The paper's bounds answer, and the runtime verifies them
//! empirically.

use kset_agreement::prelude::*;
use kset_agreement::runtime::checker::check_exhaustive;
use kset_agreement::runtime::execution::execute;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4;
    println!("== quickstart: the symmetric ring model on n = {n} processes ==\n");

    // 1. Look the model up in the builtin registry by its canonical spec
    //    name: closed above all relabelings of the directed n-cycle
    //    (Def 2.3 + Def 2.4). `models::named::symmetric_ring(n)` builds
    //    the identical model programmatically.
    let model = models::registry::builtin()
        .resolve_closed_above(&format!("ring{{n={n},sym}}"), 1_000_000u128)?;
    println!(
        "model: {} generator graphs (all directed Hamiltonian cycles)\n",
        model.generators().len()
    );

    // 2. Ask the paper: every bound, one and two rounds.
    for rounds in 1..=3 {
        let report = BoundsReport::compute(&model, rounds)?;
        println!("{report}");
    }

    // 3. Run the flood-and-min algorithm (§3) once, concretely.
    let algorithm = MinOfAll::new();
    let mut adversary =
        models::adversary::GeneratorMinimal::shuffled(&model, /* seed */ 0xC0FFEE);
    let inputs: Vec<Value> = vec![30, 10, 40, 20];
    let trace = execute(&algorithm, &mut adversary, &inputs, 1)?;
    println!("one concrete round under a generator-minimal adversary:");
    println!("  inputs:    {:?}", trace.inputs);
    println!("  decisions: {:?}", trace.decisions);
    println!("  distinct:  {}\n", trace.distinct_decisions());

    // 4. Exhaustively check the one-round upper bound: over EVERY
    //    generator schedule and EVERY input assignment, the algorithm
    //    never decides more than the γ_eq bound.
    let report = BoundsReport::compute(&model, 1)?;
    let bound = report.best_upper().expect("always exists").k;
    let check = check_exhaustive(&algorithm, &model, /* values */ 3, 1, 100_000_000)?;
    println!(
        "exhaustive check (1 round, {} executions): worst distinct = {} ≤ bound {}",
        check.executions, check.worst_distinct, bound
    );
    assert!(check.worst_distinct <= bound);
    assert!(check.validity_ok);
    println!("validity: ok");

    Ok(())
}
