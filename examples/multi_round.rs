//! Multi-round behavior (§6): graph products, covering sequences, and how
//! agreement strengthens (or refuses to) with more rounds.
//!
//! Run with: `cargo run --example multi_round`

use kset_agreement::graphs::families;
use kset_agreement::graphs::product::{power, product};
use kset_agreement::graphs::sequences::covering_sequence;
use kset_agreement::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- §6.1: closure-above is NOT invariant under the product ----------
    println!("== §6.1: the cycle product counterexample ==");
    let c6 = families::cycle(6)?;
    let c6_squared = power(&c6, 2)?;
    println!("C6 ⊗ C6 edges (proper): {}", c6_squared.proper_edge_count());
    // The witness: C6² plus one extra edge is in ↑(C6²)…
    let mut witness = c6_squared.clone();
    witness.add_edge(1, 5)?; // an edge not creatable without side effects
    assert!(witness.contains_graph(&c6_squared)?);
    // …but no pair of supersets of C6 multiplies to exactly that graph.
    let found = search_product_preimage(&c6, &witness)?;
    println!("C6² + (p1→p5) reachable as a product of supersets of C6? {found}");
    assert!(!found);
    println!("=> ↑C6 ⊗ ↑C6 ⊊ ↑(C6 ⊗ C6), exactly as §6.1 claims\n");

    // --- Covering sequences (Thm 6.7/6.9) ---------------------------------
    println!("== covering sequences on C5 (Def 6.6) ==");
    let c5 = families::cycle(5)?;
    for i in 1..=5 {
        let seq = covering_sequence(&c5, i)?;
        println!(
            "  i = {i}: values {:?} -> reaches n at round {:?}",
            seq.values, seq.reaches_n_at
        );
    }

    // --- Bounds as rounds grow, cross-checked topologically ---------------
    // The combinatorial bounds (Thm 6.10/6.11) predict how connected the
    // r-round protocol complex must be; the iterated-interpretation
    // pipeline (ksa_topology::rounds) builds those complexes with interned
    // views and measures the connectivity. The cross-check report carries
    // both sides — and the bounds table alongside.
    println!("\n== bounds as rounds grow (homology-cross-checked, n = 3 zoo) ==");
    let registry = models::registry::builtin();
    for (name, rounds) in [
        ("ring{n=3}", 3usize),
        ("ring{n=3,sym}", 2),
        ("stars{n=3,s=1}", 2),
    ] {
        let model = registry.resolve_closed_above(name, 1_000_000u128)?;
        println!("{name}:");
        for r in 1..=rounds {
            let rep = BoundsReport::compute(&model, r)?;
            let up = rep.best_upper().expect("exists").k;
            let lo = rep
                .best_lower()
                .map(|l| l.impossible_k.to_string())
                .unwrap_or_else(|| "-".into());
            println!("  r = {r}: solvable {up}-set, impossible {lo}-set");
        }
        let sweep =
            core::bounds::cross_check::cross_check_round_sweep(&model, 1, rounds, 100_000_000u128)?;
        assert!(sweep.is_consistent(), "topology contradicts the bounds");
        print!("{sweep}");
    }
    println!("\nstar unions refuse to improve with rounds (Thm 6.13):");
    let stars = registry.resolve_closed_above("stars{n=5,s=2}", 1_000_000u128)?;
    let r1 = BoundsReport::compute(&stars, 1)?;
    let r3 = BoundsReport::compute(&stars, 3)?;
    assert_eq!(
        r1.best_lower().map(|l| l.impossible_k),
        r3.best_lower().map(|l| l.impossible_k)
    );
    println!(
        "  impossible at r=1: {:?}, at r=3: {:?}  (same)",
        r1.best_lower().map(|l| l.impossible_k),
        r3.best_lower().map(|l| l.impossible_k)
    );

    Ok(())
}

/// Exhaustive search: is `target ∈ ↑C6 ⊗ ↑C6`? Both factors range over
/// supersets of C6 — but only edges *below the target's product effect*
/// matter, so we search supersets whose product stays within the target
/// (pruned brute force over candidate edge additions).
fn search_product_preimage(
    base: &Digraph,
    target: &Digraph,
) -> Result<bool, Box<dyn std::error::Error>> {
    // Candidate extra edges for each factor: adding (u, v) to a factor
    // must not create product edges outside the target. We enumerate
    // subsets of the small candidate sets (the rest provably overshoot).
    let n = base.n();
    let mut candidates = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v && !base.has_edge(u, v) {
                candidates.push((u, v));
            }
        }
    }
    // A factor-1 addition (u,w) forces product edges (u, Out_2(w)) ⊇
    // (u, w) and (u, w+1); a factor-2 addition (w,v) forces (In_1(w), v).
    // Filter candidates that already overshoot on their own.
    let ok1: Vec<_> = candidates
        .iter()
        .copied()
        .filter(|&(u, w)| {
            let forced = [(u, w), (u, (w + 1) % n)];
            forced.iter().all(|&(a, b)| target.has_edge(a, b))
        })
        .collect();
    let ok2: Vec<_> = candidates
        .iter()
        .copied()
        .filter(|&(w, v)| {
            let forced = [(w, v), ((w + n - 1) % n, v)];
            forced.iter().all(|&(a, b)| target.has_edge(a, b))
        })
        .collect();
    // Enumerate subsets (the filtered candidate lists are small for C6).
    assert!(ok1.len() <= 16 && ok2.len() <= 16, "search space too large");
    for m1 in 0u32..(1 << ok1.len()) {
        let mut g1 = base.clone();
        for (i, &(u, v)) in ok1.iter().enumerate() {
            if (m1 >> i) & 1 == 1 {
                g1.add_edge(u, v)?;
            }
        }
        for m2 in 0u32..(1 << ok2.len()) {
            let mut g2 = base.clone();
            for (i, &(u, v)) in ok2.iter().enumerate() {
                if (m2 >> i) & 1 == 1 {
                    g2.add_edge(u, v)?;
                }
            }
            if product(&g1, &g2)? == *target {
                return Ok(true);
            }
        }
    }
    Ok(false)
}
