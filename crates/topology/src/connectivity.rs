//! Connectivity checks (the computational proxy for the paper's homotopy
//! connectivity).
//!
//! A space is **k-connected** when `π_i` vanishes for all `i ≤ k`. The
//! paper uses: `(−1)`-connected = non-empty, `0`-connected = path-connected,
//! and the general notion for its nerve arguments (Lemma 4.7, Thm 4.12,
//! Thm 5.4). Deciding homotopy connectivity is undecidable in general, so
//! this crate verifies the *homological* shadow:
//!
//! * `(−1)`-connectivity and `0`-connectivity are checked **exactly**
//!   (non-voidness; union-find components);
//! * for `k ≥ 1` we check reduced `H_i(·; Z/2) = 0` for `1 ≤ i ≤ k` —
//!   necessary for k-connectivity, and sufficient together with simple
//!   connectivity (Hurewicz); on the complexes the paper works with
//!   (pseudospheres and their unions/intersections, Lemma 4.7) the verdicts
//!   coincide. DESIGN.md records the substitution.

use crate::chain::ChainComplex;
use crate::complex::Complex;
use crate::homology::{component_count, reduced_betti_numbers_seq};
use crate::simplex::View;

/// The homological connectivity of a complex: the largest `k ≥ −1` such
/// that the complex is non-void, path-connected (for `k ≥ 0`) and has
/// vanishing reduced Z/2 homology up to dimension `k` — or
/// [`Connectivity::Empty`] for the void complex, or
/// a contractible-style `AtLeast(dim)` when everything up to
/// the dimension vanishes (a `d`-dimensional complex can be at most
/// "`∞`-connected" from homology's viewpoint; we cap the report at its
/// dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Connectivity {
    /// The void complex: not even `(−1)`-connected.
    Empty,
    /// Homologically `k`-connected but not `(k+1)`-connected, `k ≥ −1`
    /// (`Exactly(-1)` means non-empty but disconnected).
    Exactly(isize),
    /// All reduced homology *examined* vanishes: through the complex's
    /// dimension for a full [`connectivity`] query, or through the
    /// caller's `k` for an early-exit [`connectivity_up_to`] query that
    /// stopped there (DESIGN.md §7.2). Beyond the reported bound the
    /// homology is unexamined, not known to vanish.
    AtLeast(isize),
}

impl Connectivity {
    /// Whether this verdict certifies `k`-connectivity (homologically).
    pub fn is_at_least(&self, k: isize) -> bool {
        match *self {
            Connectivity::Empty => false,
            Connectivity::Exactly(c) | Connectivity::AtLeast(c) => c >= k,
        }
    }

    /// The verdict encoded by a full reduced Betti vector: `Empty` for
    /// the void complex (empty vector), `Exactly(k−1)` at the first
    /// non-zero `b̃_k`, `AtLeast(dim)` when everything vanishes. This is
    /// the bridge for callers that already hold the Betti numbers (the
    /// round sweep) — by construction it agrees with [`connectivity`]
    /// on the same complex.
    pub fn from_reduced_betti(betti: &[usize]) -> Connectivity {
        if betti.is_empty() {
            return Connectivity::Empty;
        }
        for (k, &b) in betti.iter().enumerate() {
            if b != 0 {
                return Connectivity::Exactly(k as isize - 1);
            }
        }
        Connectivity::AtLeast(betti.len() as isize - 1)
    }
}

/// Computes the [`Connectivity`] verdict of a complex on the chain
/// engine ([`crate::chain`]), reducing boundary operators dimension by
/// dimension and stopping at the first non-vanishing reduced Betti
/// number.
///
/// # Examples
///
/// ```
/// use ksa_topology::complex::Complex;
/// use ksa_topology::simplex::{Simplex, Vertex};
/// use ksa_topology::connectivity::{connectivity, Connectivity};
///
/// let tet = Simplex::new((0..4).map(|c| Vertex::new(c, ())).collect()).unwrap();
/// // A solid simplex is contractible:
/// assert_eq!(connectivity(&Complex::of_simplex(tet.clone())), Connectivity::AtLeast(3));
/// // Its boundary is a 2-sphere: 1-connected, not 2-connected.
/// assert_eq!(connectivity(&Complex::boundary_of(&tet)), Connectivity::Exactly(1));
/// ```
pub fn connectivity<V: View>(complex: &Complex<V>) -> Connectivity {
    ChainComplex::from_complex(complex).connectivity()
}

/// Early-exit connectivity: the verdict *up to* `k`. Reduces `∂_1, ∂_2,
/// …` and stops at the first non-zero Betti number or at `k+1`, so
/// cross-checks that only need `measured ≥ predicted l` for small `l`
/// skip the top-dimension rank work entirely.
///
/// Agrees with the truncation of the full [`connectivity`] verdict: an
/// `Exactly(c)` with `c < min(k, dim)` is exact, and an
/// `AtLeast(min(k, dim))` means every examined Betti number vanished
/// (DESIGN.md §7.2). For `k ≥ dim` it *is* the full verdict.
///
/// # Examples
///
/// ```
/// use ksa_topology::complex::Complex;
/// use ksa_topology::simplex::{Simplex, Vertex};
/// use ksa_topology::connectivity::{connectivity_up_to, Connectivity};
///
/// let tet = Simplex::new((0..4).map(|c| Vertex::new(c, ())).collect()).unwrap();
/// let sphere = Complex::boundary_of(&tet); // S², 1- but not 2-connected
/// assert_eq!(connectivity_up_to(&sphere, 1), Connectivity::AtLeast(1));
/// assert_eq!(connectivity_up_to(&sphere, 2), Connectivity::Exactly(1));
/// ```
pub fn connectivity_up_to<V: View>(complex: &Complex<V>, k: isize) -> Connectivity {
    ChainComplex::from_complex(complex).connectivity_up_to(k)
}

/// The sequential reference for [`connectivity`]: derives the verdict
/// from the engine-free [`reduced_betti_numbers_seq`] and the exact
/// union-find [`component_count`], with no chain engine and no
/// `ksa-exec` involvement under any feature set. The determinism
/// proptests (`tests/chain_engine.rs`) pin `connectivity ==
/// connectivity_seq` at pool sizes 1/2/8.
pub fn connectivity_seq<V: View>(complex: &Complex<V>) -> Connectivity {
    if complex.is_void() {
        return Connectivity::Empty;
    }
    if component_count(complex) > 1 {
        return Connectivity::Exactly(-1);
    }
    Connectivity::from_reduced_betti(&reduced_betti_numbers_seq(complex))
}

/// Convenience: the numeric homological connectivity, with `−2` for the
/// void complex (so that "`c ≥ k`" comparisons behave).
pub fn homological_connectivity<V: View>(complex: &Complex<V>) -> isize {
    match connectivity(complex) {
        Connectivity::Empty => -2,
        Connectivity::Exactly(k) | Connectivity::AtLeast(k) => k,
    }
}

/// Whether the complex is homologically at least `k`-connected.
/// (`k = −1`: non-void; `k = 0`: path-connected; `k ≥ 1`: additionally
/// vanishing reduced homology through dimension `k`.)
///
/// Delegates to the early-exit [`connectivity_up_to`] — deciding
/// `k`-connectivity never ranks a boundary operator beyond `∂_{k+1}` —
/// and to [`Connectivity::is_at_least`] for the verdict.
pub fn is_k_connected<V: View>(complex: &Complex<V>, k: isize) -> bool {
    if k <= -2 {
        return true;
    }
    connectivity_up_to(complex, k).is_at_least(k)
}

/// Corollary 4.16 (two-element nerve lemma), checked homologically: if `C`
/// and `K` are `k`-connected and `C ∩ K` is `(k−1)`-connected, then
/// `C ∪ K` is `k`-connected. Returns the union's verdict so callers can
/// assert it.
pub fn union_connectivity_witness<V: View>(
    c: &Complex<V>,
    k_complex: &Complex<V>,
) -> (Connectivity, Connectivity, Connectivity, Connectivity) {
    let inter = c.intersection(k_complex);
    let union = c.union(k_complex);
    (
        connectivity(c),
        connectivity(k_complex),
        connectivity(&inter),
        connectivity(&union),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::{Simplex, Vertex};

    fn simplex(colors: &[usize]) -> Simplex<u32> {
        Simplex::new(colors.iter().map(|&c| Vertex::new(c, 0u32)).collect()).unwrap()
    }

    #[test]
    fn void_complex_is_empty() {
        assert_eq!(connectivity(&Complex::<u32>::void()), Connectivity::Empty);
        assert!(!is_k_connected(&Complex::<u32>::void(), -1));
        assert!(is_k_connected(&Complex::<u32>::void(), -2));
        assert_eq!(homological_connectivity(&Complex::<u32>::void()), -2);
    }

    #[test]
    fn point_is_very_connected() {
        let c = Complex::of_simplex(simplex(&[0]));
        assert_eq!(connectivity(&c), Connectivity::AtLeast(0));
        assert!(is_k_connected(&c, -1));
        assert!(is_k_connected(&c, 0));
    }

    #[test]
    fn two_points_are_disconnected() {
        let c = Complex::from_facets(vec![simplex(&[0]), simplex(&[1])]);
        assert_eq!(connectivity(&c), Connectivity::Exactly(-1));
        assert!(is_k_connected(&c, -1));
        assert!(!is_k_connected(&c, 0));
    }

    #[test]
    fn circle_is_0_but_not_1_connected() {
        let circle = Complex::boundary_of(&simplex(&[0, 1, 2]));
        assert_eq!(connectivity(&circle), Connectivity::Exactly(0));
        assert!(is_k_connected(&circle, 0));
        assert!(!is_k_connected(&circle, 1));
    }

    #[test]
    fn sphere_connectivity() {
        let sphere = Complex::boundary_of(&simplex(&[0, 1, 2, 3]));
        assert_eq!(connectivity(&sphere), Connectivity::Exactly(1));
        assert_eq!(homological_connectivity(&sphere), 1);
    }

    #[test]
    fn solid_simplex_contractible() {
        let c = Complex::of_simplex(simplex(&[0, 1, 2, 3]));
        assert_eq!(connectivity(&c), Connectivity::AtLeast(3));
        for k in -1..=3 {
            assert!(is_k_connected(&c, k), "k = {k}");
        }
    }

    #[test]
    fn two_triangles_sharing_edge_glue_well() {
        // Cor 4.16 in action: both disks are contractible; their
        // intersection (an edge) is 0-connected; the union must be
        // 1-connected (it is a bigger disk).
        let c1 = Complex::of_simplex(simplex(&[0, 1, 2]));
        let c2 = Complex::of_simplex(simplex(&[1, 2, 3]));
        let (a, b, i, u) = union_connectivity_witness(&c1, &c2);
        assert!(a.is_at_least(1));
        assert!(b.is_at_least(1));
        assert!(i.is_at_least(0));
        assert!(u.is_at_least(1));
    }

    #[test]
    fn two_triangles_sharing_vertex_fail_higher_glue() {
        // Intersection is a point (0-connected but trivially so);
        // the union is still 0-connected but the wedge of two disks is
        // simply connected too... take instead two *circles* sharing a
        // vertex: union is a wedge of circles, 0- but not 1-connected.
        let c1 = Complex::boundary_of(&simplex(&[0, 1, 2]));
        let c2 = Complex::boundary_of(&simplex(&[0, 3, 4]));
        let u = c1.union(&c2);
        assert_eq!(connectivity(&u), Connectivity::Exactly(0));
    }
}
