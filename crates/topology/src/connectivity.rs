//! Connectivity checks (the computational proxy for the paper's homotopy
//! connectivity).
//!
//! A space is **k-connected** when `π_i` vanishes for all `i ≤ k`. The
//! paper uses: `(−1)`-connected = non-empty, `0`-connected = path-connected,
//! and the general notion for its nerve arguments (Lemma 4.7, Thm 4.12,
//! Thm 5.4). Deciding homotopy connectivity is undecidable in general, so
//! this crate verifies the *homological* shadow:
//!
//! * `(−1)`-connectivity and `0`-connectivity are checked **exactly**
//!   (non-voidness; union-find components);
//! * for `k ≥ 1` we check reduced `H_i(·; Z/2) = 0` for `1 ≤ i ≤ k` —
//!   necessary for k-connectivity, and sufficient together with simple
//!   connectivity (Hurewicz); on the complexes the paper works with
//!   (pseudospheres and their unions/intersections, Lemma 4.7) the verdicts
//!   coincide. DESIGN.md records the substitution.

use crate::complex::Complex;
use crate::homology::{component_count, reduced_betti_numbers};
use crate::simplex::View;

/// The homological connectivity of a complex: the largest `k ≥ −1` such
/// that the complex is non-void, path-connected (for `k ≥ 0`) and has
/// vanishing reduced Z/2 homology up to dimension `k` — or
/// [`Connectivity::Empty`] for the void complex, or
/// a contractible-style `AtLeast(dim)` when everything up to
/// the dimension vanishes (a `d`-dimensional complex can be at most
/// "`∞`-connected" from homology's viewpoint; we cap the report at its
/// dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Connectivity {
    /// The void complex: not even `(−1)`-connected.
    Empty,
    /// Homologically `k`-connected but not `(k+1)`-connected, `k ≥ −1`
    /// (`Exactly(-1)` means non-empty but disconnected).
    Exactly(isize),
    /// All reduced homology up to the complex's dimension vanishes: the
    /// complex is homologically at least `dim`-connected (for our use
    /// cases, "as connected as its dimension can show").
    AtLeast(isize),
}

impl Connectivity {
    /// Whether this verdict certifies `k`-connectivity (homologically).
    pub fn is_at_least(&self, k: isize) -> bool {
        match *self {
            Connectivity::Empty => false,
            Connectivity::Exactly(c) => c >= k,
            Connectivity::AtLeast(c) => c >= k,
        }
    }
}

/// Computes the [`Connectivity`] verdict of a complex.
///
/// # Examples
///
/// ```
/// use ksa_topology::complex::Complex;
/// use ksa_topology::simplex::{Simplex, Vertex};
/// use ksa_topology::connectivity::{connectivity, Connectivity};
///
/// let tet = Simplex::new((0..4).map(|c| Vertex::new(c, ())).collect()).unwrap();
/// // A solid simplex is contractible:
/// assert_eq!(connectivity(&Complex::of_simplex(tet.clone())), Connectivity::AtLeast(3));
/// // Its boundary is a 2-sphere: 1-connected, not 2-connected.
/// assert_eq!(connectivity(&Complex::boundary_of(&tet)), Connectivity::Exactly(1));
/// ```
pub fn connectivity<V: View>(complex: &Complex<V>) -> Connectivity {
    if complex.is_void() {
        return Connectivity::Empty;
    }
    if component_count(complex) > 1 {
        return Connectivity::Exactly(-1);
    }
    let betti = reduced_betti_numbers(complex);
    // betti[0] must be 0 here (single component); scan upward.
    debug_assert_eq!(betti.first().copied().unwrap_or(0), 0);
    for (k, &b) in betti.iter().enumerate().skip(1) {
        if b != 0 {
            return Connectivity::Exactly(k as isize - 1);
        }
    }
    Connectivity::AtLeast(complex.dim())
}

/// Convenience: the numeric homological connectivity, with `−2` for the
/// void complex (so that "`c ≥ k`" comparisons behave).
pub fn homological_connectivity<V: View>(complex: &Complex<V>) -> isize {
    match connectivity(complex) {
        Connectivity::Empty => -2,
        Connectivity::Exactly(k) => k,
        Connectivity::AtLeast(k) => k,
    }
}

/// Whether the complex is homologically at least `k`-connected.
/// (`k = −1`: non-void; `k = 0`: path-connected; `k ≥ 1`: additionally
/// vanishing reduced homology through dimension `k`.)
pub fn is_k_connected<V: View>(complex: &Complex<V>, k: isize) -> bool {
    if k <= -2 {
        return true;
    }
    match connectivity(complex) {
        Connectivity::Empty => false,
        Connectivity::Exactly(c) => c >= k,
        Connectivity::AtLeast(c) => {
            // Homology can't see beyond the dimension; everything vanished,
            // so we certify any k up to the dimension, and for a complex
            // that is a cone/full simplex this is genuinely ∞. We stay
            // conservative and certify only up to dim, except that a
            // non-void complex with all-zero reduced homology and dimension
            // d ≥ 0 certifies every k ≤ d.
            c >= k
        }
    }
}

/// Corollary 4.16 (two-element nerve lemma), checked homologically: if `C`
/// and `K` are `k`-connected and `C ∩ K` is `(k−1)`-connected, then
/// `C ∪ K` is `k`-connected. Returns the union's verdict so callers can
/// assert it.
pub fn union_connectivity_witness<V: View>(
    c: &Complex<V>,
    k_complex: &Complex<V>,
) -> (Connectivity, Connectivity, Connectivity, Connectivity) {
    let inter = c.intersection(k_complex);
    let union = c.union(k_complex);
    (
        connectivity(c),
        connectivity(k_complex),
        connectivity(&inter),
        connectivity(&union),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::{Simplex, Vertex};

    fn simplex(colors: &[usize]) -> Simplex<u32> {
        Simplex::new(colors.iter().map(|&c| Vertex::new(c, 0u32)).collect()).unwrap()
    }

    #[test]
    fn void_complex_is_empty() {
        assert_eq!(connectivity(&Complex::<u32>::void()), Connectivity::Empty);
        assert!(!is_k_connected(&Complex::<u32>::void(), -1));
        assert!(is_k_connected(&Complex::<u32>::void(), -2));
        assert_eq!(homological_connectivity(&Complex::<u32>::void()), -2);
    }

    #[test]
    fn point_is_very_connected() {
        let c = Complex::of_simplex(simplex(&[0]));
        assert_eq!(connectivity(&c), Connectivity::AtLeast(0));
        assert!(is_k_connected(&c, -1));
        assert!(is_k_connected(&c, 0));
    }

    #[test]
    fn two_points_are_disconnected() {
        let c = Complex::from_facets(vec![simplex(&[0]), simplex(&[1])]);
        assert_eq!(connectivity(&c), Connectivity::Exactly(-1));
        assert!(is_k_connected(&c, -1));
        assert!(!is_k_connected(&c, 0));
    }

    #[test]
    fn circle_is_0_but_not_1_connected() {
        let circle = Complex::boundary_of(&simplex(&[0, 1, 2]));
        assert_eq!(connectivity(&circle), Connectivity::Exactly(0));
        assert!(is_k_connected(&circle, 0));
        assert!(!is_k_connected(&circle, 1));
    }

    #[test]
    fn sphere_connectivity() {
        let sphere = Complex::boundary_of(&simplex(&[0, 1, 2, 3]));
        assert_eq!(connectivity(&sphere), Connectivity::Exactly(1));
        assert_eq!(homological_connectivity(&sphere), 1);
    }

    #[test]
    fn solid_simplex_contractible() {
        let c = Complex::of_simplex(simplex(&[0, 1, 2, 3]));
        assert_eq!(connectivity(&c), Connectivity::AtLeast(3));
        for k in -1..=3 {
            assert!(is_k_connected(&c, k), "k = {k}");
        }
    }

    #[test]
    fn two_triangles_sharing_edge_glue_well() {
        // Cor 4.16 in action: both disks are contractible; their
        // intersection (an edge) is 0-connected; the union must be
        // 1-connected (it is a bigger disk).
        let c1 = Complex::of_simplex(simplex(&[0, 1, 2]));
        let c2 = Complex::of_simplex(simplex(&[1, 2, 3]));
        let (a, b, i, u) = union_connectivity_witness(&c1, &c2);
        assert!(a.is_at_least(1));
        assert!(b.is_at_least(1));
        assert!(i.is_at_least(0));
        assert!(u.is_at_least(1));
    }

    #[test]
    fn two_triangles_sharing_vertex_fail_higher_glue() {
        // Intersection is a point (0-connected but trivially so);
        // the union is still 0-connected but the wedge of two disks is
        // simply connected too... take instead two *circles* sharing a
        // vertex: union is a wedge of circles, 0- but not 1-connected.
        let c1 = Complex::boundary_of(&simplex(&[0, 1, 2]));
        let c2 = Complex::boundary_of(&simplex(&[0, 3, 4]));
        let u = c1.union(&c2);
        assert_eq!(connectivity(&u), Connectivity::Exactly(0));
    }
}
