//! Colored simplexes (Def 4.1).
//!
//! A simplex is a set of `(color, view)` pairs with at most one view per
//! color. Colors are process identifiers throughout the paper (plus cover
//! indices inside nerve complexes); views range from in-neighborhoods
//! (uninterpreted complexes) to input values (input complexes) to flat
//! views (protocol complexes) — hence the generic parameter `V`.

use crate::error::TopologyError;
use std::fmt;
use std::hash::Hash;

/// Marker trait for view types; blanket-implemented for everything with the
/// needed structure, so downstream code never implements it manually.
///
/// `Send + Sync` is part of the contract so complexes can be shared across
/// the `ksa-exec` workers of the parallel homology pipeline (every view
/// type in the workspace — integers, `ProcSet`s, flat views — is trivially
/// both).
pub trait View: Clone + Ord + Hash + fmt::Debug + Send + Sync {}
impl<T: Clone + Ord + Hash + fmt::Debug + Send + Sync> View for T {}

/// A colored vertex: a `(color, view)` pair.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vertex<V> {
    /// The color (process identifier, or cover index in nerves).
    pub color: usize,
    /// The view carried by this vertex.
    pub view: V,
}

impl<V> Vertex<V> {
    /// Creates a vertex.
    pub fn new(color: usize, view: V) -> Self {
        Vertex { color, view }
    }
}

/// A colored simplex: a set of vertices with pairwise distinct colors
/// (Def 4.1), stored sorted by color.
///
/// The **dimension** of a simplex with `m` vertices is `m − 1`; the empty
/// simplex has dimension `−1` (we expose [`Simplex::dim`] as
/// `isize`).
///
/// # Examples
///
/// ```
/// use ksa_topology::simplex::{Simplex, Vertex};
///
/// let s = Simplex::new(vec![Vertex::new(0, "a"), Vertex::new(1, "b")]).unwrap();
/// assert_eq!(s.dim(), 1);
/// assert_eq!(s.faces().count(), 2); // the two vertices
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Simplex<V> {
    verts: Vec<Vertex<V>>,
}

impl<V: View> Simplex<V> {
    /// Builds a simplex from vertices, sorting by color.
    ///
    /// # Errors
    ///
    /// [`TopologyError::DuplicateColor`] if two vertices share a color.
    pub fn new(mut verts: Vec<Vertex<V>>) -> Result<Self, TopologyError> {
        verts.sort();
        for w in verts.windows(2) {
            if w[0].color == w[1].color {
                return Err(TopologyError::DuplicateColor { color: w[0].color });
            }
        }
        Ok(Simplex { verts })
    }

    /// The empty simplex (dimension −1).
    pub fn empty() -> Self {
        Simplex { verts: Vec::new() }
    }

    /// A single-vertex simplex.
    pub fn vertex(color: usize, view: V) -> Self {
        Simplex {
            verts: vec![Vertex::new(color, view)],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Whether the simplex is empty.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// The dimension: `len() − 1`, so `−1` for the empty simplex.
    pub fn dim(&self) -> isize {
        self.verts.len() as isize - 1
    }

    /// The vertices, sorted by color.
    pub fn vertices(&self) -> &[Vertex<V>] {
        &self.verts
    }

    /// The colors appearing in the simplex (`names(σ)` in the paper),
    /// in increasing order.
    pub fn colors(&self) -> impl Iterator<Item = usize> + '_ {
        self.verts.iter().map(|v| v.color)
    }

    /// The view of the vertex colored `color` (`view_σ(p)`), if present.
    pub fn view_of(&self, color: usize) -> Option<&V> {
        // Colors are pairwise distinct, so searching by color alone is
        // consistent with the (color, view) sort order.
        self.verts
            .binary_search_by(|v| v.color.cmp(&color))
            .ok()
            .map(|idx| &self.verts[idx].view)
    }

    /// Whether `other`'s vertices are all vertices of `self`
    /// (`other ⊆ self` as sets, i.e. `other` is a face of `self`).
    pub fn contains(&self, other: &Simplex<V>) -> bool {
        // Both sorted: linear merge scan.
        let mut it = self.verts.iter();
        'outer: for v in &other.verts {
            for u in it.by_ref() {
                if u == v {
                    continue 'outer;
                }
                if u > v {
                    return false;
                }
            }
            return false;
        }
        true
    }

    /// Whether a specific vertex belongs to the simplex.
    pub fn has_vertex(&self, v: &Vertex<V>) -> bool {
        self.verts.binary_search(v).is_ok()
    }

    /// The intersection of two simplexes (their common vertices) — always
    /// a valid simplex.
    pub fn intersection(&self, other: &Simplex<V>) -> Simplex<V> {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.verts.len() && j < other.verts.len() {
            match self.verts[i].cmp(&other.verts[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.verts[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        Simplex { verts: out }
    }

    /// The codimension-1 faces (drop one vertex each), in vertex order.
    /// Empty for the empty simplex; the single vertex yields the empty
    /// simplex.
    pub fn faces(&self) -> impl Iterator<Item = Simplex<V>> + '_ {
        (0..self.verts.len()).map(move |skip| {
            let verts = self
                .verts
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, v)| v.clone())
                .collect();
            Simplex { verts }
        })
    }

    /// All subsimplexes (faces of every dimension, the empty simplex
    /// excluded). `2^len − 1` of them.
    pub fn all_faces(&self) -> Vec<Simplex<V>> {
        let m = self.verts.len();
        let mut out = Vec::with_capacity((1usize << m) - 1);
        for mask in 1u64..(1u64 << m) {
            let verts = self
                .verts
                .iter()
                .enumerate()
                .filter(|&(i, _)| (mask >> i) & 1 == 1)
                .map(|(_, v)| v.clone())
                .collect();
            out.push(Simplex { verts });
        }
        out
    }

    /// The face obtained by restricting to the given colors.
    pub fn restrict_colors(&self, colors: &[usize]) -> Simplex<V> {
        let verts = self
            .verts
            .iter()
            .filter(|v| colors.contains(&v.color))
            .cloned()
            .collect();
        Simplex { verts }
    }
}

impl<V: View> fmt::Debug for Simplex<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.verts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(p{}, {:?})", v.color, v.view)?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(pairs: &[(usize, u32)]) -> Simplex<u32> {
        Simplex::new(pairs.iter().map(|&(c, v)| Vertex::new(c, v)).collect()).unwrap()
    }

    #[test]
    fn construction_sorts_and_validates() {
        let a = s(&[(2, 20), (0, 10)]);
        assert_eq!(a.colors().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(
            Simplex::new(vec![Vertex::new(1, 5u32), Vertex::new(1, 6)]),
            Err(TopologyError::DuplicateColor { color: 1 })
        );
        // Same color same view is also a duplicate color.
        assert!(Simplex::new(vec![Vertex::new(1, 5u32), Vertex::new(1, 5)]).is_err());
    }

    #[test]
    fn dims() {
        assert_eq!(Simplex::<u32>::empty().dim(), -1);
        assert_eq!(Simplex::vertex(0, 1u32).dim(), 0);
        assert_eq!(s(&[(0, 1), (1, 2), (2, 3)]).dim(), 2);
    }

    #[test]
    fn view_of_lookup() {
        let a = s(&[(0, 10), (3, 30), (7, 70)]);
        assert_eq!(a.view_of(3), Some(&30));
        assert_eq!(a.view_of(1), None);
        assert_eq!(a.view_of(7), Some(&70));
        assert_eq!(Simplex::<u32>::empty().view_of(0), None);
    }

    #[test]
    fn containment() {
        let big = s(&[(0, 1), (1, 2), (2, 3)]);
        let face = s(&[(0, 1), (2, 3)]);
        let not_face = s(&[(0, 1), (2, 99)]);
        assert!(big.contains(&face));
        assert!(big.contains(&big));
        assert!(big.contains(&Simplex::empty()));
        assert!(!big.contains(&not_face));
        assert!(!face.contains(&big));
    }

    #[test]
    fn intersection_is_common_vertices() {
        let a = s(&[(0, 1), (1, 2), (2, 3)]);
        let b = s(&[(0, 1), (1, 9), (2, 3)]);
        let i = a.intersection(&b);
        assert_eq!(i, s(&[(0, 1), (2, 3)]));
        assert_eq!(a.intersection(&a), a);
        assert_eq!(a.intersection(&Simplex::empty()), Simplex::empty());
    }

    #[test]
    fn faces_drop_one_vertex() {
        let a = s(&[(0, 1), (1, 2), (2, 3)]);
        let faces: Vec<_> = a.faces().collect();
        assert_eq!(faces.len(), 3);
        for f in &faces {
            assert_eq!(f.dim(), 1);
            assert!(a.contains(f));
        }
        // A vertex's only face is the empty simplex.
        let v = Simplex::vertex(0, 1u32);
        assert_eq!(v.faces().collect::<Vec<_>>(), vec![Simplex::empty()]);
    }

    #[test]
    fn all_faces_count() {
        let a = s(&[(0, 1), (1, 2), (2, 3)]);
        let all = a.all_faces();
        assert_eq!(all.len(), 7);
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 7);
        for f in all {
            assert!(a.contains(&f));
            assert!(!f.is_empty());
        }
    }

    #[test]
    fn restrict_colors_projects() {
        let a = s(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(a.restrict_colors(&[0, 2]), s(&[(0, 1), (2, 3)]));
        assert_eq!(a.restrict_colors(&[9]), Simplex::empty());
    }

    #[test]
    fn debug_format() {
        let a = s(&[(0, 1)]);
        assert_eq!(format!("{a:?}"), "⟨(p0, 1)⟩");
    }
}
