//! Pseudosphere complexes `φ(Π; V_1, …, V_n)` (Def 4.5).
//!
//! A pseudosphere assigns to each color `i` a set of admissible views
//! `V_i`; its simplexes are exactly the partial choices of one view per
//! color. Facets pick one view for every color with `V_i ≠ ∅`.
//!
//! The paper's two workhorse facts are implemented and tested here:
//!
//! * **Lemma 4.6** — pseudospheres intersect component-wise:
//!   `φ(Π; U_i) ∩ φ(Π; V_i) = φ(Π; U_i ∩ V_i)`;
//! * **Lemma 4.7** — a pseudosphere with `m` non-empty colors is
//!   `(m − 2)`-connected (verified homologically in the tests and
//!   experiments).

use crate::complex::Complex;
use crate::error::TopologyError;
use crate::simplex::{Simplex, Vertex, View};
use std::collections::BTreeMap;

/// Size guard for materializing pseudosphere facets.
pub const DEFAULT_FACET_LIMIT: u128 = 2_000_000;

/// A pseudosphere: per-color admissible view sets, kept deduplicated and
/// sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pseudosphere<V> {
    /// color → admissible views (sorted, deduplicated, possibly empty).
    views: BTreeMap<usize, Vec<V>>,
}

impl<V: View> Pseudosphere<V> {
    /// Builds a pseudosphere from `(color, views)` pairs. Colors may not
    /// repeat; view lists are sorted and deduplicated. Empty view lists are
    /// allowed (the color simply never appears).
    ///
    /// # Errors
    ///
    /// [`TopologyError::DuplicateColor`] if a color repeats.
    pub fn new(entries: Vec<(usize, Vec<V>)>) -> Result<Self, TopologyError> {
        let mut views = BTreeMap::new();
        for (color, mut vs) in entries {
            vs.sort();
            vs.dedup();
            if views.insert(color, vs).is_some() {
                return Err(TopologyError::DuplicateColor { color });
            }
        }
        Ok(Pseudosphere { views })
    }

    /// The colors with at least one admissible view (the `n` of
    /// Lemma 4.7).
    pub fn active_colors(&self) -> Vec<usize> {
        self.views
            .iter()
            .filter(|(_, vs)| !vs.is_empty())
            .map(|(&c, _)| c)
            .collect()
    }

    /// The admissible views of a color (empty slice if the color is
    /// unknown).
    pub fn views_of(&self, color: usize) -> &[V] {
        self.views.get(&color).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of facets `Π_{V_i ≠ ∅} |V_i|` (0 when no active colors),
    /// saturating.
    pub fn facet_count(&self) -> u128 {
        let active: Vec<_> = self.active_colors();
        if active.is_empty() {
            return 0;
        }
        let mut acc: u128 = 1;
        for c in active {
            acc = acc.saturating_mul(self.views_of(c).len() as u128);
        }
        acc
    }

    /// Component-wise intersection (Lemma 4.6):
    /// `φ(Π; U_i) ∩ φ(Π; V_i) = φ(Π; U_i ∩ V_i)`.
    ///
    /// Colors missing from either side get the empty view set.
    pub fn intersect(&self, other: &Pseudosphere<V>) -> Pseudosphere<V> {
        let mut views = BTreeMap::new();
        for (&c, mine) in &self.views {
            let theirs = other.views_of(c);
            let common: Vec<V> = mine
                .iter()
                .filter(|v| theirs.binary_search(v).is_ok())
                .cloned()
                .collect();
            views.insert(c, common);
        }
        for &c in other.views.keys() {
            views.entry(c).or_insert_with(Vec::new);
        }
        Pseudosphere { views }
    }

    /// Materializes the pseudosphere as an explicit facet complex.
    ///
    /// # Panics
    ///
    /// Panics if the facet count exceeds [`DEFAULT_FACET_LIMIT`]; use
    /// [`Pseudosphere::try_to_complex`] to handle the budget gracefully.
    pub fn to_complex(&self) -> Complex<V> {
        self.try_to_complex(DEFAULT_FACET_LIMIT)
            .expect("pseudosphere exceeds the default facet limit")
    }

    /// Materializes the pseudosphere as an explicit facet complex, bounded
    /// by `limit` facets.
    ///
    /// With the `parallel` feature, large pseudospheres decode facet
    /// indexes in mixed radix over the view lists and generate them on
    /// the `ksa-exec` pool — facet `j` is a pure function of `j`, so the
    /// enumeration order (and the canonicalized complex) matches the
    /// sequential odometer exactly.
    ///
    /// # Errors
    ///
    /// [`TopologyError::TooLarge`] when the facet count exceeds `limit`.
    pub fn try_to_complex(&self, limit: u128) -> Result<Complex<V>, TopologyError> {
        let count = self.facet_count();
        if count > limit {
            return Err(TopologyError::TooLarge {
                what: "pseudosphere facets",
                estimated: count,
                limit,
            });
        }
        let active = self.active_colors();
        if active.is_empty() {
            return Ok(Complex::void());
        }
        let lists: Vec<&[V]> = active.iter().map(|&c| self.views_of(c)).collect();
        ksa_obs::count(ksa_obs::Counter::FacetsEnumerated, count as u64);

        // The parallel decode indexes facets as usize; counts beyond that
        // (possible when the caller passes a limit above usize::MAX) fall
        // through to the odometer rather than truncate.
        #[cfg(feature = "parallel")]
        if count >= 64 && count <= usize::MAX as u128 {
            use ksa_exec::prelude::*;
            let facets: Vec<Simplex<V>> = (0..count as usize)
                .into_par_iter()
                .map(|j| {
                    // Mixed-radix decode of j: digit p (least significant
                    // first) picks the view of active color p — the same
                    // assignment the sequential odometer reaches at step j.
                    let mut rem = j;
                    let verts: Vec<Vertex<V>> = (0..active.len())
                        .map(|p| {
                            let pick = rem % lists[p].len();
                            rem /= lists[p].len();
                            Vertex::new(active[p], lists[p][pick].clone())
                        })
                        .collect();
                    Simplex::new(verts).expect("distinct colors by construction")
                })
                .collect();
            return Ok(Complex::from_facets(facets));
        }

        // Odometer over the active colors' view lists.
        let mut idx = vec![0usize; active.len()];
        let mut facets = Vec::with_capacity(count as usize);
        loop {
            let verts: Vec<Vertex<V>> = (0..active.len())
                .map(|j| Vertex::new(active[j], lists[j][idx[j]].clone()))
                .collect();
            facets.push(Simplex::new(verts).expect("distinct colors by construction"));
            // Advance the odometer.
            let mut pos = 0;
            loop {
                if pos == active.len() {
                    return Ok(Complex::from_facets(facets));
                }
                idx[pos] += 1;
                if idx[pos] < lists[pos].len() {
                    break;
                }
                idx[pos] = 0;
                pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{homological_connectivity, is_k_connected};

    fn ps(entries: Vec<(usize, Vec<u32>)>) -> Pseudosphere<u32> {
        Pseudosphere::new(entries).unwrap()
    }

    #[test]
    fn construction_dedups_and_rejects_duplicates() {
        let p = ps(vec![(0, vec![2, 1, 2]), (1, vec![5])]);
        assert_eq!(p.views_of(0), &[1, 2]);
        assert_eq!(p.views_of(7), &[] as &[u32]);
        assert!(Pseudosphere::new(vec![(0, vec![1u32]), (0, vec![2])]).is_err());
    }

    #[test]
    fn figure_3_pseudosphere() {
        // φ(P1,P2,P3; {v1,v2},{v1,v2},{v}): 2·2·1 = 4 facets.
        let p = ps(vec![(0, vec![1, 2]), (1, vec![1, 2]), (2, vec![7])]);
        assert_eq!(p.facet_count(), 4);
        let c = p.to_complex();
        assert_eq!(c.facet_count(), 4);
        assert_eq!(c.dim(), 2);
        assert!(c.is_pure());
        // Lemma 4.7: (3 − 2) = 1-connected.
        assert!(is_k_connected(&c, 1));
    }

    #[test]
    fn binary_views_give_spheres() {
        // φ with V_i = {0, 1} for m colors is (combinatorially) the
        // boundary of a cross-polytope: an (m−1)-sphere, so exactly
        // (m−2)-connected.
        for m in 2..5 {
            let p = Pseudosphere::new((0..m).map(|c| (c, vec![0u32, 1])).collect()).unwrap();
            let c = p.to_complex();
            assert_eq!(homological_connectivity(&c), m as isize - 2, "m = {m}");
        }
    }

    #[test]
    fn single_views_give_full_simplex() {
        let p = ps(vec![(0, vec![1]), (1, vec![1]), (2, vec![1])]);
        let c = p.to_complex();
        assert_eq!(c.facet_count(), 1);
        assert!(is_k_connected(&c, 2));
    }

    #[test]
    fn empty_color_is_skipped() {
        let p = ps(vec![(0, vec![1, 2]), (1, vec![]), (2, vec![3])]);
        assert_eq!(p.active_colors(), vec![0, 2]);
        assert_eq!(p.facet_count(), 2);
        let c = p.to_complex();
        assert_eq!(c.dim(), 1);
    }

    #[test]
    fn all_empty_is_void() {
        let p = ps(vec![(0, vec![]), (1, vec![])]);
        assert_eq!(p.facet_count(), 0);
        assert!(p.to_complex().is_void());
    }

    #[test]
    fn lemma_4_6_intersection() {
        let a = ps(vec![(0, vec![1, 2, 3]), (1, vec![1, 2])]);
        let b = ps(vec![(0, vec![2, 3, 4]), (1, vec![2, 9])]);
        let i = a.intersect(&b);
        assert_eq!(i.views_of(0), &[2, 3]);
        assert_eq!(i.views_of(1), &[2]);
        // The complex of the intersection equals the intersection of the
        // complexes.
        let direct = a.to_complex().intersection(&b.to_complex());
        assert_eq!(i.to_complex(), direct);
    }

    #[test]
    fn lemma_4_6_with_disjoint_views() {
        let a = ps(vec![(0, vec![1]), (1, vec![1, 2])]);
        let b = ps(vec![(0, vec![2]), (1, vec![2, 3])]);
        let i = a.intersect(&b);
        assert_eq!(i.views_of(0), &[] as &[u32]);
        assert_eq!(i.views_of(1), &[2]);
        // Color 0 drops out; the intersection complex is the vertex (1,2).
        let c = i.to_complex();
        assert_eq!(c.dim(), 0);
        assert_eq!(c.facet_count(), 1);
        assert_eq!(c, a.to_complex().intersection(&b.to_complex()));
    }

    #[test]
    fn facet_budget_respected() {
        let p = Pseudosphere::new((0..10).map(|c| (c, (0u32..10).collect())).collect()).unwrap();
        assert_eq!(p.facet_count(), 10_000_000_000);
        assert!(p.try_to_complex(1000).is_err());
    }

    #[test]
    fn connectivity_depends_on_active_colors() {
        // Lemma 4.7 counts only non-empty colors.
        let p = ps(vec![
            (0, vec![0, 1]),
            (1, vec![0, 1]),
            (2, vec![]),
            (3, vec![0, 1]),
        ]);
        let c = p.to_complex();
        // 3 active colors → (3−2) = 1-connected exactly (cross-polytope
        // boundary on 3 colors is a 2-sphere... no: views {0,1} per color
        // on 3 colors gives an octahedron boundary, a 2-sphere, which is
        // exactly 1-connected).
        assert_eq!(homological_connectivity(&c), 1);
    }
}
