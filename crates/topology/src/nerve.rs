//! Nerve complexes of covers (Def 4.10).
//!
//! Given a cover `(C_i)_{i ∈ I}` of a complex, the nerve has one vertex per
//! cover element and a simplex for every `J ⊆ I` whose members intersect
//! non-trivially. The paper's nerve lemma (Lemma 4.11) transfers
//! connectivity between a complex and the nerve of a nice cover; the
//! experiments verify its hypotheses and conclusion on the paper's covers.

use crate::complex::Complex;
use crate::simplex::{Simplex, Vertex, View};

#[cfg(feature = "parallel")]
use ksa_exec::prelude::*;

/// Frontier size past which a level's expansions fan out on the
/// `ksa-exec` pool. Expansion of one index set is independent of its
/// siblings and results merge in frontier order, so the construction is
/// identical to the sequential sweep.
#[cfg(feature = "parallel")]
const PAR_FRONTIER_GRAIN: usize = 4;

/// The nerve of a cover, as a complex colored by cover indices with unit
/// views.
///
/// Exponential in `cover.len()` in the worst case, but pruned: supersets of
/// empty intersections are never explored (emptiness is monotone).
///
/// # Examples
///
/// ```
/// use ksa_topology::complex::Complex;
/// use ksa_topology::simplex::{Simplex, Vertex};
/// use ksa_topology::nerve::nerve_complex;
///
/// // Two triangles sharing an edge cover their union; the nerve is a
/// // 1-simplex (the two cover elements intersect).
/// let t1 = Complex::of_simplex(Simplex::new(
///     (0..3).map(|c| Vertex::new(c, ())).collect()).unwrap());
/// let t2 = Complex::of_simplex(Simplex::new(
///     (1..4).map(|c| Vertex::new(c, ())).collect()).unwrap());
/// let nerve = nerve_complex(&[t1, t2]);
/// assert_eq!(nerve.dim(), 1);
/// ```
pub fn nerve_complex<V: View>(cover: &[Complex<V>]) -> Complex<()> {
    // Level-wise construction: frontier holds (index set as sorted vec,
    // running intersection).
    let mut facet_candidates: Vec<Vec<usize>> = Vec::new();
    let mut frontier: Vec<(Vec<usize>, Complex<V>)> = Vec::new();
    for (i, c) in cover.iter().enumerate() {
        if !c.is_void() {
            frontier.push((vec![i], c.clone()));
        }
    }
    while !frontier.is_empty() {
        // One index set's extensions, plus the set itself when it extends
        // no further (a facet candidate).
        let expand = |(set, inter): &(Vec<usize>, Complex<V>)| {
            let exts = extensions(set, inter, cover);
            let maximal = exts.is_empty().then(|| set.clone());
            (exts, maximal)
        };

        #[allow(clippy::type_complexity)]
        let expanded: Vec<(Vec<(Vec<usize>, Complex<V>)>, Option<Vec<usize>>)> = {
            #[cfg(feature = "parallel")]
            {
                if frontier.len() >= PAR_FRONTIER_GRAIN {
                    frontier.par_iter().map(expand).collect()
                } else {
                    frontier.iter().map(expand).collect()
                }
            }
            #[cfg(not(feature = "parallel"))]
            {
                frontier.iter().map(expand).collect()
            }
        };

        let mut next: Vec<(Vec<usize>, Complex<V>)> = Vec::new();
        for (exts, maximal) in expanded {
            next.extend(exts);
            facet_candidates.extend(maximal);
        }
        frontier = next;
    }
    ksa_obs::count(
        ksa_obs::Counter::FacetsEnumerated,
        facet_candidates.len() as u64,
    );
    Complex::from_facets(facet_candidates.into_iter().map(|set| {
        Simplex::new(set.into_iter().map(|i| Vertex::new(i, ())).collect())
            .expect("indices are distinct")
    }))
}

/// Checks the hypothesis of the nerve lemma (Lemma 4.11) homologically for
/// a given `k`: every non-empty intersection of `|J|` cover elements must
/// be homologically `(k − |J| + 1)`-connected (or empty). Returns the list
/// of violating index sets (empty = hypothesis verified).
pub fn nerve_lemma_violations<V: View>(cover: &[Complex<V>], k: isize) -> Vec<Vec<usize>> {
    use crate::connectivity::is_k_connected;

    let mut bad = Vec::new();
    // Enumerate non-empty-intersection index sets exactly like the nerve.
    let mut frontier: Vec<(Vec<usize>, Complex<V>)> = Vec::new();
    for (i, c) in cover.iter().enumerate() {
        frontier.push((vec![i], c.clone()));
    }
    while !frontier.is_empty() {
        // Check one index set's connectivity requirement and compute its
        // extensions (the homology checks dominate — with the `parallel`
        // feature each frontier entry is a task and its Betti computation
        // fans out further inside the engine).
        let check = |(set, inter): &(Vec<usize>, Complex<V>)| {
            if inter.is_void() {
                return (Vec::new(), None);
            }
            let need = k - set.len() as isize + 1;
            let violation = (!is_k_connected(inter, need)).then(|| set.clone());
            (extensions(set, inter, cover), violation)
        };

        #[allow(clippy::type_complexity)]
        let checked: Vec<(Vec<(Vec<usize>, Complex<V>)>, Option<Vec<usize>>)> = {
            #[cfg(feature = "parallel")]
            {
                if frontier.len() >= PAR_FRONTIER_GRAIN {
                    frontier.par_iter().map(check).collect()
                } else {
                    frontier.iter().map(check).collect()
                }
            }
            #[cfg(not(feature = "parallel"))]
            {
                frontier.iter().map(check).collect()
            }
        };

        let mut next = Vec::new();
        for (exts, violation) in checked {
            bad.extend(violation);
            next.extend(exts);
        }
        frontier = next;
    }
    bad
}

/// The one-step extensions of a non-void index set: intersect with every
/// cover element past the set's last index and keep the non-void results
/// (emptiness is monotone, so supersets of void intersections are never
/// explored). Shared by the nerve construction and the nerve-lemma
/// hypothesis check so the pruning logic cannot diverge between them.
fn extensions<V: View>(
    set: &[usize],
    inter: &Complex<V>,
    cover: &[Complex<V>],
) -> Vec<(Vec<usize>, Complex<V>)> {
    let last = *set.last().expect("non-empty index set");
    let mut exts = Vec::new();
    for (j, cj) in cover.iter().enumerate().skip(last + 1) {
        let bigger = inter.intersection(cj);
        if !bigger.is_void() {
            let mut s = set.to_vec();
            s.push(j);
            exts.push((s, bigger));
        }
    }
    exts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{connectivity, homological_connectivity, Connectivity};

    fn simplex(colors: &[usize]) -> Simplex<u32> {
        Simplex::new(colors.iter().map(|&c| Vertex::new(c, 0u32)).collect()).unwrap()
    }

    #[test]
    fn nerve_of_two_overlapping_sets_is_edge() {
        let t1 = Complex::of_simplex(simplex(&[0, 1, 2]));
        let t2 = Complex::of_simplex(simplex(&[1, 2, 3]));
        let n = nerve_complex(&[t1, t2]);
        assert_eq!(n.dim(), 1);
        assert_eq!(n.facet_count(), 1);
    }

    #[test]
    fn nerve_of_disjoint_sets_is_points() {
        let a = Complex::of_simplex(simplex(&[0]));
        let b = Complex::of_simplex(simplex(&[1]));
        let n = nerve_complex(&[a, b]);
        assert_eq!(n.dim(), 0);
        assert_eq!(n.facet_count(), 2);
        assert_eq!(connectivity(&n), Connectivity::Exactly(-1));
    }

    #[test]
    fn nerve_skips_void_members() {
        let a = Complex::of_simplex(simplex(&[0]));
        let n = nerve_complex(&[a, Complex::void()]);
        assert_eq!(n.facet_count(), 1);
        assert_eq!(n.dim(), 0);
    }

    #[test]
    fn nerve_of_circle_cover() {
        // Three arcs of a triangle-circle: edges {0,1}, {1,2}, {0,2}.
        // Pairwise intersections are single vertices; the triple
        // intersection is empty. Nerve = triangle boundary = circle.
        let arcs = vec![
            Complex::of_simplex(simplex(&[0, 1])),
            Complex::of_simplex(simplex(&[1, 2])),
            Complex::of_simplex(simplex(&[0, 2])),
        ];
        let n = nerve_complex(&arcs);
        assert_eq!(n.dim(), 1);
        assert_eq!(n.facet_count(), 3);
        assert_eq!(homological_connectivity(&n), 0); // a circle
                                                     // And indeed the union is a circle too (nerve lemma in action).
        let union = arcs[0].union(&arcs[1]).union(&arcs[2]);
        assert_eq!(homological_connectivity(&union), 0);
    }

    #[test]
    fn nerve_of_cover_with_common_point_is_simplex() {
        // All three sets share vertex 0: nerve = full 2-simplex.
        let c1 = Complex::of_simplex(simplex(&[0, 1]));
        let c2 = Complex::of_simplex(simplex(&[0, 2]));
        let c3 = Complex::of_simplex(simplex(&[0, 3]));
        let n = nerve_complex(&[c1, c2, c3]);
        assert_eq!(n.facet_count(), 1);
        assert_eq!(n.dim(), 2);
    }

    #[test]
    fn nerve_lemma_hypothesis_check() {
        // Cover of a disk by two half-disks meeting in an edge: for k = 1,
        // singles must be 1-connected (they are: contractible) and the
        // pair must be 0-connected (an edge: yes).
        let t1 = Complex::of_simplex(simplex(&[0, 1, 2]));
        let t2 = Complex::of_simplex(simplex(&[1, 2, 3]));
        assert!(nerve_lemma_violations(&[t1.clone(), t2.clone()], 1).is_empty());
        // For circles sharing one point, k = 1 fails already on singles.
        let r1 = Complex::boundary_of(&simplex(&[0, 1, 2]));
        let r2 = Complex::boundary_of(&simplex(&[0, 3, 4]));
        let bad = nerve_lemma_violations(&[r1, r2], 1);
        assert!(!bad.is_empty());
    }

    #[test]
    fn nerve_lemma_conclusion_on_paper_style_cover() {
        // Lemma 4.11, checked end-to-end on a tractable instance:
        // cover a solid tetrahedron's boundary... simpler: cover the
        // square (two triangles) — hypotheses hold for k = 1, so the union
        // is 1-connected iff the nerve is. Nerve = edge (1-connected);
        // union = disk (1-connected). Consistent.
        let t1 = Complex::of_simplex(simplex(&[0, 1, 2]));
        let t2 = Complex::of_simplex(simplex(&[1, 2, 3]));
        let n = nerve_complex(&[t1.clone(), t2.clone()]);
        let union = t1.union(&t2);
        assert!(crate::connectivity::is_k_connected(&n, 1));
        assert!(crate::connectivity::is_k_connected(&union, 1));
    }
}
