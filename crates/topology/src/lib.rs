//! # ksa-topology
//!
//! The combinatorial-topology substrate for the reproduction of *"K-set
//! agreement bounds in round-based models through combinatorial topology"*
//! (Shimi & Castañeda, PODC 2020).
//!
//! The paper's lower bounds are proved by showing that the one-round
//! **protocol complex** of a closed-above model is highly connected, then
//! invoking the standard connectivity-based impossibility for k-set
//! agreement. This crate builds every object in that pipeline:
//!
//! * [`simplex`] / [`complex`] — colored simplexes and simplicial complexes
//!   (Defs 4.1–4.2), with union, intersection, skeletons and purity;
//! * [`pseudosphere`] — the pseudosphere complexes `φ(Π; V_1..V_n)`
//!   (Def 4.5) and their intersection law (Lemma 4.6);
//! * [`chain`] — the flat chain-complex engine: integer-id simplex
//!   arenas, sparse boundary reduction with per-dimension rank caching,
//!   early-exit connectivity, and rank reuse across skeleta and growing
//!   complex sequences (DESIGN.md §7);
//! * [`homology`] / [`connectivity`] — reduced Z/2 Betti numbers and the
//!   homological connectivity checks used as the computational proxy for
//!   the paper's homotopy connectivity (see DESIGN.md for the
//!   substitution note), both running on [`chain`] with engine-free
//!   `_seq` references;
//! * [`nerve`] — nerve complexes of covers (Def 4.10), the engine of the
//!   paper's Lemma 4.11 applications;
//! * [`shelling`] — shelling-order verification and exhaustive shellability
//!   (§4.4, Fig 4);
//! * [`uninterpreted`] — the uninterpreted simplex/complex of graphs and
//!   closed-above models (Defs 4.3–4.4, Lemma 4.8);
//! * [`interpretation`] — interpretations over an input complex
//!   (Defs 4.13–4.14): the one-round protocol complexes themselves;
//! * [`rounds`] / [`intern`] — multi-round protocol complexes by
//!   iterated interpretation, with each round's views hash-consed into a
//!   `u32`-keyed arena (the §6 iteration story; DESIGN.md §6).
//!
//! ## Quick example
//!
//! ```
//! use ksa_topology::pseudosphere::Pseudosphere;
//! use ksa_topology::connectivity::homological_connectivity;
//!
//! // Figure 3 of the paper: φ(P1,P2,P3; {v1,v2}, {v1,v2}, {v}).
//! let ps = Pseudosphere::new(vec![
//!     (0, vec![1u32, 2]),
//!     (1, vec![1, 2]),
//!     (2, vec![7]),
//! ]).unwrap();
//! let c = ps.to_complex();
//! assert_eq!(c.facets().count(), 4);
//! // Pseudospheres on n = 3 non-empty colors are (n − 2) = 1-connected
//! // (Lemma 4.7); homologically verified:
//! assert!(homological_connectivity(&c) >= 1);
//! ```

#![deny(missing_docs)]

pub mod chain;
pub mod complex;
pub mod connectivity;
pub mod error;
pub mod gf2;
pub mod homology;
pub mod intern;
pub mod interpretation;
pub mod join;
pub mod nerve;
pub mod pseudosphere;
pub mod rounds;
pub mod shelling;
pub mod simplex;
pub mod uninterpreted;

pub use complex::Complex;
pub use error::TopologyError;
pub use rounds::{protocol_complex_rounds, protocol_complex_rounds_seq, RoundsComplex};
pub use simplex::{Simplex, Vertex, View};
