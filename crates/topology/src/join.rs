//! Simplicial joins.
//!
//! The join `A * B` of two complexes on disjoint color sets has simplexes
//! `σ ∪ τ` for `σ ∈ A ∪ {∅}`, `τ ∈ B ∪ {∅}`. Joins are how pseudospheres
//! decompose — `φ(Π; V_1, …, V_n)` is the join of the `n` discrete view
//! sets — which is exactly why Lemma 4.7's connectivity holds: joining
//! with a non-empty complex raises connectivity by that complex's
//! connectivity plus two.

use crate::complex::Complex;
use crate::error::TopologyError;
use crate::simplex::{Simplex, View};

/// The join `a * b`. Requires disjoint color sets.
///
/// Facets of the join are unions of facets (the empty-side cases are
/// subsumed unless one complex is void, in which case the join is the
/// other complex).
///
/// # Errors
///
/// [`TopologyError::DuplicateColor`] if the color sets intersect.
pub fn join<V: View>(a: &Complex<V>, b: &Complex<V>) -> Result<Complex<V>, TopologyError> {
    if a.is_void() {
        return Ok(b.clone());
    }
    if b.is_void() {
        return Ok(a.clone());
    }
    let mut facets = Vec::new();
    for fa in a.facets() {
        for fb in b.facets() {
            let mut verts = fa.vertices().to_vec();
            verts.extend(fb.vertices().iter().cloned());
            facets.push(Simplex::new(verts)?);
        }
    }
    Ok(Complex::from_facets(facets))
}

/// The iterated join of a family of complexes (left fold).
///
/// # Errors
///
/// Same conditions as [`join`]; [`TopologyError::EmptyComplex`] for an
/// empty family.
pub fn join_all<V: View>(parts: &[Complex<V>]) -> Result<Complex<V>, TopologyError> {
    let mut it = parts.iter();
    let first = it.next().ok_or(TopologyError::EmptyComplex)?;
    let mut acc = first.clone();
    for p in it {
        acc = join(&acc, p)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::homological_connectivity;
    use crate::pseudosphere::Pseudosphere;
    use crate::simplex::Vertex;

    fn points(color: usize, vals: &[u32]) -> Complex<u32> {
        Complex::from_facets(vals.iter().map(|&v| Simplex::vertex(color, v)))
    }

    #[test]
    fn join_of_two_points_sets_is_bipartite() {
        let a = points(0, &[0, 1]);
        let b = points(1, &[0, 1]);
        let j = join(&a, &b).unwrap();
        // 2×2 edges: the 4-cycle (a circle).
        assert_eq!(j.facet_count(), 4);
        assert_eq!(j.dim(), 1);
        assert_eq!(homological_connectivity(&j), 0);
    }

    #[test]
    fn pseudosphere_is_join_of_view_sets() {
        let ps =
            Pseudosphere::new(vec![(0, vec![0u32, 1]), (1, vec![0, 1, 2]), (2, vec![7])]).unwrap();
        let parts = vec![points(0, &[0, 1]), points(1, &[0, 1, 2]), points(2, &[7])];
        assert_eq!(join_all(&parts).unwrap(), ps.to_complex());
    }

    #[test]
    fn join_raises_connectivity() {
        // conn(A * B) ≥ conn(A) + conn(B) + 2 (here: two 2-point sets,
        // each (−1)-connected... exactly: join of discrete sets of size 2
        // k times is an (k−1)-sphere: (k−2)-connected).
        let mut acc = points(0, &[0, 1]);
        for c in 1..4 {
            acc = join(&acc, &points(c, &[0, 1])).unwrap();
            let expect = c as isize - 1; // (c+1 colors) − 2
            assert_eq!(homological_connectivity(&acc), expect, "colors = {}", c + 1);
        }
    }

    #[test]
    fn join_with_point_is_cone_hence_contractible() {
        let circle = {
            let tri = Simplex::new((0..3).map(|c| Vertex::new(c, 0u32)).collect()).unwrap();
            Complex::boundary_of(&tri)
        };
        assert_eq!(homological_connectivity(&circle), 0);
        let cone = join(&circle, &points(9, &[0])).unwrap();
        // A cone is contractible: all reduced homology vanishes.
        assert!(homological_connectivity(&cone) >= cone.dim() - 1);
        let betti = crate::homology::reduced_betti_numbers(&cone);
        assert!(betti.iter().all(|&b| b == 0), "{betti:?}");
    }

    #[test]
    fn join_with_void_is_identity() {
        let a = points(0, &[0, 1]);
        assert_eq!(join(&a, &Complex::void()).unwrap(), a);
        assert_eq!(join(&Complex::void(), &a).unwrap(), a);
    }

    #[test]
    fn overlapping_colors_rejected() {
        let a = points(0, &[0]);
        let b = points(0, &[1]);
        assert!(join(&a, &b).is_err());
    }

    #[test]
    fn join_all_empty_family_rejected() {
        assert!(join_all::<u32>(&[]).is_err());
    }
}
