//! Multi-round protocol complexes by iterated interpretation
//! (Defs 4.13–4.14 applied round over round; the §6 iteration story).
//!
//! One round of a closed-above model turns an input complex into the
//! protocol complex of [`crate::interpretation`]. Running `r` rounds
//! iterates that construction: round `t` interprets the model's
//! uninterpreted pseudospheres over the round-`(t−1)` protocol complex,
//! so a process's view after round `t` is the set of `(sender,
//! round-(t−1) view)` pairs it heard. Represented naively those views are
//! trees growing like `n^t`; this module stores them **hash-consed** — a
//! round-`t` view is a [`InternedView`]: a sorted list of `(sender, id)`
//! pairs whose `u32` ids point into the previous round's [`ViewTable`]
//! (see [`crate::intern`] and DESIGN.md §6). The round-`t` complex is a
//! plain [`Complex<u32>`], which is what the homology pipeline consumes
//! for the round-sweep connectivity experiments.
//!
//! A [`RunBudget`] guards the per-round facet blow-up: each round's
//! total facet product is estimated pair by pair *before* any facet is
//! materialized, and an oversized round fails fast with
//! [`TopologyError::Budget`].
//!
//! Determinism (DESIGN.md §4): [`protocol_complex_rounds_seq`] is the
//! public sequential reference; with the `parallel` feature,
//! [`protocol_complex_rounds`] fans the per-(input-facet × generator)
//! interpretation out on the `ksa-exec` pool and merges in input order,
//! with canonical id assignment ([`ViewTable::canonical`]) and facet
//! canonicalization (`Complex::from_facets`) at the merge — the results
//! are bit-identical at any `KSA_THREADS`, proptest-pinned at pool sizes
//! 1/2/8.

use crate::complex::Complex;
use crate::error::TopologyError;
use crate::intern::{InternedView, ViewTable};
use crate::interpretation::FlatView;
use crate::simplex::{Simplex, Vertex, View};
use ksa_graphs::budget::RunBudget;
use ksa_graphs::cancel::CancelToken;
use ksa_graphs::Digraph;
use ksa_obs::Counter;

#[cfg(feature = "parallel")]
use ksa_exec::prelude::*;

/// The result of an `r`-round iterated interpretation: one interned
/// complex and one view table per round, plus the table of input views
/// the round-1 ids resolve through.
///
/// `complexes()[t]` is the round-`(t+1)` protocol complex; its vertex
/// views are ids into `tables()[t]`, whose entries hold `(sender, id)`
/// pairs pointing into `tables()[t−1]` (or [`RoundsComplex::input_table`]
/// for `t = 0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundsComplex<V> {
    /// Distinct input views in canonical (sorted) order.
    input_table: ViewTable<V>,
    /// `tables[t]`: the views created at round `t + 1`.
    tables: Vec<ViewTable<InternedView>>,
    /// `complexes[t]`: the round-`(t + 1)` protocol complex.
    complexes: Vec<Complex<u32>>,
}

impl<V: View> RoundsComplex<V> {
    /// Number of rounds materialized.
    pub fn rounds(&self) -> usize {
        self.complexes.len()
    }

    /// The final round's protocol complex.
    pub fn final_complex(&self) -> &Complex<u32> {
        self.complexes.last().expect("at least one round")
    }

    /// The protocol complex after `round` rounds (1-based), if computed.
    pub fn complex_at(&self, round: usize) -> Option<&Complex<u32>> {
        round.checked_sub(1).and_then(|t| self.complexes.get(t))
    }

    /// The view table of `round` (1-based), if computed.
    pub fn table_at(&self, round: usize) -> Option<&ViewTable<InternedView>> {
        round.checked_sub(1).and_then(|t| self.tables.get(t))
    }

    /// The table of distinct input views (what round-1 ids point to).
    pub fn input_table(&self) -> &ViewTable<V> {
        &self.input_table
    }

    /// All per-round complexes, round 1 first.
    pub fn complexes(&self) -> &[Complex<u32>] {
        &self.complexes
    }

    /// Total number of interned views across all rounds — the arena
    /// footprint that replaces the re-materialized view trees.
    pub fn interned_view_count(&self) -> usize {
        self.input_table.len() + self.tables.iter().map(ViewTable::len).sum::<usize>()
    }

    /// The homology of every round's complex, round 1 first, computed on
    /// one [`ChainSweep`](crate::chain::ChainSweep): each round's Betti
    /// numbers and connectivity come from a single shared chain build
    /// (no separate closure/rank passes per query), and the sweep
    /// carries its reduced row bases forward across rounds where one
    /// round's boundary rows embed into the next round's
    /// ([`SweepStep::resumed`](crate::chain::SweepStep)). Canonical
    /// re-interning usually reshuffles the ids between rounds, in which
    /// case the embedding check fails and each round reduces fresh —
    /// DESIGN.md §7.3 records the measured behavior.
    ///
    /// Verdicts are bit-identical to calling
    /// [`reduced_betti_numbers`](crate::homology::reduced_betti_numbers)
    /// and [`connectivity`](crate::connectivity::connectivity) on each
    /// round's complex (proptest-pinned in `tests/chain_engine.rs`).
    pub fn homology_sweep(&self) -> Vec<crate::chain::SweepStep> {
        let mut sweep = crate::chain::ChainSweep::new();
        self.complexes.iter().map(|c| sweep.push(c)).collect()
    }

    /// [`homology_sweep`](Self::homology_sweep) with a cooperative
    /// [`CancelToken`], polled before every boundary-rank reduction
    /// (the sweep's units of work). A token that never fires leaves the
    /// steps bit-identical to [`homology_sweep`](Self::homology_sweep).
    ///
    /// # Errors
    ///
    /// [`TopologyError::Cancelled`] / [`TopologyError::DeadlineExceeded`]
    /// when the token fires mid-sweep.
    pub fn homology_sweep_cancellable(
        &self,
        cancel: &CancelToken,
    ) -> Result<Vec<crate::chain::SweepStep>, TopologyError> {
        let mut sweep = crate::chain::ChainSweep::with_cancel(cancel.clone());
        self.complexes
            .iter()
            .map(|c| sweep.try_push(c).map_err(TopologyError::from))
            .collect()
    }

    /// Re-materializes the **round-1** complex with explicit flat views —
    /// the bridge to [`crate::interpretation::protocol_complex_one_round`]
    /// that the anchor tests compare against bit for bit.
    pub fn expand_round_one(&self) -> Complex<FlatView<V>> {
        let table = &self.tables[0];
        Complex::from_facets(self.complexes[0].facets().map(|f| {
            Simplex::new(
                f.vertices()
                    .iter()
                    .map(|vert| {
                        let flat: FlatView<V> = table
                            .get(vert.view)
                            .iter()
                            .map(|&(q, vid)| (q, self.input_table.get(vid).clone()))
                            .collect();
                        Vertex::new(vert.color, flat)
                    })
                    .collect(),
            )
            .expect("colors stay distinct under expansion")
        }))
    }
}

/// Interns an input complex: canonical table of its distinct views, and
/// its facets with views replaced by ids.
fn intern_input<V: View>(input: &Complex<V>) -> (ViewTable<V>, Vec<Simplex<u32>>) {
    let table = ViewTable::canonical(
        input
            .facets()
            .flat_map(|f| f.vertices().iter().map(|v| v.view.clone())),
    );
    let facets = input
        .facets()
        .map(|f| {
            Simplex::new(
                f.vertices()
                    .iter()
                    .map(|v| Vertex::new(v.color, table.id_of(&v.view).expect("view was interned")))
                    .collect(),
            )
            .expect("colors stay distinct under interning")
        })
        .collect();
    (table, facets)
}

/// The admissible round-views of each process for one `(τ, g)` pair:
/// process `p` may hear from any superset of `In_g(p)`, inducing the
/// interned flat view `{(q, view_τ(q)) | q ∈ senders, q ∈ τ}` — the
/// id-level mirror of `interpretation::interpreted_pseudosphere`, built
/// on the same superset enumeration. Per-process lists come back sorted
/// and deduplicated (as `Pseudosphere::new` does for the one-round
/// path).
fn pair_view_lists(tau: &Simplex<u32>, g: &Digraph) -> Vec<Vec<InternedView>> {
    crate::interpretation::superset_views(g, |senders| {
        senders
            .iter()
            .filter_map(|q| tau.view_of(q).map(|&id| (q, id)))
            .collect()
    })
    .into_iter()
    .map(|(_, mut views)| {
        views.sort_unstable();
        views.dedup();
        views
    })
    .collect()
}

/// Maps `f` over `items` on the `ksa-exec` pool when `use_parallel` (and
/// the `parallel` feature) allow, inline otherwise — the merge is
/// input-ordered either way, so both paths compute the same vector.
fn map_items<T: Sync, U: Send>(
    items: &[T],
    f: impl Fn(&T) -> U + Sync,
    use_parallel: bool,
) -> Vec<U> {
    #[cfg(feature = "parallel")]
    if use_parallel {
        return items.par_iter().map(&f).collect();
    }
    #[cfg(not(feature = "parallel"))]
    let _ = use_parallel;
    items.iter().map(&f).collect()
}

/// Materializes the facet product of one pair's per-process id lists
/// (the interned pseudosphere): the odometer enumeration of one view id
/// per process.
fn materialize_pair(id_lists: &[Vec<u32>]) -> Vec<Simplex<u32>> {
    let n = id_lists.len();
    let mut idx = vec![0usize; n];
    let mut facets = Vec::new();
    loop {
        facets.push(
            Simplex::new(
                (0..n)
                    .map(|p| Vertex::new(p, id_lists[p][idx[p]]))
                    .collect(),
            )
            .expect("process colors are distinct"),
        );
        let mut pos = 0;
        loop {
            if pos == n {
                return facets;
            }
            idx[pos] += 1;
            if idx[pos] < id_lists[pos].len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

/// One round of iterated interpretation over the previous round's
/// interned facets: compute each pair's admissible views, intern the
/// round's distinct views canonically, admit the round's facet product
/// against the budget, then materialize and canonicalize.
fn round_step<'a>(
    prev_facets: impl Iterator<Item = &'a Simplex<u32>>,
    gens: &[Digraph],
    budget: RunBudget,
    use_parallel: bool,
) -> Result<(ViewTable<InternedView>, Complex<u32>), TopologyError> {
    let pairs: Vec<(&Simplex<u32>, &Digraph)> = prev_facets
        .flat_map(|tau| gens.iter().map(move |g| (tau, g)))
        .collect();

    // Phase 1 — interpretation fan-out: per-pair admissible view lists.
    let pair_views: Vec<Vec<Vec<InternedView>>> =
        map_items(&pairs, |&(tau, g)| pair_view_lists(tau, g), use_parallel);

    // Phase 2 — budget: the round's facet blow-up is the sum over pairs
    // of the per-pair view products; admit the running total *before*
    // materializing anything, identically in both code paths.
    let mut total: u128 = 0;
    for views in &pair_views {
        let count = views
            .iter()
            .fold(1u128, |acc, vs| acc.saturating_mul(vs.len() as u128));
        total = total.saturating_add(count);
        budget.admit("multi-round protocol-complex facets", total)?;
    }

    // Phase 3 — canonical interning of the round's distinct views: ids
    // are sorted positions, so any enumeration order yields this table.
    // Dedup by reference first — occurrences vastly outnumber distinct
    // views, and only the distinct ones are worth cloning into the arena.
    let mut distinct: Vec<&InternedView> = pair_views.iter().flatten().flatten().collect();
    distinct.sort_unstable();
    distinct.dedup();
    let table: ViewTable<InternedView> = ViewTable::canonical(distinct.into_iter().cloned());
    ksa_obs::count(Counter::ViewsInterned, table.len() as u64);
    let id_lists: Vec<Vec<Vec<u32>>> = pair_views
        .iter()
        .map(|views| {
            views
                .iter()
                .map(|vs| {
                    vs.iter()
                        .map(|v| table.id_of(v).expect("view was interned"))
                        .collect()
                })
                .collect()
        })
        .collect();

    // Phase 4 — materialization fan-out with input-ordered merge and
    // canonicalization at the merge (Complex::from_facets).
    let groups: Vec<Vec<Simplex<u32>>> =
        map_items(&id_lists, |lists| materialize_pair(lists), use_parallel);
    ksa_obs::count(
        Counter::FacetsEnumerated,
        groups.iter().map(|g| g.len() as u64).sum(),
    );

    Ok((table, Complex::from_facets(groups.into_iter().flatten())))
}

/// Shared driver for the sequential and parallel entry points. The
/// per-round iteration is the pipeline's coarse poll point: a fired
/// [`CancelToken`] stops before the next round's fan-out (finer polls —
/// per rank reduction — live in the [`ChainSweep`](crate::chain::ChainSweep)
/// that consumes the result).
fn rounds_driver<V: View>(
    gens: &[Digraph],
    input: &Complex<V>,
    rounds: usize,
    budget: RunBudget,
    use_parallel: bool,
    cancel: Option<&CancelToken>,
) -> Result<RoundsComplex<V>, TopologyError> {
    if gens.is_empty() {
        return Err(ksa_graphs::GraphError::EmptyGraphSet.into());
    }
    if rounds == 0 {
        return Err(TopologyError::ZeroRounds);
    }
    let (input_table, input_facets) = intern_input(input);
    ksa_obs::count(Counter::ViewsInterned, input_table.len() as u64);
    let mut tables = Vec::with_capacity(rounds);
    let mut complexes: Vec<Complex<u32>> = Vec::with_capacity(rounds);
    for t in 0..rounds {
        if let Some(token) = cancel {
            token.checkpoint()?;
        }
        let _span = ksa_obs::span("topology", || "round").arg("round", t as u64 + 1);
        // Borrow the previous round's facets in place (the interned input
        // for round 1) — no per-round re-materialization.
        let (table, complex) = match complexes.last() {
            Some(prev) => round_step(prev.facets(), gens, budget, use_parallel)?,
            None => round_step(input_facets.iter(), gens, budget, use_parallel)?,
        };
        tables.push(table);
        complexes.push(complex);
    }
    Ok(RoundsComplex {
        input_table,
        tables,
        complexes,
    })
}

/// The `r`-round protocol complex of the closed-above model generated by
/// `gens` over the input complex `input`, views interned round by round.
///
/// For `r = 1` the result expands ([`RoundsComplex::expand_round_one`])
/// to exactly [`crate::interpretation::protocol_complex_one_round`] —
/// the anchor the proptests pin.
///
/// With the `parallel` feature the per-round interpretation and
/// materialization fan out on the `ksa-exec` pool; the result is
/// bit-identical to [`protocol_complex_rounds_seq`] at any
/// `KSA_THREADS` (DESIGN.md §4, §6).
///
/// # Errors
///
/// [`TopologyError::Graph`] for an empty generator set;
/// [`TopologyError::ZeroRounds`] for `rounds = 0`;
/// [`TopologyError::Budget`] when a round's facet product exceeds
/// `budget`.
pub fn protocol_complex_rounds<V: View>(
    gens: &[Digraph],
    input: &Complex<V>,
    rounds: usize,
    budget: impl Into<RunBudget>,
) -> Result<RoundsComplex<V>, TopologyError> {
    rounds_driver(gens, input, rounds, budget.into(), true, None)
}

/// [`protocol_complex_rounds`] with a cooperative [`CancelToken`],
/// polled once per round (before each round's interpretation fan-out).
/// A token that never fires leaves the construction bit-identical to
/// [`protocol_complex_rounds`] at any `KSA_THREADS`.
///
/// # Errors
///
/// As for [`protocol_complex_rounds`], plus [`TopologyError::Cancelled`]
/// / [`TopologyError::DeadlineExceeded`] when the token fires.
pub fn protocol_complex_rounds_cancellable<V: View>(
    gens: &[Digraph],
    input: &Complex<V>,
    rounds: usize,
    budget: impl Into<RunBudget>,
    cancel: &CancelToken,
) -> Result<RoundsComplex<V>, TopologyError> {
    rounds_driver(gens, input, rounds, budget.into(), true, Some(cancel))
}

/// The sequential reference implementation of
/// [`protocol_complex_rounds`], kept public and compiled under every
/// feature combination per the determinism contract (DESIGN.md §4): the
/// parallel path must produce bit-identical [`RoundsComplex`] values.
///
/// # Errors
///
/// As for [`protocol_complex_rounds`].
pub fn protocol_complex_rounds_seq<V: View>(
    gens: &[Digraph],
    input: &Complex<V>,
    rounds: usize,
    budget: impl Into<RunBudget>,
) -> Result<RoundsComplex<V>, TopologyError> {
    rounds_driver(gens, input, rounds, budget.into(), false, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpretation::protocol_complex_one_round;
    use crate::pseudosphere::Pseudosphere;
    use ksa_graphs::families;

    fn binary_inputs(n: usize) -> Complex<u32> {
        Pseudosphere::new((0..n).map(|p| (p, vec![0u32, 1])).collect())
            .unwrap()
            .to_complex()
    }

    #[test]
    fn round_one_expands_to_the_one_round_complex() {
        let gens = vec![families::cycle(3).unwrap()];
        let input = binary_inputs(3);
        let rc = protocol_complex_rounds(&gens, &input, 1, 1_000_000u128).unwrap();
        let direct = protocol_complex_one_round(&gens, &input, 1_000_000).unwrap();
        assert_eq!(rc.expand_round_one(), direct);
        assert_eq!(rc.rounds(), 1);
        assert_eq!(rc.final_complex().facet_count(), direct.facet_count());
    }

    #[test]
    fn multi_generator_round_one_anchor() {
        let gens = vec![
            families::cycle(3).unwrap(),
            families::broadcast_star(3, 0).unwrap(),
        ];
        let input = binary_inputs(3);
        let rc = protocol_complex_rounds(&gens, &input, 1, 1_000_000u128).unwrap();
        let direct = protocol_complex_one_round(&gens, &input, 1_000_000).unwrap();
        assert_eq!(rc.expand_round_one(), direct);
    }

    #[test]
    fn rounds_stay_pure_and_chromatic() {
        let gens = vec![families::cycle(3).unwrap()];
        let input = binary_inputs(3);
        let rc = protocol_complex_rounds(&gens, &input, 3, 10_000_000u128).unwrap();
        assert_eq!(rc.rounds(), 3);
        for t in 1..=3 {
            let c = rc.complex_at(t).unwrap();
            assert!(c.is_pure(), "round {t}");
            assert_eq!(c.dim(), 2, "round {t}");
        }
        // Iteration refines: facet counts never shrink for ↑C3.
        let counts: Vec<usize> = rc.complexes().iter().map(Complex::facet_count).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        // The arena keeps every round's distinct views.
        assert!(rc.interned_view_count() > rc.input_table().len());
        assert!(!rc.table_at(3).unwrap().is_empty());
        assert!(rc.table_at(4).is_none());
        assert!(rc.complex_at(0).is_none());
    }

    #[test]
    fn ids_resolve_through_the_tables() {
        let gens = vec![families::cycle(3).unwrap()];
        let input = binary_inputs(3);
        let rc = protocol_complex_rounds(&gens, &input, 2, 10_000_000u128).unwrap();
        // Every round-2 vertex id resolves to a view whose nested ids all
        // live in the round-1 table.
        let t2 = rc.table_at(2).unwrap();
        let t1 = rc.table_at(1).unwrap();
        for f in rc.complex_at(2).unwrap().facets() {
            for v in f.vertices() {
                for &(q, id) in t2.get(v.view) {
                    assert!(q < 3);
                    assert!((id as usize) < t1.len());
                }
            }
        }
    }

    #[test]
    fn zero_rounds_and_empty_generators_rejected() {
        let input = binary_inputs(3);
        let gens = vec![families::cycle(3).unwrap()];
        assert_eq!(
            protocol_complex_rounds(&gens, &input, 0, 1_000u128),
            Err(TopologyError::ZeroRounds)
        );
        assert!(protocol_complex_rounds::<u32>(&[], &input, 1, 1_000u128).is_err());
    }

    #[test]
    fn budget_guards_the_blow_up() {
        let gens = vec![families::cycle(3).unwrap()];
        let input = binary_inputs(3);
        // Round 1 of ↑C3 over 8 input facets needs 64 facet slots.
        let err = protocol_complex_rounds(&gens, &input, 1, 10u128).unwrap_err();
        assert!(matches!(err, TopologyError::Budget(_)), "{err:?}");
        assert!(protocol_complex_rounds(&gens, &input, 1, 64u128).is_ok());
    }

    #[test]
    fn sequential_reference_agrees() {
        let gens = vec![
            families::cycle(3).unwrap(),
            families::broadcast_star(3, 1).unwrap(),
        ];
        let input = binary_inputs(3);
        let par = protocol_complex_rounds(&gens, &input, 2, 10_000_000u128).unwrap();
        let seq = protocol_complex_rounds_seq(&gens, &input, 2, 10_000_000u128).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn void_input_stays_void() {
        let gens = vec![families::cycle(3).unwrap()];
        let rc = protocol_complex_rounds(&gens, &Complex::<u32>::void(), 2, 1_000u128).unwrap();
        assert!(rc.final_complex().is_void());
        assert_eq!(rc.interned_view_count(), 0);
    }
}
