//! View-interning arenas for the multi-round pipeline (DESIGN.md §6).
//!
//! Iterating the interpretation of Def 4.14 nests views: after round `t`
//! a process's view is a set of `(sender, round-(t−1) view)` pairs. A
//! naive representation re-materializes those trees — each facet of the
//! round-`t` complex would drag along `O(n^t)` vertices of history. This
//! module hash-conses instead: each round's **distinct** views go into a
//! [`ViewTable`] where a view is identified by a dense `u32` id, and a
//! nested view is stored as a sorted list of `(sender, id)` pairs whose
//! ids point into the *previous* round's table ([`InternedView`]). The
//! round-`t` protocol complex is then a plain `Complex<u32>` — vertices
//! carry ids, not trees — and the chain of tables resolves any id back
//! to its full history on demand.
//!
//! Determinism (DESIGN.md §4): ids are **canonical**, not first-come —
//! [`ViewTable::canonical`] sorts the distinct entries and assigns ids by
//! sorted position. Any enumeration order (sequential odometer, parallel
//! pair fan-out) therefore produces the *same* table and the same ids,
//! which is what lets the parallel multi-round pipeline of
//! [`crate::rounds`] merge without coordination.

use std::fmt;

/// A view interned at some round `t ≥ 1`: the sorted, deduplicated list
/// of `(sender, id)` pairs, where each id points into round `t − 1`'s
/// [`ViewTable`] (for `t = 1`, into the table of input views).
///
/// The empty list is a valid view: a process whose heard-from set misses
/// every vertex of a partial simplex knows nothing.
pub type InternedView = Vec<(usize, u32)>;

/// One round's hash-consed view table: the distinct views of that round,
/// sorted, with the `u32` id of a view being its position.
///
/// Generic over the entry type so the same arena serves the input layer
/// (`ViewTable<V>` over raw input views) and every later round
/// (`ViewTable<InternedView>` over nested views).
///
/// # Examples
///
/// ```
/// use ksa_topology::intern::ViewTable;
///
/// let table = ViewTable::canonical(vec![30u32, 10, 20, 10]);
/// assert_eq!(table.len(), 3);
/// assert_eq!(table.id_of(&20), Some(1)); // sorted position
/// assert_eq!(*table.get(2), 30);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewTable<T> {
    /// Distinct entries in sorted order; the id of an entry is its index.
    entries: Vec<T>,
}

impl<T: Ord> ViewTable<T> {
    /// Builds the canonical table from candidate entries: duplicates
    /// collapse, entries sort, ids are sorted positions. The result is a
    /// pure function of the candidate *set* — independent of the
    /// enumeration order that produced it.
    ///
    /// # Panics
    ///
    /// Panics if there are more than `u32::MAX` distinct entries (far
    /// beyond any budget the multi-round pipeline admits).
    pub fn canonical<I: IntoIterator<Item = T>>(candidates: I) -> Self {
        let mut entries: Vec<T> = candidates.into_iter().collect();
        entries.sort_unstable();
        entries.dedup();
        assert!(
            u32::try_from(entries.len()).is_ok(),
            "view table exceeds u32 ids"
        );
        ViewTable { entries }
    }

    /// The id of an entry, if interned.
    pub fn id_of(&self, entry: &T) -> Option<u32> {
        self.entries.binary_search(entry).ok().map(|i| i as u32)
    }

    /// Resolves an id back to its entry.
    ///
    /// # Panics
    ///
    /// Panics on an id from a different table (out of range).
    pub fn get(&self, id: u32) -> &T {
        &self.entries[id as usize]
    }

    /// Number of interned entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in id order.
    pub fn entries(&self) -> &[T] {
        &self.entries
    }
}

impl<T: Ord> FromIterator<T> for ViewTable<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        ViewTable::canonical(iter)
    }
}

impl<T: fmt::Debug> fmt::Display for ViewTable<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ViewTable[{} views]", self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sorts_and_dedups() {
        let t = ViewTable::canonical(vec![5u8, 1, 5, 3, 1]);
        assert_eq!(t.entries(), &[1, 3, 5]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn ids_are_sorted_positions() {
        let t = ViewTable::canonical(vec!["b", "a", "c"]);
        assert_eq!(t.id_of(&"a"), Some(0));
        assert_eq!(t.id_of(&"b"), Some(1));
        assert_eq!(t.id_of(&"c"), Some(2));
        assert_eq!(t.id_of(&"z"), None);
        assert_eq!(*t.get(1), "b");
    }

    #[test]
    fn order_independent() {
        // The canonicity that the parallel merge relies on: any order of
        // the same candidate multiset gives the same table.
        let a = ViewTable::canonical(vec![3u32, 1, 2]);
        let b = ViewTable::canonical(vec![2u32, 2, 3, 1, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn interned_views_table() {
        let v1: InternedView = vec![(0, 0), (1, 2)];
        let v2: InternedView = vec![(0, 1)];
        let empty: InternedView = Vec::new();
        let t = ViewTable::canonical(vec![v1.clone(), v2.clone(), empty.clone(), v1.clone()]);
        assert_eq!(t.len(), 3);
        // The empty view sorts first.
        assert_eq!(t.id_of(&empty), Some(0));
        assert_eq!(t.get(t.id_of(&v1).unwrap()), &v1);
        assert_eq!(t.get(t.id_of(&v2).unwrap()), &v2);
    }

    #[test]
    fn empty_table() {
        let t: ViewTable<u32> = ViewTable::canonical(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.id_of(&0), None);
    }

    #[test]
    fn from_iterator_and_display() {
        let t: ViewTable<u8> = [2u8, 1].into_iter().collect();
        assert_eq!(t.entries(), &[1, 2]);
        assert_eq!(t.to_string(), "ViewTable[2 views]");
    }
}
