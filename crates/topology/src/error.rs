//! Error types for the topology substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the simplicial-complex machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// Two vertices of one simplex carried the same color (violates
    /// Def 4.1's "at most one view per color").
    DuplicateColor {
        /// The repeated color.
        color: usize,
    },
    /// An operation requiring a pure complex received an impure one.
    NotPure,
    /// An operation received an empty complex or empty facet list.
    EmptyComplex,
    /// A pseudosphere constructor received an empty view set for a color
    /// that was supposed to participate.
    EmptyViewSet {
        /// The color with no views.
        color: usize,
    },
    /// The requested construction exceeds the configured size budget.
    TooLarge {
        /// A human-readable description of the limit hit.
        what: &'static str,
        /// The estimated size.
        estimated: u128,
        /// The configured limit.
        limit: u128,
    },
    /// A multi-round construction was asked for zero rounds.
    ZeroRounds,
    /// A [`RunBudget`](ksa_graphs::budget::RunBudget)-guarded construction
    /// (the multi-round pipeline) would exceed its budget.
    Budget(ksa_graphs::budget::BudgetExceeded),
    /// An underlying graph-layer error.
    Graph(ksa_graphs::GraphError),
    /// The computation's [`CancelToken`](ksa_graphs::cancel::CancelToken)
    /// was cancelled before it finished.
    Cancelled,
    /// The computation ran past its
    /// [`Deadline`](ksa_graphs::cancel::Deadline).
    DeadlineExceeded,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateColor { color } => {
                write!(f, "two vertices share color {color} in one simplex")
            }
            TopologyError::NotPure => write!(f, "the complex is not pure"),
            TopologyError::EmptyComplex => write!(f, "the complex is empty"),
            TopologyError::EmptyViewSet { color } => {
                write!(f, "color {color} has an empty view set")
            }
            TopologyError::TooLarge {
                what,
                estimated,
                limit,
            } => write!(
                f,
                "{what} would have about {estimated} elements, above the limit {limit}"
            ),
            TopologyError::ZeroRounds => {
                write!(f, "the multi-round pipeline needs at least one round")
            }
            TopologyError::Budget(e) => write!(f, "budget error: {e}"),
            TopologyError::Graph(e) => write!(f, "graph error: {e}"),
            TopologyError::Cancelled => write!(f, "the operation was cancelled"),
            TopologyError::DeadlineExceeded => {
                write!(f, "the operation ran past its deadline")
            }
        }
    }
}

impl Error for TopologyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TopologyError::Graph(e) => Some(e),
            TopologyError::Budget(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ksa_graphs::GraphError> for TopologyError {
    fn from(e: ksa_graphs::GraphError) -> Self {
        TopologyError::Graph(e)
    }
}

impl From<ksa_graphs::budget::BudgetExceeded> for TopologyError {
    fn from(e: ksa_graphs::budget::BudgetExceeded) -> Self {
        TopologyError::Budget(e)
    }
}

impl From<ksa_graphs::cancel::Interrupted> for TopologyError {
    fn from(i: ksa_graphs::cancel::Interrupted) -> Self {
        match i {
            ksa_graphs::cancel::Interrupted::Cancelled => TopologyError::Cancelled,
            ksa_graphs::cancel::Interrupted::DeadlineExceeded => TopologyError::DeadlineExceeded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            TopologyError::DuplicateColor { color: 2 },
            TopologyError::NotPure,
            TopologyError::EmptyComplex,
            TopologyError::EmptyViewSet { color: 0 },
            TopologyError::TooLarge {
                what: "pseudosphere",
                estimated: 1 << 40,
                limit: 1 << 20,
            },
            TopologyError::ZeroRounds,
            TopologyError::Budget(
                ksa_graphs::budget::RunBudget::new(1)
                    .admit("rounds", 2)
                    .unwrap_err(),
            ),
            TopologyError::Graph(ksa_graphs::GraphError::EmptyProcessSet),
            TopologyError::Cancelled,
            TopologyError::DeadlineExceeded,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn interrupted_maps_to_dedicated_variants() {
        use ksa_graphs::cancel::Interrupted;
        assert_eq!(
            TopologyError::from(Interrupted::Cancelled),
            TopologyError::Cancelled
        );
        assert_eq!(
            TopologyError::from(Interrupted::DeadlineExceeded),
            TopologyError::DeadlineExceeded
        );
    }

    #[test]
    fn graph_error_has_source() {
        let e = TopologyError::from(ksa_graphs::GraphError::EmptyProcessSet);
        assert!(e.source().is_some());
    }

    #[test]
    fn budget_error_has_source() {
        let exceeded = ksa_graphs::budget::RunBudget::new(1)
            .admit("rounds", 2)
            .unwrap_err();
        let e = TopologyError::from(exceeded);
        assert!(e.source().is_some());
    }
}
