//! Reduced simplicial homology over Z/2.
//!
//! For a complex `C` with `c_k` simplexes in dimension `k` and boundary
//! operators `∂_k : C_k → C_{k−1}` (over GF(2), so no signs), the reduced
//! Betti numbers are
//!
//! ```text
//! b̃_k = dim ker ∂_k − rank ∂_{k+1}
//!      = (c_k − rank ∂_k) − rank ∂_{k+1}
//! ```
//!
//! with `∂_0` taken as the augmentation map `C_0 → Z/2` (rank 1 on any
//! non-void complex), which bakes the "reduced" part in: `b̃_0 =
//! #components − 1`.
//!
//! These are the numbers behind the crate's homological-connectivity proxy
//! (see [`connectivity`](crate::connectivity) and DESIGN.md §2.2).
//!
//! [`reduced_betti_numbers`] runs on the flat chain-complex engine
//! ([`crate::chain`], DESIGN.md §7); [`reduced_betti_numbers_seq`] is the
//! engine-free reference — self-contained face closure plus dense scalar
//! elimination — kept deliberately independent of the arenas and the
//! sparse kernel so the determinism proptests cross-validate two
//! different algorithms, not one algorithm against itself.

use crate::chain::ChainComplex;
use crate::complex::Complex;
use crate::gf2::Gf2Matrix;
use crate::simplex::{Simplex, View};
use std::collections::{BTreeSet, HashMap};

/// The reduced Z/2 Betti numbers `b̃_0, …, b̃_dim` of a complex.
///
/// Returns an empty vector for the void complex (which has `b̃_{−1} = 1`,
/// not represented here; use [`Complex::is_void`] to detect voidness).
///
/// Runs on the flat chain-complex engine ([`crate::chain`]): the face
/// closure is enumerated once into integer-id arenas and each boundary
/// operator is reduced sparsely. With the `parallel` feature the closure
/// enumeration fans out per facet and the boundary reductions fan out
/// per dimension as `ksa-exec` tasks; arenas are canonically sorted at
/// the merge, so every Betti number is bit-identical to
/// [`reduced_betti_numbers_seq`] at any `KSA_THREADS` (DESIGN.md §4, §7).
///
/// Callers that need both Betti numbers *and* connectivity should build
/// one [`ChainComplex`] and query it twice — the rank cache is shared.
///
/// # Examples
///
/// ```
/// use ksa_topology::complex::Complex;
/// use ksa_topology::simplex::{Simplex, Vertex};
/// use ksa_topology::homology::reduced_betti_numbers;
///
/// // The boundary of a tetrahedron is a 2-sphere: b̃ = [0, 0, 1].
/// let tet = Simplex::new((0..4).map(|c| Vertex::new(c, ())).collect()).unwrap();
/// let sphere = Complex::boundary_of(&tet);
/// assert_eq!(reduced_betti_numbers(&sphere), vec![0, 0, 1]);
/// ```
pub fn reduced_betti_numbers<V: View>(complex: &Complex<V>) -> Vec<usize> {
    ChainComplex::from_complex(complex).reduced_betti()
}

/// The sequential reference for [`reduced_betti_numbers`]: enumerates the
/// face closure, assembles every boundary operator and reduces it with
/// scalar Gaussian elimination ([`Gf2Matrix::rank_seq`]) on the calling
/// thread — no `ksa-exec` involvement under any feature set.
///
/// This is the oracle of the parallel-vs-sequential determinism proptests
/// (`tests/parallel_homology.rs`), which pin
/// `reduced_betti_numbers == reduced_betti_numbers_seq` at pool sizes
/// 1/2/8.
///
/// # Examples
///
/// ```
/// use ksa_topology::complex::Complex;
/// use ksa_topology::simplex::{Simplex, Vertex};
/// use ksa_topology::homology::{reduced_betti_numbers, reduced_betti_numbers_seq};
///
/// let tri = Simplex::new((0..3).map(|c| Vertex::new(c, ())).collect()).unwrap();
/// let circle = Complex::boundary_of(&tri);
/// assert_eq!(reduced_betti_numbers_seq(&circle), vec![0, 1]);
/// assert_eq!(reduced_betti_numbers(&circle), reduced_betti_numbers_seq(&circle));
/// ```
pub fn reduced_betti_numbers_seq<V: View>(complex: &Complex<V>) -> Vec<usize> {
    if complex.is_void() {
        return Vec::new();
    }
    let dim = complex.dim() as usize;

    // Self-contained scalar face-closure enumeration (the parallel path's
    // `Complex::all_simplexes` produces the same sorted vector).
    let mut closure: BTreeSet<Simplex<V>> = BTreeSet::new();
    for f in complex.facets() {
        for s in f.all_faces() {
            closure.insert(s);
        }
    }
    let all: Vec<Simplex<V>> = closure.into_iter().collect();
    let (by_dim, index) = bucket_and_index(&all, dim);

    let mut ranks = vec![0usize; dim + 2];
    ranks[0] = 1;
    for k in 1..=dim {
        let mut m = Gf2Matrix::zero(by_dim[k].len(), by_dim[k - 1].len());
        for (r, s) in by_dim[k].iter().enumerate() {
            for face in s.faces() {
                m.set(r, index[k - 1][&face]);
            }
        }
        ranks[k] = m.rank_seq();
    }

    (0..=dim)
        .map(|k| by_dim[k].len() - ranks[k] - ranks[k + 1])
        .collect()
}

/// Buckets the (sorted) face closure by dimension and builds the
/// simplex → row/column index maps the boundary operators use. The
/// assignment depends only on the canonical sort order of `all`.
#[allow(clippy::type_complexity)]
fn bucket_and_index<V: View>(
    all: &[Simplex<V>],
    dim: usize,
) -> (Vec<Vec<&Simplex<V>>>, Vec<HashMap<&Simplex<V>, usize>>) {
    let mut by_dim: Vec<Vec<&Simplex<V>>> = vec![Vec::new(); dim + 1];
    for s in all {
        by_dim[s.dim() as usize].push(s);
    }
    let mut index: Vec<HashMap<&Simplex<V>, usize>> = Vec::with_capacity(dim + 1);
    for bucket in &by_dim {
        let mut m = HashMap::with_capacity(bucket.len());
        for (i, s) in bucket.iter().enumerate() {
            m.insert(*s, i);
        }
        index.push(m);
    }
    (by_dim, index)
}

/// The number of path components of a non-void complex (computed by
/// union-find on the 1-skeleton — exact, independent of homology).
pub fn component_count<V: View>(complex: &Complex<V>) -> usize {
    let verts = complex.vertices();
    if verts.is_empty() {
        return 0;
    }
    let idx: HashMap<_, usize> = verts.iter().enumerate().map(|(i, v)| (v, i)).collect();
    let mut parent: Vec<usize> = (0..verts.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for f in complex.facets() {
        let vs = f.vertices();
        for w in vs.windows(2) {
            let a = find(&mut parent, idx[&w[0]]);
            let b = find(&mut parent, idx[&w[1]]);
            if a != b {
                parent[a] = b;
            }
        }
    }
    // Roots are exactly the self-parented entries — no need to collect,
    // sort and dedup the find() images.
    (0..parent.len()).filter(|&i| parent[i] == i).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::Vertex;

    fn simplex(colors: &[usize]) -> Simplex<u32> {
        Simplex::new(colors.iter().map(|&c| Vertex::new(c, 0u32)).collect()).unwrap()
    }

    #[test]
    fn point_is_acyclic() {
        let c = Complex::of_simplex(simplex(&[0]));
        assert_eq!(reduced_betti_numbers(&c), vec![0]);
        assert_eq!(component_count(&c), 1);
    }

    #[test]
    fn full_simplex_is_acyclic() {
        for d in 1..5 {
            let c = Complex::of_simplex(simplex(&(0..=d).collect::<Vec<_>>()));
            let betti = reduced_betti_numbers(&c);
            assert!(betti.iter().all(|&b| b == 0), "d = {d}: {betti:?}");
        }
    }

    #[test]
    fn two_points_have_reduced_b0_one() {
        let c = Complex::from_facets(vec![simplex(&[0]), simplex(&[1])]);
        assert_eq!(reduced_betti_numbers(&c), vec![1]);
        assert_eq!(component_count(&c), 2);
    }

    #[test]
    fn circle_has_b1_one() {
        // Triangle boundary: 3 edges.
        let tri = simplex(&[0, 1, 2]);
        let circle = Complex::boundary_of(&tri);
        assert_eq!(reduced_betti_numbers(&circle), vec![0, 1]);
        assert_eq!(component_count(&circle), 1);
    }

    #[test]
    fn sphere_betti() {
        let tet = simplex(&[0, 1, 2, 3]);
        let sphere = Complex::boundary_of(&tet);
        assert_eq!(reduced_betti_numbers(&sphere), vec![0, 0, 1]);
    }

    #[test]
    fn three_sphere_betti() {
        let s4 = simplex(&[0, 1, 2, 3, 4]);
        let sphere = Complex::boundary_of(&s4);
        assert_eq!(reduced_betti_numbers(&sphere), vec![0, 0, 0, 1]);
    }

    #[test]
    fn wedge_of_two_circles() {
        // Two triangle boundaries sharing the vertex 0.
        let c1 = Complex::boundary_of(&simplex(&[0, 1, 2]));
        let c2 = Complex::boundary_of(&simplex(&[0, 3, 4]));
        let wedge = c1.union(&c2);
        assert_eq!(reduced_betti_numbers(&wedge), vec![0, 2]);
    }

    #[test]
    fn disjoint_circles() {
        let c1 = Complex::boundary_of(&simplex(&[0, 1, 2]));
        let c2 = Complex::boundary_of(&simplex(&[3, 4, 5]));
        let both = c1.union(&c2);
        assert_eq!(reduced_betti_numbers(&both), vec![1, 2]);
        assert_eq!(component_count(&both), 2);
    }

    #[test]
    fn euler_characteristic_consistency() {
        // χ = 1 + Σ (−1)^k b̃_k for non-void complexes.
        let complexes = vec![
            Complex::of_simplex(simplex(&[0, 1, 2])),
            Complex::boundary_of(&simplex(&[0, 1, 2, 3])),
            Complex::from_facets(vec![simplex(&[0, 1]), simplex(&[2, 3])]),
        ];
        for c in complexes {
            let betti = reduced_betti_numbers(&c);
            let chi_from_betti: i64 = 1 + betti
                .iter()
                .enumerate()
                .map(|(k, &b)| if k % 2 == 0 { b as i64 } else { -(b as i64) })
                .sum::<i64>();
            assert_eq!(c.euler_characteristic(), chi_from_betti);
        }
    }

    #[test]
    fn void_complex_empty_betti() {
        assert_eq!(
            reduced_betti_numbers(&Complex::<u32>::void()),
            Vec::<usize>::new()
        );
        assert_eq!(component_count(&Complex::<u32>::void()), 0);
    }

    #[test]
    fn betti_with_distinct_views() {
        // Same colors, different views: a pseudosphere-like square
        // (0,a)-(1,a)-(0,b)-(1,b) cycle — b̃_1 = 1.
        let e = |c1: usize, v1: u32, c2: usize, v2: u32| {
            Simplex::new(vec![Vertex::new(c1, v1), Vertex::new(c2, v2)]).unwrap()
        };
        let square = Complex::from_facets(vec![
            e(0, 0, 1, 0),
            e(0, 0, 1, 1),
            e(0, 1, 1, 0),
            e(0, 1, 1, 1),
        ]);
        assert_eq!(reduced_betti_numbers(&square), vec![0, 1]);
    }
}
