//! Bit-packed linear algebra over GF(2).
//!
//! Boundary-operator ranks are all homology needs over Z/2, and Gaussian
//! elimination on `u64`-packed rows keeps the protocol-complex instances of
//! the experiments comfortably in budget. [`Gf2Matrix::rank`] runs a
//! "method of the four Russians" (M4RI) elimination: pivot columns are
//! processed in blocks of up to eight, the block's pivot rows are fully
//! inter-reduced, and every remaining row is cleared with a *single* XOR
//! of a precomputed combination table — one row sweep per block instead of
//! one per pivot, roughly an 8× reduction in row traffic on the dense
//! boundary matrices of the chain engine ([`crate::chain`]).
//!
//! With the `parallel` feature the hot loops run on the `ksa-exec`
//! work-stealing pool: row assembly ([`Gf2Matrix::from_row_fn`]) and the
//! per-block table sweep fan rows out across workers. Eliminated rows are
//! pairwise independent (each only ever XORs the shared, read-only table),
//! so any interleaving computes the same matrix — and the rank of a matrix
//! is algorithm-independent anyway, so the value is bit-identical to the
//! scalar reference [`Gf2Matrix::rank_seq`] at any `KSA_THREADS` (the
//! determinism contract, DESIGN.md §4).

/// Minimum number of `u64` words a parallel leaf should own; below this,
/// forking costs more than the XOR sweep it would offload.
#[cfg(feature = "parallel")]
const PAR_WORDS_GRAIN: usize = 2048;

/// Pivot columns handled per M4RI block: eight keeps a block inside one
/// `u64` word (64 is a multiple of 8) and caps the combination table at
/// `2^8` rows.
const M4RI_BLOCK: usize = 8;

/// A dense matrix over GF(2), rows bit-packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gf2Matrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl Gf2Matrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64).max(1);
        Gf2Matrix {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// Builds a matrix by filling each row independently: `row_cols(r)`
    /// returns the column indexes holding a 1 in row `r`.
    ///
    /// Rows are disjoint in memory, so with the `parallel` feature they
    /// are filled by the `ksa-exec` pool (this is how the homology
    /// pipeline assembles boundary operators); the result is identical to
    /// the sequential fill at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if any returned column index is out of bounds.
    ///
    /// # Examples
    ///
    /// ```
    /// use ksa_topology::gf2::Gf2Matrix;
    ///
    /// // The identity, one row at a time.
    /// let id = Gf2Matrix::from_row_fn(64, 64, |r| vec![r]);
    /// assert_eq!(id.rank(), 64);
    /// assert_eq!(id.rank(), id.rank_seq());
    /// ```
    pub fn from_row_fn<F>(rows: usize, cols: usize, row_cols: F) -> Self
    where
        F: Fn(usize) -> Vec<usize> + Sync,
    {
        let mut m = Gf2Matrix::zero(rows, cols);
        #[cfg(feature = "parallel")]
        if rows > 1 && rows * m.words_per_row >= PAR_WORDS_GRAIN {
            let wpr = m.words_per_row;
            fill_rows(&mut m.data, 0, wpr, cols, &row_cols);
            return m;
        }
        for r in 0..rows {
            for c in row_cols(r) {
                m.set(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets entry `(r, c)` to 1.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize) {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.words_per_row + c / 64] |= 1u64 << (c % 64);
    }

    /// Reads entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.rows && c < self.cols);
        (self.data[r * self.words_per_row + c / 64] >> (c % 64)) & 1 == 1
    }

    /// The rank over GF(2), via in-place M4RI elimination on a copy.
    ///
    /// With the `parallel` feature, matrices past the word-count grain fan
    /// each block's table sweep out on the `ksa-exec` pool; the value is
    /// always identical to [`Gf2Matrix::rank_seq`].
    pub fn rank(&self) -> usize {
        let _span = ksa_obs::span("gf2", || "rank_reduce").arg("rows", self.rows as u64);
        let mut m = self.clone();
        ksa_obs::count(ksa_obs::Counter::RanksComputed, 1);
        m.rank_destructive_m4ri()
    }

    /// The sequential reference rank: plain scalar Gaussian elimination,
    /// engine-free under every feature combination.
    ///
    /// This is the cross-check oracle for the parallel elimination (the
    /// determinism proptests assert `rank() == rank_seq()` at pool sizes
    /// 1/2/8).
    ///
    /// # Examples
    ///
    /// ```
    /// use ksa_topology::gf2::Gf2Matrix;
    ///
    /// let mut m = Gf2Matrix::zero(2, 3);
    /// m.set(0, 0);
    /// m.set(1, 0); // dependent rows
    /// assert_eq!(m.rank_seq(), 1);
    /// assert_eq!(m.rank(), m.rank_seq());
    /// ```
    pub fn rank_seq(&self) -> usize {
        let mut m = self.clone();
        ksa_obs::count(ksa_obs::Counter::RanksComputed, 1);
        m.rank_destructive_seq()
    }

    fn row(&self, r: usize) -> &[u64] {
        &self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    fn xor_row_into(&mut self, src: usize, dst: usize) {
        let (a, b) = if src < dst {
            let (lo, hi) = self.data.split_at_mut(dst * self.words_per_row);
            (
                &lo[src * self.words_per_row..(src + 1) * self.words_per_row],
                &mut hi[..self.words_per_row],
            )
        } else {
            let (lo, hi) = self.data.split_at_mut(src * self.words_per_row);
            (
                &hi[..self.words_per_row],
                &mut lo[dst * self.words_per_row..(dst + 1) * self.words_per_row],
            )
        };
        for (d, s) in b.iter_mut().zip(a) {
            *d ^= s;
        }
    }

    fn rank_destructive_seq(&mut self) -> usize {
        let mut rank = 0;
        let mut pivot_row = 0;
        for col in 0..self.cols {
            let word = col / 64;
            let bit = 1u64 << (col % 64);
            // Find a row at or below pivot_row with a 1 in this column.
            let mut found = None;
            for r in pivot_row..self.rows {
                if self.data[r * self.words_per_row + word] & bit != 0 {
                    found = Some(r);
                    break;
                }
            }
            let Some(r) = found else { continue };
            self.data.swap_chunks(pivot_row, r, self.words_per_row);
            // Eliminate this column from every other row below.
            for rr in pivot_row + 1..self.rows {
                if self.data[rr * self.words_per_row + word] & bit != 0 {
                    self.xor_row_into(pivot_row, rr);
                }
            }
            rank += 1;
            pivot_row += 1;
            if pivot_row == self.rows {
                break;
            }
        }
        rank
    }

    /// M4RI ("method of the four Russians") elimination, the engine behind
    /// [`Gf2Matrix::rank`].
    ///
    /// Columns are processed in blocks of [`M4RI_BLOCK`]. For each block:
    ///
    /// 1. **Pivot search** finds up to 8 pivot rows using *byte* probes
    ///    (a candidate's block byte reduced by the pivots found so far),
    ///    swaps them up, and fully inter-reduces them so each pivot row
    ///    carries exactly its own bit among the block's pivot columns.
    /// 2. **Table build** precomputes the `2^t` XOR combinations of the
    ///    `t` pivot rows in Gray-code order (one row XOR per entry).
    /// 3. **Sweep** clears every remaining row's block byte with a single
    ///    table XOR selected by the row's bits at the pivot columns.
    ///
    /// A row's residual byte always lies in the span of the pivot bytes
    /// (anything outside the span would itself have produced a pivot), so
    /// one table XOR zeroes the whole block — the invariant that lets the
    /// sweep touch each row once per block instead of once per pivot.
    ///
    /// With the `parallel` feature the sweep splits the row range across
    /// `ksa-exec` workers; swept rows only read the shared table, so the
    /// resulting matrix (and the rank) is independent of the interleaving.
    fn rank_destructive_m4ri(&mut self) -> usize {
        let wpr = self.words_per_row;
        let mut rank = 0;
        let mut pivot_row = 0;
        // Reused across blocks: the combination table (2^t rows) and the
        // bit positions (within the block) of the block's pivots.
        let mut table: Vec<u64> = Vec::new();
        let mut pivot_bits: Vec<u32> = Vec::new();
        let mut block_start = 0;
        while block_start < self.cols && pivot_row < self.rows {
            let block_w = (self.cols - block_start).min(M4RI_BLOCK) as u32;
            let word = block_start / 64;
            let shift = (block_start % 64) as u32;
            let byte_of = |data: &[u64], r: usize| -> u8 {
                ((data[r * wpr + word] >> shift) & ((1u64 << block_w) - 1)) as u8
            };

            // Phase 1 — pivot search by byte probes: a candidate's block
            // byte is reduced by the (inter-reduced) pivot rows' block
            // bytes — at most 8 byte XORs per probe, no row traffic until
            // a pivot is actually found. The invariant maintained below is
            // that each pivot row carries exactly its own bit among the
            // pivot columns found so far (it may carry non-pivot block
            // bits, which is why probes XOR the *full* pivot bytes).
            pivot_bits.clear();
            for bit in 0..block_w {
                let nb = pivot_bits.len();
                let mut found = None;
                for r in pivot_row + nb..self.rows {
                    let mut b = byte_of(&self.data, r);
                    for (i, &p) in pivot_bits.iter().enumerate() {
                        if b >> p & 1 == 1 {
                            b ^= byte_of(&self.data, pivot_row + i);
                        }
                    }
                    if b >> bit & 1 == 1 {
                        found = Some(r);
                        break;
                    }
                }
                let Some(r) = found else { continue };
                // Materialize the probe's byte reduction on the full row
                // (same decision sequence, now with row XORs), swap it
                // up, then clear this bit from the earlier pivot rows so
                // every pivot row owns exactly one pivot-column bit.
                for (i, &p) in pivot_bits.iter().enumerate() {
                    if byte_of(&self.data, r) >> p & 1 == 1 {
                        self.xor_row_into(pivot_row + i, r);
                    }
                }
                self.data.swap_chunks(pivot_row + nb, r, wpr);
                for i in 0..nb {
                    if byte_of(&self.data, pivot_row + i) >> bit & 1 == 1 {
                        self.xor_row_into(pivot_row + nb, pivot_row + i);
                    }
                }
                pivot_bits.push(bit);
            }
            let t = pivot_bits.len();
            if t == 0 {
                block_start += M4RI_BLOCK;
                continue;
            }

            // Phase 2 — Gray-code combination table: entry `g` is the XOR
            // of the pivot rows selected by `g`'s bits (bit i ↔ pivot i).
            // Every row below the pivot area has all-zero words left of
            // the current block (each earlier block cleared its byte for
            // every row then below, and pivot rows were such rows), so the
            // table and the sweep only carry words from `word` on — the
            // XOR traffic shrinks as the elimination advances.
            let tw = wpr - word;
            table.clear();
            table.resize((1usize << t) * tw, 0);
            for g in 1usize..1 << t {
                let changed = (g ^ (g >> 1)) ^ ((g - 1) ^ ((g - 1) >> 1));
                let gray = g ^ (g >> 1);
                let prev_gray = (g - 1) ^ ((g - 1) >> 1);
                let src = (pivot_row + changed.trailing_zeros() as usize) * wpr + word;
                let (dst_row, src_row) = (gray * tw, prev_gray * tw);
                for w in 0..tw {
                    table[dst_row + w] = table[src_row + w] ^ self.data[src + w];
                }
            }

            // Phase 3 — one sweep over the remaining rows: select the
            // combination by the row's pivot-column bits and XOR it in.
            let below = &mut self.data[(pivot_row + t) * wpr..];
            sweep_block(below, &table, &pivot_bits, wpr, word, shift);

            rank += t;
            pivot_row += t;
            block_start += M4RI_BLOCK;
        }
        rank
    }

    /// Hamming weight of a row (used in tests/diagnostics).
    pub fn row_weight(&self, r: usize) -> usize {
        self.row(r).iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Fills disjoint row blocks in parallel: `data` holds the rows starting
/// at global index `first_row`.
#[cfg(feature = "parallel")]
fn fill_rows<F>(data: &mut [u64], first_row: usize, wpr: usize, cols: usize, row_cols: &F)
where
    F: Fn(usize) -> Vec<usize> + Sync,
{
    let rows = data.len() / wpr;
    if rows > 1 && rows * wpr >= PAR_WORDS_GRAIN {
        let mid = rows / 2;
        let (lo, hi) = data.split_at_mut(mid * wpr);
        ksa_exec::join(
            || fill_rows(lo, first_row, wpr, cols, row_cols),
            || fill_rows(hi, first_row + mid, wpr, cols, row_cols),
        );
        return;
    }
    for r in 0..rows {
        for c in row_cols(first_row + r) {
            assert!(c < cols);
            data[r * wpr + c / 64] |= 1u64 << (c % 64);
        }
    }
}

/// One M4RI block sweep: for every row of `below`, select the combination
/// table entry by the row's bits at the block's pivot columns and XOR it
/// in, clearing the row's whole block byte. `table` rows are trimmed to
/// the words from `word` on (the earlier words of every row involved are
/// already zero). With the `parallel` feature the row range splits across
/// `ksa-exec` workers past the word grain; rows are disjoint and only
/// read the shared table, so any execution order yields the same matrix.
fn sweep_block(
    below: &mut [u64],
    table: &[u64],
    pivot_bits: &[u32],
    wpr: usize,
    word: usize,
    shift: u32,
) {
    let rows = below.len() / wpr;
    #[cfg(feature = "parallel")]
    if rows > 1 && rows * wpr >= PAR_WORDS_GRAIN {
        let mid = rows / 2;
        let (lo, hi) = below.split_at_mut(mid * wpr);
        ksa_exec::join(
            || sweep_block(lo, table, pivot_bits, wpr, word, shift),
            || sweep_block(hi, table, pivot_bits, wpr, word, shift),
        );
        return;
    }
    let tw = wpr - word;
    for r in 0..rows {
        let byte = below[r * wpr + word] >> shift;
        let mut idx = 0usize;
        for (i, &p) in pivot_bits.iter().enumerate() {
            idx |= ((byte >> p & 1) as usize) << i;
        }
        if idx != 0 {
            let entry = &table[idx * tw..(idx + 1) * tw];
            let row = &mut below[r * wpr + word..(r + 1) * wpr];
            for (d, s) in row.iter_mut().zip(entry) {
                *d ^= s;
            }
        }
    }
}

trait SwapChunks {
    fn swap_chunks(&mut self, a: usize, b: usize, chunk: usize);
}

impl SwapChunks for Vec<u64> {
    fn swap_chunks(&mut self, a: usize, b: usize, chunk: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (lo, hi) = self.split_at_mut(b * chunk);
        lo[a * chunk..(a + 1) * chunk].swap_with_slice(&mut hi[..chunk]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_matrix_rank() {
        assert_eq!(Gf2Matrix::zero(3, 5).rank(), 0);
        assert_eq!(Gf2Matrix::zero(0, 0).rank(), 0);
    }

    #[test]
    fn identity_rank() {
        let mut m = Gf2Matrix::zero(4, 4);
        for i in 0..4 {
            m.set(i, i);
        }
        assert_eq!(m.rank(), 4);
    }

    #[test]
    fn dependent_rows() {
        // r2 = r0 + r1.
        let mut m = Gf2Matrix::zero(3, 3);
        m.set(0, 0);
        m.set(0, 1);
        m.set(1, 1);
        m.set(1, 2);
        m.set(2, 0);
        m.set(2, 2);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Gf2Matrix::zero(2, 130); // crosses word boundaries
        m.set(1, 129);
        m.set(0, 64);
        assert!(m.get(1, 129));
        assert!(m.get(0, 64));
        assert!(!m.get(0, 63));
        assert_eq!(m.row_weight(1), 1);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn wide_matrix_rank() {
        // Two identical wide rows: rank 1.
        let mut m = Gf2Matrix::zero(2, 200);
        for c in (0..200).step_by(3) {
            m.set(0, c);
            m.set(1, c);
        }
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn rank_is_nondestructive() {
        let mut m = Gf2Matrix::zero(2, 2);
        m.set(0, 0);
        m.set(1, 1);
        let before = m.clone();
        assert_eq!(m.rank(), 2);
        assert_eq!(m, before);
    }

    #[test]
    fn boundary_of_triangle_rank() {
        // ∂1 of a triangle: 3 edges over 3 vertices; rank 2.
        let mut m = Gf2Matrix::zero(3, 3);
        // edge 01 -> v0+v1; edge 02 -> v0+v2; edge 12 -> v1+v2
        m.set(0, 0);
        m.set(0, 1);
        m.set(1, 0);
        m.set(1, 2);
        m.set(2, 1);
        m.set(2, 2);
        assert_eq!(m.rank(), 2);
    }

    /// A deterministic pseudo-random bit soup (xorshift), wide and tall
    /// enough to cross the parallel grain: the parallel elimination must
    /// agree with the scalar reference exactly.
    #[test]
    fn parallel_rank_matches_seq_reference_on_large_matrix() {
        let mix = |r: usize, c: usize| -> u64 {
            let mut x = (r as u64) << 32 | c as u64;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        };
        let m = Gf2Matrix::from_row_fn(300, 500, |r| {
            (0..500).filter(|&c| mix(r, c) % 3 == 0).collect()
        });
        assert_eq!(m.rank(), m.rank_seq());
    }

    #[test]
    fn from_row_fn_matches_set_loop() {
        let row_cols =
            |r: usize| -> Vec<usize> { (0..200).filter(|c| (r + c).is_multiple_of(7)).collect() };
        let a = Gf2Matrix::from_row_fn(150, 200, row_cols);
        let mut b = Gf2Matrix::zero(150, 200);
        for r in 0..150 {
            for c in row_cols(r) {
                b.set(r, c);
            }
        }
        assert_eq!(a, b);
    }
}
