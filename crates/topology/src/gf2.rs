//! Bit-packed linear algebra over GF(2).
//!
//! Boundary-operator ranks are all homology needs over Z/2, and Gaussian
//! elimination on `u64`-packed rows keeps the protocol-complex instances of
//! the experiments comfortably in budget.

/// A dense matrix over GF(2), rows bit-packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gf2Matrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl Gf2Matrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64).max(1);
        Gf2Matrix {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets entry `(r, c)` to 1.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize) {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.words_per_row + c / 64] |= 1u64 << (c % 64);
    }

    /// Reads entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.rows && c < self.cols);
        (self.data[r * self.words_per_row + c / 64] >> (c % 64)) & 1 == 1
    }

    /// The rank over GF(2), via in-place Gaussian elimination on a copy.
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        m.rank_destructive()
    }

    fn row(&self, r: usize) -> &[u64] {
        &self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    fn xor_row_into(&mut self, src: usize, dst: usize) {
        let (a, b) = if src < dst {
            let (lo, hi) = self.data.split_at_mut(dst * self.words_per_row);
            (
                &lo[src * self.words_per_row..(src + 1) * self.words_per_row],
                &mut hi[..self.words_per_row],
            )
        } else {
            let (lo, hi) = self.data.split_at_mut(src * self.words_per_row);
            (
                &hi[..self.words_per_row],
                &mut lo[dst * self.words_per_row..(dst + 1) * self.words_per_row],
            )
        };
        for (d, s) in b.iter_mut().zip(a) {
            *d ^= s;
        }
    }

    fn rank_destructive(&mut self) -> usize {
        let mut rank = 0;
        let mut pivot_row = 0;
        for col in 0..self.cols {
            let word = col / 64;
            let bit = 1u64 << (col % 64);
            // Find a row at or below pivot_row with a 1 in this column.
            let mut found = None;
            for r in pivot_row..self.rows {
                if self.data[r * self.words_per_row + word] & bit != 0 {
                    found = Some(r);
                    break;
                }
            }
            let Some(r) = found else { continue };
            self.data.swap_chunks(pivot_row, r, self.words_per_row);
            // Eliminate this column from every other row below.
            for rr in pivot_row + 1..self.rows {
                if self.data[rr * self.words_per_row + word] & bit != 0 {
                    self.xor_row_into(pivot_row, rr);
                }
            }
            rank += 1;
            pivot_row += 1;
            if pivot_row == self.rows {
                break;
            }
        }
        rank
    }

    /// Hamming weight of a row (used in tests/diagnostics).
    pub fn row_weight(&self, r: usize) -> usize {
        self.row(r).iter().map(|w| w.count_ones() as usize).sum()
    }
}

trait SwapChunks {
    fn swap_chunks(&mut self, a: usize, b: usize, chunk: usize);
}

impl SwapChunks for Vec<u64> {
    fn swap_chunks(&mut self, a: usize, b: usize, chunk: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (lo, hi) = self.split_at_mut(b * chunk);
        lo[a * chunk..(a + 1) * chunk].swap_with_slice(&mut hi[..chunk]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_matrix_rank() {
        assert_eq!(Gf2Matrix::zero(3, 5).rank(), 0);
        assert_eq!(Gf2Matrix::zero(0, 0).rank(), 0);
    }

    #[test]
    fn identity_rank() {
        let mut m = Gf2Matrix::zero(4, 4);
        for i in 0..4 {
            m.set(i, i);
        }
        assert_eq!(m.rank(), 4);
    }

    #[test]
    fn dependent_rows() {
        // r2 = r0 + r1.
        let mut m = Gf2Matrix::zero(3, 3);
        m.set(0, 0);
        m.set(0, 1);
        m.set(1, 1);
        m.set(1, 2);
        m.set(2, 0);
        m.set(2, 2);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Gf2Matrix::zero(2, 130); // crosses word boundaries
        m.set(1, 129);
        m.set(0, 64);
        assert!(m.get(1, 129));
        assert!(m.get(0, 64));
        assert!(!m.get(0, 63));
        assert_eq!(m.row_weight(1), 1);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn wide_matrix_rank() {
        // Two identical wide rows: rank 1.
        let mut m = Gf2Matrix::zero(2, 200);
        for c in (0..200).step_by(3) {
            m.set(0, c);
            m.set(1, c);
        }
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn rank_is_nondestructive() {
        let mut m = Gf2Matrix::zero(2, 2);
        m.set(0, 0);
        m.set(1, 1);
        let before = m.clone();
        assert_eq!(m.rank(), 2);
        assert_eq!(m, before);
    }

    #[test]
    fn boundary_of_triangle_rank() {
        // ∂1 of a triangle: 3 edges over 3 vertices; rank 2.
        let mut m = Gf2Matrix::zero(3, 3);
        // edge 01 -> v0+v1; edge 02 -> v0+v2; edge 12 -> v1+v2
        m.set(0, 0);
        m.set(0, 1);
        m.set(1, 0);
        m.set(1, 2);
        m.set(2, 1);
        m.set(2, 2);
        assert_eq!(m.rank(), 2);
    }
}
