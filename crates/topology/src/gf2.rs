//! Bit-packed linear algebra over GF(2).
//!
//! Boundary-operator ranks are all homology needs over Z/2, and Gaussian
//! elimination on `u64`-packed rows keeps the protocol-complex instances of
//! the experiments comfortably in budget.
//!
//! With the `parallel` feature the hot loops run on the `ksa-exec`
//! work-stealing pool: row assembly ([`Gf2Matrix::from_row_fn`]) and the
//! row-elimination sweep of each pivot step fan rows out across workers,
//! and the pivot search splits the candidate row range. Every parallel
//! step reproduces the sequential elimination trajectory exactly — the
//! pivot chosen is the *minimal* candidate row (left-preferring merge) and
//! eliminated rows never read each other — so ranks are bit-identical to
//! [`Gf2Matrix::rank_seq`] at any `KSA_THREADS` (the determinism contract,
//! DESIGN.md §4).

/// Minimum number of `u64` words a parallel leaf should own; below this,
/// forking costs more than the XOR sweep it would offload.
#[cfg(feature = "parallel")]
const PAR_WORDS_GRAIN: usize = 2048;

/// Minimum candidate rows before the pivot search is worth splitting
/// (one word probe per row — only long columns pay for a fork).
#[cfg(feature = "parallel")]
const PAR_PIVOT_ROWS_GRAIN: usize = 4096;

/// A dense matrix over GF(2), rows bit-packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gf2Matrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl Gf2Matrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64).max(1);
        Gf2Matrix {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// Builds a matrix by filling each row independently: `row_cols(r)`
    /// returns the column indexes holding a 1 in row `r`.
    ///
    /// Rows are disjoint in memory, so with the `parallel` feature they
    /// are filled by the `ksa-exec` pool (this is how the homology
    /// pipeline assembles boundary operators); the result is identical to
    /// the sequential fill at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if any returned column index is out of bounds.
    ///
    /// # Examples
    ///
    /// ```
    /// use ksa_topology::gf2::Gf2Matrix;
    ///
    /// // The identity, one row at a time.
    /// let id = Gf2Matrix::from_row_fn(64, 64, |r| vec![r]);
    /// assert_eq!(id.rank(), 64);
    /// assert_eq!(id.rank(), id.rank_seq());
    /// ```
    pub fn from_row_fn<F>(rows: usize, cols: usize, row_cols: F) -> Self
    where
        F: Fn(usize) -> Vec<usize> + Sync,
    {
        let mut m = Gf2Matrix::zero(rows, cols);
        #[cfg(feature = "parallel")]
        if rows > 1 && rows * m.words_per_row >= PAR_WORDS_GRAIN {
            let wpr = m.words_per_row;
            fill_rows(&mut m.data, 0, wpr, cols, &row_cols);
            return m;
        }
        for r in 0..rows {
            for c in row_cols(r) {
                m.set(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets entry `(r, c)` to 1.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize) {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.words_per_row + c / 64] |= 1u64 << (c % 64);
    }

    /// Reads entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.rows && c < self.cols);
        (self.data[r * self.words_per_row + c / 64] >> (c % 64)) & 1 == 1
    }

    /// The rank over GF(2), via in-place Gaussian elimination on a copy.
    ///
    /// With the `parallel` feature, matrices past the word-count grain run
    /// the blocked parallel elimination; the value is always identical to
    /// [`Gf2Matrix::rank_seq`].
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        #[cfg(feature = "parallel")]
        if m.rows > 1 && m.rows * m.words_per_row >= PAR_WORDS_GRAIN {
            return m.rank_destructive_par();
        }
        m.rank_destructive_seq()
    }

    /// The sequential reference rank: plain scalar Gaussian elimination,
    /// engine-free under every feature combination.
    ///
    /// This is the cross-check oracle for the parallel elimination (the
    /// determinism proptests assert `rank() == rank_seq()` at pool sizes
    /// 1/2/8).
    ///
    /// # Examples
    ///
    /// ```
    /// use ksa_topology::gf2::Gf2Matrix;
    ///
    /// let mut m = Gf2Matrix::zero(2, 3);
    /// m.set(0, 0);
    /// m.set(1, 0); // dependent rows
    /// assert_eq!(m.rank_seq(), 1);
    /// assert_eq!(m.rank(), m.rank_seq());
    /// ```
    pub fn rank_seq(&self) -> usize {
        let mut m = self.clone();
        m.rank_destructive_seq()
    }

    fn row(&self, r: usize) -> &[u64] {
        &self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    fn xor_row_into(&mut self, src: usize, dst: usize) {
        let (a, b) = if src < dst {
            let (lo, hi) = self.data.split_at_mut(dst * self.words_per_row);
            (
                &lo[src * self.words_per_row..(src + 1) * self.words_per_row],
                &mut hi[..self.words_per_row],
            )
        } else {
            let (lo, hi) = self.data.split_at_mut(src * self.words_per_row);
            (
                &hi[..self.words_per_row],
                &mut lo[dst * self.words_per_row..(dst + 1) * self.words_per_row],
            )
        };
        for (d, s) in b.iter_mut().zip(a) {
            *d ^= s;
        }
    }

    fn rank_destructive_seq(&mut self) -> usize {
        let mut rank = 0;
        let mut pivot_row = 0;
        for col in 0..self.cols {
            let word = col / 64;
            let bit = 1u64 << (col % 64);
            // Find a row at or below pivot_row with a 1 in this column.
            let mut found = None;
            for r in pivot_row..self.rows {
                if self.data[r * self.words_per_row + word] & bit != 0 {
                    found = Some(r);
                    break;
                }
            }
            let Some(r) = found else { continue };
            self.data.swap_chunks(pivot_row, r, self.words_per_row);
            // Eliminate this column from every other row below.
            for rr in pivot_row + 1..self.rows {
                if self.data[rr * self.words_per_row + word] & bit != 0 {
                    self.xor_row_into(pivot_row, rr);
                }
            }
            rank += 1;
            pivot_row += 1;
            if pivot_row == self.rows {
                break;
            }
        }
        rank
    }

    /// Blocked parallel elimination: same column loop as the sequential
    /// path, but each pivot step splits its pivot search and its
    /// row-elimination sweep across `ksa-exec` workers. The left-
    /// preferring pivot merge picks the *minimal* candidate row — exactly
    /// the row the sequential scan finds — and eliminated rows are
    /// pairwise independent, so the elimination trajectory (and hence the
    /// rank) matches [`Gf2Matrix::rank_seq`] bit for bit.
    #[cfg(feature = "parallel")]
    fn rank_destructive_par(&mut self) -> usize {
        let wpr = self.words_per_row;
        let mut rank = 0;
        let mut pivot_row = 0;
        for col in 0..self.cols {
            let word = col / 64;
            let bit = 1u64 << (col % 64);
            let Some(r) = find_pivot(&self.data, wpr, word, bit, pivot_row, self.rows) else {
                continue;
            };
            self.data.swap_chunks(pivot_row, r, wpr);
            let (upper, below) = self.data.split_at_mut((pivot_row + 1) * wpr);
            let pivot = &upper[pivot_row * wpr..];
            eliminate_below(pivot, below, wpr, word, bit);
            rank += 1;
            pivot_row += 1;
            if pivot_row == self.rows {
                break;
            }
        }
        rank
    }

    /// Hamming weight of a row (used in tests/diagnostics).
    pub fn row_weight(&self, r: usize) -> usize {
        self.row(r).iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Fills disjoint row blocks in parallel: `data` holds the rows starting
/// at global index `first_row`.
#[cfg(feature = "parallel")]
fn fill_rows<F>(data: &mut [u64], first_row: usize, wpr: usize, cols: usize, row_cols: &F)
where
    F: Fn(usize) -> Vec<usize> + Sync,
{
    let rows = data.len() / wpr;
    if rows > 1 && rows * wpr >= PAR_WORDS_GRAIN {
        let mid = rows / 2;
        let (lo, hi) = data.split_at_mut(mid * wpr);
        ksa_exec::join(
            || fill_rows(lo, first_row, wpr, cols, row_cols),
            || fill_rows(hi, first_row + mid, wpr, cols, row_cols),
        );
        return;
    }
    for r in 0..rows {
        for c in row_cols(first_row + r) {
            assert!(c < cols);
            data[r * wpr + c / 64] |= 1u64 << (c % 64);
        }
    }
}

/// The minimal row index in `[lo, hi)` whose `word`/`bit` is set —
/// identical to the sequential top-down scan because the recursive merge
/// always prefers the left (smaller-index) half.
#[cfg(feature = "parallel")]
fn find_pivot(
    data: &[u64],
    wpr: usize,
    word: usize,
    bit: u64,
    lo: usize,
    hi: usize,
) -> Option<usize> {
    if hi - lo <= PAR_PIVOT_ROWS_GRAIN {
        return (lo..hi).find(|&r| data[r * wpr + word] & bit != 0);
    }
    let mid = lo + (hi - lo) / 2;
    let (left, right) = ksa_exec::join(
        || find_pivot(data, wpr, word, bit, lo, mid),
        || find_pivot(data, wpr, word, bit, mid, hi),
    );
    left.or(right)
}

/// XORs `pivot` into every row of `below` whose `word`/`bit` is set,
/// splitting the row block across workers. Rows are disjoint and never
/// read each other, so any execution order yields the sequential result.
#[cfg(feature = "parallel")]
fn eliminate_below(pivot: &[u64], below: &mut [u64], wpr: usize, word: usize, bit: u64) {
    let rows = below.len() / wpr;
    if rows > 1 && rows * wpr >= PAR_WORDS_GRAIN {
        let mid = rows / 2;
        let (lo, hi) = below.split_at_mut(mid * wpr);
        ksa_exec::join(
            || eliminate_below(pivot, lo, wpr, word, bit),
            || eliminate_below(pivot, hi, wpr, word, bit),
        );
        return;
    }
    for r in 0..rows {
        let row = &mut below[r * wpr..(r + 1) * wpr];
        if row[word] & bit != 0 {
            for (d, s) in row.iter_mut().zip(pivot) {
                *d ^= s;
            }
        }
    }
}

trait SwapChunks {
    fn swap_chunks(&mut self, a: usize, b: usize, chunk: usize);
}

impl SwapChunks for Vec<u64> {
    fn swap_chunks(&mut self, a: usize, b: usize, chunk: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (lo, hi) = self.split_at_mut(b * chunk);
        lo[a * chunk..(a + 1) * chunk].swap_with_slice(&mut hi[..chunk]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_matrix_rank() {
        assert_eq!(Gf2Matrix::zero(3, 5).rank(), 0);
        assert_eq!(Gf2Matrix::zero(0, 0).rank(), 0);
    }

    #[test]
    fn identity_rank() {
        let mut m = Gf2Matrix::zero(4, 4);
        for i in 0..4 {
            m.set(i, i);
        }
        assert_eq!(m.rank(), 4);
    }

    #[test]
    fn dependent_rows() {
        // r2 = r0 + r1.
        let mut m = Gf2Matrix::zero(3, 3);
        m.set(0, 0);
        m.set(0, 1);
        m.set(1, 1);
        m.set(1, 2);
        m.set(2, 0);
        m.set(2, 2);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Gf2Matrix::zero(2, 130); // crosses word boundaries
        m.set(1, 129);
        m.set(0, 64);
        assert!(m.get(1, 129));
        assert!(m.get(0, 64));
        assert!(!m.get(0, 63));
        assert_eq!(m.row_weight(1), 1);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn wide_matrix_rank() {
        // Two identical wide rows: rank 1.
        let mut m = Gf2Matrix::zero(2, 200);
        for c in (0..200).step_by(3) {
            m.set(0, c);
            m.set(1, c);
        }
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn rank_is_nondestructive() {
        let mut m = Gf2Matrix::zero(2, 2);
        m.set(0, 0);
        m.set(1, 1);
        let before = m.clone();
        assert_eq!(m.rank(), 2);
        assert_eq!(m, before);
    }

    #[test]
    fn boundary_of_triangle_rank() {
        // ∂1 of a triangle: 3 edges over 3 vertices; rank 2.
        let mut m = Gf2Matrix::zero(3, 3);
        // edge 01 -> v0+v1; edge 02 -> v0+v2; edge 12 -> v1+v2
        m.set(0, 0);
        m.set(0, 1);
        m.set(1, 0);
        m.set(1, 2);
        m.set(2, 1);
        m.set(2, 2);
        assert_eq!(m.rank(), 2);
    }

    /// A deterministic pseudo-random bit soup (xorshift), wide and tall
    /// enough to cross the parallel grain: the parallel elimination must
    /// agree with the scalar reference exactly.
    #[test]
    fn parallel_rank_matches_seq_reference_on_large_matrix() {
        let mix = |r: usize, c: usize| -> u64 {
            let mut x = (r as u64) << 32 | c as u64;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        };
        let m = Gf2Matrix::from_row_fn(300, 500, |r| {
            (0..500).filter(|&c| mix(r, c) % 3 == 0).collect()
        });
        assert_eq!(m.rank(), m.rank_seq());
    }

    #[test]
    fn from_row_fn_matches_set_loop() {
        let row_cols =
            |r: usize| -> Vec<usize> { (0..200).filter(|c| (r + c).is_multiple_of(7)).collect() };
        let a = Gf2Matrix::from_row_fn(150, 200, row_cols);
        let mut b = Gf2Matrix::zero(150, 200);
        for r in 0..150 {
            for c in row_cols(r) {
                b.set(r, c);
            }
        }
        assert_eq!(a, b);
    }
}
