//! Colored simplicial complexes (Def 4.2).
//!
//! A complex is a set of simplexes closed under taking faces. We store only
//! the **facets** (inclusion-maximal simplexes); the face closure is
//! materialized on demand (for homology) rather than kept resident.
//!
//! With the `parallel` feature, the enumeration-heavy operations — face
//! closure ([`Complex::all_simplexes`]), skeleta ([`Complex::skeleton`])
//! and facet-pair intersections ([`Complex::intersection`]) — fan their
//! per-facet work out on the `ksa-exec` pool once past a small grain.
//! Results are canonical sorted sets either way, so the parallel and
//! sequential paths are interchangeable bit for bit (DESIGN.md §4).

use crate::error::TopologyError;
use crate::simplex::{Simplex, Vertex, View};
use std::collections::BTreeSet;
use std::fmt;

#[cfg(feature = "parallel")]
use ksa_exec::prelude::*;

/// Facet count below which the parallel paths stay inline: per-facet work
/// is exponential in dimension but tiny complexes dominate the call
/// profile, and forking them costs more than enumerating them.
#[cfg(feature = "parallel")]
const PAR_FACET_GRAIN: usize = 16;

/// A simplicial complex, stored by facets.
///
/// The empty complex (no simplexes at all) is allowed and has dimension
/// `−1` by convention; use [`Complex::is_void`] to detect it.
///
/// # Examples
///
/// ```
/// use ksa_topology::complex::Complex;
/// use ksa_topology::simplex::{Simplex, Vertex};
///
/// let tri = Simplex::new(vec![
///     Vertex::new(0, 'a'), Vertex::new(1, 'b'), Vertex::new(2, 'c'),
/// ]).unwrap();
/// let c = Complex::from_facets(vec![tri]);
/// assert_eq!(c.dim(), 2);
/// assert!(c.is_pure());
/// assert_eq!(c.all_simplexes().len(), 7); // 3 vertices + 3 edges + 1 triangle
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Complex<V> {
    /// Inclusion-maximal simplexes, none empty.
    facets: BTreeSet<Simplex<V>>,
}

impl<V: View> Complex<V> {
    /// The void complex (no simplexes).
    pub fn void() -> Self {
        Complex {
            facets: BTreeSet::new(),
        }
    }

    /// Builds a complex from candidate facets, dropping empty simplexes and
    /// simplexes dominated by others (so `facets()` is truly the facet
    /// set).
    pub fn from_facets<I: IntoIterator<Item = Simplex<V>>>(candidates: I) -> Self {
        let mut uniq: BTreeSet<Simplex<V>> =
            candidates.into_iter().filter(|s| !s.is_empty()).collect();
        // Remove dominated simplexes. Sorting by length descending lets us
        // keep only maximal ones with a quadratic scan over the (usually
        // short) kept list.
        let mut by_len: Vec<Simplex<V>> = uniq.iter().cloned().collect();
        by_len.sort_by_key(|s| std::cmp::Reverse(s.len()));
        let mut kept: Vec<Simplex<V>> = Vec::new();
        'outer: for s in by_len {
            for k in &kept {
                if k.contains(&s) {
                    continue 'outer;
                }
            }
            kept.push(s);
        }
        uniq = kept.into_iter().collect();
        Complex { facets: uniq }
    }

    /// Iterates over the facets (inclusion-maximal simplexes).
    pub fn facets(&self) -> impl Iterator<Item = &Simplex<V>> {
        self.facets.iter()
    }

    /// Number of facets.
    pub fn facet_count(&self) -> usize {
        self.facets.len()
    }

    /// Whether the complex has no simplexes at all.
    pub fn is_void(&self) -> bool {
        self.facets.is_empty()
    }

    /// The dimension: max facet dimension, `−1` when void.
    pub fn dim(&self) -> isize {
        self.facets.iter().map(|s| s.dim()).max().unwrap_or(-1)
    }

    /// Whether all facets share the maximal dimension (Def 4.2's purity).
    /// The void complex counts as pure.
    pub fn is_pure(&self) -> bool {
        let d = self.dim();
        self.facets.iter().all(|s| s.dim() == d)
    }

    /// Whether `s` is a simplex of the complex (a face of some facet).
    pub fn contains_simplex(&self, s: &Simplex<V>) -> bool {
        if s.is_empty() {
            return !self.is_void();
        }
        self.facets.iter().any(|f| f.contains(s))
    }

    /// Whether a vertex belongs to the complex.
    pub fn contains_vertex(&self, v: &Vertex<V>) -> bool {
        self.facets.iter().any(|f| f.has_vertex(v))
    }

    /// All distinct vertices of the complex, sorted.
    pub fn vertices(&self) -> Vec<Vertex<V>> {
        let set: BTreeSet<Vertex<V>> = self
            .facets
            .iter()
            .flat_map(|f| f.vertices().iter().cloned())
            .collect();
        set.into_iter().collect()
    }

    /// All non-empty simplexes of the complex (the face closure of the
    /// facets), sorted. Exponential in the facet dimensions — this is the
    /// input to homology, not something to keep around.
    ///
    /// Past a small facet-count grain the per-facet subset enumerations
    /// run as parallel tasks; the merged result is the same sorted set.
    pub fn all_simplexes(&self) -> Vec<Simplex<V>> {
        #[cfg(feature = "parallel")]
        if self.facets.len() >= PAR_FACET_GRAIN {
            let per_facet: Vec<BTreeSet<Simplex<V>>> = self
                .facets
                .iter()
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|f| f.all_faces().into_iter().collect())
                .collect();
            let mut set: BTreeSet<Simplex<V>> = BTreeSet::new();
            for s in per_facet {
                set.extend(s);
            }
            return set.into_iter().collect();
        }
        let mut set: BTreeSet<Simplex<V>> = BTreeSet::new();
        for f in &self.facets {
            for sub in f.all_faces() {
                set.insert(sub);
            }
        }
        set.into_iter().collect()
    }

    /// The `k`-skeleton: all simplexes of dimension ≤ `k`.
    ///
    /// Combination enumeration is per facet and order-independent, so
    /// large complexes fan it out on the `ksa-exec` pool.
    pub fn skeleton(&self, k: isize) -> Complex<V> {
        if k < 0 {
            return Complex::void();
        }
        #[cfg(feature = "parallel")]
        if self.facets.len() >= PAR_FACET_GRAIN {
            let groups: Vec<Vec<Simplex<V>>> = self
                .facets
                .iter()
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|f| skeleton_candidates(f, k))
                .collect();
            return Complex::from_facets(groups.into_iter().flatten());
        }
        Complex::from_facets(self.facets.iter().flat_map(|f| skeleton_candidates(f, k)))
    }

    /// The boundary complex of a single simplex: all proper faces.
    /// (`skel^{d−1} φ` in §4.4.)
    pub fn boundary_of(s: &Simplex<V>) -> Complex<V> {
        Complex::from_facets(s.faces())
    }

    /// The complex induced by one simplex and all its faces.
    pub fn of_simplex(s: Simplex<V>) -> Complex<V> {
        Complex::from_facets(std::iter::once(s))
    }

    /// Union of two complexes.
    pub fn union(&self, other: &Complex<V>) -> Complex<V> {
        Complex::from_facets(self.facets.iter().chain(other.facets.iter()).cloned())
    }

    /// Intersection of two complexes: the simplexes lying in both. Facets
    /// of the intersection arise as maximal pairwise facet intersections.
    ///
    /// The pairwise product is quadratic in the facet counts; big pairs
    /// split the rows of the product across `ksa-exec` workers.
    pub fn intersection(&self, other: &Complex<V>) -> Complex<V> {
        #[cfg(feature = "parallel")]
        if self.facets.len() * other.facets.len() >= PAR_FACET_GRAIN * PAR_FACET_GRAIN {
            let rows: Vec<Vec<Simplex<V>>> = self
                .facets
                .iter()
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|a| {
                    other
                        .facets
                        .iter()
                        .filter_map(|b| {
                            let i = a.intersection(b);
                            (!i.is_empty()).then_some(i)
                        })
                        .collect()
                })
                .collect();
            return Complex::from_facets(rows.into_iter().flatten());
        }
        let mut cands = Vec::new();
        for a in &self.facets {
            for b in &other.facets {
                let i = a.intersection(b);
                if !i.is_empty() {
                    cands.push(i);
                }
            }
        }
        Complex::from_facets(cands)
    }

    /// Flattens the complex into its chain engine
    /// ([`crate::chain::ChainComplex`]): the face closure enumerated once
    /// into integer-id arenas, ready for (repeated, cached) homology and
    /// connectivity queries. Prefer this over separate
    /// [`reduced_betti_numbers`](crate::homology::reduced_betti_numbers)
    /// / [`connectivity`](crate::connectivity::connectivity) calls when
    /// you need more than one verdict for the same complex.
    pub fn chain(&self) -> crate::chain::ChainComplex {
        crate::chain::ChainComplex::from_complex(self)
    }

    /// The Euler characteristic `Σ (−1)^dim` over non-empty simplexes.
    pub fn euler_characteristic(&self) -> i64 {
        let mut chi = 0i64;
        for s in self.all_simplexes() {
            if s.dim() % 2 == 0 {
                chi += 1;
            } else {
                chi -= 1;
            }
        }
        chi
    }

    /// Requires the complex to be pure, as several paper constructions do.
    ///
    /// # Errors
    ///
    /// [`TopologyError::NotPure`] when facets have mixed dimensions;
    /// [`TopologyError::EmptyComplex`] when void.
    pub fn require_pure(&self) -> Result<(), TopologyError> {
        if self.is_void() {
            return Err(TopologyError::EmptyComplex);
        }
        if !self.is_pure() {
            return Err(TopologyError::NotPure);
        }
        Ok(())
    }
}

/// The facet candidates one facet contributes to the `k`-skeleton: the
/// facet itself when small enough, else all its `(k+1)`-vertex subsets.
/// Shared by the sequential and parallel skeleton paths.
fn skeleton_candidates<V: View>(f: &Simplex<V>, k: isize) -> Vec<Simplex<V>> {
    if f.dim() <= k {
        return vec![f.clone()];
    }
    let verts = f.vertices();
    let m = verts.len();
    let take = (k + 1) as usize;
    let mut out = Vec::new();
    // Enumerate combinations via bitmask (m ≤ 64 in practice).
    for mask in 1u64..(1u64 << m) {
        if mask.count_ones() as usize == take {
            let vs: Vec<Vertex<V>> = verts
                .iter()
                .enumerate()
                .filter(|&(i, _)| (mask >> i) & 1 == 1)
                .map(|(_, v)| v.clone())
                .collect();
            out.push(Simplex::new(vs).expect("colors distinct in a face"));
        }
    }
    out
}

impl<V: View> fmt::Debug for Complex<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Complex[{} facets, dim {}]",
            self.facets.len(),
            self.dim()
        )
    }
}

impl<V: View> FromIterator<Simplex<V>> for Complex<V> {
    fn from_iter<I: IntoIterator<Item = Simplex<V>>>(iter: I) -> Self {
        Complex::from_facets(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(pairs: &[(usize, u32)]) -> Simplex<u32> {
        Simplex::new(pairs.iter().map(|&(c, v)| Vertex::new(c, v)).collect()).unwrap()
    }

    #[test]
    fn void_complex() {
        let c = Complex::<u32>::void();
        assert!(c.is_void());
        assert_eq!(c.dim(), -1);
        assert!(c.is_pure());
        assert_eq!(c.euler_characteristic(), 0);
        assert!(c.require_pure().is_err());
    }

    #[test]
    fn from_facets_removes_dominated() {
        let tri = s(&[(0, 1), (1, 1), (2, 1)]);
        let edge = s(&[(0, 1), (1, 1)]); // face of tri
        let stray = s(&[(3, 9)]);
        let c = Complex::from_facets(vec![edge.clone(), tri.clone(), stray.clone()]);
        assert_eq!(c.facet_count(), 2);
        assert!(c.facets().any(|f| f == &tri));
        assert!(c.facets().any(|f| f == &stray));
        assert!(c.contains_simplex(&edge));
        assert!(!c.is_pure());
    }

    #[test]
    fn containment_queries() {
        let tri = s(&[(0, 1), (1, 1), (2, 1)]);
        let c = Complex::of_simplex(tri.clone());
        assert!(c.contains_simplex(&s(&[(0, 1), (2, 1)])));
        assert!(!c.contains_simplex(&s(&[(0, 2)])));
        assert!(c.contains_vertex(&Vertex::new(1, 1)));
        assert!(!c.contains_vertex(&Vertex::new(1, 2)));
        assert!(c.contains_simplex(&Simplex::empty()));
        assert!(!Complex::<u32>::void().contains_simplex(&Simplex::empty()));
    }

    #[test]
    fn all_simplexes_of_triangle() {
        let c = Complex::of_simplex(s(&[(0, 1), (1, 1), (2, 1)]));
        assert_eq!(c.all_simplexes().len(), 7);
        assert_eq!(c.vertices().len(), 3);
        assert_eq!(c.euler_characteristic(), 1); // a disk
    }

    #[test]
    fn skeleton_of_triangle() {
        let c = Complex::of_simplex(s(&[(0, 1), (1, 1), (2, 1)]));
        let sk1 = c.skeleton(1);
        assert_eq!(sk1.dim(), 1);
        assert_eq!(sk1.facet_count(), 3); // the three edges
        assert_eq!(sk1.euler_characteristic(), 0); // a circle
        let sk0 = c.skeleton(0);
        assert_eq!(sk0.facet_count(), 3);
        assert!(c.skeleton(-1).is_void());
        // Skeleton above the dimension is the complex itself.
        assert_eq!(c.skeleton(5), c);
    }

    #[test]
    fn boundary_of_simplex() {
        let tri = s(&[(0, 1), (1, 1), (2, 1)]);
        let b = Complex::boundary_of(&tri);
        assert_eq!(b.dim(), 1);
        assert_eq!(b.facet_count(), 3);
        assert!(!b.contains_simplex(&tri));
    }

    #[test]
    fn union_and_intersection() {
        // Two triangles sharing the edge {(0,1),(1,1)}.
        let t1 = s(&[(0, 1), (1, 1), (2, 1)]);
        let t2 = s(&[(0, 1), (1, 1), (3, 1)]);
        let c1 = Complex::of_simplex(t1.clone());
        let c2 = Complex::of_simplex(t2.clone());
        let u = c1.union(&c2);
        assert_eq!(u.facet_count(), 2);
        let i = c1.intersection(&c2);
        assert_eq!(i.facet_count(), 1);
        assert_eq!(i.dim(), 1);
        assert!(i.contains_simplex(&s(&[(0, 1), (1, 1)])));
        // Disjoint complexes intersect in the void complex.
        let c3 = Complex::of_simplex(s(&[(7, 7)]));
        assert!(c1.intersection(&c3).is_void());
    }

    #[test]
    fn euler_characteristic_of_sphere() {
        // Boundary of a tetrahedron = S², χ = 2.
        let tet = s(&[(0, 1), (1, 1), (2, 1), (3, 1)]);
        let sphere = Complex::boundary_of(&tet);
        assert_eq!(sphere.euler_characteristic(), 2);
        assert!(sphere.is_pure());
        assert_eq!(sphere.dim(), 2);
    }

    #[test]
    fn purity_check() {
        let pure = Complex::from_facets(vec![s(&[(0, 1), (1, 1)]), s(&[(2, 1), (3, 1)])]);
        assert!(pure.require_pure().is_ok());
        let impure = Complex::from_facets(vec![s(&[(0, 1), (1, 1)]), s(&[(4, 1)])]);
        assert_eq!(impure.require_pure(), Err(TopologyError::NotPure));
    }

    #[test]
    fn from_iterator() {
        let c: Complex<u32> = vec![s(&[(0, 1)]), s(&[(1, 2)])].into_iter().collect();
        assert_eq!(c.facet_count(), 2);
    }
}
