//! Shellability (§4.4, Figure 4).
//!
//! A pure `d`-complex is **shellable** when its facets can be ordered
//! `φ_1, …, φ_r` so that each `(⋃_{i≤t} φ_i) ∩ φ_{t+1}` is a pure
//! `(d−1)`-dimensional subcomplex of `∂φ_{t+1}`. Shellable complexes are
//! the scaffolding of the paper's main technical Lemma 4.17 (the input
//! pseudosphere is shelled facet by facet, and the interpreted images are
//! glued with Cor 4.16).
//!
//! This module verifies candidate shelling orders exactly, and decides
//! shellability by memoized search over facet subsets (exact, exponential:
//! fine for the ≤ 20-facet complexes in the paper's figures and our
//! experiments).
//!
//! # The racing portfolio (DESIGN.md §11)
//!
//! With the `parallel` feature, [`find_shelling_order`] races three
//! facet-ordering heuristics (canonical index order, descending
//! `(d−1)`-ridge degree, descending intersection count) as work-stealing
//! DFS tasks on the `ksa-exec` pool, sharing a [`ksa_exec::ShardedSet`]
//! of proved-dead facet subsets and cancelling on first success —
//! the same shape as the solvability CSP portfolio (DESIGN.md §10.2).
//! Whether an order exists is intrinsic to the complex and every
//! strategy's search is complete, so the *verdict* is bit-identical at
//! any `KSA_THREADS`; the winning *witness order* may legitimately
//! differ across schedules (any witness re-verifies through
//! [`is_shelling_order`] and the `ksa-cert` checker). The memoized
//! sequential search stays available as [`find_shelling_order_seq`],
//! the pinned oracle of the determinism contract (DESIGN.md §4): the
//! canonical strategy is spawned last, so a lone worker pops it first
//! (LIFO) and explores exactly the oracle's node order.
//!
//! Dead-subset publication follows the monotone no-good contract
//! (DESIGN.md §10.3): a subtree publishes its used-set only after a
//! *complete, unaborted* exploration proved no extension shells — never
//! on cancellation — so every table entry is an instance fact, valid
//! for every strategy.

use crate::complex::Complex;
use crate::error::TopologyError;
use crate::simplex::{Simplex, View};
use std::collections::HashMap;

/// Whether adding `new` after the facets in `prior` satisfies the shelling
/// condition: `(⋃ prior) ∩ new` is non-void, pure of dimension
/// `dim(new) − 1`.
fn step_ok<V: View>(prior: &[Simplex<V>], new: &Simplex<V>) -> bool {
    let d = new.dim();
    // Maximal intersections with earlier facets.
    let mut inters: Vec<Simplex<V>> = prior
        .iter()
        .map(|p| p.intersection(new))
        .filter(|s| !s.is_empty())
        .collect();
    if inters.is_empty() {
        return false;
    }
    // Keep only maximal ones.
    inters.sort_by_key(|s| std::cmp::Reverse(s.len()));
    let mut maximal: Vec<Simplex<V>> = Vec::new();
    'outer: for s in inters {
        for m in &maximal {
            if m.contains(&s) {
                continue 'outer;
            }
        }
        maximal.push(s);
    }
    // Pure of dimension d − 1: every maximal intersection is a (d−1)-face.
    maximal.iter().all(|s| s.dim() == d - 1)
}

/// Verifies that `order` is a shelling order of the pure complex it spans.
///
/// # Errors
///
/// [`TopologyError::EmptyComplex`] for an empty order;
/// [`TopologyError::NotPure`] if the facets have mixed dimensions.
pub fn is_shelling_order<V: View>(order: &[Simplex<V>]) -> Result<bool, TopologyError> {
    let first = order.first().ok_or(TopologyError::EmptyComplex)?;
    let d = first.dim();
    if order.iter().any(|s| s.dim() != d) {
        return Err(TopologyError::NotPure);
    }
    for t in 1..order.len() {
        if !step_ok(&order[..t], &order[t]) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Validates the complex and collects its facets for a shellability
/// search (`r ≤ 63` enforced for the `u64` used-set bitmask).
fn search_facets<V: View>(complex: &Complex<V>) -> Result<Vec<Simplex<V>>, TopologyError> {
    complex.require_pure()?;
    let facets: Vec<Simplex<V>> = complex.facets().cloned().collect();
    if facets.len() > 63 {
        return Err(TopologyError::TooLarge {
            what: "facets for shellability search",
            estimated: facets.len() as u128,
            limit: 63,
        });
    }
    Ok(facets)
}

/// Sequential memoized subset search. Returns the picked facet indices
/// (or `None`) plus the number of dead used-sets recorded — the
/// exhaustion statistic carried by negative certificates.
fn search_seq<V: View>(facets: &[Simplex<V>]) -> (Option<Vec<usize>>, u64) {
    let r = facets.len();
    // step_ok depends only on (used-set, next); `false` is cached per
    // used-set, `true` is never cached for incomplete states (we return
    // on first success).
    let mut memo: HashMap<u64, bool> = HashMap::new();
    fn dfs<V: View>(
        facets: &[Simplex<V>],
        used: u64,
        picked: &mut Vec<usize>,
        memo: &mut HashMap<u64, bool>,
    ) -> bool {
        let r = facets.len();
        if picked.len() == r {
            return true;
        }
        if let Some(&ok) = memo.get(&used) {
            if !ok {
                return false;
            }
        }
        let prior: Vec<Simplex<V>> = picked.iter().map(|&i| facets[i].clone()).collect();
        for next in 0..r {
            if used >> next & 1 == 1 {
                continue;
            }
            if step_ok(&prior, &facets[next]) {
                picked.push(next);
                if dfs(facets, used | (1 << next), picked, memo) {
                    return true;
                }
                picked.pop();
            }
        }
        memo.insert(used, false);
        false
    }

    // Any facet can start.
    for start in 0..r {
        let mut picked = vec![start];
        if dfs(facets, 1u64 << start, &mut picked, &mut memo) {
            return (Some(picked), memo.len() as u64);
        }
    }
    (None, memo.len() as u64)
}

#[cfg(feature = "parallel")]
mod portfolio {
    //! The racing shelling portfolio (module docs above; mirrors the
    //! solvability CSP portfolio of DESIGN.md §10.2).

    use super::{step_ok, Simplex, View};
    use ksa_exec::ShardedSet;
    use ksa_graphs::cancel::{CancelToken, Interrupted};
    use std::sync::Mutex;

    enum Search {
        Found,
        Dead,
        Aborted,
    }

    /// DFS over facet subsets trying candidates in `ord`'s priority.
    /// Publishes `used` into the shared dead table only after a
    /// complete, unaborted exploration (the monotone contract).
    fn dfs<V: View>(
        facets: &[Simplex<V>],
        ord: &[usize],
        used: u64,
        picked: &mut Vec<usize>,
        dead: &ShardedSet<u64>,
        cancel: &CancelToken,
    ) -> Search {
        if picked.len() == facets.len() {
            return Search::Found;
        }
        if cancel.is_cancelled() {
            return Search::Aborted;
        }
        if dead.contains(&used) {
            ksa_obs::perf_count(ksa_obs::PerfCounter::NoGoodHits, 1);
            return Search::Dead;
        }
        ksa_obs::perf_count(ksa_obs::PerfCounter::PortfolioNodes, 1);
        let prior: Vec<Simplex<V>> = picked.iter().map(|&i| facets[i].clone()).collect();
        for &next in ord {
            if used >> next & 1 == 1 {
                continue;
            }
            if step_ok(&prior, &facets[next]) {
                picked.push(next);
                match dfs(facets, ord, used | (1 << next), picked, dead, cancel) {
                    Search::Found => return Search::Found,
                    Search::Dead => {
                        picked.pop();
                    }
                    Search::Aborted => {
                        picked.pop();
                        return Search::Aborted;
                    }
                }
            }
        }
        // Every extension was explored to a proved-dead end (no aborts
        // on this path), so `used` is dead for *every* strategy — safe
        // to publish even if a cancellation just arrived.
        if dead.insert(used) {
            ksa_obs::perf_count(ksa_obs::PerfCounter::NoGoodInserts, 1);
        }
        Search::Dead
    }

    /// One strategy: try every start facet in `ord`'s priority.
    /// `None` means the race was cancelled before this strategy could
    /// finish; `Some(verdict)` is a complete search result.
    fn run_strategy<V: View>(
        facets: &[Simplex<V>],
        ord: &[usize],
        dead: &ShardedSet<u64>,
        cancel: &CancelToken,
    ) -> Option<Option<Vec<usize>>> {
        for &start in ord {
            if cancel.is_cancelled() {
                return None;
            }
            let mut picked = vec![start];
            match dfs(facets, ord, 1u64 << start, &mut picked, dead, cancel) {
                Search::Found => return Some(Some(picked)),
                Search::Dead => {}
                Search::Aborted => return None,
            }
        }
        Some(None)
    }

    /// Index order sorted by descending score, ties by ascending index.
    fn by_desc_score(scores: &[usize]) -> Vec<usize> {
        let mut ord: Vec<usize> = (0..scores.len()).collect();
        ord.sort_by_key(|&i| (std::cmp::Reverse(scores[i]), i));
        ord
    }

    /// Race the ordering heuristics; first complete search wins and
    /// cancels the rest. Returns the winning verdict plus the shared
    /// dead-table size (the exhaustion statistic for certificates).
    ///
    /// The race flag is a *child* [`CancelToken`] of `external` (when
    /// supplied): the winner cancels only the child, while an external
    /// cancellation or deadline reaches every strategy through the same
    /// per-node poll and surfaces as `Err` — the one cancellation idiom
    /// shared with the CSP portfolio (DESIGN.md §12.2).
    pub(super) fn search<V: View>(
        facets: &[Simplex<V>],
        external: Option<&CancelToken>,
    ) -> Result<(Option<Vec<usize>>, u64), Interrupted> {
        let r = facets.len();
        let width = facets[0].len();
        // Pairwise intersection sizes drive both heuristics: ridge
        // degree counts (d−1)-intersections, touch counts nonempty ones.
        let mut inter_len = vec![0usize; r * r];
        for i in 0..r {
            for j in (i + 1)..r {
                let l = facets[i].intersection(&facets[j]).len();
                inter_len[i * r + j] = l;
                inter_len[j * r + i] = l;
            }
        }
        let ridge: Vec<usize> = (0..r)
            .map(|i| {
                (0..r)
                    .filter(|&j| j != i && inter_len[i * r + j] == width - 1)
                    .count()
            })
            .collect();
        let touch: Vec<usize> = (0..r)
            .map(|i| {
                (0..r)
                    .filter(|&j| j != i && inter_len[i * r + j] > 0)
                    .count()
            })
            .collect();
        let canonical: Vec<usize> = (0..r).collect();
        let mut alternates = vec![by_desc_score(&ridge), by_desc_score(&touch)];
        alternates.dedup();
        alternates.retain(|ord| *ord != canonical);

        let dead: ShardedSet<u64> = ShardedSet::new();
        let cancel = match external {
            Some(token) => token.child(),
            None => CancelToken::new(),
        };
        let winner: Mutex<Option<Option<Vec<usize>>>> = Mutex::new(None);
        let report = |verdict: Option<Vec<usize>>| -> bool {
            let mut slot = winner.lock().unwrap_or_else(|p| p.into_inner());
            if slot.is_none() {
                *slot = Some(verdict);
                cancel.cancel();
                true
            } else {
                false
            }
        };

        ksa_exec::scope(|s| {
            for ord in &alternates {
                let (dead, cancel, report) = (&dead, &cancel, &report);
                s.spawn(move |_| {
                    if let Some(verdict) = run_strategy(facets, ord, dead, cancel) {
                        if report(verdict) {
                            ksa_obs::perf_count(ksa_obs::PerfCounter::PortfolioAlternateWins, 1);
                        }
                    }
                });
            }
            // Canonical last: scope workers pop LIFO, so a lone worker
            // runs it first and walks exactly the sequential oracle's
            // node order (bit-reproducible single-thread behavior).
            {
                let (canonical, dead, cancel, report) = (&canonical, &dead, &cancel, &report);
                s.spawn(move |_| {
                    if let Some(verdict) = run_strategy(facets, canonical, dead, cancel) {
                        if report(verdict) {
                            ksa_obs::perf_count(ksa_obs::PerfCounter::PortfolioCanonicalWins, 1);
                        }
                    }
                });
            }
        });

        let states = dead.len() as u64;
        match winner.into_inner().unwrap_or_else(|p| p.into_inner()) {
            Some(verdict) => Ok((verdict, states)),
            None => {
                // No strategy completed. With an external token that is
                // the cancellation surfacing; without one it is
                // unreachable (a race cancel implies a reported winner),
                // so fall back to the oracle rather than panic.
                if let Some(token) = external {
                    token.checkpoint()?;
                }
                Ok(super::search_seq(facets))
            }
        }
    }
}

/// Decides shellability: picked facet indices (or `None`) plus the
/// dead-state count, dispatching to the portfolio when available.
fn search<V: View>(facets: &[Simplex<V>]) -> (Option<Vec<usize>>, u64) {
    search_cancellable(facets, None).expect("no token supplied, search cannot be interrupted")
}

/// [`search`] with an optional external [`CancelToken`]: under
/// `parallel` the token parents the portfolio's race flag (per-node poll
/// granularity); without `parallel` it is polled once before the
/// sequential search (which has no internal poll points).
fn search_cancellable<V: View>(
    facets: &[Simplex<V>],
    cancel: Option<&ksa_graphs::cancel::CancelToken>,
) -> Result<(Option<Vec<usize>>, u64), ksa_graphs::cancel::Interrupted> {
    #[cfg(feature = "parallel")]
    {
        portfolio::search(facets, cancel)
    }
    #[cfg(not(feature = "parallel"))]
    {
        if let Some(token) = cancel {
            token.checkpoint()?;
        }
        Ok(search_seq(facets))
    }
}

/// Searches for a shelling order of a pure complex. Returns `None` when the
/// complex is not shellable.
///
/// With the `parallel` feature this races the ordering-heuristic
/// portfolio on the `ksa-exec` pool (see the module docs); the verdict
/// (`Some` vs `None`) is bit-identical to [`find_shelling_order_seq`]
/// at any `KSA_THREADS`, while the witness order may differ across
/// schedules (any witness passes [`is_shelling_order`]).
///
/// # Errors
///
/// [`TopologyError::EmptyComplex`] / [`TopologyError::NotPure`] as in
/// [`is_shelling_order`]; [`TopologyError::TooLarge`] beyond 63 facets.
pub fn find_shelling_order<V: View>(
    complex: &Complex<V>,
) -> Result<Option<Vec<Simplex<V>>>, TopologyError> {
    let facets = search_facets(complex)?;
    if facets.len() == 1 {
        return Ok(Some(facets));
    }
    let (picked, _states) = search(&facets);
    Ok(picked.map(|p| p.into_iter().map(|i| facets[i].clone()).collect()))
}

/// [`find_shelling_order`] with a cooperative
/// [`CancelToken`](ksa_graphs::cancel::CancelToken): the token parents
/// the portfolio's race flag, so an external cancellation or deadline
/// stops every strategy at its next per-node poll and surfaces as an
/// error. A token that never fires leaves the verdict bit-identical to
/// [`find_shelling_order`] at any `KSA_THREADS`.
///
/// # Errors
///
/// As for [`find_shelling_order`], plus [`TopologyError::Cancelled`] /
/// [`TopologyError::DeadlineExceeded`].
pub fn find_shelling_order_cancellable<V: View>(
    complex: &Complex<V>,
    cancel: &ksa_graphs::cancel::CancelToken,
) -> Result<Option<Vec<Simplex<V>>>, TopologyError> {
    let facets = search_facets(complex)?;
    if facets.len() == 1 {
        cancel.checkpoint()?;
        return Ok(Some(facets));
    }
    let (picked, _states) = search_cancellable(&facets, Some(cancel))?;
    Ok(picked.map(|p| p.into_iter().map(|i| facets[i].clone()).collect()))
}

/// The sequential memoized search, kept verbatim as the pinned oracle
/// of the determinism contract (DESIGN.md §4): portfolio verdicts are
/// proptest-pinned bit-identical to this at pool sizes 1/2/8
/// (`crates/topology/tests/shelling_portfolio.rs`).
///
/// Memoized subset search: `O(2^r · r²)` pair checks for `r` facets.
///
/// # Errors
///
/// Same conditions as [`find_shelling_order`].
pub fn find_shelling_order_seq<V: View>(
    complex: &Complex<V>,
) -> Result<Option<Vec<Simplex<V>>>, TopologyError> {
    let facets = search_facets(complex)?;
    if facets.len() == 1 {
        return Ok(Some(facets));
    }
    let (picked, _states) = search_seq(&facets);
    Ok(picked.map(|p| p.into_iter().map(|i| facets[i].clone()).collect()))
}

/// Whether a pure complex is shellable.
///
/// # Errors
///
/// Same conditions as [`find_shelling_order`].
pub fn is_shellable<V: View>(complex: &Complex<V>) -> Result<bool, TopologyError> {
    Ok(find_shelling_order(complex)?.is_some())
}

/// Decides shellability and emits a [`ksa_cert::ShellingCert`] for the
/// verdict: the witness order for a shellable complex, the exhaustion
/// statistics otherwise. Vertices are interned to `u32` by their rank
/// in the complex's sorted vertex list; the standalone checker
/// re-verifies the verdict from the certificate alone (DESIGN.md §11).
///
/// # Errors
///
/// Same conditions as [`find_shelling_order`].
pub fn is_shellable_certified<V: View>(
    complex: &Complex<V>,
    label: &str,
) -> Result<(bool, ksa_cert::ShellingCert), TopologyError> {
    let facets = search_facets(complex)?;
    let verts = complex.vertices();
    let interned: Vec<Vec<u32>> = facets
        .iter()
        .map(|f| {
            let mut ids: Vec<u32> = f
                .vertices()
                .iter()
                .map(|v| {
                    verts
                        .binary_search(v)
                        .expect("facet vertex is in the complex's vertex list")
                        as u32
                })
                .collect();
            ids.sort_unstable();
            ids
        })
        .collect();
    let (picked, states) = if facets.len() == 1 {
        (Some(vec![0]), 0)
    } else {
        search(&facets)
    };
    let (shellable, verdict) = match picked {
        Some(p) => (
            true,
            ksa_cert::ShellingVerdict::Order(p.into_iter().map(|i| i as u32).collect()),
        ),
        None => (false, ksa_cert::ShellingVerdict::Exhausted { states }),
    };
    ksa_obs::count(ksa_obs::Counter::CertsEmitted, 1);
    Ok((
        shellable,
        ksa_cert::ShellingCert {
            label: label.to_string(),
            facets: interned,
            verdict,
        },
    ))
}

/// Lemma 4.15 sanity helper: for a pure `(d−1)`-dimensional subcomplex of
/// the boundary of a `d`-simplex, *every* facet order is a shelling order.
/// Returns true when that holds for the given complex (used by tests and
/// the Lemma 4.17 experiment).
pub fn every_order_shells<V: View>(complex: &Complex<V>) -> Result<bool, TopologyError> {
    complex.require_pure()?;
    let facets: Vec<Simplex<V>> = complex.facets().cloned().collect();
    if facets.len() > 8 {
        return Err(TopologyError::TooLarge {
            what: "facets for exhaustive order check",
            estimated: facets.len() as u128,
            limit: 8,
        });
    }
    let mut idx: Vec<usize> = (0..facets.len()).collect();
    // Heap's algorithm over indices.
    fn rec<V: View>(k: usize, idx: &mut Vec<usize>, facets: &[Simplex<V>]) -> bool {
        if k <= 1 {
            let order: Vec<Simplex<V>> = idx.iter().map(|&i| facets[i].clone()).collect();
            return is_shelling_order(&order).unwrap_or(false);
        }
        for i in 0..k {
            if !rec(k - 1, idx, facets) {
                return false;
            }
            if k.is_multiple_of(2) {
                idx.swap(i, k - 1);
            } else {
                idx.swap(0, k - 1);
            }
        }
        rec(k - 1, idx, facets)
    }
    let n = idx.len();
    Ok(rec(n, &mut idx, &facets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::Vertex;

    fn simplex(colors: &[usize]) -> Simplex<u32> {
        Simplex::new(colors.iter().map(|&c| Vertex::new(c, 0u32)).collect()).unwrap()
    }

    #[test]
    fn figure_4a_is_shellable() {
        // Two triangles sharing an edge (the paper's shellable exemplar).
        let c = Complex::from_facets(vec![simplex(&[0, 1, 2]), simplex(&[0, 2, 3])]);
        assert!(is_shellable(&c).unwrap());
        let order = find_shelling_order(&c).unwrap().unwrap();
        assert!(is_shelling_order(&order).unwrap());
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn figure_4b_is_not_shellable() {
        // Two triangles sharing only a vertex (the paper's non-shellable
        // exemplar): the second facet meets the first in dimension 0 ≠ 1.
        let c = Complex::from_facets(vec![simplex(&[0, 1, 2]), simplex(&[2, 3, 4])]);
        assert!(!is_shellable(&c).unwrap());
    }

    #[test]
    fn single_facet_is_shellable() {
        let c = Complex::of_simplex(simplex(&[0, 1, 2]));
        assert!(is_shellable(&c).unwrap());
    }

    #[test]
    fn boundary_of_simplex_is_shellable_any_order() {
        // Lemma 4.15: the full boundary complex of a simplex shells in any
        // facet order.
        for d in 2..5 {
            let s = simplex(&(0..=d).collect::<Vec<_>>());
            let b = Complex::boundary_of(&s);
            assert!(every_order_shells(&b).unwrap(), "d = {d}");
        }
    }

    #[test]
    fn sub_boundary_complexes_shell_any_order() {
        // Lemma 4.15 proper: any pure (d−1)-subcomplex of ∂(d-simplex).
        let s = simplex(&[0, 1, 2, 3]);
        let all_faces: Vec<Simplex<u32>> = Complex::boundary_of(&s).facets().cloned().collect();
        // Every subset of the 4 triangles.
        for mask in 1u32..16 {
            let sub: Vec<Simplex<u32>> = all_faces
                .iter()
                .enumerate()
                .filter(|&(i, _)| (mask >> i) & 1 == 1)
                .map(|(_, f)| f.clone())
                .collect();
            let c = Complex::from_facets(sub);
            assert!(every_order_shells(&c).unwrap(), "mask = {mask}");
        }
    }

    #[test]
    fn disconnected_pure_complex_not_shellable() {
        let c = Complex::from_facets(vec![simplex(&[0, 1]), simplex(&[2, 3])]);
        assert!(!is_shellable(&c).unwrap());
    }

    #[test]
    fn path_of_edges_is_shellable() {
        let c = Complex::from_facets(vec![simplex(&[0, 1]), simplex(&[1, 2]), simplex(&[2, 3])]);
        assert!(is_shellable(&c).unwrap());
    }

    #[test]
    fn specific_order_verification() {
        let t1 = simplex(&[0, 1, 2]);
        let t2 = simplex(&[0, 2, 3]);
        let t3 = simplex(&[3, 4, 5]); // far away
        assert!(is_shelling_order(&[t1.clone(), t2.clone()]).unwrap());
        assert!(!is_shelling_order(&[t1.clone(), t3.clone()]).unwrap());
        assert!(is_shelling_order(std::slice::from_ref(&t1)).unwrap());
        assert!(is_shelling_order::<u32>(&[]).is_err());
        assert!(is_shelling_order(&[t1, simplex(&[8, 9])]).is_err());
    }

    #[test]
    fn impure_complex_rejected() {
        let c = Complex::from_facets(vec![simplex(&[0, 1, 2]), simplex(&[5, 6])]);
        assert_eq!(is_shellable(&c), Err(TopologyError::NotPure));
    }

    // ------------------------------------------------------------------
    // step_ok edge cases: the exact shelling condition, beyond the happy
    // paths of Figure 4.
    // ------------------------------------------------------------------

    #[test]
    fn step_ok_rejects_empty_prior() {
        // The first facet has no condition to satisfy — but step_ok on an
        // empty prior must say "no" (nothing to glue to), which is why
        // is_shelling_order starts checking at t = 1.
        assert!(!step_ok::<u32>(&[], &simplex(&[0, 1, 2])));
    }

    #[test]
    fn step_ok_zero_dimensional_facets() {
        // A pure 0-complex: d − 1 = −1, but intersections of distinct
        // vertices are empty and get filtered — never shellable beyond
        // one facet.
        let v0 = simplex(&[0]);
        let v1 = simplex(&[1]);
        assert!(!step_ok(std::slice::from_ref(&v0), &v1));
        // A repeated facet meets itself in dimension 0 ≠ −1: also no.
        assert!(!step_ok(std::slice::from_ref(&v0), &v0));
        // And through the public API: two isolated vertices are not a
        // shelling order, one vertex alone is.
        assert!(!is_shelling_order(&[v0.clone(), v1]).unwrap());
        assert!(is_shelling_order(std::slice::from_ref(&v0)).unwrap());
    }

    #[test]
    fn step_ok_duplicate_maximal_intersections() {
        // Two prior facets meeting the new one in the *same* (d−1)-face:
        // the duplicate must collapse (containment check), leaving one
        // maximal intersection of the right dimension — accepted.
        let t1 = simplex(&[0, 1, 2]);
        let t2 = simplex(&[0, 1, 3]);
        let new = simplex(&[0, 1, 4]);
        assert!(step_ok(&[t1.clone(), t2.clone()], &new));
        // The full order verifies too.
        assert!(is_shelling_order(&[t1, t2, new]).unwrap());
    }

    #[test]
    fn step_ok_pure_but_wrong_dimensional_intersection() {
        // The intersection complex can be pure and non-empty yet of
        // dimension d − 2 instead of d − 1: a single shared vertex
        // between triangles (Figure 4b's failure, isolated here at the
        // step level).
        let prior = simplex(&[0, 3, 4]);
        let new = simplex(&[0, 1, 2]);
        assert!(!step_ok(std::slice::from_ref(&prior), &new));
    }

    #[test]
    fn step_ok_mixed_dimensional_intersections() {
        // One prior facet meets new in a (d−1)-face, another in a lone
        // vertex not contained in that face: the intersection is impure —
        // rejected even though a full-dimensional glue exists.
        let good = simplex(&[0, 1, 5]);
        let bad = simplex(&[2, 6, 7]);
        let new = simplex(&[0, 1, 2]);
        assert!(step_ok(std::slice::from_ref(&good), &new));
        assert!(!step_ok(&[good, bad], &new));
    }

    #[test]
    fn step_ok_containment_is_not_commutative_confusion() {
        // The maximality filter must keep the larger of nested
        // intersections: prior facets meeting new in an edge and in a
        // vertex *of that edge* still shell (the vertex intersection is
        // dominated, not impure).
        let edge_glue = simplex(&[0, 1, 5]);
        let vertex_of_edge = simplex(&[1, 6, 7]);
        let new = simplex(&[0, 1, 2]);
        assert!(step_ok(&[edge_glue, vertex_of_edge], &new));
    }

    // ------------------------------------------------------------------
    // Search-level edge cases: the degenerate complexes the figures
    // never exercise.
    // ------------------------------------------------------------------

    #[test]
    fn empty_complex_is_rejected_everywhere() {
        let c: Complex<u32> = Complex::void();
        assert_eq!(find_shelling_order(&c), Err(TopologyError::EmptyComplex));
        assert_eq!(
            find_shelling_order_seq(&c),
            Err(TopologyError::EmptyComplex)
        );
        assert_eq!(is_shellable(&c), Err(TopologyError::EmptyComplex));
        assert_eq!(every_order_shells(&c), Err(TopologyError::EmptyComplex));
        assert!(is_shellable_certified(&c, "void").is_err());
    }

    #[test]
    fn single_facet_order_is_the_facet() {
        let c = Complex::of_simplex(simplex(&[0, 1, 2]));
        let order = find_shelling_order(&c).unwrap().unwrap();
        assert_eq!(order, vec![simplex(&[0, 1, 2])]);
        assert_eq!(find_shelling_order_seq(&c).unwrap().unwrap(), order);
        let (shellable, cert) = is_shellable_certified(&c, "single").unwrap();
        assert!(shellable);
        assert_eq!(ksa_cert::check_shelling(&cert), Ok(()));
    }

    #[test]
    fn zero_dimensional_complexes() {
        // One vertex: shellable (trivially). Two isolated vertices: the
        // step condition has nothing to glue — not shellable.
        let point = Complex::of_simplex(simplex(&[0]));
        assert!(is_shellable(&point).unwrap());
        let two = Complex::from_facets(vec![simplex(&[0]), simplex(&[1])]);
        assert!(!is_shellable(&two).unwrap());
        assert!(find_shelling_order(&two).unwrap().is_none());
        assert!(find_shelling_order_seq(&two).unwrap().is_none());
        let (shellable, cert) = is_shellable_certified(&two, "two-points").unwrap();
        assert!(!shellable);
        assert_eq!(ksa_cert::check_shelling(&cert), Ok(()));
    }

    #[test]
    fn pinned_counterexample_some_but_not_all_orders_shell() {
        // The path of three edges shells in path order but not when the
        // two end edges come first: [01], [23] are disjoint at step 2.
        let e01 = simplex(&[0, 1]);
        let e12 = simplex(&[1, 2]);
        let e23 = simplex(&[2, 3]);
        let c = Complex::from_facets(vec![e01.clone(), e12.clone(), e23.clone()]);
        assert!(is_shellable(&c).unwrap());
        assert!(is_shelling_order(&[e01.clone(), e12.clone(), e23.clone()]).unwrap());
        assert!(!is_shelling_order(&[e01, e23, e12]).unwrap());
        assert!(!every_order_shells(&c).unwrap());
    }

    #[test]
    fn certified_verdicts_round_trip_and_check() {
        for (facets, label) in [
            (vec![simplex(&[0, 1, 2]), simplex(&[0, 2, 3])], "fig4a"),
            (vec![simplex(&[0, 1, 2]), simplex(&[2, 3, 4])], "fig4b"),
        ] {
            let c = Complex::from_facets(facets);
            let (shellable, cert) = is_shellable_certified(&c, label).unwrap();
            assert_eq!(shellable, is_shellable(&c).unwrap(), "{label}");
            assert_eq!(ksa_cert::check_shelling(&cert), Ok(()), "{label}");
            let wrapped = ksa_cert::Cert::Shelling(cert);
            let parsed = ksa_cert::Cert::parse(&wrapped.to_text()).unwrap();
            assert_eq!(parsed, wrapped, "{label}");
        }
    }

    #[test]
    fn octahedron_boundary_is_shellable() {
        // Pseudosphere with binary views: the octahedron (2-sphere), a
        // classic shellable complex with 8 facets.
        use crate::pseudosphere::Pseudosphere;
        let ps = Pseudosphere::new((0..3).map(|c| (c, vec![0u32, 1])).collect()).unwrap();
        let c = ps.to_complex();
        assert_eq!(c.facet_count(), 8);
        assert!(is_shellable(&c).unwrap());
    }
}
