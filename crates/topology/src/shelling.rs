//! Shellability (§4.4, Figure 4).
//!
//! A pure `d`-complex is **shellable** when its facets can be ordered
//! `φ_1, …, φ_r` so that each `(⋃_{i≤t} φ_i) ∩ φ_{t+1}` is a pure
//! `(d−1)`-dimensional subcomplex of `∂φ_{t+1}`. Shellable complexes are
//! the scaffolding of the paper's main technical Lemma 4.17 (the input
//! pseudosphere is shelled facet by facet, and the interpreted images are
//! glued with Cor 4.16).
//!
//! This module verifies candidate shelling orders exactly, and decides
//! shellability by memoized search over facet subsets (exact, exponential:
//! fine for the ≤ 20-facet complexes in the paper's figures and our
//! experiments).

use crate::complex::Complex;
use crate::error::TopologyError;
use crate::simplex::{Simplex, View};
use std::collections::HashMap;

/// Whether adding `new` after the facets in `prior` satisfies the shelling
/// condition: `(⋃ prior) ∩ new` is non-void, pure of dimension
/// `dim(new) − 1`.
fn step_ok<V: View>(prior: &[Simplex<V>], new: &Simplex<V>) -> bool {
    let d = new.dim();
    // Maximal intersections with earlier facets.
    let mut inters: Vec<Simplex<V>> = prior
        .iter()
        .map(|p| p.intersection(new))
        .filter(|s| !s.is_empty())
        .collect();
    if inters.is_empty() {
        return false;
    }
    // Keep only maximal ones.
    inters.sort_by_key(|s| std::cmp::Reverse(s.len()));
    let mut maximal: Vec<Simplex<V>> = Vec::new();
    'outer: for s in inters {
        for m in &maximal {
            if m.contains(&s) {
                continue 'outer;
            }
        }
        maximal.push(s);
    }
    // Pure of dimension d − 1: every maximal intersection is a (d−1)-face.
    maximal.iter().all(|s| s.dim() == d - 1)
}

/// Verifies that `order` is a shelling order of the pure complex it spans.
///
/// # Errors
///
/// [`TopologyError::EmptyComplex`] for an empty order;
/// [`TopologyError::NotPure`] if the facets have mixed dimensions.
pub fn is_shelling_order<V: View>(order: &[Simplex<V>]) -> Result<bool, TopologyError> {
    let first = order.first().ok_or(TopologyError::EmptyComplex)?;
    let d = first.dim();
    if order.iter().any(|s| s.dim() != d) {
        return Err(TopologyError::NotPure);
    }
    for t in 1..order.len() {
        if !step_ok(&order[..t], &order[t]) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Searches for a shelling order of a pure complex. Returns `None` when the
/// complex is not shellable.
///
/// Memoized subset search: `O(2^r · r²)` pair checks for `r` facets
/// (`r ≤ 63` enforced).
///
/// # Errors
///
/// [`TopologyError::EmptyComplex`] / [`TopologyError::NotPure`] as in
/// [`is_shelling_order`]; [`TopologyError::TooLarge`] beyond 63 facets.
pub fn find_shelling_order<V: View>(
    complex: &Complex<V>,
) -> Result<Option<Vec<Simplex<V>>>, TopologyError> {
    complex.require_pure()?;
    let facets: Vec<Simplex<V>> = complex.facets().cloned().collect();
    let r = facets.len();
    if r > 63 {
        return Err(TopologyError::TooLarge {
            what: "facets for shellability search",
            estimated: r as u128,
            limit: 63,
        });
    }
    if r == 1 {
        return Ok(Some(facets));
    }
    // step_ok depends only on (used-set, next); precompute pairwise
    // (d−1)-intersection structure lazily through step_ok on slices.
    // Memoized DFS over used-sets.
    let mut memo: HashMap<u64, bool> = HashMap::new();
    fn dfs<V: View>(
        facets: &[Simplex<V>],
        used: u64,
        picked: &mut Vec<usize>,
        memo: &mut HashMap<u64, bool>,
    ) -> bool {
        let r = facets.len();
        if picked.len() == r {
            return true;
        }
        if let Some(&ok) = memo.get(&used) {
            if !ok {
                return false;
            }
            // `true` is never cached for incomplete states (we return on
            // first success), so reaching here means unknown.
        }
        let prior: Vec<Simplex<V>> = picked.iter().map(|&i| facets[i].clone()).collect();
        for next in 0..r {
            if used >> next & 1 == 1 {
                continue;
            }
            if step_ok(&prior, &facets[next]) {
                picked.push(next);
                if dfs(facets, used | (1 << next), picked, memo) {
                    return true;
                }
                picked.pop();
            }
        }
        memo.insert(used, false);
        false
    }

    // Any facet can start.
    for start in 0..r {
        let mut picked = vec![start];
        if dfs(&facets, 1u64 << start, &mut picked, &mut memo) {
            return Ok(Some(
                picked.into_iter().map(|i| facets[i].clone()).collect(),
            ));
        }
    }
    Ok(None)
}

/// Whether a pure complex is shellable.
///
/// # Errors
///
/// Same conditions as [`find_shelling_order`].
pub fn is_shellable<V: View>(complex: &Complex<V>) -> Result<bool, TopologyError> {
    Ok(find_shelling_order(complex)?.is_some())
}

/// Lemma 4.15 sanity helper: for a pure `(d−1)`-dimensional subcomplex of
/// the boundary of a `d`-simplex, *every* facet order is a shelling order.
/// Returns true when that holds for the given complex (used by tests and
/// the Lemma 4.17 experiment).
pub fn every_order_shells<V: View>(complex: &Complex<V>) -> Result<bool, TopologyError> {
    complex.require_pure()?;
    let facets: Vec<Simplex<V>> = complex.facets().cloned().collect();
    if facets.len() > 8 {
        return Err(TopologyError::TooLarge {
            what: "facets for exhaustive order check",
            estimated: facets.len() as u128,
            limit: 8,
        });
    }
    let mut idx: Vec<usize> = (0..facets.len()).collect();
    // Heap's algorithm over indices.
    fn rec<V: View>(k: usize, idx: &mut Vec<usize>, facets: &[Simplex<V>]) -> bool {
        if k <= 1 {
            let order: Vec<Simplex<V>> = idx.iter().map(|&i| facets[i].clone()).collect();
            return is_shelling_order(&order).unwrap_or(false);
        }
        for i in 0..k {
            if !rec(k - 1, idx, facets) {
                return false;
            }
            if k.is_multiple_of(2) {
                idx.swap(i, k - 1);
            } else {
                idx.swap(0, k - 1);
            }
        }
        rec(k - 1, idx, facets)
    }
    let n = idx.len();
    Ok(rec(n, &mut idx, &facets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::Vertex;

    fn simplex(colors: &[usize]) -> Simplex<u32> {
        Simplex::new(colors.iter().map(|&c| Vertex::new(c, 0u32)).collect()).unwrap()
    }

    #[test]
    fn figure_4a_is_shellable() {
        // Two triangles sharing an edge (the paper's shellable exemplar).
        let c = Complex::from_facets(vec![simplex(&[0, 1, 2]), simplex(&[0, 2, 3])]);
        assert!(is_shellable(&c).unwrap());
        let order = find_shelling_order(&c).unwrap().unwrap();
        assert!(is_shelling_order(&order).unwrap());
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn figure_4b_is_not_shellable() {
        // Two triangles sharing only a vertex (the paper's non-shellable
        // exemplar): the second facet meets the first in dimension 0 ≠ 1.
        let c = Complex::from_facets(vec![simplex(&[0, 1, 2]), simplex(&[2, 3, 4])]);
        assert!(!is_shellable(&c).unwrap());
    }

    #[test]
    fn single_facet_is_shellable() {
        let c = Complex::of_simplex(simplex(&[0, 1, 2]));
        assert!(is_shellable(&c).unwrap());
    }

    #[test]
    fn boundary_of_simplex_is_shellable_any_order() {
        // Lemma 4.15: the full boundary complex of a simplex shells in any
        // facet order.
        for d in 2..5 {
            let s = simplex(&(0..=d).collect::<Vec<_>>());
            let b = Complex::boundary_of(&s);
            assert!(every_order_shells(&b).unwrap(), "d = {d}");
        }
    }

    #[test]
    fn sub_boundary_complexes_shell_any_order() {
        // Lemma 4.15 proper: any pure (d−1)-subcomplex of ∂(d-simplex).
        let s = simplex(&[0, 1, 2, 3]);
        let all_faces: Vec<Simplex<u32>> = Complex::boundary_of(&s).facets().cloned().collect();
        // Every subset of the 4 triangles.
        for mask in 1u32..16 {
            let sub: Vec<Simplex<u32>> = all_faces
                .iter()
                .enumerate()
                .filter(|&(i, _)| (mask >> i) & 1 == 1)
                .map(|(_, f)| f.clone())
                .collect();
            let c = Complex::from_facets(sub);
            assert!(every_order_shells(&c).unwrap(), "mask = {mask}");
        }
    }

    #[test]
    fn disconnected_pure_complex_not_shellable() {
        let c = Complex::from_facets(vec![simplex(&[0, 1]), simplex(&[2, 3])]);
        assert!(!is_shellable(&c).unwrap());
    }

    #[test]
    fn path_of_edges_is_shellable() {
        let c = Complex::from_facets(vec![simplex(&[0, 1]), simplex(&[1, 2]), simplex(&[2, 3])]);
        assert!(is_shellable(&c).unwrap());
    }

    #[test]
    fn specific_order_verification() {
        let t1 = simplex(&[0, 1, 2]);
        let t2 = simplex(&[0, 2, 3]);
        let t3 = simplex(&[3, 4, 5]); // far away
        assert!(is_shelling_order(&[t1.clone(), t2.clone()]).unwrap());
        assert!(!is_shelling_order(&[t1.clone(), t3.clone()]).unwrap());
        assert!(is_shelling_order(std::slice::from_ref(&t1)).unwrap());
        assert!(is_shelling_order::<u32>(&[]).is_err());
        assert!(is_shelling_order(&[t1, simplex(&[8, 9])]).is_err());
    }

    #[test]
    fn impure_complex_rejected() {
        let c = Complex::from_facets(vec![simplex(&[0, 1, 2]), simplex(&[5, 6])]);
        assert_eq!(is_shellable(&c), Err(TopologyError::NotPure));
    }

    // ------------------------------------------------------------------
    // step_ok edge cases: the exact shelling condition, beyond the happy
    // paths of Figure 4.
    // ------------------------------------------------------------------

    #[test]
    fn step_ok_rejects_empty_prior() {
        // The first facet has no condition to satisfy — but step_ok on an
        // empty prior must say "no" (nothing to glue to), which is why
        // is_shelling_order starts checking at t = 1.
        assert!(!step_ok::<u32>(&[], &simplex(&[0, 1, 2])));
    }

    #[test]
    fn step_ok_zero_dimensional_facets() {
        // A pure 0-complex: d − 1 = −1, but intersections of distinct
        // vertices are empty and get filtered — never shellable beyond
        // one facet.
        let v0 = simplex(&[0]);
        let v1 = simplex(&[1]);
        assert!(!step_ok(std::slice::from_ref(&v0), &v1));
        // A repeated facet meets itself in dimension 0 ≠ −1: also no.
        assert!(!step_ok(std::slice::from_ref(&v0), &v0));
        // And through the public API: two isolated vertices are not a
        // shelling order, one vertex alone is.
        assert!(!is_shelling_order(&[v0.clone(), v1]).unwrap());
        assert!(is_shelling_order(std::slice::from_ref(&v0)).unwrap());
    }

    #[test]
    fn step_ok_duplicate_maximal_intersections() {
        // Two prior facets meeting the new one in the *same* (d−1)-face:
        // the duplicate must collapse (containment check), leaving one
        // maximal intersection of the right dimension — accepted.
        let t1 = simplex(&[0, 1, 2]);
        let t2 = simplex(&[0, 1, 3]);
        let new = simplex(&[0, 1, 4]);
        assert!(step_ok(&[t1.clone(), t2.clone()], &new));
        // The full order verifies too.
        assert!(is_shelling_order(&[t1, t2, new]).unwrap());
    }

    #[test]
    fn step_ok_pure_but_wrong_dimensional_intersection() {
        // The intersection complex can be pure and non-empty yet of
        // dimension d − 2 instead of d − 1: a single shared vertex
        // between triangles (Figure 4b's failure, isolated here at the
        // step level).
        let prior = simplex(&[0, 3, 4]);
        let new = simplex(&[0, 1, 2]);
        assert!(!step_ok(std::slice::from_ref(&prior), &new));
    }

    #[test]
    fn step_ok_mixed_dimensional_intersections() {
        // One prior facet meets new in a (d−1)-face, another in a lone
        // vertex not contained in that face: the intersection is impure —
        // rejected even though a full-dimensional glue exists.
        let good = simplex(&[0, 1, 5]);
        let bad = simplex(&[2, 6, 7]);
        let new = simplex(&[0, 1, 2]);
        assert!(step_ok(std::slice::from_ref(&good), &new));
        assert!(!step_ok(&[good, bad], &new));
    }

    #[test]
    fn step_ok_containment_is_not_commutative_confusion() {
        // The maximality filter must keep the larger of nested
        // intersections: prior facets meeting new in an edge and in a
        // vertex *of that edge* still shell (the vertex intersection is
        // dominated, not impure).
        let edge_glue = simplex(&[0, 1, 5]);
        let vertex_of_edge = simplex(&[1, 6, 7]);
        let new = simplex(&[0, 1, 2]);
        assert!(step_ok(&[edge_glue, vertex_of_edge], &new));
    }

    #[test]
    fn octahedron_boundary_is_shellable() {
        // Pseudosphere with binary views: the octahedron (2-sphere), a
        // classic shellable complex with 8 facets.
        use crate::pseudosphere::Pseudosphere;
        let ps = Pseudosphere::new((0..3).map(|c| (c, vec![0u32, 1])).collect()).unwrap();
        let c = ps.to_complex();
        assert_eq!(c.facet_count(), 8);
        assert!(is_shellable(&c).unwrap());
    }
}
