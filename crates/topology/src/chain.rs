//! The flat chain-complex engine: integer-id simplex arenas, sparse
//! boundary reduction, early-exit connectivity, and rank reuse across
//! skeleta and growing complexes (DESIGN.md §7).
//!
//! [`crate::homology`] and [`crate::connectivity`] used to re-derive the
//! face closure per query, index simplexes through
//! `HashMap<&Simplex, usize>`, and always rank every boundary operator up
//! to the top dimension. This module replaces that substrate:
//!
//! * **Arenas** — [`ChainComplex::from_complex`] enumerates the face
//!   closure once into per-dimension arenas: vertices are interned to
//!   `u32` ids (positions in the sorted vertex table), a `k`-simplex is a
//!   `(k+1)`-chunk of ascending ids, and each arena is the canonically
//!   sorted, deduplicated flat `Vec<u32>` of its dimension's chunks. No
//!   per-simplex hashing anywhere — faces are resolved by binary search
//!   over the sorted bucket below.
//! * **Sparse boundary reduction** — boundary operators are assembled as
//!   sparse rows (the `k+1` face column ids of each `k`-simplex) and
//!   ranked by an echelon-basis elimination (`Echelon`). The matrices are
//!   ultra-sparse (`k+1` entries per row) with low fill-in on the
//!   protocol complexes of the experiments, which makes this an order of
//!   magnitude faster than dense bit-packed elimination
//!   ([`crate::gf2::Gf2Matrix`] remains the dense engine and the
//!   cross-check oracle).
//! * **Laziness** — ranks are computed per dimension on demand and
//!   cached, so [`ChainComplex::connectivity_up_to`] reduces `∂_1, ∂_2,
//!   …` dimension by dimension and stops at the first non-zero Betti
//!   number (or at `k+1`), and a Betti query after a connectivity query
//!   pays only for the dimensions not yet reduced.
//! * **Skeleton reuse** — `∂_j` of the `k`-skeleton *is* `∂_j` of the
//!   parent for `j ≤ k`, so [`ChainComplex::skeleton_betti`] and
//!   [`ChainComplex::skeleton_connectivity`] answer skeleton queries from
//!   the parent's cached ranks without re-closing any faces.
//! * **Cross-step rank reuse** — [`ChainSweep`] feeds a *sequence* of
//!   complexes (the round sweep of [`crate::rounds`]) through the engine
//!   and carries the reduced row bases forward whenever one step's
//!   simplexes embed into the next step's (the boundary rows of the
//!   shared simplexes are identical, so the echelon basis resumes with
//!   only the fresh rows). When the embedding fails — measured to be the
//!   common case for iterated-interpretation complexes, whose interned
//!   ids reshuffle every round — it falls back to a fresh per-complex
//!   reduction and says so.
//!
//! Determinism (DESIGN.md §4): with the `parallel` feature the closure
//! enumeration fans out per facet and full-Betti queries fan out per
//! dimension on `ksa-exec`; arenas are canonically sorted at the merge
//! and ranks are properties of the matrices, so every verdict is
//! bit-identical to the engine-free references
//! ([`crate::homology::reduced_betti_numbers_seq`] and the scalar
//! [`crate::gf2::Gf2Matrix::rank_seq`]) at any `KSA_THREADS` —
//! proptest-pinned at pool sizes 1/2/8 in `tests/chain_engine.rs`.

use crate::complex::Complex;
use crate::connectivity::Connectivity;
use crate::simplex::{Vertex, View};
use ksa_obs::Counter;
use std::collections::HashMap;

#[cfg(feature = "parallel")]
use ksa_exec::prelude::*;

/// Facet count past which the closure enumeration fans out per facet
/// (mirrors `complex.rs`: tiny complexes dominate the call profile and
/// forking them costs more than enumerating them).
#[cfg(feature = "parallel")]
const PAR_FACET_GRAIN: usize = 16;

/// A flat, canonically sorted bucket of same-dimension simplexes:
/// `data` holds `count` consecutive `stride`-length chunks of ascending
/// vertex ids, the chunks themselves in lexicographic order.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Arena {
    stride: usize,
    data: Vec<u32>,
}

impl Arena {
    fn count(&self) -> usize {
        if self.stride == 0 {
            return 0; // the empty placeholder arena
        }
        debug_assert!(self.data.len().is_multiple_of(self.stride));
        self.data.len() / self.stride
    }

    fn row(&self, i: usize) -> &[u32] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    /// Binary search for the row equal to `chunk` with element `skip`
    /// removed (the face lookup of the boundary assembly).
    fn position_skipping(&self, chunk: &[u32], skip: usize) -> Option<usize> {
        debug_assert_eq!(chunk.len(), self.stride + 1);
        let (mut lo, mut hi) = (0usize, self.count());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let row = self.row(mid);
            let mut ord = std::cmp::Ordering::Equal;
            for (m, &r) in row.iter().enumerate() {
                let c = chunk[m + usize::from(m >= skip)];
                ord = r.cmp(&c);
                if ord != std::cmp::Ordering::Equal {
                    break;
                }
            }
            match ord {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }
}

/// Sorts a flat chunk vector lexicographically and removes duplicate
/// chunks. The result depends only on the chunk *set*, which is what
/// makes the parallel per-facet enumeration interchangeable with the
/// sequential one.
fn sort_dedup_chunks(data: Vec<u32>, stride: usize) -> Vec<u32> {
    let n = data.len() / stride;
    let chunk = |i: u32| &data[i as usize * stride..(i as usize + 1) * stride];
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_unstable_by(|&a, &b| chunk(a).cmp(chunk(b)));
    let mut out: Vec<u32> = Vec::with_capacity(data.len());
    for &i in &idx {
        if out.is_empty() || out[out.len() - stride..] != *chunk(i) {
            out.extend_from_slice(chunk(i));
        }
    }
    out
}

/// A GF(2) row-echelon basis over sparse rows (ascending `u32` column
/// ids), the shared rank kernel of [`ChainComplex`] and [`ChainSweep`].
///
/// `absorb` reduces an incoming row against the basis by its
/// leading column and either inserts it (rank grows) or cancels it to
/// zero (dependent). The basis size is the rank of everything absorbed —
/// a value independent of absorption order, though the engine always
/// absorbs in canonical arena order so intermediate bases are
/// reproducible too.
#[derive(Debug, Clone, Default)]
struct Echelon {
    rows: Vec<Vec<u32>>,
    /// `pivot_of[col]`: index into `rows` of the basis row leading with
    /// `col`, or `u32::MAX`. Grows on demand (the sweep's column space
    /// is open-ended).
    pivot_of: Vec<u32>,
}

impl Echelon {
    /// Absorbs one sparse row; returns whether the rank grew.
    fn absorb(&mut self, mut row: Vec<u32>) -> bool {
        loop {
            let Some(&lead) = row.first() else {
                return false;
            };
            if self.pivot_of.len() <= lead as usize {
                self.pivot_of.resize(lead as usize + 1, u32::MAX);
            }
            let p = self.pivot_of[lead as usize];
            if p == u32::MAX {
                self.pivot_of[lead as usize] = self.rows.len() as u32;
                self.rows.push(row);
                return true;
            }
            row = symm_diff(&row, &self.rows[p as usize]);
        }
    }

    fn rank(&self) -> usize {
        self.rows.len()
    }
}

/// Echelon reduction that additionally records, for every basis row,
/// the set of original row indices whose XOR reproduces it — the rank
/// witness carried by homology certificates (DESIGN.md §11). The
/// standalone checker re-derives both rank bounds from this: distinct
/// leading columns give independence (rank ≥ r), re-reducing every
/// original row to zero gives the ceiling (rank ≤ r), and the recorded
/// combinations prove each basis row lies in the row space.
#[derive(Debug, Clone, Default)]
struct WitnessEchelon {
    ech: Echelon,
    /// `combos[i]`: ascending original-row indices XOR-summing to
    /// `ech.rows[i]`.
    combos: Vec<Vec<u32>>,
}

impl WitnessEchelon {
    /// Absorbs the `idx`-th original row, tracking its combination.
    fn absorb(&mut self, mut row: Vec<u32>, idx: u32) {
        let mut combo = vec![idx];
        loop {
            let Some(&lead) = row.first() else {
                return;
            };
            if self.ech.pivot_of.len() <= lead as usize {
                self.ech.pivot_of.resize(lead as usize + 1, u32::MAX);
            }
            let p = self.ech.pivot_of[lead as usize];
            if p == u32::MAX {
                self.ech.pivot_of[lead as usize] = self.ech.rows.len() as u32;
                self.ech.rows.push(row);
                self.combos.push(combo);
                return;
            }
            row = symm_diff(&row, &self.ech.rows[p as usize]);
            combo = symm_diff(&combo, &self.combos[p as usize]);
        }
    }
}

/// The symmetric difference of two ascending id lists (GF(2) row XOR).
fn symm_diff(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// A simplicial complex flattened for homology: per-dimension integer-id
/// arenas plus lazily computed, cached boundary ranks.
///
/// Build one with [`ChainComplex::from_complex`] (or
/// [`Complex::chain`]) and ask it for Betti numbers and connectivity;
/// every query over the same complex shares the arenas and the rank
/// cache, so e.g. a full [`ChainComplex::reduced_betti`] after a
/// [`ChainComplex::connectivity`] costs only the dimensions the
/// early-exit scan never reached.
///
/// # Examples
///
/// ```
/// use ksa_topology::chain::ChainComplex;
/// use ksa_topology::complex::Complex;
/// use ksa_topology::connectivity::Connectivity;
/// use ksa_topology::simplex::{Simplex, Vertex};
///
/// let tet = Simplex::new((0..4).map(|c| Vertex::new(c, ())).collect()).unwrap();
/// let mut sphere = ChainComplex::from_complex(&Complex::boundary_of(&tet));
/// assert_eq!(sphere.reduced_betti(), vec![0, 0, 1]);
/// assert_eq!(sphere.connectivity(), Connectivity::Exactly(1));
/// // The 1-skeleton (the K4 graph) answers from the same arenas:
/// assert_eq!(sphere.skeleton_betti(1), vec![0, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct ChainComplex {
    /// `arenas[k]`: the k-simplexes. Empty vector ⇔ void complex.
    arenas: Vec<Arena>,
    /// `ranks[k]`: cached rank of `∂_k` (`∂_0` = augmentation,
    /// `∂_{dim+1}` = 0); length `dim + 2` for a non-void complex.
    ranks: Vec<Option<usize>>,
}

impl ChainComplex {
    /// Flattens a complex: interns its vertices, enumerates the face
    /// closure once into per-dimension arenas (parallel per facet past a
    /// small grain under the `parallel` feature; the canonical sort at
    /// the merge makes both paths bit-identical).
    pub fn from_complex<V: View>(complex: &Complex<V>) -> Self {
        if complex.is_void() {
            return ChainComplex {
                arenas: Vec::new(),
                ranks: Vec::new(),
            };
        }
        let verts: Vec<Vertex<V>> = complex.vertices();
        let dim = complex.dim() as usize;
        let facet_ids: Vec<Vec<u32>> = complex
            .facets()
            .map(|f| {
                f.vertices()
                    .iter()
                    .map(|v| verts.binary_search(v).expect("facet vertex is interned") as u32)
                    .collect()
            })
            .collect();

        let raw: Vec<Vec<u32>>;
        #[cfg(feature = "parallel")]
        {
            raw = if facet_ids.len() >= PAR_FACET_GRAIN {
                let per_facet: Vec<Vec<Vec<u32>>> = facet_ids
                    .par_iter()
                    .map(|ids| facet_subsets(ids, dim))
                    .collect();
                let mut acc: Vec<Vec<u32>> = vec![Vec::new(); dim + 1];
                for group in per_facet {
                    for (k, chunk) in group.into_iter().enumerate() {
                        acc[k].extend(chunk);
                    }
                }
                acc
            } else {
                closure_seq(&facet_ids, dim)
            };
        }
        #[cfg(not(feature = "parallel"))]
        {
            raw = closure_seq(&facet_ids, dim);
        }

        let arenas: Vec<Arena> = raw
            .into_iter()
            .enumerate()
            .map(|(k, data)| Arena {
                stride: k + 1,
                data: sort_dedup_chunks(data, k + 1),
            })
            .collect();
        ksa_obs::count(
            Counter::FacesClosed,
            arenas.iter().map(|a| a.count() as u64).sum(),
        );
        let mut ranks = vec![None; dim + 2];
        ranks[0] = Some(1); // augmentation on a non-void complex
        ranks[dim + 1] = Some(0);
        ChainComplex { arenas, ranks }
    }

    /// Whether the underlying complex was void.
    pub fn is_void(&self) -> bool {
        self.arenas.is_empty()
    }

    /// The complex's dimension (`−1` when void).
    pub fn dim(&self) -> isize {
        self.arenas.len() as isize - 1
    }

    /// Number of `k`-simplexes in the closure (0 outside `0..=dim`).
    pub fn simplex_count(&self, k: usize) -> usize {
        self.arenas.get(k).map_or(0, Arena::count)
    }

    /// The sparse boundary rows of `∂_k`: row `r` holds the ascending
    /// arena positions (in dimension `k−1`) of the faces of the `r`-th
    /// `k`-simplex.
    fn boundary_rows(&self, k: usize) -> Vec<Vec<u32>> {
        let (upper, lower) = (&self.arenas[k], &self.arenas[k - 1]);
        let rows: Vec<Vec<u32>> = (0..upper.count())
            .map(|r| {
                let chunk = upper.row(r);
                let mut row: Vec<u32> = (0..chunk.len())
                    .map(|skip| {
                        lower
                            .position_skipping(chunk, skip)
                            .expect("closure contains every face") as u32
                    })
                    .collect();
                row.sort_unstable();
                row
            })
            .collect();
        ksa_obs::count(Counter::BoundaryRows, rows.len() as u64);
        ksa_obs::count(
            Counter::BoundaryNnz,
            rows.iter().map(|r| r.len() as u64).sum(),
        );
        rows
    }

    /// Computes the rank of `∂_k` without touching the cache (pure, so
    /// the parallel Betti fan-out can share `&self`).
    fn compute_rank(&self, k: usize) -> usize {
        let _span = ksa_obs::span("chain", || "rank_reduce").arg("dim", k as u64);
        let mut ech = Echelon::default();
        for row in self.boundary_rows(k) {
            ech.absorb(row);
        }
        ksa_obs::count(Counter::RanksComputed, 1);
        ech.rank()
    }

    /// Reduces `∂_k` like [`ChainComplex::compute_rank`] while
    /// recording the rank witness for certification. Absorption runs in
    /// canonical arena order, so the witness is schedule-invariant.
    fn compute_rank_witnessed(&self, k: usize) -> ksa_cert::RankWitness {
        // Same span name as the plain reduction — the trace contract
        // names `rank_reduce` as *the* rank-reduction span; the
        // `witnessed` arg distinguishes the certified producer.
        let _span = ksa_obs::span("chain", || "rank_reduce")
            .arg("dim", k as u64)
            .arg("witnessed", 1);
        let mut ech = WitnessEchelon::default();
        for (i, row) in self.boundary_rows(k).into_iter().enumerate() {
            ech.absorb(row, i as u32);
        }
        ksa_obs::count(Counter::RanksComputed, 1);
        ksa_cert::RankWitness {
            k: k as u32,
            rank: ech.ech.rank() as u32,
            basis: ech.ech.rows,
            combo: ech.combos,
        }
    }

    /// The cached rank of `∂_k`, reducing it on first use.
    fn rank_boundary(&mut self, k: usize) -> usize {
        if let Some(r) = self.ranks[k] {
            return r;
        }
        let r = self.compute_rank(k);
        self.ranks[k] = Some(r);
        r
    }

    /// The reduced Betti number `b̃_k = c_k − rank ∂_k − rank ∂_{k+1}`.
    fn betti_at(&mut self, k: usize) -> usize {
        self.simplex_count(k) - self.rank_boundary(k) - self.rank_boundary(k + 1)
    }

    /// The full reduced Z/2 Betti vector `b̃_0, …, b̃_dim` (empty for the
    /// void complex). With the `parallel` feature, the not-yet-cached
    /// boundary reductions fan out per dimension on `ksa-exec`.
    pub fn reduced_betti(&mut self) -> Vec<usize> {
        if self.is_void() {
            return Vec::new();
        }
        let dim = self.arenas.len() - 1;
        #[cfg(feature = "parallel")]
        {
            let missing: Vec<usize> = (1..=dim).filter(|&k| self.ranks[k].is_none()).collect();
            if missing.len() > 1 {
                let this: &Self = self;
                let computed: Vec<usize> =
                    missing.par_iter().map(|&k| this.compute_rank(k)).collect();
                for (&k, r) in missing.iter().zip(computed) {
                    self.ranks[k] = Some(r);
                }
            }
        }
        (0..=dim).map(|k| self.betti_at(k)).collect()
    }

    /// The homological [`Connectivity`] verdict, reducing boundaries
    /// dimension by dimension and stopping at the first non-zero Betti
    /// number.
    pub fn connectivity(&mut self) -> Connectivity {
        self.connectivity_up_to(self.dim())
    }

    /// Early-exit connectivity: decides the verdict *up to* `k`. Reduces
    /// `∂_1, ∂_2, …` lazily and returns
    ///
    /// * [`Connectivity::Empty`] for the void complex;
    /// * `Exactly(c)` with `c < min(k, dim)` — exact, agrees with the
    ///   full [`ChainComplex::connectivity`];
    /// * `AtLeast(min(k, dim))` when every reduced Betti number through
    ///   `min(k, dim)` vanishes — the reduction stopped there, so higher
    ///   homology is deliberately left unexamined (DESIGN.md §7).
    ///
    /// The cross-checks only ever need `measured ≥ predicted l` for
    /// small `l`, which is exactly the query this answers without paying
    /// for the top-dimension ranks.
    pub fn connectivity_up_to(&mut self, k: isize) -> Connectivity {
        if self.is_void() {
            return Connectivity::Empty;
        }
        // Clamp below at −1: any non-void complex is (−1)-connected, and
        // `AtLeast(c)` with `c < −1` is outside the verdict's domain.
        let cap = k.min(self.dim()).max(-1);
        for j in 0..=cap {
            if self.betti_at(j as usize) != 0 {
                // The scan decided before reaching its cap: dimensions
                // above j were never reduced.
                ksa_obs::count(Counter::ConnectivityEarlyExits, 1);
                return Connectivity::Exactly(j - 1);
            }
        }
        Connectivity::AtLeast(cap)
    }

    /// The reduced Betti vector of the `k`-skeleton, answered from the
    /// parent's arenas and rank cache: `∂_j` of the skeleton *is* `∂_j`
    /// of the parent for `j ≤ k`, and the skeleton's top dimension has no
    /// `(k+1)`-simplexes, so `b̃_k = c_k − rank ∂_k`. No face re-closure,
    /// no new matrices — agrees with
    /// `reduced_betti_numbers(&complex.skeleton(k))` bit for bit.
    pub fn skeleton_betti(&mut self, k: isize) -> Vec<usize> {
        if self.is_void() || k < 0 {
            return Vec::new();
        }
        if k >= self.dim() {
            return self.reduced_betti();
        }
        let kk = k as usize;
        let mut betti: Vec<usize> = (0..kk).map(|j| self.betti_at(j)).collect();
        betti.push(self.simplex_count(kk) - self.rank_boundary(kk));
        betti
    }

    /// The connectivity verdict of the `k`-skeleton, from the parent's
    /// cached ranks (see [`ChainComplex::skeleton_betti`]). Agrees with
    /// `connectivity(&complex.skeleton(k))`.
    pub fn skeleton_connectivity(&mut self, k: isize) -> Connectivity {
        if self.is_void() || k < 0 {
            return Connectivity::Empty;
        }
        let cap = k.min(self.dim());
        for j in 0..cap {
            if self.betti_at(j as usize) != 0 {
                return Connectivity::Exactly(j - 1);
            }
        }
        // Top skeleton dimension: kernel dimension only.
        if self.simplex_count(cap as usize) - self.rank_boundary(cap as usize) != 0 {
            return Connectivity::Exactly(cap - 1);
        }
        Connectivity::AtLeast(cap)
    }

    /// Re-keys the arenas into a caller-supplied vertex-id space: chunk
    /// values map through `map` and chunks re-sort under the new ids.
    /// Used by [`ChainSweep`] to compare arenas across complexes.
    fn rekeyed_arenas(&self, map: &[u32]) -> Vec<Arena> {
        self.arenas
            .iter()
            .map(|a| {
                let mut data = Vec::with_capacity(a.data.len());
                for i in 0..a.count() {
                    let mut chunk: Vec<u32> = a.row(i).iter().map(|&v| map[v as usize]).collect();
                    chunk.sort_unstable();
                    data.extend(chunk);
                }
                Arena {
                    stride: a.stride,
                    data: sort_dedup_chunks(data, a.stride),
                }
            })
            .collect()
    }
}

/// Certified reduced Betti computation: the Betti vector of `complex`
/// (identical to [`ChainComplex::reduced_betti`] — same engine, same
/// canonical absorption order) together with a [`ksa_cert::HomologyCert`]
/// whose standalone checker re-derives every rank bound from the facet
/// list alone (DESIGN.md §11). The certificate's connectivity field
/// uses the cross-check convention: first nonzero reduced Betti index
/// minus one, or the dimension when the whole table vanishes.
///
/// Returns `None` for the void complex (nothing to certify).
///
/// With the `parallel` feature the per-dimension witnessed reductions
/// fan out on `ksa-exec`; each dimension absorbs sequentially, so the
/// witness — and therefore the certificate — is schedule-invariant.
pub fn reduced_betti_certified<V: View>(
    complex: &Complex<V>,
    label: &str,
) -> Option<(Vec<usize>, ksa_cert::HomologyCert)> {
    let mut cc = ChainComplex::from_complex(complex);
    if cc.is_void() {
        return None;
    }
    let dim = cc.arenas.len() - 1;
    // Interned facets, exactly as `from_complex` interns vertices.
    let verts: Vec<Vertex<V>> = complex.vertices();
    let facet_ids: Vec<Vec<u32>> = complex
        .facets()
        .map(|f| {
            let mut ids: Vec<u32> = f
                .vertices()
                .iter()
                .map(|v| verts.binary_search(v).expect("facet vertex is interned") as u32)
                .collect();
            ids.sort_unstable();
            ids
        })
        .collect();
    let dims: Vec<usize> = (1..=dim).collect();
    let witnesses: Vec<ksa_cert::RankWitness>;
    #[cfg(feature = "parallel")]
    {
        let this: &ChainComplex = &cc;
        witnesses = dims
            .par_iter()
            .map(|&k| this.compute_rank_witnessed(k))
            .collect();
    }
    #[cfg(not(feature = "parallel"))]
    {
        witnesses = dims.iter().map(|&k| cc.compute_rank_witnessed(k)).collect();
    }
    for w in &witnesses {
        cc.ranks[w.k as usize] = Some(w.rank as usize);
    }
    let betti = cc.reduced_betti();
    let connectivity = betti
        .iter()
        .position(|&b| b != 0)
        .map(|k| k as i64 - 1)
        .unwrap_or(dim as i64);
    ksa_obs::count(Counter::CertsEmitted, 1);
    let cert = ksa_cert::HomologyCert {
        label: label.to_string(),
        facets: facet_ids,
        betti: betti.iter().map(|&b| b as u64).collect(),
        connectivity,
        ranks: witnesses,
    };
    Some((betti, cert))
}

/// The per-dimension subset chunks one facet contributes to the closure.
fn facet_subsets(ids: &[u32], dim: usize) -> Vec<Vec<u32>> {
    let m = ids.len();
    let mut acc: Vec<Vec<u32>> = vec![Vec::new(); dim + 1];
    for mask in 1u64..(1u64 << m) {
        let k = mask.count_ones() as usize - 1;
        let bucket = &mut acc[k];
        for (i, &id) in ids.iter().enumerate() {
            if (mask >> i) & 1 == 1 {
                bucket.push(id);
            }
        }
    }
    acc
}

/// Sequential closure enumeration over all facets.
fn closure_seq(facet_ids: &[Vec<u32>], dim: usize) -> Vec<Vec<u32>> {
    let mut acc: Vec<Vec<u32>> = vec![Vec::new(); dim + 1];
    for ids in facet_ids {
        for (k, chunk) in facet_subsets(ids, dim).into_iter().enumerate() {
            acc[k].extend(chunk);
        }
    }
    acc
}

/// One step of a [`ChainSweep`]: the complex's homology verdicts plus
/// whether the engine resumed the previous step's row bases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepStep {
    /// The reduced Z/2 Betti numbers of this step's complex.
    pub betti: Vec<usize>,
    /// The homological connectivity verdict (derived from `betti`, so
    /// identical to [`crate::connectivity::connectivity`] on the same
    /// complex).
    pub connectivity: Connectivity,
    /// Whether this step's ranks resumed the previous step's reduced row
    /// bases (the cross-step embedding held) instead of reducing from
    /// scratch.
    pub resumed: bool,
}

/// Rank reuse across a *sequence* of complexes (the round sweep): when
/// step `t`'s simplexes all appear in step `t+1` — checked exactly, per
/// dimension, in a shared vertex-id space — the boundary rows of the
/// shared simplexes are identical, so step `t`'s echelon bases absorb
/// only the fresh rows and the ranks resume instead of restarting.
///
/// When the embedding fails (iterated-interpretation complexes re-intern
/// their views every round, so their raw id patterns rarely nest — see
/// DESIGN.md §7.3), the step falls back to a fresh [`ChainComplex`]
/// reduction; the subset check is a linear merge over the arenas, so the
/// fallback costs no more than not having a sweep at all. Either way the
/// verdicts are exactly those of the per-complex engine.
///
/// # Examples
///
/// ```
/// use ksa_topology::chain::ChainSweep;
/// use ksa_topology::complex::Complex;
/// use ksa_topology::simplex::{Simplex, Vertex};
///
/// let tri = |a: usize, b: usize, c: usize| {
///     Simplex::new(vec![
///         Vertex::new(a, ()), Vertex::new(b, ()), Vertex::new(c, ()),
///     ]).unwrap()
/// };
/// // A growing filtration: each step contains the previous one.
/// let steps = [
///     Complex::from_facets(vec![tri(0, 1, 2)]),
///     Complex::from_facets(vec![tri(0, 1, 2), tri(1, 2, 3)]),
///     Complex::from_facets(vec![tri(0, 1, 2), tri(1, 2, 3), tri(2, 3, 4)]),
/// ];
/// let mut sweep = ChainSweep::new();
/// let first = sweep.push(&steps[0]);
/// let second = sweep.push(&steps[1]);
/// let third = sweep.push(&steps[2]);
/// assert!(!first.resumed);  // nothing to resume from
/// assert!(!second.resumed); // first embedding step builds the bases…
/// assert!(third.resumed);   // …which later steps extend in place
/// assert_eq!(third.betti, vec![0, 0, 0]); // glued disks stay acyclic
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChainSweep<V: View> {
    /// Global vertex interner (append-only, first-appearance order), the
    /// shared id space that makes arenas comparable across steps.
    vert_ids: HashMap<Vertex<V>, u32>,
    /// Previous step's arenas, re-keyed to global vertex ids.
    prev: Option<Vec<Arena>>,
    /// Per-dimension global column interners (dimension `k` holds the
    /// `k`-simplexes seen as *faces*, i.e. columns of some `∂_{k+1}`).
    cols: Vec<HashMap<Vec<u32>, u32>>,
    /// Warm per-dimension bases spanning exactly the previous step's
    /// boundary rows; `None` while cold (after a fallback).
    bases: Option<Vec<Echelon>>,
    /// Cooperative cancellation, polled before every rank reduction
    /// (`None` = never polled, zero overhead).
    cancel: Option<ksa_graphs::cancel::CancelToken>,
}

impl<V: View> ChainSweep<V> {
    /// A fresh sweep with no history.
    pub fn new() -> Self {
        ChainSweep {
            vert_ids: HashMap::new(),
            prev: None,
            cols: Vec::new(),
            bases: None,
            cancel: None,
        }
    }

    /// A fresh sweep that polls `cancel` before every boundary-rank
    /// reduction — the engine's per-unit-of-work checkpoint. Use
    /// [`try_push`](Self::try_push) to observe the interruption; a token
    /// that never fires leaves every step bit-identical to an
    /// uncancellable sweep.
    pub fn with_cancel(cancel: ksa_graphs::cancel::CancelToken) -> Self {
        ChainSweep {
            cancel: Some(cancel),
            ..ChainSweep::new()
        }
    }

    fn checkpoint(&self) -> Result<(), ksa_graphs::cancel::Interrupted> {
        match &self.cancel {
            Some(token) => token.checkpoint(),
            None => Ok(()),
        }
    }

    /// Feeds the next complex of the sequence through the engine.
    ///
    /// # Panics
    ///
    /// If a token installed via [`with_cancel`](Self::with_cancel) has
    /// fired — cancellable callers use [`try_push`](Self::try_push).
    pub fn push(&mut self, complex: &Complex<V>) -> SweepStep {
        self.try_push(complex)
            .expect("cancellable sweeps must use try_push")
    }

    /// [`push`](Self::push), stopping at the next per-rank-reduction
    /// checkpoint once the sweep's token has fired. An interruption may
    /// leave the warm bases discarded (the engine goes cold), which is
    /// harmless: a fired token stays fired, so every later push reports
    /// the same interruption at its entry checkpoint.
    ///
    /// # Errors
    ///
    /// The token's [`Interrupted`](ksa_graphs::cancel::Interrupted)
    /// reason; infallible for sweeps built with [`new`](Self::new).
    pub fn try_push(
        &mut self,
        complex: &Complex<V>,
    ) -> Result<SweepStep, ksa_graphs::cancel::Interrupted> {
        self.checkpoint()?;
        let mut chain = ChainComplex::from_complex(complex);
        if chain.is_void() {
            self.prev = Some(Vec::new());
            self.bases = None;
            return Ok(SweepStep {
                betti: Vec::new(),
                connectivity: Connectivity::Empty,
                resumed: false,
            });
        }

        // Re-key this step's arenas into the sweep-global vertex space.
        let verts = complex.vertices();
        let map: Vec<u32> = verts
            .iter()
            .map(|v| {
                let next = self.vert_ids.len() as u32;
                *self.vert_ids.entry(v.clone()).or_insert(next)
            })
            .collect();
        let cur = chain.rekeyed_arenas(&map);
        let dim = cur.len() - 1;

        let embeds = self.prev.as_ref().is_some_and(|prev| {
            prev.len() <= cur.len()
                && prev
                    .iter()
                    .zip(&cur)
                    .all(|(p, c)| chunks_subset(&p.data, &c.data, p.stride))
        });

        let step = if embeds {
            // Resume the bases when they survived from the last step
            // (warm ⇒ they span exactly the previous step's boundary
            // rows), or build them from scratch on the first embedding
            // step after a cold start — either way by absorbing this
            // step's rows that are not already in the span.
            let warm = self.bases.is_some();
            let mut bases = self.bases.take().unwrap_or_default();
            bases.resize_with(dim + 1, Echelon::default);
            if self.cols.len() < dim {
                self.cols.resize_with(dim, HashMap::new);
            }
            let empty = Arena {
                stride: 0,
                data: Vec::new(),
            };
            for k in 1..=dim {
                self.checkpoint()?;
                let _span = ksa_obs::span("chain", || "rank_resume").arg("dim", k as u64);
                let prev_k = self.prev.as_ref().and_then(|p| p.get(k)).unwrap_or(&empty);
                let skip_shared = warm && prev_k.count() > 0;
                // Both arenas are sorted, so skipping the already-absorbed
                // shared chunks is a single linear merge: `j` chases the
                // current row through the previous arena.
                let mut j = 0usize;
                let (mut fresh_rows, mut fresh_nnz) = (0u64, 0u64);
                for i in 0..cur[k].count() {
                    let chunk = cur[k].row(i);
                    if skip_shared {
                        while j < prev_k.count() && prev_k.row(j) < chunk {
                            j += 1;
                        }
                        if j < prev_k.count() && prev_k.row(j) == chunk {
                            j += 1;
                            continue; // already absorbed in an earlier step
                        }
                    }
                    let mut row: Vec<u32> = (0..chunk.len())
                        .map(|skip| {
                            let face: Vec<u32> = chunk
                                .iter()
                                .enumerate()
                                .filter(|&(m, _)| m != skip)
                                .map(|(_, &v)| v)
                                .collect();
                            let next = self.cols[k - 1].len() as u32;
                            *self.cols[k - 1].entry(face).or_insert(next)
                        })
                        .collect();
                    row.sort_unstable();
                    fresh_rows += 1;
                    fresh_nnz += row.len() as u64;
                    bases[k].absorb(row);
                }
                ksa_obs::count(Counter::BoundaryRows, fresh_rows);
                ksa_obs::count(Counter::BoundaryNnz, fresh_nnz);
                ksa_obs::count(Counter::RanksComputed, 1);
            }
            // Betti from the resumed ranks; rank ∂_0 = 1, ∂_{dim+1} = 0.
            let rank = |k: usize| -> usize {
                if k == 0 {
                    1
                } else if k > dim {
                    0
                } else {
                    bases[k].rank()
                }
            };
            let betti: Vec<usize> = (0..=dim)
                .map(|k| cur[k].count() - rank(k) - rank(k + 1))
                .collect();
            self.bases = Some(bases);
            let connectivity = Connectivity::from_reduced_betti(&betti);
            SweepStep {
                betti,
                connectivity,
                resumed: warm,
            }
        } else {
            // Fallback: fresh per-complex reduction, bases go cold.
            self.bases = None;
            if self.cancel.is_some() {
                // Cancellable sweeps keep the per-rank-reduction poll
                // granularity: warm each dimension's cached rank one at
                // a time (checkpoint between), then read the identical
                // Betti vector off the caches.
                for k in 1..=chain.dim() as usize {
                    self.checkpoint()?;
                    chain.rank_boundary(k);
                }
            }
            let betti = chain.reduced_betti();
            let connectivity = Connectivity::from_reduced_betti(&betti);
            SweepStep {
                betti,
                connectivity,
                resumed: false,
            }
        };

        self.prev = Some(cur);
        Ok(step)
    }
}

/// Whether every `stride`-chunk of sorted flat `a` appears in sorted flat
/// `b` (a linear merge).
fn chunks_subset(a: &[u32], b: &[u32], stride: usize) -> bool {
    if stride == 0 {
        return a.is_empty();
    }
    let (na, nb) = (a.len() / stride, b.len() / stride);
    let (mut i, mut j) = (0usize, 0usize);
    while i < na {
        let ca = &a[i * stride..(i + 1) * stride];
        loop {
            if j == nb {
                return false;
            }
            let cb = &b[j * stride..(j + 1) * stride];
            match cb.cmp(ca) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    break;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        i += 1;
    }
    true
}

/// Maps a complex straight to its chain engine — sugar for
/// [`ChainComplex::from_complex`].
impl<V: View> From<&Complex<V>> for ChainComplex {
    fn from(complex: &Complex<V>) -> Self {
        ChainComplex::from_complex(complex)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homology::reduced_betti_numbers_seq;
    use crate::simplex::Simplex;

    fn simplex(colors: &[usize]) -> Simplex<u32> {
        Simplex::new(colors.iter().map(|&c| Vertex::new(c, 0u32)).collect()).unwrap()
    }

    #[test]
    fn arenas_enumerate_the_closure() {
        let c = Complex::of_simplex(simplex(&[0, 1, 2]));
        let chain = ChainComplex::from_complex(&c);
        assert_eq!(chain.dim(), 2);
        assert_eq!(chain.simplex_count(0), 3);
        assert_eq!(chain.simplex_count(1), 3);
        assert_eq!(chain.simplex_count(2), 1);
        assert_eq!(chain.simplex_count(3), 0);
    }

    #[test]
    fn betti_matches_the_seq_reference() {
        let cases = vec![
            Complex::of_simplex(simplex(&[0])),
            Complex::boundary_of(&simplex(&[0, 1, 2])),
            Complex::boundary_of(&simplex(&[0, 1, 2, 3])),
            Complex::from_facets(vec![simplex(&[0, 1]), simplex(&[2, 3])]),
            Complex::boundary_of(&simplex(&[0, 1, 2]))
                .union(&Complex::boundary_of(&simplex(&[0, 3, 4]))),
        ];
        for c in cases {
            let mut chain = ChainComplex::from_complex(&c);
            assert_eq!(
                chain.reduced_betti(),
                reduced_betti_numbers_seq(&c),
                "{c:?}"
            );
        }
    }

    #[test]
    fn certified_betti_matches_and_checks() {
        let tet = simplex(&[0, 1, 2, 3]);
        for (complex, label) in [
            (Complex::boundary_of(&tet), "sphere"),
            (Complex::of_simplex(tet.clone()), "ball"),
            (
                Complex::from_facets(vec![simplex(&[0, 1]), simplex(&[0, 2]), simplex(&[1, 2])]),
                "circle",
            ),
            (
                Complex::from_facets(vec![simplex(&[0]), simplex(&[1]), simplex(&[2])]),
                "three-points",
            ),
        ] {
            let (betti, cert) = reduced_betti_certified(&complex, label).unwrap();
            assert_eq!(
                betti,
                ChainComplex::from_complex(&complex).reduced_betti(),
                "{label}"
            );
            assert_eq!(ksa_cert::check_homology(&cert), Ok(()), "{label}");
            let wrapped = ksa_cert::Cert::Homology(cert);
            assert_eq!(
                ksa_cert::Cert::parse(&wrapped.to_text()).unwrap(),
                wrapped,
                "{label}"
            );
        }
        assert!(reduced_betti_certified(&Complex::<u32>::void(), "void").is_none());
    }

    #[test]
    fn void_complex() {
        let mut chain = ChainComplex::from_complex(&Complex::<u32>::void());
        assert!(chain.is_void());
        assert_eq!(chain.dim(), -1);
        assert_eq!(chain.reduced_betti(), Vec::<usize>::new());
        assert_eq!(chain.connectivity(), Connectivity::Empty);
        assert_eq!(chain.skeleton_betti(1), Vec::<usize>::new());
        assert_eq!(chain.skeleton_connectivity(1), Connectivity::Empty);
    }

    #[test]
    fn early_exit_stops_at_the_first_hole() {
        // Wedge of a circle and a 3-sphere: b̃ = [0, 1, 0, 1].
        let circle = Complex::boundary_of(&simplex(&[0, 1, 2]));
        let sphere = Complex::boundary_of(&simplex(&[2, 3, 4, 5, 6]));
        let wedge = circle.union(&sphere);
        let mut chain = ChainComplex::from_complex(&wedge);
        assert_eq!(chain.connectivity_up_to(0), Connectivity::AtLeast(0));
        assert_eq!(chain.connectivity_up_to(1), Connectivity::Exactly(0));
        // The scan stopped at b̃_1 ≠ 0: ∂_3 was never reduced.
        assert_eq!(chain.ranks[3], None);
        assert_eq!(chain.connectivity(), Connectivity::Exactly(0));
        assert_eq!(chain.reduced_betti(), vec![0, 1, 0, 1]);
    }

    #[test]
    fn connectivity_up_to_caps_at_the_dimension() {
        let solid = Complex::of_simplex(simplex(&[0, 1, 2]));
        let mut chain = ChainComplex::from_complex(&solid);
        assert_eq!(chain.connectivity_up_to(100), Connectivity::AtLeast(2));
        assert_eq!(chain.connectivity_up_to(-1), Connectivity::AtLeast(-1));
        // Below −1 the verdict clamps: AtLeast(−2) would leave the
        // enum's domain (and read as "void" to numeric consumers).
        assert_eq!(chain.connectivity_up_to(-7), Connectivity::AtLeast(-1));
    }

    #[test]
    fn skeleton_queries_match_materialized_skeleta() {
        let c = Complex::of_simplex(simplex(&[0, 1, 2, 3]));
        let mut chain = ChainComplex::from_complex(&c);
        for k in 0..=4 {
            let sk = c.skeleton(k);
            assert_eq!(
                chain.skeleton_betti(k),
                reduced_betti_numbers_seq(&sk),
                "k = {k}"
            );
            assert_eq!(
                chain.skeleton_connectivity(k),
                crate::connectivity::connectivity(&sk),
                "k = {k}"
            );
        }
    }

    #[test]
    fn sweep_resumes_on_a_growing_filtration() {
        // Grow a triangulated strip one triangle at a time.
        let steps: Vec<Complex<u32>> = (1..=4)
            .map(|t| Complex::from_facets((0..t).map(|i| simplex(&[i, i + 1, i + 2]))))
            .collect();
        let mut sweep = ChainSweep::new();
        for (t, c) in steps.iter().enumerate() {
            let step = sweep.push(c);
            assert_eq!(step.betti, reduced_betti_numbers_seq(c), "step {t}");
            // Step 0 has no history and step 1 builds the bases; from
            // step 2 on the warm bases resume.
            assert_eq!(step.resumed, t > 1, "step {t}");
            assert_eq!(
                step.connectivity,
                crate::connectivity::connectivity(c),
                "step {t}"
            );
        }
    }

    #[test]
    fn sweep_falls_back_when_the_embedding_breaks() {
        let mut sweep = ChainSweep::new();
        let a = Complex::boundary_of(&simplex(&[0, 1, 2]));
        let b = Complex::boundary_of(&simplex(&[3, 4, 5])); // disjoint from a
        assert!(!sweep.push(&a).resumed);
        let second = sweep.push(&b); // a ⊄ b: fallback
        assert!(!second.resumed);
        assert_eq!(second.betti, reduced_betti_numbers_seq(&b));
        // Growing again from b: the first embedding step warms the
        // bases, the next one resumes them.
        let c = b.union(&Complex::of_simplex(simplex(&[3, 4, 5])));
        let third = sweep.push(&c);
        assert!(!third.resumed);
        assert_eq!(third.betti, reduced_betti_numbers_seq(&c));
        let d = c.union(&Complex::of_simplex(simplex(&[5, 6])));
        let fourth = sweep.push(&d);
        assert!(fourth.resumed);
        assert_eq!(fourth.betti, reduced_betti_numbers_seq(&d));
    }

    #[test]
    fn sweep_handles_dimension_growth() {
        let mut sweep = ChainSweep::new();
        let edge = Complex::of_simplex(simplex(&[0, 1]));
        let filled = edge.union(&Complex::of_simplex(simplex(&[0, 1, 2])));
        let bigger = filled.union(&Complex::of_simplex(simplex(&[2, 3])));
        assert!(!sweep.push(&edge).resumed);
        let step = sweep.push(&filled);
        assert!(!step.resumed); // warms the bases across the new dim 2
        assert_eq!(step.betti, reduced_betti_numbers_seq(&filled));
        let step = sweep.push(&bigger);
        assert!(step.resumed);
        assert_eq!(step.betti, reduced_betti_numbers_seq(&bigger));
    }

    #[test]
    fn sweep_void_steps() {
        let mut sweep = ChainSweep::new();
        let void = Complex::<u32>::void();
        let step = sweep.push(&void);
        assert_eq!(step.betti, Vec::<usize>::new());
        assert_eq!(step.connectivity, Connectivity::Empty);
        // A void step resets history; the next complex reduces fresh.
        let c = Complex::boundary_of(&simplex(&[0, 1, 2]));
        let step = sweep.push(&c);
        assert!(!step.resumed);
        assert_eq!(step.betti, reduced_betti_numbers_seq(&c));
    }
}
