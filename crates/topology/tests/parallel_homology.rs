//! Parallel-vs-sequential determinism for the homology pipeline.
//!
//! The `parallel` feature's contract (DESIGN.md §4) is that every
//! topology result — Betti numbers, GF(2) ranks, materialized complexes —
//! is **bit-identical** to the sequential reference at any pool size.
//! These tests pin that contract at pool sizes 1, 2 and 8: size 1 runs
//! every engine fast path inline, size 2 exercises stealing, size 8
//! oversubscribes the CI machine so task interleavings actually vary.
//!
//! (The CI determinism job covers the same contract end-to-end by
//! diffing `experiments --json` payloads across `KSA_THREADS`.)

#![cfg(feature = "parallel")]

use ksa_exec::ThreadPool;
use ksa_topology::complex::Complex;
use ksa_topology::gf2::Gf2Matrix;
use ksa_topology::homology::{component_count, reduced_betti_numbers, reduced_betti_numbers_seq};
use ksa_topology::nerve::nerve_complex;
use ksa_topology::pseudosphere::Pseudosphere;
use ksa_topology::simplex::{Simplex, Vertex};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The shared pools (1/2/8 workers), started once for the whole test
/// binary so proptest cases don't churn threads.
fn pools() -> &'static [ThreadPool] {
    static POOLS: OnceLock<Vec<ThreadPool>> = OnceLock::new();
    POOLS.get_or_init(|| [1, 2, 8].into_iter().map(ThreadPool::new).collect())
}

/// Strategy: a small complex over colors 0..5 with u8 views.
fn small_complex() -> impl Strategy<Value = Complex<u8>> {
    let simplex = prop::collection::btree_map(0usize..5, 0u8..3, 1..=4).prop_map(|m| {
        Simplex::new(m.into_iter().map(|(c, v)| Vertex::new(c, v)).collect())
            .expect("btree keys are distinct colors")
    });
    prop::collection::vec(simplex, 1..6).prop_map(Complex::from_facets)
}

/// A dense-ish pseudo-random GF(2) matrix whose bit at `(r, c)` is a pure
/// hash of the seed and the coordinates — reproducible under any fill
/// order, which is exactly what the parallel row fill requires.
fn seeded_matrix(seed: u64, rows: usize, cols: usize) -> Gf2Matrix {
    let mix = move |r: usize, c: usize| -> u64 {
        let mut x = seed ^ ((r as u64) << 32 | c as u64);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    };
    Gf2Matrix::from_row_fn(rows, cols, |r| {
        (0..cols).filter(|&c| mix(r, c) % 3 == 0).collect()
    })
}

/// The m-color binary-view pseudosphere (an (m−1)-cross-polytope
/// boundary, i.e. an (m−1)-sphere) — big enough that the parallel facet
/// materialization, face closure and blocked GF(2) elimination all cross
/// their grains.
fn binary_pseudosphere(m: usize) -> Complex<u8> {
    Pseudosphere::new((0..m).map(|c| (c, vec![0u8, 1])).collect())
        .expect("distinct colors")
        .to_complex()
}

#[test]
fn sphere_betti_identical_across_pool_sizes() {
    let seq = {
        let c = binary_pseudosphere(7);
        reduced_betti_numbers_seq(&c)
    };
    // S^6: one 6-dimensional hole, nothing below.
    assert_eq!(seq, vec![0, 0, 0, 0, 0, 0, 1]);
    for pool in pools() {
        let par = pool.install(|| {
            let c = binary_pseudosphere(7);
            reduced_betti_numbers(&c)
        });
        assert_eq!(par, seq, "pool size {}", pool.num_threads());
    }
}

#[test]
fn large_matrix_rank_identical_across_pool_sizes() {
    let m = seeded_matrix(0xdead_beef, 700, 900);
    let reference = m.rank_seq();
    for pool in pools() {
        let par = pool.install(|| m.rank());
        assert_eq!(par, reference, "pool size {}", pool.num_threads());
    }
}

#[test]
fn nerve_identical_across_pool_sizes() {
    // A cover with enough members to cross the frontier grain.
    let cover: Vec<Complex<u8>> = (0..6)
        .map(|i| {
            Complex::of_simplex(
                Simplex::new(vec![Vertex::new(i, 0u8), Vertex::new(i + 1, 0)])
                    .expect("distinct colors"),
            )
        })
        .collect();
    let seq = nerve_complex(&cover);
    for pool in pools() {
        let par = pool.install(|| nerve_complex(&cover));
        assert_eq!(par, seq, "pool size {}", pool.num_threads());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn betti_numbers_identical_across_pool_sizes(c in small_complex()) {
        let reference = reduced_betti_numbers_seq(&c);
        for pool in pools() {
            let par = pool.install(|| reduced_betti_numbers(&c));
            prop_assert_eq!(&par, &reference, "pool size {}", pool.num_threads());
        }
        // And b̃_0 stays consistent with the exact component count.
        prop_assert_eq!(reference[0] + 1, component_count(&c));
    }

    #[test]
    fn gf2_rank_identical_across_pool_sizes(
        seed in any::<u64>(),
        rows in 1usize..220,
        cols in 1usize..260,
    ) {
        let m = seeded_matrix(seed, rows, cols);
        let reference = m.rank_seq();
        for pool in pools() {
            let par = pool.install(|| m.rank());
            prop_assert_eq!(par, reference, "pool size {}", pool.num_threads());
        }
    }

    #[test]
    fn pseudosphere_materialization_identical_across_pool_sizes(
        views in prop::collection::vec(prop::collection::btree_set(0u8..4, 1..4), 2..6),
    ) {
        let ps = Pseudosphere::new(
            views
                .iter()
                .enumerate()
                .map(|(c, vs)| (c, vs.iter().copied().collect::<Vec<u8>>()))
                .collect(),
        )
        .expect("distinct colors");
        let seq = ps.to_complex();
        for pool in pools() {
            let par = pool.install(|| ps.to_complex());
            prop_assert_eq!(&par, &seq, "pool size {}", pool.num_threads());
        }
    }
}
