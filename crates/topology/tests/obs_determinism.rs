//! Proptests pinning the **deterministic tier** of the `ksa-obs`
//! instrumentation (DESIGN.md §9): the work counters advance by
//! bit-identical deltas for one workload regardless of how the work is
//! scheduled —
//!
//! * across `ksa-exec` pool sizes 1/2/8 (inline fast paths vs real
//!   stealing vs oversubscription), and
//! * between the parallel entry points and their sequential references.
//!
//! The perf tier (steals, parks, portfolio ordering) is deliberately
//! *not* compared — it is scheduling-dependent by design; only the
//! namespace split makes the deterministic diff meaningful.
//!
//! The counters are process-global, so every measured section takes a
//! test-binary-wide lock: a concurrent test's counts bleeding into a
//! delta would be indistinguishable from a real determinism bug.

#![cfg(all(feature = "parallel", feature = "obs"))]

use ksa_exec::ThreadPool;
use ksa_graphs::Digraph;
use ksa_topology::complex::Complex;
use ksa_topology::connectivity::{connectivity, connectivity_seq};
use ksa_topology::homology::{reduced_betti_numbers, reduced_betti_numbers_seq};
use ksa_topology::nerve::nerve_complex;
use ksa_topology::pseudosphere::Pseudosphere;
use ksa_topology::rounds::{protocol_complex_rounds, protocol_complex_rounds_seq};
use ksa_topology::simplex::{Simplex, Vertex};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

const BUDGET: u128 = 10_000_000;

/// The shared pools (1/2/8 workers), started once for the whole test
/// binary so proptest cases don't churn threads.
fn pools() -> &'static [ThreadPool] {
    static POOLS: OnceLock<Vec<ThreadPool>> = OnceLock::new();
    POOLS.get_or_init(|| [1, 2, 8].into_iter().map(ThreadPool::new).collect())
}

/// Serializes measured sections (see module docs).
fn counter_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .expect("counter lock")
}

/// The deterministic-tier delta produced by `work`.
fn det_delta(work: impl FnOnce()) -> Vec<(&'static str, u64)> {
    let before = ksa_obs::snapshot();
    work();
    ksa_obs::snapshot().det_delta(&before)
}

/// Strategy: a small complex over colors 0..5 with u8 views.
fn small_complex() -> impl Strategy<Value = Complex<u8>> {
    let simplex = prop::collection::btree_map(0usize..5, 0u8..3, 1..=4).prop_map(|m| {
        Simplex::new(m.into_iter().map(|(c, v)| Vertex::new(c, v)).collect())
            .expect("btree keys are distinct colors")
    });
    prop::collection::vec(simplex, 1..6).prop_map(Complex::from_facets)
}

/// Strategy: up to two generator digraphs on 3 processes.
fn random_generators() -> impl Strategy<Value = Vec<Digraph>> {
    let graph = prop::collection::btree_set((0usize..3, 0usize..3), 0..7)
        .prop_map(|edges| Digraph::from_edges(3, &edges.into_iter().collect::<Vec<_>>()).unwrap());
    prop::collection::vec(graph, 1..=2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Homology + connectivity through the chain engine: identical
    /// counter deltas at every pool size. (The `_seq` references are a
    /// *different algorithm* — dense scalar GF(2) with its own counting
    /// sites — so they pin verdicts elsewhere, not counters here; the
    /// shared-site parallel-vs-sequential pin lives in the rounds and
    /// GF(2) tests below.)
    #[test]
    fn homology_counters_identical_across_pool_sizes(c in small_complex()) {
        let _guard = counter_lock();
        let mut reference: Option<Vec<(&'static str, u64)>> = None;
        for pool in pools() {
            let delta = det_delta(|| {
                pool.install(|| {
                    reduced_betti_numbers(&c);
                    connectivity(&c);
                });
            });
            match &reference {
                None => reference = Some(delta),
                Some(r) => prop_assert_eq!(
                    &delta, r,
                    "deterministic tier diverged on a {}-worker pool",
                    pool.num_threads()
                ),
            }
        }
        // The different algorithm still reaches the same verdicts.
        let seq = (reduced_betti_numbers_seq(&c), connectivity_seq(&c));
        prop_assert_eq!(seq.0, reduced_betti_numbers(&c));
        prop_assert_eq!(seq.1, connectivity(&c));
    }

    /// The dense GF(2) engine's parallel and sequential eliminations
    /// share the `ranks_computed` site: one count each, any pool size.
    #[test]
    fn gf2_rank_counters_match_par_vs_seq(
        bits in prop::collection::vec(prop::collection::vec(any::<bool>(), 6), 6),
    ) {
        use ksa_topology::gf2::Gf2Matrix;
        let build = || {
            let mut m = Gf2Matrix::zero(6, 6);
            for (r, row) in bits.iter().enumerate() {
                for (c, &b) in row.iter().enumerate() {
                    if b {
                        m.set(r, c);
                    }
                }
            }
            m
        };
        let _guard = counter_lock();
        let seq = det_delta(|| {
            build().rank_seq();
        });
        for pool in pools() {
            let par = det_delta(|| {
                pool.install(|| {
                    build().rank();
                });
            });
            prop_assert_eq!(
                &par, &seq,
                "gf2 deterministic tier diverged on a {}-worker pool",
                pool.num_threads()
            );
        }
    }

    /// Pseudosphere materialization + nerve expansion: the facet
    /// enumeration counters don't depend on the fan-out.
    #[test]
    fn enumeration_counters_identical_across_pool_sizes(
        views in prop::collection::vec(prop::collection::btree_set(0u32..4, 1..=3), 3..=4),
    ) {
        let ps = Pseudosphere::new(
            views
                .into_iter()
                .enumerate()
                .map(|(p, vs)| (p, vs.into_iter().collect()))
                .collect(),
        )
        .unwrap();
        let _guard = counter_lock();
        let mut reference: Option<Vec<(&'static str, u64)>> = None;
        for pool in pools() {
            let delta = det_delta(|| {
                pool.install(|| {
                    let c = ps.to_complex();
                    nerve_complex(&[c.clone(), c]);
                });
            });
            match &reference {
                None => reference = Some(delta),
                Some(r) => prop_assert_eq!(
                    &delta, r,
                    "deterministic tier diverged on a {}-worker pool",
                    pool.num_threads()
                ),
            }
        }
    }

    /// The multi-round pipeline (view interning, facet materialization,
    /// budget admissions): parallel == sequential == every pool size.
    #[test]
    fn rounds_counters_identical_across_pool_sizes(gens in random_generators()) {
        let input = Pseudosphere::new((0..3).map(|p| (p, vec![0u32, 1])).collect())
            .unwrap()
            .to_complex();
        let _guard = counter_lock();
        let reference = det_delta(|| {
            protocol_complex_rounds_seq(&gens, &input, 2, BUDGET).unwrap();
        });
        for pool in pools() {
            let delta = det_delta(|| {
                pool.install(|| {
                    protocol_complex_rounds(&gens, &input, 2, BUDGET).unwrap();
                });
            });
            prop_assert_eq!(
                &delta, &reference,
                "deterministic tier diverged on a {}-worker pool",
                pool.num_threads()
            );
        }
    }
}

/// Oversubscribed repetition: the same pool, invoked repeatedly, keeps
/// producing the same deterministic delta even as steal races land
/// differently run to run.
#[test]
fn repeated_runs_on_one_pool_are_stable() {
    let gens = vec![ksa_graphs::families::cycle(3).unwrap()];
    let input = Pseudosphere::new((0..3).map(|p| (p, vec![0u32, 1])).collect())
        .unwrap()
        .to_complex();
    let pool = &pools()[2]; // 8 workers on a smaller CI box
    let _guard = counter_lock();
    let mut reference: Option<Vec<(&'static str, u64)>> = None;
    for _ in 0..5 {
        let delta = det_delta(|| {
            pool.install(|| {
                let rc = protocol_complex_rounds(&gens, &input, 2, BUDGET).unwrap();
                connectivity(rc.complexes().last().unwrap());
            });
        });
        match &reference {
            None => reference = Some(delta),
            Some(r) => assert_eq!(&delta, r, "deterministic tier unstable across reruns"),
        }
    }
}
