//! The round-1 anchor: `protocol_complex_rounds(…, 1)` must reproduce
//! the seed's `protocol_complex_one_round` **bit for bit** on randomized
//! closed-above models — facet sets (after expanding the interned views)
//! and Betti numbers alike. This pins the new multi-round subsystem to
//! the one-round semantics the paper's Thm 5.4 machinery was verified
//! against (DESIGN.md §6).
//!
//! Runs under every feature combination: with `parallel` off both entry
//! points are sequential; with it on, the anchor doubles as an
//! end-to-end determinism check of the parallel pipeline against the
//! seed implementation.

use ksa_graphs::Digraph;
use ksa_topology::complex::Complex;
use ksa_topology::homology::reduced_betti_numbers;
use ksa_topology::interpretation::protocol_complex_one_round;
use ksa_topology::pseudosphere::Pseudosphere;
use ksa_topology::rounds::{protocol_complex_rounds, protocol_complex_rounds_seq};
use proptest::prelude::*;

const BUDGET: u128 = 10_000_000;

/// Strategy: 1–3 random generator graphs on 3 processes (self-loops are
/// implicit; Digraph adds them).
fn random_generators() -> impl Strategy<Value = Vec<Digraph>> {
    let graph = prop::collection::btree_set((0usize..3, 0usize..3), 0..7)
        .prop_map(|edges| Digraph::from_edges(3, &edges.into_iter().collect::<Vec<_>>()).unwrap());
    prop::collection::vec(graph, 1..=3)
}

/// Strategy: a chromatic input complex on 3 processes — a pseudosphere
/// with 1–2 admissible values per process (the closed-above models'
/// input shape; facets carry every color).
fn random_input() -> impl Strategy<Value = Complex<u32>> {
    prop::collection::vec(prop::collection::btree_set(0u32..3, 1..=2), 3..=3).prop_map(|views| {
        Pseudosphere::new(
            views
                .into_iter()
                .enumerate()
                .map(|(p, vs)| (p, vs.into_iter().collect()))
                .collect(),
        )
        .unwrap()
        .to_complex()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The anchor itself: expanded round-1 facet sets are identical to
    /// the one-round seed implementation.
    #[test]
    fn round_one_facets_match_the_seed(
        gens in random_generators(),
        input in random_input(),
    ) {
        let rc = protocol_complex_rounds(&gens, &input, 1, BUDGET).unwrap();
        let direct = protocol_complex_one_round(&gens, &input, BUDGET).unwrap();
        prop_assert_eq!(rc.expand_round_one(), direct);
    }

    /// And the homology agrees on the interned representation directly:
    /// hash-consing relabels views injectively, so the Betti numbers of
    /// the `Complex<u32>` equal those of the materialized complex.
    #[test]
    fn round_one_betti_match_the_seed(
        gens in random_generators(),
        input in random_input(),
    ) {
        let rc = protocol_complex_rounds(&gens, &input, 1, BUDGET).unwrap();
        let direct = protocol_complex_one_round(&gens, &input, BUDGET).unwrap();
        prop_assert_eq!(
            reduced_betti_numbers(rc.complex_at(1).unwrap()),
            reduced_betti_numbers(&direct)
        );
    }

    /// The sequential reference is pinned to the same anchor (with the
    /// `parallel` feature off this is the same code path; with it on it
    /// keeps the reference honest independently of the parallel entry).
    #[test]
    fn sequential_reference_matches_the_seed(
        gens in random_generators(),
        input in random_input(),
    ) {
        let rc = protocol_complex_rounds_seq(&gens, &input, 1, BUDGET).unwrap();
        let direct = protocol_complex_one_round(&gens, &input, BUDGET).unwrap();
        prop_assert_eq!(rc.expand_round_one(), direct);
    }
}
