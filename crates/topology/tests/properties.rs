//! Property-based tests for the topology substrate.

use ksa_graphs::Digraph;
use ksa_topology::complex::Complex;
use ksa_topology::connectivity::{homological_connectivity, is_k_connected};
use ksa_topology::homology::{component_count, reduced_betti_numbers};
use ksa_topology::interpretation::{interpret_simplex, interpreted_pseudosphere};
use ksa_topology::pseudosphere::Pseudosphere;
use ksa_topology::simplex::{Simplex, Vertex};
use ksa_topology::uninterpreted::{closed_above_pseudosphere, uninterpreted_simplex};
use proptest::prelude::*;

/// Strategy: a small complex over colors 0..5 with u8 views.
fn small_complex() -> impl Strategy<Value = Complex<u8>> {
    let vertex = (0usize..5, 0u8..3).prop_map(|(c, v)| Vertex::new(c, v));
    let simplex = prop::collection::btree_map(0usize..5, 0u8..3, 1..=4).prop_map(|m| {
        Simplex::new(m.into_iter().map(|(c, v)| Vertex::new(c, v)).collect())
            .expect("btree keys are distinct colors")
    });
    let _ = vertex;
    prop::collection::vec(simplex, 1..6).prop_map(Complex::from_facets)
}

fn small_digraph() -> impl Strategy<Value = Digraph> {
    (2usize..=4).prop_flat_map(|n| {
        prop::collection::vec(any::<bool>(), n * n).prop_map(move |edges| {
            let mut g = Digraph::empty(n).expect("valid n");
            for u in 0..n {
                for v in 0..n {
                    if u != v && edges[u * n + v] {
                        g.add_edge(u, v).expect("in range");
                    }
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn facets_are_maximal(c in small_complex()) {
        let facets: Vec<_> = c.facets().cloned().collect();
        for (i, a) in facets.iter().enumerate() {
            for (j, b) in facets.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.contains(b));
                }
            }
        }
    }

    #[test]
    fn union_is_commutative_and_contains_parts(a in small_complex(), b in small_complex()) {
        let u1 = a.union(&b);
        let u2 = b.union(&a);
        prop_assert_eq!(&u1, &u2);
        for f in a.facets() {
            prop_assert!(u1.contains_simplex(f));
        }
    }

    #[test]
    fn intersection_is_commutative_and_contained(a in small_complex(), b in small_complex()) {
        let i1 = a.intersection(&b);
        let i2 = b.intersection(&a);
        prop_assert_eq!(&i1, &i2);
        for f in i1.facets() {
            prop_assert!(a.contains_simplex(f));
            prop_assert!(b.contains_simplex(f));
        }
    }

    #[test]
    fn intersection_union_absorption(a in small_complex(), b in small_complex()) {
        // a ∩ (a ∪ b) = a.
        let u = a.union(&b);
        prop_assert_eq!(a.intersection(&u), a);
    }

    #[test]
    fn euler_characteristic_is_alternating_betti_sum(c in small_complex()) {
        let betti = reduced_betti_numbers(&c);
        let chi: i64 = 1 + betti
            .iter()
            .enumerate()
            .map(|(k, &b)| if k % 2 == 0 { b as i64 } else { -(b as i64) })
            .sum::<i64>();
        prop_assert_eq!(c.euler_characteristic(), chi);
    }

    #[test]
    fn b0_matches_component_count(c in small_complex()) {
        let betti = reduced_betti_numbers(&c);
        prop_assert_eq!(betti[0] + 1, component_count(&c));
    }

    #[test]
    fn skeleton_reduces_dimension(c in small_complex()) {
        for k in 0..=c.dim() {
            let sk = c.skeleton(k);
            prop_assert!(sk.dim() <= k);
            // All k-or-lower simplexes survive.
            for s in c.all_simplexes() {
                if s.dim() <= k {
                    prop_assert!(sk.contains_simplex(&s));
                }
            }
        }
    }

    #[test]
    fn pseudosphere_intersection_lemma_4_6(
        views_a in prop::collection::vec(prop::collection::btree_set(0u8..4, 0..3), 3),
        views_b in prop::collection::vec(prop::collection::btree_set(0u8..4, 0..3), 3),
    ) {
        let mk = |views: &[std::collections::BTreeSet<u8>]| {
            Pseudosphere::new(
                views
                    .iter()
                    .enumerate()
                    .map(|(c, vs)| (c, vs.iter().copied().collect::<Vec<u8>>()))
                    .collect(),
            )
            .expect("distinct colors")
        };
        let a = mk(&views_a);
        let b = mk(&views_b);
        let lhs = a.to_complex().intersection(&b.to_complex());
        let rhs = a.intersect(&b).to_complex();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn pseudosphere_connectivity_lemma_4_7(
        views in prop::collection::vec(prop::collection::btree_set(0u8..3, 1..3), 2..4),
    ) {
        // A pseudosphere with m non-empty colors is (m−2)-connected.
        let ps = Pseudosphere::new(
            views
                .iter()
                .enumerate()
                .map(|(c, vs)| (c, vs.iter().copied().collect::<Vec<u8>>()))
                .collect(),
        )
        .expect("distinct colors");
        let m = ps.active_colors().len() as isize;
        let c = ps.to_complex();
        prop_assert!(is_k_connected(&c, m - 2));
    }

    #[test]
    fn uninterpreted_closed_above_is_n_minus_2_connected(g in small_digraph()) {
        // Cor 4.9 on random generators.
        let c = closed_above_pseudosphere(&g).to_complex();
        prop_assert!(is_k_connected(&c, g.n() as isize - 2));
    }

    #[test]
    fn interpretation_preserves_colors(g in small_digraph()) {
        let sigma = uninterpreted_simplex(&g);
        let tau = Simplex::new(
            (0..g.n()).map(|p| Vertex::new(p, p as u32 * 10)).collect(),
        ).expect("distinct");
        let s = interpret_simplex(&sigma, &tau);
        prop_assert_eq!(
            s.colors().collect::<Vec<_>>(),
            (0..g.n()).collect::<Vec<_>>()
        );
        // Every process's flat view contains its own input (self-loops).
        for p in 0..g.n() {
            let view = s.view_of(p).expect("present");
            prop_assert!(view.contains(&(p, p as u32 * 10)));
        }
    }

    #[test]
    fn interpreted_pseudosphere_still_highly_connected(g in small_digraph()) {
        // Interpreting ↑g over a single input facet is still a
        // pseudosphere, hence (n−2)-connected.
        let tau = Simplex::new(
            (0..g.n()).map(|p| Vertex::new(p, p as u32)).collect(),
        ).expect("distinct");
        let c = interpreted_pseudosphere(&g, &tau).to_complex();
        prop_assert!(homological_connectivity(&c) >= g.n() as isize - 2);
    }
}
