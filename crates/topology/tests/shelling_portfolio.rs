//! Portfolio-vs-sequential determinism for the shelling search.
//!
//! The racing portfolio ([`find_shelling_order`]) may return *any*
//! valid shelling order — whichever strategy wins the race — but its
//! **verdict** (shellable or not, and the whole `Result` shape on
//! errors) must be bit-identical to the pinned sequential oracle
//! ([`find_shelling_order_seq`]) at pool sizes 1, 2 and 8 (DESIGN.md
//! §4, §11). Size 1 pins the lone-worker LIFO path (canonical strategy
//! first), size 2 exercises real racing, size 8 oversubscribes the CI
//! machine so interleavings actually vary.
//!
//! Random instances come from two directions, mirroring the paper's two
//! sources of complexes: registry-sampled `random{n=3,…}` models (their
//! uninterpreted closure complexes) and hand-rolled pure facet sets
//! from the vendored proptest `TestRng`.

#![cfg(feature = "parallel")]

use ksa_exec::ThreadPool;
use ksa_graphs::budget::RunBudget;
use ksa_models::registry;
use ksa_topology::complex::Complex;
use ksa_topology::shelling::{
    find_shelling_order, find_shelling_order_seq, is_shellable_certified, is_shelling_order,
};
use ksa_topology::simplex::{Simplex, Vertex};
use ksa_topology::uninterpreted::closed_above_uninterpreted_complex;
use proptest::TestRng;
use std::sync::OnceLock;

/// The shared pools (1/2/8 workers), started once for the whole test
/// binary.
fn pools() -> &'static [ThreadPool] {
    static POOLS: OnceLock<Vec<ThreadPool>> = OnceLock::new();
    POOLS.get_or_init(|| [1, 2, 8].into_iter().map(ThreadPool::new).collect())
}

/// Asserts the portfolio agrees with the oracle on `complex` at every
/// pool size, and that any witness it returns is a real shelling order.
fn assert_portfolio_matches_seq<V: ksa_topology::simplex::View>(complex: &Complex<V>, what: &str) {
    let reference = find_shelling_order_seq(complex);
    let ref_verdict = reference.as_ref().map(Option::is_some);
    for pool in pools() {
        let par = pool.install(|| find_shelling_order(complex));
        assert_eq!(
            par.as_ref().map(Option::is_some),
            ref_verdict,
            "{what}: verdict mismatch at pool size {}",
            pool.num_threads()
        );
        if let Ok(Some(order)) = par {
            assert!(
                is_shelling_order(&order).unwrap(),
                "{what}: portfolio witness is not a shelling order (pool size {})",
                pool.num_threads()
            );
        }
    }
    // The oracle's own witness must of course validate too.
    if let Ok(Some(order)) = reference {
        assert!(is_shelling_order(&order).unwrap(), "{what}: oracle witness");
    }
}

/// A pure random complex: `r` distinct facets of width `d + 1` over a
/// small vertex universe, built directly against the shim's `TestRng`
/// (it samples, no shrinking).
fn random_pure_complex(rng: &mut TestRng) -> Complex<u32> {
    let d = 1 + rng.below(2) as usize; // dim 1 or 2
    let width = d + 1;
    let universe = width + 2 + rng.below(3) as usize; // tight → overlapping
    let r = 2 + rng.below(7) as usize; // 2..=8 facets
    let mut facets: Vec<Vec<usize>> = Vec::new();
    let mut guard = 0;
    while facets.len() < r && guard < 200 {
        guard += 1;
        let mut verts: Vec<usize> = (0..universe).collect();
        // Partial Fisher–Yates: the first `width` entries.
        for i in 0..width {
            let j = i + rng.below((universe - i) as u64) as usize;
            verts.swap(i, j);
        }
        let mut facet: Vec<usize> = verts[..width].to_vec();
        facet.sort_unstable();
        if !facets.contains(&facet) {
            facets.push(facet);
        }
    }
    let simplexes: Vec<Simplex<u32>> = facets
        .into_iter()
        .map(|f| {
            Simplex::new(f.into_iter().map(|v| Vertex::new(v, 0u32)).collect())
                .expect("distinct vertices")
        })
        .collect();
    Complex::from_facets(simplexes)
}

#[test]
fn portfolio_matches_seq_on_random_facet_sets() {
    let mut rng = TestRng::deterministic("shelling-portfolio-facets");
    for case in 0..48 {
        let complex = random_pure_complex(&mut rng);
        assert_portfolio_matches_seq(&complex, &format!("case {case}"));
    }
}

#[test]
fn portfolio_matches_seq_on_registry_sampled_models() {
    // Uninterpreted closure complexes of seeded random registry models:
    // pure by construction (one facet per closure graph, each of width
    // n). Seeds/densities chosen so the closures stay under the 63-facet
    // search ceiling; the verdict comparison covers the error shape too,
    // so an over-ceiling model would still have to agree bit-for-bit.
    let reg = registry::builtin();
    for name in [
        "random{n=3,p=0.8,seed=3,count=2}",
        "random{n=3,p=0.8,seed=11,count=2}",
        "random{n=3,p=0.5,seed=7,count=1}",
        "random{n=3,p=0.5,seed=29,count=1}",
    ] {
        let model = reg
            .resolve_closed_above(name, RunBudget::DEFAULT)
            .expect("seeded random specs resolve");
        let complex = closed_above_uninterpreted_complex(model.generators(), 2_000_000)
            .expect("small closure");
        assert_portfolio_matches_seq(&complex, name);
    }
}

#[test]
fn repeated_runs_stable_when_oversubscribed() {
    // The octahedron (boundary of the 3-dim cross-polytope): 8 facets,
    // shellable, with enough valid orders that steal races genuinely
    // pick different witnesses — the verdict and the certificate checks
    // must hold run after run on the oversubscribed pool.
    let tri = |a: usize, b: usize, c: usize| {
        Simplex::new(vec![
            Vertex::new(a, 0u32),
            Vertex::new(b, 0),
            Vertex::new(c, 0),
        ])
        .expect("distinct")
    };
    let mut facets = Vec::new();
    for x in [0, 1] {
        for y in [2, 3] {
            for z in [4, 5] {
                facets.push(tri(x, y, z));
            }
        }
    }
    let octa = Complex::from_facets(facets);
    let pool = &pools()[2];
    assert_eq!(pool.num_threads(), 8);
    assert!(find_shelling_order_seq(&octa).unwrap().is_some());
    for run in 0..5 {
        let order = pool
            .install(|| find_shelling_order(&octa))
            .unwrap()
            .unwrap_or_else(|| panic!("run {run}: octahedron must be shellable"));
        assert!(is_shelling_order(&order).unwrap(), "run {run}");
        // The certified path stays accept-checkable under racing.
        let (shellable, cert) =
            pool.install(|| is_shellable_certified(&octa, "octahedron").unwrap());
        assert!(shellable, "run {run}");
        ksa_cert::check_shelling(&cert).unwrap_or_else(|e| panic!("run {run}: {e}"));
    }
}
