//! Proptests pinning the flat chain-complex engine (`ksa_topology::chain`)
//! to the behavior of the engine-free references, across `ksa-exec` pool
//! sizes 1/2/8 (DESIGN.md §4, §7):
//!
//! * chain-engine Betti numbers == `reduced_betti_numbers_seq`;
//! * `connectivity_up_to(c, k)` == the truncation of the full
//!   `connectivity(c)` verdict;
//! * skeleton-reuse queries == homology of the materialized
//!   `c.skeleton(k)`;
//! * `ChainSweep` verdicts == per-complex verdicts, on growing
//!   filtrations (where the bases resume) and on arbitrary sequences
//!   (where the embedding check must fall back).

#![cfg(feature = "parallel")]

use ksa_exec::ThreadPool;
use ksa_topology::chain::{ChainComplex, ChainSweep};
use ksa_topology::complex::Complex;
use ksa_topology::connectivity::{
    connectivity, connectivity_seq, connectivity_up_to, Connectivity,
};
use ksa_topology::homology::{reduced_betti_numbers, reduced_betti_numbers_seq};
use ksa_topology::simplex::{Simplex, Vertex};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The shared pools (1/2/8 workers), started once for the whole test
/// binary so proptest cases don't churn threads.
fn pools() -> &'static [ThreadPool] {
    static POOLS: OnceLock<Vec<ThreadPool>> = OnceLock::new();
    POOLS.get_or_init(|| [1, 2, 8].into_iter().map(ThreadPool::new).collect())
}

/// Strategy: a small complex over colors 0..6 with u8 views.
fn small_complex() -> impl Strategy<Value = Complex<u8>> {
    let simplex = prop::collection::btree_map(0usize..6, 0u8..3, 1..=5).prop_map(|m| {
        Simplex::new(m.into_iter().map(|(c, v)| Vertex::new(c, v)).collect())
            .expect("btree keys are distinct colors")
    });
    prop::collection::vec(simplex, 1..7).prop_map(Complex::from_facets)
}

/// The truncation of a full connectivity verdict at `k`: what
/// `connectivity_up_to` promises to return (its documented semantics).
fn truncate(full: Connectivity, k: isize, dim: isize) -> Connectivity {
    let cap = k.min(dim);
    match full {
        Connectivity::Empty => Connectivity::Empty,
        Connectivity::Exactly(c) if c < cap => Connectivity::Exactly(c),
        Connectivity::Exactly(_) | Connectivity::AtLeast(_) => Connectivity::AtLeast(cap),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chain_betti_matches_seq_reference(c in small_complex()) {
        let reference = reduced_betti_numbers_seq(&c);
        for pool in pools() {
            let betti = pool.install(|| ChainComplex::from_complex(&c).reduced_betti());
            prop_assert_eq!(&betti, &reference, "pool size {}", pool.num_threads());
        }
    }

    #[test]
    fn connectivity_matches_seq_reference(c in small_complex()) {
        let reference = connectivity_seq(&c);
        for pool in pools() {
            let verdict = pool.install(|| connectivity(&c));
            prop_assert_eq!(verdict, reference, "pool size {}", pool.num_threads());
        }
    }

    #[test]
    fn connectivity_up_to_agrees_with_truncation(c in small_complex(), k in -1isize..5) {
        let full = connectivity_seq(&c);
        let expected = truncate(full, k, c.dim());
        for pool in pools() {
            let verdict = pool.install(|| connectivity_up_to(&c, k));
            prop_assert_eq!(verdict, expected, "pool size {}, k = {k}", pool.num_threads());
        }
    }

    #[test]
    fn skeleton_queries_match_materialized_skeleta(c in small_complex(), k in 0isize..5) {
        let sk = c.skeleton(k);
        let betti_ref = reduced_betti_numbers_seq(&sk);
        let conn_ref = connectivity_seq(&sk);
        for pool in pools() {
            let (betti, conn) = pool.install(|| {
                let mut chain = c.chain();
                (chain.skeleton_betti(k), chain.skeleton_connectivity(k))
            });
            prop_assert_eq!(&betti, &betti_ref, "pool size {}, k = {k}", pool.num_threads());
            prop_assert_eq!(conn, conn_ref, "pool size {}, k = {k}", pool.num_threads());
        }
    }

    /// A growing filtration (each step unions one more facet): the sweep
    /// must resume its bases from step 2 on and still reproduce the
    /// per-complex verdicts exactly.
    #[test]
    fn sweep_on_growing_filtrations(c in small_complex()) {
        let facets: Vec<Simplex<u8>> = c.facets().cloned().collect();
        let steps: Vec<Complex<u8>> = (1..=facets.len())
            .map(|t| Complex::from_facets(facets[..t].iter().cloned()))
            .collect();
        for pool in pools() {
            let results = pool.install(|| {
                let mut sweep = ChainSweep::new();
                steps.iter().map(|s| sweep.push(s)).collect::<Vec<_>>()
            });
            for (t, (step, complex)) in results.iter().zip(&steps).enumerate() {
                prop_assert_eq!(
                    &step.betti,
                    &reduced_betti_numbers_seq(complex),
                    "pool size {}, step {t}", pool.num_threads()
                );
                prop_assert_eq!(
                    step.connectivity,
                    connectivity_seq(complex),
                    "pool size {}, step {t}", pool.num_threads()
                );
                if t > 1 {
                    prop_assert!(step.resumed, "pool size {}, step {t}", pool.num_threads());
                }
            }
        }
    }

    /// Arbitrary (non-nesting) sequences: the embedding check must fall
    /// back rather than resume into wrong ranks.
    #[test]
    fn sweep_on_arbitrary_sequences(cs in prop::collection::vec(small_complex(), 1..4)) {
        let mut sweep = ChainSweep::new();
        for (t, c) in cs.iter().enumerate() {
            let step = sweep.push(c);
            prop_assert_eq!(&step.betti, &reduced_betti_numbers(c), "step {t}");
            prop_assert_eq!(step.connectivity, connectivity_seq(c), "step {t}");
        }
    }
}
