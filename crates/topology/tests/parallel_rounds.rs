//! Parallel-vs-sequential determinism for the multi-round pipeline.
//!
//! Extends the `parallel_homology` pattern to `ksa_topology::rounds`:
//! the whole [`RoundsComplex`] — every round's interned complex *and*
//! every round's view table, ids included — must be bit-identical
//! between [`protocol_complex_rounds`] on pools of size 1, 2 and 8 and
//! the public sequential reference (DESIGN.md §4, §6). Size 1 runs the
//! engine's inline fast paths, size 2 exercises stealing, size 8
//! oversubscribes the CI machine so interleavings actually vary.
//!
//! The repeated-run check mirrors what `KSA_THREADS=8` CI runs see: the
//! same oversubscribed pool, invoked repeatedly, must keep producing
//! the same value even as steal races land differently.

#![cfg(feature = "parallel")]

use ksa_exec::ThreadPool;
use ksa_graphs::Digraph;
use ksa_topology::complex::Complex;
use ksa_topology::pseudosphere::Pseudosphere;
use ksa_topology::rounds::{protocol_complex_rounds, protocol_complex_rounds_seq, RoundsComplex};
use proptest::prelude::*;
use std::sync::OnceLock;

const BUDGET: u128 = 10_000_000;

/// The shared pools (1/2/8 workers), started once for the whole test
/// binary so proptest cases don't churn threads.
fn pools() -> &'static [ThreadPool] {
    static POOLS: OnceLock<Vec<ThreadPool>> = OnceLock::new();
    POOLS.get_or_init(|| [1, 2, 8].into_iter().map(ThreadPool::new).collect())
}

fn random_generators() -> impl Strategy<Value = Vec<Digraph>> {
    let graph = prop::collection::btree_set((0usize..3, 0usize..3), 0..7)
        .prop_map(|edges| Digraph::from_edges(3, &edges.into_iter().collect::<Vec<_>>()).unwrap());
    prop::collection::vec(graph, 1..=2)
}

fn random_input() -> impl Strategy<Value = Complex<u32>> {
    prop::collection::vec(prop::collection::btree_set(0u32..3, 1..=2), 3..=3).prop_map(|views| {
        Pseudosphere::new(
            views
                .into_iter()
                .enumerate()
                .map(|(p, vs)| (p, vs.into_iter().collect()))
                .collect(),
        )
        .unwrap()
        .to_complex()
    })
}

#[test]
fn two_round_ring_identical_across_pool_sizes() {
    // A fixed, steal-heavy instance: Sym(C3) over binary inputs grows to
    // 1800 round-2 facets — enough pairs for real fan-out.
    let gens = vec![
        ksa_graphs::families::cycle(3).unwrap(),
        Digraph::from_edges(3, &[(0, 2), (2, 1), (1, 0)]).unwrap(),
    ];
    let input = Pseudosphere::new((0..3).map(|p| (p, vec![0u32, 1])).collect())
        .unwrap()
        .to_complex();
    let reference = protocol_complex_rounds_seq(&gens, &input, 2, BUDGET).unwrap();
    for pool in pools() {
        let par = pool.install(|| protocol_complex_rounds(&gens, &input, 2, BUDGET).unwrap());
        assert_eq!(par, reference, "pool size {}", pool.num_threads());
    }
}

#[test]
fn repeated_runs_stable_when_oversubscribed() {
    // The KSA_THREADS=8 stability check: the oversubscribed pool must
    // return the same RoundsComplex run after run.
    let gens = vec![ksa_graphs::families::cycle(3).unwrap()];
    let input = Pseudosphere::new((0..3).map(|p| (p, vec![0u32, 1])).collect())
        .unwrap()
        .to_complex();
    let pool = &pools()[2];
    assert_eq!(pool.num_threads(), 8);
    let first: RoundsComplex<u32> =
        pool.install(|| protocol_complex_rounds(&gens, &input, 3, BUDGET).unwrap());
    for run in 0..3 {
        let again = pool.install(|| protocol_complex_rounds(&gens, &input, 3, BUDGET).unwrap());
        assert_eq!(again, first, "run {run}");
    }
    assert_eq!(
        first,
        protocol_complex_rounds_seq(&gens, &input, 3, BUDGET).unwrap()
    );
}

/// Budget for the randomized cases: small enough that sparse random
/// generators (whose closures blow up fastest) fail fast instead of
/// dominating the suite — and the *error* must then be identical across
/// pool sizes too, which this budget deliberately exercises.
const PROP_BUDGET: u128 = 5_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whole-`Result` determinism on randomized models, one and two
    /// rounds, across pool sizes 1/2/8: materialized values and budget
    /// rejections alike must match the sequential reference bit for bit.
    #[test]
    fn rounds_identical_across_pool_sizes(
        gens in random_generators(),
        input in random_input(),
        rounds in 1usize..=2,
    ) {
        let reference = protocol_complex_rounds_seq(&gens, &input, rounds, PROP_BUDGET);
        for pool in pools() {
            let par = pool.install(|| {
                protocol_complex_rounds(&gens, &input, rounds, PROP_BUDGET)
            });
            prop_assert_eq!(&par, &reference, "pool size {}", pool.num_threads());
        }
    }
}
