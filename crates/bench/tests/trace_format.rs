//! Well-formedness of the `--trace` export: the document a real
//! experiment run produces must parse as JSON (chrome://tracing rejects
//! anything else silently) and carry the span structure the acceptance
//! contract names — experiment, round and rank-reduction spans.
//!
//! The validator is a minimal recursive-descent JSON syntax checker
//! (the build environment has no serde): it accepts exactly the JSON
//! grammar, so a stray comma or an unescaped quote in a span name fails
//! the test the same way it would fail the trace viewer.

/// Parses one JSON value starting at `i`; returns the index past it.
fn parse_value(s: &[u8], i: usize) -> Result<usize, String> {
    let i = skip_ws(s, i);
    match s.get(i) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(s, i),
        Some(b'[') => parse_array(s, i),
        Some(b'"') => parse_string(s, i),
        Some(b't') => parse_lit(s, i, b"true"),
        Some(b'f') => parse_lit(s, i, b"false"),
        Some(b'n') => parse_lit(s, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(s, i),
        Some(c) => Err(format!("unexpected byte {:?} at {i}", *c as char)),
    }
}

fn skip_ws(s: &[u8], mut i: usize) -> usize {
    while matches!(s.get(i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        i += 1;
    }
    i
}

fn parse_lit(s: &[u8], i: usize, lit: &[u8]) -> Result<usize, String> {
    if s[i..].starts_with(lit) {
        Ok(i + lit.len())
    } else {
        Err(format!("bad literal at {i}"))
    }
}

fn parse_string(s: &[u8], mut i: usize) -> Result<usize, String> {
    i += 1; // opening quote
    loop {
        match s.get(i) {
            None => return Err("unterminated string".into()),
            Some(b'"') => return Ok(i + 1),
            Some(b'\\') => match s.get(i + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => i += 2,
                Some(b'u') => {
                    if s.len() < i + 6 || !s[i + 2..i + 6].iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at {i}"));
                    }
                    i += 6;
                }
                _ => return Err(format!("bad escape at {i}")),
            },
            Some(c) if *c < 0x20 => return Err(format!("raw control byte at {i}")),
            Some(_) => i += 1,
        }
    }
}

fn parse_number(s: &[u8], mut i: usize) -> Result<usize, String> {
    let start = i;
    if s.get(i) == Some(&b'-') {
        i += 1;
    }
    while matches!(s.get(i), Some(c) if c.is_ascii_digit()) {
        i += 1;
    }
    if s.get(i) == Some(&b'.') {
        i += 1;
        while matches!(s.get(i), Some(c) if c.is_ascii_digit()) {
            i += 1;
        }
    }
    if matches!(s.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(s.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        while matches!(s.get(i), Some(c) if c.is_ascii_digit()) {
            i += 1;
        }
    }
    if i == start || (i == start + 1 && s[start] == b'-') {
        Err(format!("bad number at {start}"))
    } else {
        Ok(i)
    }
}

fn parse_object(s: &[u8], mut i: usize) -> Result<usize, String> {
    i = skip_ws(s, i + 1);
    if s.get(i) == Some(&b'}') {
        return Ok(i + 1);
    }
    loop {
        i = skip_ws(s, i);
        if s.get(i) != Some(&b'"') {
            return Err(format!("expected key at {i}"));
        }
        i = skip_ws(s, parse_string(s, i)?);
        if s.get(i) != Some(&b':') {
            return Err(format!("expected ':' at {i}"));
        }
        i = skip_ws(s, parse_value(s, i + 1)?);
        match s.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => return Ok(i + 1),
            _ => return Err(format!("expected ',' or '}}' at {i}")),
        }
    }
}

fn parse_array(s: &[u8], mut i: usize) -> Result<usize, String> {
    i = skip_ws(s, i + 1);
    if s.get(i) == Some(&b']') {
        return Ok(i + 1);
    }
    loop {
        i = skip_ws(s, parse_value(s, i)?);
        match s.get(i) {
            Some(b',') => i += 1,
            Some(b']') => return Ok(i + 1),
            _ => return Err(format!("expected ',' or ']' at {i}")),
        }
    }
}

/// Asserts `s` is exactly one JSON document.
fn assert_valid_json(s: &str) {
    let bytes = s.as_bytes();
    let end = parse_value(bytes, 0).unwrap_or_else(|e| panic!("{e}\n---\n{s}"));
    assert_eq!(
        skip_ws(bytes, end),
        bytes.len(),
        "trailing garbage after the JSON document"
    );
}

#[test]
fn trace_of_a_real_run_is_wellformed_trace_event_json() {
    ksa_obs::trace_start();
    let results = ksa_bench::run_experiments(&["rounds"]);
    let doc = ksa_obs::trace_stop();
    assert!(results[0].0.as_ref().is_ok_and(|o| o.passed));

    assert_valid_json(&doc);
    assert!(doc.contains("\"traceEvents\""), "missing traceEvents array");
    if cfg!(feature = "obs") {
        // The acceptance contract's three span layers, all exercised by
        // the rounds experiment.
        for needle in [
            "\"cat\": \"experiment\"",
            "\"name\": \"round\"",
            "\"name\": \"rank_reduce\"",
        ] {
            assert!(doc.contains(needle), "trace lacks {needle}:\n{doc}");
        }
    }
}

#[test]
fn empty_trace_is_wellformed_too() {
    // Without trace_start (or with obs compiled out) the export is still
    // a valid, loadable document.
    assert_valid_json(&ksa_obs::trace_stop());
}
