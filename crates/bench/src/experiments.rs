//! The experiment implementations (one per EXPERIMENTS.md row).
//!
//! Every experiment prints *paper claim* vs *measured value* and asserts
//! the shape (orderings, exact worked-example numbers). Budgets are sized
//! so `cargo test -p ksa-bench` exercises all of them in debug mode.

use crate::ExperimentOutcome;
use ksa_core::algorithms::{MinOfAll, MinOfDominatingSet};
use ksa_core::bounds::report::BoundsReport;
use ksa_core::bounds::stars::{star_family_bounds, star_set_is_product_idempotent};
use ksa_core::verify::verify_protocol_connectivity;
use ksa_graphs::budget::RunBudget;
use ksa_graphs::covering::covering_number_of_set;
use ksa_graphs::dist_domination::distributed_domination_number;
use ksa_graphs::domination::domination_number;
use ksa_graphs::equal_domination::equal_domination_number_of_set;
use ksa_graphs::max_covering::{max_covering_coefficient_with, max_covering_number_with};
use ksa_graphs::perm::symmetric_closure;
use ksa_graphs::product::{power, product};
use ksa_graphs::sequences::{covering_sequence, covering_sequence_of_set};
use ksa_graphs::{families, Digraph};
use ksa_models::ObliviousModel;
use ksa_models::{registry, ClosedAboveModel};
use ksa_runtime::checker::{check_exhaustive, check_with_supersets};
use ksa_runtime::monte_carlo::monte_carlo;
use ksa_topology::complex::Complex;
use ksa_topology::connectivity::homological_connectivity;
use ksa_topology::pseudosphere::Pseudosphere;
use ksa_topology::shelling::{is_shellable, is_shellable_certified};
use ksa_topology::simplex::{Simplex, Vertex};
use ksa_topology::uninterpreted::{closed_above_uninterpreted_complex, uninterpreted_simplex};
use std::error::Error;

type R = Result<ExperimentOutcome, Box<dyn Error>>;

/// Resolves a closed-above model from the builtin registry by canonical
/// name — the single lookup path behind every experiment table, so the
/// printed rows, check descriptions and `--json` labels all carry
/// registry names any reader can feed back to `experiments --models` or
/// `Registry::resolve`.
fn registry_model(name: &str) -> Result<ClosedAboveModel, Box<dyn Error>> {
    Ok(registry::builtin().resolve_closed_above(name, RunBudget::DEFAULT)?)
}

/// Figure 1 + §3.2: the two four-process models and their bound
/// comparison.
pub fn fig1() -> R {
    let mut out = ExperimentOutcome::new("fig1");
    out.line("Figure 1 / §3.2 — covering bounds vs equal-domination bounds (n = 4)");

    // First model: symmetric broadcast star.
    let star_sym = symmetric_closure(&[families::fig1_star()])?;
    let geq = equal_domination_number_of_set(&star_sym)?;
    out.line(format!("star model: γ_eq(S) = {geq}   (paper: n = 4)"));
    out.check("γ_eq(star) = 4", geq == 4);
    for i in 1..4usize {
        let cov = covering_number_of_set(&star_sym, i)?;
        let bound = i + (4 - cov);
        out.line(format!(
            "  i = {i}: cov_i = {cov}, covering bound = {bound}-set"
        ));
        out.check(
            &format!("covering bound at i = {i} does not beat γ_eq"),
            bound >= geq,
        );
    }

    // Second model (invariant-matched reconstruction).
    let second_sym = symmetric_closure(&[families::fig1_second_graph()])?;
    let geq2 = equal_domination_number_of_set(&second_sym)?;
    let cov2 = covering_number_of_set(&second_sym, 2)?;
    out.line(format!(
        "second model: γ_eq(S) = {geq2} (paper: 4), cov_2(S) = {cov2} (paper: 3)"
    ));
    out.check("γ_eq = 4", geq2 == 4);
    out.check("cov_2 = 3", cov2 == 3);
    let bound = 2 + (4 - cov2);
    out.line(format!(
        "covering bound: {bound}-set agreement vs γ_eq bound: {geq2}-set (paper: 3 vs 4)"
    ));
    out.check("covering bound = 3 beats γ_eq = 4", bound == 3 && geq2 == 4);
    let model = registry_model("fig1second{}")?;
    let rep = BoundsReport::compute(&model, 1)?;
    out.check(
        "best one-round upper bound is 3-set",
        rep.best_upper().map(|b| b.k) == Some(3),
    );
    Ok(out)
}

/// Figure 2: the uninterpreted simplex of the 3-process example graph.
pub fn fig2() -> R {
    let mut out = ExperimentOutcome::new("fig2");
    out.line("Figure 2 — graph and its uninterpreted simplex");
    let g = families::fig2_graph();
    out.line(format!("graph: {g}"));
    let s = uninterpreted_simplex(&g);
    out.line(format!("σ_G = {s:?}"));
    out.check(
        "view of p0 is {p0, p2}",
        s.view_of(0) == Some(&ksa_graphs::ProcSet::from_iter([0usize, 2])),
    );
    out.check(
        "view of p1 is {p0, p1}",
        s.view_of(1) == Some(&ksa_graphs::ProcSet::from_iter([0usize, 1])),
    );
    out.check(
        "view of p2 is {p2}",
        s.view_of(2) == Some(&ksa_graphs::ProcSet::from_iter([2usize])),
    );
    Ok(out)
}

/// Figure 3: the example pseudosphere and Lemma 4.7's connectivity.
pub fn fig3() -> R {
    let mut out = ExperimentOutcome::new("fig3");
    out.line("Figure 3 — pseudosphere φ(P0,P1,P2; {v1,v2},{v1,v2},{v})");
    let ps = Pseudosphere::new(vec![(0, vec![1u32, 2]), (1, vec![1, 2]), (2, vec![7])])?;
    let c = ps.to_complex();
    out.line(format!(
        "facets = {} (paper figure shows 4), dim = {}",
        c.facet_count(),
        c.dim()
    ));
    out.check("4 facets", c.facet_count() == 4);
    out.check("pure of dimension 2", c.is_pure() && c.dim() == 2);
    let conn = homological_connectivity(&c);
    out.line(format!(
        "homological connectivity = {conn} (Lemma 4.7 predicts ≥ n−2 = 1)"
    ));
    out.check("(n−2)-connected", conn >= 1);
    Ok(out)
}

/// Figure 4: shellable vs non-shellable exemplars, each verdict emitted
/// as a [`ksa_cert::ShellingCert`] and re-verified by the standalone
/// checker in-run (DESIGN.md §11).
pub fn fig4() -> R {
    let mut out = ExperimentOutcome::new("fig4");
    out.line("Figure 4 — shellability of the two exemplars (certified)");
    let tri = |a: usize, b: usize, c: usize| {
        Simplex::new(vec![
            Vertex::new(a, 0u32),
            Vertex::new(b, 0),
            Vertex::new(c, 0),
        ])
        .expect("distinct colors")
    };
    let fig4a = Complex::from_facets(vec![tri(0, 1, 2), tri(0, 2, 3)]);
    let fig4b = Complex::from_facets(vec![tri(0, 1, 2), tri(2, 3, 4)]);
    let (a, cert_a) = is_shellable_certified(&fig4a, "fig4a")?;
    let (b, cert_b) = is_shellable_certified(&fig4b, "fig4b")?;
    out.line(format!("Figure 4a shellable: {a} (paper: yes)"));
    out.line(format!("Figure 4b shellable: {b} (paper: no)"));
    out.check("4a shellable", a);
    out.check("4b not shellable", !b);
    // The portfolio's verdicts agree with the pinned sequential oracle.
    out.check(
        "4a verdict matches is_shellable",
        is_shellable(&fig4a)? == a,
    );
    out.check(
        "4b verdict matches is_shellable",
        is_shellable(&fig4b)? == b,
    );
    out.certify(ksa_cert::Cert::Shelling(cert_a));
    out.certify(ksa_cert::Cert::Shelling(cert_b));
    Ok(out)
}

/// Lemma 4.6: pseudosphere intersections, exhaustively on small view sets.
pub fn lemma46() -> R {
    let mut out = ExperimentOutcome::new("lemma46");
    out.line("Lemma 4.6 — φ(U) ∩ φ(V) = φ(U ∩ V), exhaustive small cases");
    let mut cases = 0;
    let mut ok = true;
    // All pairs of view assignments over 2 colors with views ⊆ {0,1,2}.
    for mask_a0 in 0u8..8 {
        for mask_a1 in 0u8..8 {
            for mask_b0 in 0u8..8 {
                for mask_b1 in 0u8..8 {
                    let views = |m: u8| (0u32..3).filter(|v| (m >> v) & 1 == 1).collect::<Vec<_>>();
                    let a = Pseudosphere::new(vec![(0, views(mask_a0)), (1, views(mask_a1))])?;
                    let b = Pseudosphere::new(vec![(0, views(mask_b0)), (1, views(mask_b1))])?;
                    let lhs = a.to_complex().intersection(&b.to_complex());
                    let rhs = a.intersect(&b).to_complex();
                    ok &= lhs == rhs;
                    cases += 1;
                }
            }
        }
    }
    out.line(format!("checked {cases} pseudosphere pairs"));
    out.check("all intersections component-wise", ok);
    Ok(out)
}

/// Thm 4.12: uninterpreted complexes of the model zoo are (n−2)-connected.
pub fn thm412() -> R {
    let mut out = ExperimentOutcome::new("thm412");
    out.line("Thm 4.12 — uninterpreted complexes of closed-above models are (n−2)-connected");
    // Registry names — including the single-generator fig1(b) graph,
    // spelled as an explicit `up{…}` spec.
    let zoo = [
        "ring{n=3}",
        "stars{n=3,s=1}",
        "ring{n=3,sym}",
        "stars{n=4,s=2}",
        "up{n=4: 0>1 1>2 2>0 3>0}",
        "ring{n=4,sym}",
    ];
    out.line(format!(
        "{:<26} {:>6} {:>10} {:>9}",
        "model", "n", "facets", "conn"
    ));
    for name in zoo {
        let model = registry_model(name)?;
        let n = model.n();
        let c = closed_above_uninterpreted_complex(model.generators(), 2_000_000)?;
        let conn = homological_connectivity(&c);
        out.line(format!(
            "{name:<26} {n:>6} {:>10} {conn:>9}",
            c.facet_count()
        ));
        out.check(
            &format!("{name} is (n−2)={}-connected", n - 2),
            conn >= n as isize - 2,
        );
    }
    Ok(out)
}

/// Thm 5.4 / App. B: protocol-complex connectivity vs the predicted `l`.
pub fn thm54() -> R {
    let mut out = ExperimentOutcome::new("thm54");
    out.line("Thm 5.4 — one-round protocol complex connectivity vs predicted l");
    out.line(format!(
        "{:<18} {:>6} {:>9} {:>9} {:>8}",
        "model", "values", "l (pred)", "measured", "facets"
    ));
    for (name, vmax) in [
        ("stars{n=3,s=1}", 1usize),
        ("stars{n=3,s=1}", 2),
        ("stars{n=3,s=2}", 1),
        ("ring{n=3,sym}", 1),
        ("ring{n=3,sym}", 2),
        ("tournament{n=3}", 1),
    ] {
        let model = registry_model(name)?;
        let rep = verify_protocol_connectivity(&model, vmax, 500_000)?;
        out.line(format!(
            "{name:<18} {:>6} {:>9} {:>9} {:>8}",
            vmax + 1,
            rep.predicted_l,
            rep.measured_connectivity,
            rep.protocol_facets
        ));
        out.check(
            &format!("{name} values≤{}: measured ≥ predicted", vmax),
            rep.is_consistent(),
        );
    }
    Ok(out)
}

/// §6.1: the product counterexample on C6, plus Lemma 6.2's inclusion.
pub fn sec61() -> R {
    let mut out = ExperimentOutcome::new("sec61");
    out.line("§6.1 — closure-above is not invariant under the product (C6)");
    let c6 = families::cycle(6)?;
    let c6sq = power(&c6, 2)?;
    // Lemma 6.2: sampled supersets multiply into ↑(C6²).
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(61);
    let mut inclusion_ok = true;
    for _ in 0..200 {
        let a = ksa_graphs::random::random_superset(&c6, &mut rng)?;
        let b = ksa_graphs::random::random_superset(&c6, &mut rng)?;
        inclusion_ok &= product(&a, &b)?.contains_graph(&c6sq)?;
    }
    out.check("Lemma 6.2: ↑C6 ⊗ ↑C6 ⊆ ↑(C6²) on 200 samples", inclusion_ok);

    // Strictness: C6² + (p1→p5) has no preimage (necessary-condition
    // argument, mirrored from the paper's prose).
    let mut target = c6sq.clone();
    target.add_edge(1, 5)?;
    let factor2_blocked = !target.has_edge(0, 5); // (w→5) forces (w−1→5)
    let factor1_blocked = !target.has_edge(1, 0); // (1→w) forces (1→w+1)
    out.check(
        "witness C6²+(p1→p5) not expressible via factor-2 addition",
        factor2_blocked,
    );
    out.check(
        "witness C6²+(p1→p5) not expressible via factor-1 addition",
        factor1_blocked,
    );
    out.line("=> ↑C6 ⊗ ↑C6 ⊊ ↑(C6 ⊗ C6), as §6.1 claims");
    Ok(out)
}

/// §5 + Thm 6.13: the star-union sweep — all combinatorial numbers and
/// the tight bounds.
pub fn stars() -> R {
    let mut out = ExperimentOutcome::new("stars");
    out.line("Thm 6.13 — star unions: γ_dist = n−s+1, max-cov_t = t, M_t = n−t, tight bounds");
    out.line(format!(
        "{:>3} {:>3} | {:>7} {:>9} {:>11} | {:>6}",
        "n", "s", "γ_dist", "solvable", "impossible", "tight"
    ));
    for n in 3..=6usize {
        for s in 1..n {
            let model = registry_model(&format!("stars{{n={n},s={s}}}"))?;
            let gens = model.generators();
            let gd = distributed_domination_number(gens)?;
            out.check(&format!("γ_dist(n={n},s={s}) = n−s+1"), gd == n - s + 1);
            for t in 1..gd {
                let mc = max_covering_number_with(gens, t, gd)?;
                let mt = max_covering_coefficient_with(gens, t, gd)?;
                out.check(
                    &format!("max-cov_{t}(n={n},s={s}) = t and M_{t} = n−t"),
                    mc == t && mt == n - t,
                );
            }
            let b = star_family_bounds(n, s)?;
            let lower = b.lower.as_ref().map(|l| l.impossible_k);
            let tight = lower.map(|l| b.upper.k == l + 1).unwrap_or(false);
            out.line(format!(
                "{n:>3} {s:>3} | {gd:>7} {:>9} {:>11} | {:>6}",
                b.upper.k,
                lower.map(|l| l.to_string()).unwrap_or_else(|| "-".into()),
                if tight { "yes" } else { "no" }
            ));
            if n - s >= 1 {
                out.check(&format!("tight at (n={n}, s={s})"), tight);
            }
            out.check(
                &format!("S^r collapses to S (n={n}, s={s})"),
                star_set_is_product_idempotent(n, s, 2)?,
            );
        }
    }
    Ok(out)
}

/// Thm 6.7/6.9: covering sequences and the implied multi-round upper
/// bounds.
pub fn seqs() -> R {
    let mut out = ExperimentOutcome::new("seqs");
    out.line("Thm 6.7/6.9 — covering sequences: rounds until the i-th sequence reaches n");
    for (name, g) in [
        ("C4", families::cycle(4)?),
        ("C5", families::cycle(5)?),
        ("C6", families::cycle(6)?),
        ("binary tree n=7", families::binary_out_tree(7)?),
        ("star n=4", families::fig1_star()),
    ] {
        let n = g.n();
        let mut cells = Vec::new();
        for i in 1..=n {
            let seq = covering_sequence(&g, i)?;
            cells.push(match seq.reaches_n_at {
                Some(r) => r.to_string(),
                None => "∞".into(),
            });
        }
        out.line(format!(
            "{name:<16} rounds(i=1..n) = [{}]",
            cells.join(", ")
        ));
        // Monotone: larger i never needs more rounds.
        let rounds: Vec<Option<usize>> = (1..=n)
            .map(|i| covering_sequence(&g, i).expect("valid i").reaches_n_at)
            .collect();
        let monotone = rounds.windows(2).all(|w| match (w[0], w[1]) {
            (Some(a), Some(b)) => b <= a,
            (None, _) => true,
            (Some(_), None) => false,
        });
        out.check(&format!("{name}: rounds non-increasing in i"), monotone);
    }
    // Set version: cycles' symmetric closure matches the single cycle
    // (permutation invariance).
    let sym = symmetric_closure(&[families::cycle(4)?])?;
    let single = covering_sequence(&families::cycle(4)?, 1)?;
    let set = covering_sequence_of_set(&sym, 1)?;
    out.check(
        "Sym(C4) sequence equals C4 sequence (perm-invariance)",
        single.values == set.values,
    );
    // The star's sequences stall (paper's γ_eq = n discussion).
    let star_seq = covering_sequence(&families::fig1_star(), 1)?;
    out.check(
        "star sequence stalls below n",
        star_seq.reaches_n_at.is_none(),
    );
    Ok(out)
}

/// Thm 6.4/6.5/6.11: bounds across rounds for the model zoo.
pub fn multiround() -> R {
    let mut out = ExperimentOutcome::new("multiround");
    out.line("§6 — bounds across rounds (upper from Thm 6.4/6.5/6.9, lower from Thm 6.10/6.11)");
    out.line(format!(
        "{:<22} {:>3} {:>9} {:>11}",
        "model", "r", "solvable", "impossible"
    ));
    for name in [
        "ring{n=4,sym}",
        "ring{n=5,sym}",
        "ring{n=4}",
        "stars{n=5,s=2}",
        "kernel{n=4}",
    ] {
        let model = registry_model(name)?;
        let mut prev_up = usize::MAX;
        let mut prev_lo = usize::MAX;
        for r in 1..=3 {
            let rep = BoundsReport::compute(&model, r)?;
            let up = rep.best_upper().expect("exists").k;
            let lo = rep.best_lower().map(|l| l.impossible_k);
            out.line(format!(
                "{name:<22} {r:>3} {up:>9} {:>11}",
                lo.map(|l| l.to_string()).unwrap_or_else(|| "-".into())
            ));
            out.check(&format!("{name} r={r}: consistent"), rep.is_consistent());
            out.check(&format!("{name} r={r}: upper monotone"), up <= prev_up);
            let lo_v = lo.unwrap_or(0);
            out.check(&format!("{name} r={r}: lower monotone"), lo_v <= prev_lo);
            prev_up = up;
            prev_lo = lo_v;
        }
    }
    Ok(out)
}

/// Multi-round protocol complexes (extension of Thm 5.4 to the §6
/// iteration): round-sweep Betti numbers/connectivity of the
/// iterated-interpretation complexes vs the combinatorial multi-round
/// lower bounds, plus the round-1 anchor to the one-round pipeline.
pub fn rounds() -> R {
    use ksa_core::bounds::cross_check::cross_check_round_sweep_certified;
    use ksa_topology::interpretation::protocol_complex_one_round;
    use ksa_topology::rounds::protocol_complex_rounds;

    let mut out = ExperimentOutcome::new("rounds");
    out.line(
        "rounds — iterated-interpretation protocol complexes vs Thm 6.10/6.11 (binary inputs, certified Betti path)",
    );
    out.line(format!(
        "{:<16} {:>3} {:>8} {:>7} {:>6} {:>9}  {}",
        "model", "r", "facets", "views", "conn", "predicted", "betti"
    ));
    let mut sweeps = Vec::new();
    for (name, rounds) in [
        ("ring{n=3}", 3usize),
        ("ring{n=3,sym}", 2),
        ("stars{n=3,s=1}", 2),
        ("stars{n=3,s=2}", 2),
    ] {
        let model = registry_model(name)?;
        let (sweep, certs) =
            cross_check_round_sweep_certified(&model, 1, rounds, 100_000_000u128, name)?;
        for row in &sweep.per_round {
            out.line(format!(
                "{name:<16} {:>3} {:>8} {:>7} {:>6} {:>9}  {:?}",
                row.round,
                row.facets,
                row.interned_views,
                row.measured_connectivity,
                row.predicted_l,
                row.betti
            ));
            out.check(
                &format!("{name} r={}: connectivity ≥ predicted l", row.round),
                row.is_consistent(),
            );
        }
        out.check(&format!("{name}: sweep consistent"), sweep.is_consistent());
        for cert in certs {
            out.certify(ksa_cert::Cert::Homology(cert));
        }
        sweeps.push((name, sweep));
    }

    // The worked anchors. ↑C3 at one round: γ(C3) = 2 predicts exactly
    // consensus-impossibility (l = 0), and the measured connectivity is
    // exactly 0; stars s=1 refuse to weaken with rounds (Thm 6.13): the
    // predicted l stays 1 and the measured connectivity stays exactly 1.
    let sweep_of = |wanted: &str| {
        &sweeps
            .iter()
            .find(|(name, _)| *name == wanted)
            .expect("model is in the zoo above")
            .1
    };
    let ring = sweep_of("ring{n=3}");
    out.check(
        "↑C3 r=1: predicted l = 0, measured exactly 0",
        ring.per_round[0].predicted_l == 0 && ring.per_round[0].measured_connectivity == 0,
    );
    let stars = sweep_of("stars{n=3,s=1}");
    out.check(
        "stars s=1: predicted l stays 1 across rounds (Thm 6.13)",
        stars.per_round.iter().all(|r| r.predicted_l == 1),
    );
    out.check(
        "stars s=1: measured connectivity stays exactly 1",
        stars.per_round.iter().all(|r| r.measured_connectivity == 1),
    );

    // Round-1 anchor: the interned pipeline expands to exactly the
    // one-round protocol complex of the seed implementation.
    let model = registry_model("ring{n=3,sym}")?;
    let input = ksa_core::task::input_complex(3, 1, 100_000_000)?;
    let rc = protocol_complex_rounds(model.generators(), &input, 1, 100_000_000u128)?;
    let direct = protocol_complex_one_round(model.generators(), &input, 100_000_000)?;
    out.check(
        "round-1 expansion is bit-identical to protocol_complex_one_round",
        rc.expand_round_one() == direct,
    );
    Ok(out)
}

/// §3's algorithms under execution: exhaustive + Monte-Carlo + the
/// dominating-set algorithm on supersets.
pub fn sim() -> R {
    let mut out = ExperimentOutcome::new("sim");
    out.line("simulation — algorithms vs bounds (exhaustive over generator schedules)");
    out.line(format!(
        "{:<22} {:>7} {:>10} {:>10} {:>12}",
        "model", "bound", "exh-worst", "mc-worst", "mc-mean"
    ));
    for name in [
        "kernel{n=4}",
        "stars{n=4,s=2}",
        "stars{n=5,s=2}",
        "ring{n=4,sym}",
        "fig1second{}",
    ] {
        let model = registry_model(name)?;
        let rep = BoundsReport::compute(&model, 1)?;
        let bound = rep
            .uppers
            .iter()
            .filter(|u| u.theorem != "Thm 3.2" && u.theorem != "Thm 6.3")
            .map(|u| u.k)
            .min()
            .expect("γ_eq present");
        let n = model.n();
        let exh = check_exhaustive(&MinOfAll::new(), &model, n.min(4), 1, 500_000_000)?;
        let mc = monte_carlo(&MinOfAll::new(), &model, n, 1, 1000, 42)?;
        out.line(format!(
            "{name:<22} {bound:>7} {:>10} {:>10} {:>12.2}",
            exh.worst_distinct,
            mc.worst_distinct,
            mc.mean_distinct()
        ));
        out.check(
            &format!("{name}: validity"),
            exh.validity_ok && mc.validity_ok,
        );
        out.check(
            &format!("{name}: exhaustive worst ≤ bound"),
            exh.worst_distinct <= bound,
        );
        out.check(
            &format!("{name}: Monte-Carlo worst ≤ bound"),
            mc.worst_distinct <= bound,
        );
        // Tight models: the adversary achieves the bound.
        if rep.is_tight() {
            out.check(
                &format!("{name}: bound achieved (tightness)"),
                exh.worst_distinct == bound,
            );
        }
    }
    // The dominating-set algorithm on the simple ring: γ(C4) = 2 achieved
    // and never exceeded, even on supersets.
    let simple = registry_model("ring{n=4}")?;
    let alg = MinOfDominatingSet::for_graph(&simple.generators()[0]);
    let chk = check_with_supersets(&alg, &simple, 3, 1, 10, 7, 50_000_000)?;
    out.line(format!(
        "simple ring ↑C4 + min-of-dominating-set: worst = {} (γ = {})",
        chk.worst_distinct,
        domination_number(&simple.generators()[0])
    ));
    out.check(
        "dominating-set algorithm achieves γ exactly",
        chk.worst_distinct == 2,
    );
    Ok(out)
}

/// Def 5.2 readings compared: the paper-faithful "collections of at most
/// min(i,|S|) graphs" vs the literal "exactly min(i,|S|) distinct graphs"
/// (see DESIGN.md and `ksa-graphs::dist_domination`).
pub fn def52() -> R {
    use ksa_graphs::dist_domination::distributed_domination_number_exact;
    let mut out = ExperimentOutcome::new("def52");
    out.line("Def 5.2 — two readings of the distributed domination number");
    out.line(format!(
        "{:<22} {:>9} {:>7} {:>13}",
        "model", "faithful", "exact", "paper target"
    ));
    for (name, paper) in [
        ("stars{n=3,s=1}", Some(3usize)),
        ("stars{n=4,s=1}", Some(4)),
        ("stars{n=4,s=2}", Some(3)),
        ("stars{n=5,s=2}", Some(4)),
        ("ring{n=4,sym}", None),
        ("fig1second{}", None),
    ] {
        let model = registry_model(name)?;
        let gens = model.generators();
        let faithful = distributed_domination_number(gens)?;
        let exact = distributed_domination_number_exact(gens)?;
        out.line(format!(
            "{name:<22} {faithful:>9} {exact:>7} {:>13}",
            paper.map(|p| p.to_string()).unwrap_or_else(|| "-".into())
        ));
        if let Some(p) = paper {
            out.check(
                &format!("{name}: faithful reading reproduces the paper ({p})"),
                faithful == p,
            );
        }
        out.check(&format!("{name}: exact ≤ faithful"), exact <= faithful);
    }
    // The divergence witness from the module docs.
    let sym3 = registry_model("stars{n=3,s=1}")?;
    out.check(
        "n=3 s=1: exact reading diverges (2 vs 3)",
        distributed_domination_number_exact(sym3.generators())? == 2
            && distributed_domination_number(sym3.generators())? == 3,
    );
    Ok(out)
}

/// The universal-domination extension: a one-round upper bound the paper
/// misses, machine-checked over an entire model, exposing the Thm 5.4
/// scoping issue.
pub fn extuniv() -> R {
    use ksa_core::bounds::extensions::universal_domination_upper_bound;
    use ksa_core::bounds::lower::theorem_5_4_l;
    use ksa_graphs::closure::enumerate_closure;
    use ksa_graphs::universal_domination::universal_domination_number;
    let mut out = ExperimentOutcome::new("extuniv");
    out.line("extension — the universal-domination upper bound γ_univ(S)");
    out.line(format!(
        "{:<22} {:>7} {:>7} {:>9}",
        "model", "γ_univ", "γ_eq", "improves"
    ));
    for name in [
        "stars{n=4,s=2}",
        "ring{n=4,sym}",
        "fig1second{}",
        // C4 + reversed C4, as an explicit generator-list spec.
        "up{n=4: 0>1 1>2 2>3 3>0 | 0>3 1>0 2>1 3>2}",
    ] {
        let model = registry_model(name)?;
        let univ = universal_domination_number(model.generators())?;
        let geq = equal_domination_number_of_set(model.generators())?;
        out.line(format!(
            "{name:<22} {univ:>7} {geq:>7} {:>9}",
            if univ < geq { "yes" } else { "no" }
        ));
        out.check(&format!("{name}: γ_univ ≤ γ_eq"), univ <= geq);
    }

    // The headline: {C4, rev C4} solves 2-set agreement in one round with
    // a hardcoded pair — machine-checked over EVERY graph of the model and
    // every input over 3 values — while the Thm 5.4 formula says 2-set is
    // impossible (the scoping issue documented in DESIGN.md).
    let c = families::cycle(4)?;
    let rev = Digraph::from_edges(4, &[(1, 0), (2, 1), (3, 2), (0, 3)])?;
    let model = ksa_models::ClosedAboveModel::new(vec![c, rev])?;
    let (ub, w) = universal_domination_upper_bound(&model, 1)?;
    out.check("γ_univ({C4, rev C4}) = 2", ub.k == 2);
    let alg = MinOfDominatingSet::new(w.set);
    let mut graphs: Vec<Digraph> = Vec::new();
    for g in model.generators() {
        graphs.extend(enumerate_closure(g, 1 << 13)?);
    }
    graphs.sort();
    graphs.dedup();
    out.line(format!(
        "checking the witness algorithm on all {} graphs × 81 inputs…",
        graphs.len()
    ));
    let mut worst = 0usize;
    let mut valid = true;
    let mut inputs = [0u32; 4];
    'inp: loop {
        for g in &graphs {
            let mut decisions: Vec<u32> = (0..4)
                .map(|p| {
                    let view: Vec<(usize, u32)> =
                        g.in_set(p).iter().map(|q| (q, inputs[q])).collect();
                    let d = ksa_core::algorithms::ObliviousAlgorithm::decide(&alg, p, &view);
                    valid &= inputs.contains(&d);
                    d
                })
                .collect();
            decisions.sort_unstable();
            decisions.dedup();
            worst = worst.max(decisions.len());
        }
        let mut p = 0;
        loop {
            if p == 4 {
                break 'inp;
            }
            inputs[p] += 1;
            if inputs[p] < 3 {
                break;
            }
            inputs[p] = 0;
            p += 1;
        }
    }
    out.line(format!(
        "worst distinct decisions over the whole model: {worst}"
    ));
    out.check("validity over the whole model", valid);
    out.check("2-set agreement solved on the whole model", worst <= 2);
    let l = theorem_5_4_l(model.generators())?;
    out.line(format!(
        "Thm 5.4 formula on this model: l + 1 = {} (claims impossible) — the documented overreach",
        l + 1
    ));
    out.check("the conflict is reproduced (l + 1 = 2)", l + 1 == 2);
    Ok(out)
}

/// Cor 5.5's single-graph estimate vs the direct Thm 5.4 computation on
/// the materialized symmetric closure.
pub fn cor55() -> R {
    use ksa_core::bounds::lower::{general_one_round_lower, symmetric_one_round_lower};
    let mut out = ExperimentOutcome::new("cor55");
    out.line("Cor 5.5 — single-generator estimate vs direct Thm 5.4 on Sym(↑G)");
    out.line(format!(
        "{:<18} {:>14} {:>12}",
        "generator", "cor55 imposs.", "direct imposs."
    ));
    for (name, g) in [
        ("C4", families::cycle(4)?),
        ("C5", families::cycle(5)?),
        ("star n=4", families::broadcast_star(4, 0)?),
        ("star n=5", families::broadcast_star(5, 0)?),
        ("fig1(b) graph", families::fig1_second_graph()),
    ] {
        let cor = symmetric_one_round_lower(&g)?
            .map(|b| b.impossible_k)
            .unwrap_or(0);
        let model = ksa_models::ClosedAboveModel::symmetric(vec![g.clone()])?;
        let direct = general_one_round_lower(&model)?
            .map(|b| b.impossible_k)
            .unwrap_or(0);
        out.line(format!("{name:<18} {cor:>14} {direct:>12}"));
        out.check(
            &format!("{name}: corollary never exceeds the direct bound"),
            cor <= direct,
        );
    }
    Ok(out)
}

/// The solvability decision procedure (extension): exact one-round
/// boundaries for the small zoo, agreeing with the paper's bounds from
/// both sides. Each model's boundary comes from one incremental k-sweep
/// (DESIGN.md §10.3) instead of per-(model, k) from-scratch decisions —
/// this is where the pruned search's wall-clock win lands, so the
/// timings start a fresh baseline series (see EXPERIMENTS.md).
pub fn solv() -> R {
    use ksa_core::solvability::{
        decide_one_round_sweep, decide_one_round_with_table_certified, NoGoodTable, Solvability,
    };
    let mut out = ExperimentOutcome::new("solv");
    out.line("extension — exact one-round oblivious solvability (incremental k-sweep, certified)");
    out.line(format!(
        "{:<18} {:>3} {:>12} {:>22}",
        "model", "k", "verdict", "paper prediction"
    ));
    // Per model: the k values the paper pins, each with the predicted
    // verdict. The largest k bounds that model's sweep.
    type Pins = Vec<(usize, bool, &'static str)>;
    let cases: Vec<(&str, Pins)> = vec![
        (
            "stars{n=3,s=1}",
            vec![
                (2, false, "Thm 5.4: impossible"),
                (3, true, "Thm 3.4: solvable"),
            ],
        ),
        (
            "stars{n=3,s=2}",
            vec![
                (1, false, "Thm 6.13: impossible"),
                (2, true, "Thm 3.4: solvable"),
            ],
        ),
        (
            "ring{n=3,sym}",
            vec![
                (1, false, "Thm 5.4: impossible"),
                (2, true, "Thm 3.4: solvable"),
            ],
        ),
        (
            "ring{n=3}",
            vec![
                (1, false, "Thm 5.1: impossible"),
                (2, true, "Thm 3.2: solvable"),
            ],
        ),
    ];
    let (mut searched, mut seeded, mut pruned) = (0usize, 0usize, 0usize);
    for (name, pins) in cases {
        let model = registry_model(name)?;
        let k_max = pins.iter().map(|&(k, _, _)| k).max().unwrap_or(1);
        let sweep = decide_one_round_sweep(&model, k_max, 2_000_000, 50_000_000)?;
        searched += sweep.searched;
        seeded += sweep.seeded;
        pruned += sweep.pruned;
        for (k, expect_solvable, prediction) in pins {
            let verdict = &sweep.verdicts[k - 1];
            let shown = match verdict {
                Solvability::Solvable(_) => "solvable",
                Solvability::Unsolvable => "unsolvable",
                Solvability::Unknown => "unknown",
            };
            out.line(format!("{name:<18} {k:>3} {shown:>12} {prediction:>22}"));
            out.check(
                &format!("{name} k={k}: matches the paper"),
                verdict.is_solvable() == expect_solvable,
            );
            // Re-decide this pinned (model, k) from scratch through the
            // certified path (cheap after the pruned search) and emit a
            // machine-checkable certificate for the verdict. The sweep
            // uses per-k inputs over {0, …, k}, so value_max = k.
            let table = NoGoodTable::new();
            let (scratch, _, cert) = decide_one_round_with_table_certified(
                &model,
                k,
                k,
                2_000_000,
                50_000_000,
                &table,
                2_000_000,
                &format!("{name} k={k}"),
            )?;
            out.check(
                &format!("{name} k={k}: certified re-decision agrees with the sweep"),
                scratch.is_solvable() == verdict.is_solvable(),
            );
            match cert {
                Some(cert) => out.certify(ksa_cert::Cert::Solvability(cert)),
                None => out.check(&format!("{name} k={k}: verdict was decided"), false),
            }
        }
    }
    out.line(format!(
        "sweep accounting: {searched} searched, {seeded} seeded by witness lift, {pruned} pruned by monotonicity"
    ));
    out.check(
        "the sweeps decided some boundary entries monotonically",
        seeded + pruned > 0,
    );
    Ok(out)
}

/// Approximate consensus on non-split rounds (§2.1's motivating predicate,
/// the paper's reference \[8\]): midpoint averaging halves the diameter each
/// round — exhaustively on n = 3, and convergence in ⌈log2(D/ε)⌉ rounds.
pub fn approx() -> R {
    use ksa_models::adversary::FixedSequence;
    use ksa_runtime::approx::{
        averaging_round, diameter, is_non_split, rounds_to_epsilon, run_approximate_consensus,
    };
    let mut out = ExperimentOutcome::new("approx");
    out.line("§2.1 context — approximate consensus on non-split models");
    // Exhaustive halving check on all non-split 3-process graphs.
    let model = registry::builtin()
        .resolve("nonsplit{n=3}", 1u128 << 18)?
        .as_explicit()
        .ok_or("nonsplit{n=3}: expected an explicit model")?
        .clone();
    let inputs_grid: Vec<Vec<f64>> = vec![
        vec![0.0, 1.0, 0.5],
        vec![-3.0, 2.0, 7.0],
        vec![0.0, 1.0, 1.0],
    ];
    let mut halves = true;
    for g in model.graphs() {
        for inputs in &inputs_grid {
            let before = diameter(inputs);
            let after = diameter(&averaging_round(g, inputs)?);
            halves &= after <= before / 2.0 + 1e-12;
        }
    }
    out.line(format!(
        "non-split graphs on 3 processes: {} (all checked × {} input vectors)",
        model.graphs().len(),
        inputs_grid.len()
    ));
    out.check("diameter halves on every non-split round", halves);
    out.check(
        "every enumerated graph is non-split",
        model.graphs().iter().all(is_non_split),
    );

    // Convergence budget on kernel schedules (kernel ⊆ non-split).
    let kernel = registry_model("kernel{n=4}")?;
    let inputs = [0.0f64, 1.0, 0.25, 0.75];
    let eps = 1e-3;
    let budget = rounds_to_epsilon(diameter(&inputs), eps);
    let mut adv = FixedSequence::new(kernel.generators().to_vec());
    let trace = run_approximate_consensus(&mut adv, &inputs, eps, budget)?;
    out.line(format!(
        "kernel n=4 schedule: D0 = {}, ε = {eps}, budget = {budget}, converged at {:?}",
        diameter(&inputs),
        trace.converged_at
    ));
    out.check(
        "ε-agreement within ⌈log2(D/ε)⌉ rounds",
        matches!(trace.converged_at, Some(r) if r <= budget),
    );
    // Split rounds stall.
    let mut lonely = FixedSequence::new(vec![Digraph::empty(4)?]);
    let stalled = run_approximate_consensus(&mut lonely, &inputs, eps, 20)?;
    out.check(
        "split schedule never converges",
        stalled.converged_at.is_none(),
    );
    Ok(out)
}

/// Counterexample hunt: drive a registry-selected seeded random ensemble
/// through the multi-round Thm 6.10/6.11 cross-check. Any violation is
/// repro-ready — its registry name carries the full recipe (`n`, `p`,
/// `seed`, `count`), so `experiments hunt --models '<name>'` replays it
/// exactly. `models` overrides the default glob (CLI `--models`).
pub fn hunt(models: Option<&str>) -> R {
    use ksa_core::bounds::cross_check::cross_check_round_sweep_by_name;

    /// The default selection: one density slice of the builtin seeded
    /// ensemble (8 seeds).
    const DEFAULT_GLOB: &str = "random{n=3,p=0.5*";
    /// One ceiling for materialization + every round's sweep, per model.
    /// Calibrated to the sizes the round sweep is meant for (the n = 3
    /// zoo, facet totals ≤ ~30k): closed-above closures blow up as
    /// `2^(free edges)` per generator, so an n = 4 model's round-2
    /// product runs to millions of facets — minutes of wall time that
    /// this ceiling rejects during admission instead.
    const SWEEP_BUDGET: u128 = 100_000;
    const ROUNDS: usize = 2;

    let mut out = ExperimentOutcome::new("hunt");
    let glob = models.unwrap_or(DEFAULT_GLOB);
    let reg = registry::builtin();
    out.line(format!(
        "hunt — registry selection {glob:?} vs the multi-round cross-check (Thm 6.10/6.11)"
    ));
    out.line(format!("builtin registry: {} models", reg.len()));
    out.check("builtin registry holds ≥ 100 models", reg.len() >= 100);
    let selected = reg.select(glob);
    out.line(format!("selected {} models", selected.len()));
    out.check("selection is non-empty", !selected.is_empty());

    out.line(format!(
        "{:<36} {:>3} {:>6} {:>9} {:>8}",
        "model", "r", "conn", "predicted", "facets"
    ));
    let mut violations: Vec<String> = Vec::new();
    let mut scanned = 0usize;
    let mut skipped: Vec<String> = Vec::new();
    for name in selected {
        // Deterministic admission: models whose materialization estimate
        // alone exceeds the per-model budget are skipped up front (broad
        // globs may select huge families), and sweeps that trip the
        // topology budget mid-flight are reported as skipped rather than
        // failing the hunt — both outcomes depend only on the name.
        let estimate = reg
            .spec(name)
            .map(ksa_models::ModelSpec::estimated_work)
            .unwrap_or(u128::MAX);
        if estimate > SWEEP_BUDGET {
            out.line(format!(
                "{name:<36} skipped (estimated work {estimate} over budget)"
            ));
            skipped.push(name.to_string());
            continue;
        }
        match cross_check_round_sweep_by_name(name, 1, ROUNDS, SWEEP_BUDGET) {
            Ok(sweep) => {
                scanned += 1;
                for row in &sweep.per_round {
                    out.line(format!(
                        "{name:<36} {:>3} {:>6} {:>9} {:>8}{}",
                        row.round,
                        row.measured_connectivity,
                        row.predicted_l,
                        row.facets,
                        if row.is_consistent() {
                            ""
                        } else {
                            "  ← VIOLATION"
                        }
                    ));
                    if !row.is_consistent() {
                        violations.push(format!("{name} at r={}", row.round));
                    }
                }
            }
            Err(e) => {
                out.line(format!("{name:<36} skipped ({e})"));
                skipped.push(name.to_string());
                continue;
            }
        }
        // Second hunt front (DESIGN.md §10.3): the *exact* one-round CSP
        // k-sweep vs the certified round-1 lower bound. The certificate
        // check in `best_lower_bound` is supposed to drop every formula
        // overclaim; a Solvable CSP verdict at a certified-impossible k
        // would be a counterexample to that scoping.
        match hunt_csp_cross_check(name) {
            Ok(line) => {
                if let Some(conflict) = &line.conflict {
                    violations.push(conflict.clone());
                }
                out.line(line.text);
            }
            Err(e) => out.line(format!("{name:<36} csp sweep skipped ({e})")),
        }
    }
    out.line(format!(
        "scanned {scanned} models, skipped {}; a violation line names its exact repro spec",
        skipped.len()
    ));
    if !skipped.is_empty() {
        out.line(format!("skipped models: {}", skipped.join(", ")));
    }
    out.check("at least one model admitted and scanned", scanned > 0);
    out.skipped_models = skipped;
    for v in &violations {
        out.check(&format!("VIOLATION {v}"), false);
    }
    out.check(
        "no violations of the multi-round lower bounds across the ensemble",
        violations.is_empty(),
    );
    Ok(out)
}

/// One `hunt` CSP-vs-certified-bound row: the rendered table line plus
/// the conflict description when the exact sweep refutes the bound.
struct HuntCspLine {
    text: String,
    conflict: Option<String>,
}

/// Runs the incremental k-sweep (k ≤ 3, the whole n = 3 range) on one
/// registry model and confronts it with `best_lower_bound(model, 1)`:
/// a certified `impossible_k = k0` and a `Solvable` sweep verdict at
/// `k0` cannot both hold — the CSP is exact on the pseudosphere
/// `Ψ(Π, [0, k0])` the impossibility argues over.
fn hunt_csp_cross_check(name: &str) -> Result<HuntCspLine, Box<dyn Error>> {
    use ksa_core::bounds::lower::best_lower_bound;
    use ksa_core::solvability::{decide_one_round_sweep, Solvability};
    const K_MAX: usize = 3;
    let model = registry_model(name)?;
    let sweep = decide_one_round_sweep(&model, K_MAX, 2_000_000, 50_000_000)?;
    let boundary = sweep
        .verdicts
        .iter()
        .position(Solvability::is_solvable)
        .map(|i| i + 1);
    let certified = best_lower_bound(&model, 1)?.map(|b| b.impossible_k);
    let conflict = match (certified, boundary) {
        (Some(k0), Some(b)) if b <= k0 && k0 <= K_MAX => Some(format!(
            "{name}: exact CSP solves k={b} but round-1 bound certifies k={k0} impossible"
        )),
        _ => None,
    };
    let text = format!(
        "{name:<36} csp boundary k*={} certified impossible k={} ({} searched, {} seeded, {} pruned){}",
        boundary.map_or("-".into(), |b| b.to_string()),
        certified.map_or("-".into(), |k| k.to_string()),
        sweep.searched,
        sweep.seeded,
        sweep.pruned,
        if conflict.is_some() {
            "  ← VIOLATION"
        } else {
            ""
        }
    );
    Ok(HuntCspLine { text, conflict })
}
