//! Shared experiment logic for the `experiments` binary and the criterion
//! benches.
//!
//! Each function runs one experiment of the EXPERIMENTS.md index, returns
//! a rendered report plus a pass/fail verdict of its *shape assertions*
//! (the orderings/values the paper states; see DESIGN.md §3).

pub mod experiments;

/// Outcome of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Experiment id (matches EXPERIMENTS.md).
    pub id: &'static str,
    /// Human-readable report (tables included).
    pub report: String,
    /// Whether every shape assertion held.
    pub passed: bool,
    /// Every shape assertion, in order: `(description, held)`. The
    /// machine-readable mirror of the `[ok]`/`[FAIL]` report lines, used
    /// by `experiments --json` (and the CI determinism diff).
    pub checks: Vec<(String, bool)>,
    /// Models the experiment selected but did not scan because their
    /// admission estimate exceeded the per-model budget. Empty for
    /// experiments without budgeted model sweeps; `hunt` fills it so
    /// coverage gaps are visible in the table and `--json`.
    pub skipped_models: Vec<String>,
    /// Certificate verdict of the experiment (DESIGN.md §11): `None`
    /// when the experiment emits no certificates, `Some(true)` when
    /// every emitted certificate was re-verified in-run by the
    /// standalone `ksa-cert` checker, `Some(false)` when any was
    /// rejected. Deterministic at any `KSA_THREADS` (part of the CI
    /// determinism diff as the `--json` `certified` field).
    pub certified: Option<bool>,
    /// The emitted certificates as `(label, textual form)` pairs, in
    /// emission order — `experiments --certs <dir>` writes each to a
    /// `.cert` file for the out-of-process `cert-check` pass. The
    /// *texts* may vary across schedules (a shelling certificate
    /// carries whichever valid order won the race); everything the
    /// determinism diff sees — labels, verdicts, check lines — is
    /// schedule-invariant.
    pub certs: Vec<(String, String)>,
}

impl ExperimentOutcome {
    pub(crate) fn new(id: &'static str) -> Self {
        ExperimentOutcome {
            id,
            report: String::new(),
            passed: true,
            checks: Vec::new(),
            skipped_models: Vec::new(),
            certified: None,
            certs: Vec::new(),
        }
    }

    pub(crate) fn line(&mut self, s: impl AsRef<str>) {
        self.report.push_str(s.as_ref());
        self.report.push('\n');
    }

    pub(crate) fn check(&mut self, what: &str, ok: bool) {
        self.line(format!("  [{}] {}", if ok { "ok" } else { "FAIL" }, what));
        self.checks.push((what.to_string(), ok));
        self.passed &= ok;
    }

    /// Re-verifies `cert` with its standalone checker, records the
    /// result both as a shape assertion and in the `certified` verdict,
    /// and stores the textual form for `--certs` export.
    pub(crate) fn certify(&mut self, cert: ksa_cert::Cert) {
        let verdict = cert.check();
        let ok = verdict.is_ok();
        self.check(
            &format!(
                "certificate re-verified: {} `{}`",
                cert.kind(),
                cert.label()
            ),
            ok,
        );
        if let Err(e) = verdict {
            self.line(format!("    checker said: {e}"));
        }
        self.certified = Some(self.certified.unwrap_or(true) && ok);
        self.certs.push((cert.label().to_string(), cert.to_text()));
    }
}

/// All experiment ids, in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "lemma46",
    "thm412",
    "thm54",
    "sec61",
    "stars",
    "seqs",
    "multiround",
    "rounds",
    "sim",
    "def52",
    "cor55",
    "extuniv",
    "solv",
    "approx",
    "hunt",
];

/// The fast subset run by `experiments --smoke` (the CI bench-smoke
/// job). Historically this excluded `solv`, whose exhaustive decision
/// procedure dominated the runtime of `all`; the pruned search
/// (DESIGN.md §10) collapsed it to milliseconds, so the smoke set is
/// currently every experiment.
pub const SMOKE_EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "lemma46",
    "thm412",
    "thm54",
    "sec61",
    "stars",
    "seqs",
    "multiround",
    "rounds",
    "sim",
    "def52",
    "cor55",
    "extuniv",
    "solv",
    "approx",
    "hunt",
];

/// Runs one experiment by id.
///
/// # Errors
///
/// Returns an error string for unknown ids or computation failures.
pub fn run_experiment(id: &str) -> Result<ExperimentOutcome, String> {
    run_experiment_with_models(id, None)
}

/// [`run_experiment`] with an optional registry selection glob (the CLI
/// `--models` flag). Only registry-driven experiments consume it — today
/// that is `hunt`, which scans the selected models instead of its default
/// ensemble; every other experiment has a fixed model table and ignores
/// the override.
///
/// # Errors
///
/// Returns an error string for unknown ids or computation failures.
pub fn run_experiment_with_models(
    id: &str,
    models: Option<&str>,
) -> Result<ExperimentOutcome, String> {
    let result = match id {
        "fig1" => experiments::fig1(),
        "fig2" => experiments::fig2(),
        "fig3" => experiments::fig3(),
        "fig4" => experiments::fig4(),
        "lemma46" => experiments::lemma46(),
        "thm412" => experiments::thm412(),
        "thm54" => experiments::thm54(),
        "sec61" => experiments::sec61(),
        "stars" => experiments::stars(),
        "seqs" => experiments::seqs(),
        "multiround" => experiments::multiround(),
        "rounds" => experiments::rounds(),
        "sim" => experiments::sim(),
        "def52" => experiments::def52(),
        "cor55" => experiments::cor55(),
        "extuniv" => experiments::extuniv(),
        "solv" => experiments::solv(),
        "approx" => experiments::approx(),
        "hunt" => experiments::hunt(models),
        other => return Err(format!("unknown experiment id: {other}")),
    };
    result.map_err(|e| e.to_string())
}

/// Wall-clock measurements of one experiment inside the fan-out (see
/// DESIGN.md §9.4). All three are perf-tier values: nondeterministic,
/// stripped before any cross-thread determinism diff.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentTiming {
    /// Queued-to-complete: from the batch being dispatched to this
    /// experiment finishing. Includes time spent waiting for a worker,
    /// so it is the latency a caller of the batch observes.
    pub queued_ms: f64,
    /// On-task elapsed: from the experiment starting on a worker to its
    /// completion. This is the historical `wall_ms` that
    /// `BENCH_results.json` tracks across PRs — an *upper bound* on the
    /// experiment's own cost, because a worker blocked on this
    /// experiment's inner joins may steal and run sibling experiments'
    /// subtasks in the meantime.
    pub wall_ms: f64,
    /// Exclusive on-task time: [`wall_ms`](Self::wall_ms) minus the time
    /// this worker spent executing *stolen* (foreign) work while inside
    /// the experiment, via [`ksa_exec::helped_nanos`]. The closest
    /// available answer to "what did this experiment itself cost".
    pub exclusive_ms: f64,
}

/// Runs the given experiments and returns `(outcome-or-error, timing)`
/// per id, **in input order**.
///
/// With the `parallel` feature each experiment is a `ksa-exec` task —
/// whole experiments race on the work-stealing pool while their inner hot
/// loops (homology, checker, solvability) fan out further on the same
/// engine. Results merge in input order and every experiment is
/// deterministic given its id, so reports, exit codes and `--json`
/// payloads are identical at any `KSA_THREADS`; only the wall times move.
/// See [`ExperimentTiming`] for what each of the three reported times
/// means inside the fan-out.
///
/// # Examples
///
/// ```
/// let results = ksa_bench::run_experiments(&["fig2", "fig3"]);
/// assert_eq!(results.len(), 2);
/// assert!(results.iter().all(|(r, _)| r.as_ref().is_ok_and(|o| o.passed)));
/// assert_eq!(results[0].0.as_ref().unwrap().id, "fig2"); // input order
/// ```
pub fn run_experiments(ids: &[&str]) -> Vec<(Result<ExperimentOutcome, String>, ExperimentTiming)> {
    run_experiments_with_models(ids, None)
}

/// [`run_experiments`] with the registry selection override of
/// [`run_experiment_with_models`] threaded through to every experiment.
pub fn run_experiments_with_models(
    ids: &[&str],
    models: Option<&str>,
) -> Vec<(Result<ExperimentOutcome, String>, ExperimentTiming)> {
    let dispatched = std::time::Instant::now();
    let timed = |id: &&str| {
        let _span = ksa_obs::span("experiment", || (*id).to_string());
        let start = std::time::Instant::now();
        #[cfg(feature = "parallel")]
        let helped_before = ksa_exec::helped_nanos();
        let result = run_experiment_with_models(id, models);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        #[cfg(feature = "parallel")]
        let helped_ms = (ksa_exec::helped_nanos() - helped_before) as f64 / 1e6;
        #[cfg(not(feature = "parallel"))]
        let helped_ms = 0.0;
        let timing = ExperimentTiming {
            queued_ms: dispatched.elapsed().as_secs_f64() * 1e3,
            wall_ms,
            exclusive_ms: (wall_ms - helped_ms).max(0.0),
        };
        (result, timing)
    };
    #[cfg(feature = "parallel")]
    {
        use ksa_exec::prelude::*;
        ids.par_iter().map(timed).collect()
    }
    #[cfg(not(feature = "parallel"))]
    {
        ids.iter().map(timed).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_runs_and_passes() {
        for id in ALL_EXPERIMENTS {
            let out = run_experiment(id).unwrap_or_else(|e| panic!("{id}: {e}"));
            assert!(out.passed, "{id} failed:\n{}", out.report);
        }
    }

    #[test]
    fn unknown_id_rejected() {
        assert!(run_experiment("nope").is_err());
    }

    #[test]
    fn hunt_is_deterministic_for_a_pinned_seed() {
        // The regression contract of the hunt: for a fixed registry
        // selection (seed included in the name) the whole report — rows,
        // check strings, verdict — is reproducible, so any violation it
        // ever prints is a replayable recipe.
        let glob = "random{n=3,p=0.5,seed=7,count=4}";
        let a = run_experiment_with_models("hunt", Some(glob)).unwrap();
        let b = run_experiment_with_models("hunt", Some(glob)).unwrap();
        assert!(a.passed, "hunt failed:\n{}", a.report);
        assert_eq!(a.report, b.report);
        assert_eq!(a.checks, b.checks);
        assert!(a.report.contains(glob), "rows are labeled by spec name");
    }

    #[test]
    fn hunt_respects_model_overrides() {
        // An empty selection is a failed check, not a panic.
        let none = run_experiment_with_models("hunt", Some("nomatch*")).unwrap();
        assert!(!none.passed);
        // Non-registry experiments ignore the override.
        let fig2 = run_experiment_with_models("fig2", Some("nomatch*")).unwrap();
        assert!(fig2.passed);
    }

    #[test]
    fn smoke_set_is_all_minus_exclusions() {
        // The smoke list must track ALL_EXPERIMENTS: only the named
        // slow exclusions may be missing, so new experiments cannot
        // silently drop out of the CI smoke job.
        // `solv` left this list when the pruned search (DESIGN.md §10)
        // took its full sweep from ~12 s to milliseconds.
        const SLOW_EXCLUSIONS: &[&str] = &[];
        let expected: Vec<&str> = ALL_EXPERIMENTS
            .iter()
            .copied()
            .filter(|id| !SLOW_EXCLUSIONS.contains(id))
            .collect();
        assert_eq!(SMOKE_EXPERIMENTS, expected.as_slice());
    }
}
