//! The experiment harness: regenerates every figure and in-text numerical
//! claim of the paper (see EXPERIMENTS.md for the index).
//!
//! Usage:
//!
//! ```text
//! experiments all            # run everything
//! experiments --smoke        # run the fast subset (CI smoke job)
//! experiments fig1 stars …   # run selected experiments
//! experiments --list         # list experiment ids
//! experiments --list-models  # list the builtin model registry
//! experiments --list-models --models 'stars*,ring*'
//!                            # list a registry selection
//! experiments hunt --models 'random{n=3*'
//!                            # hunt over a registry selection
//! experiments all --json BENCH_results.json
//!                            # also write machine-readable results
//! experiments --smoke --certs certs/
//!                            # export every emitted certificate for an
//!                            # out-of-process `cert-check` pass
//! ```
//!
//! `--json <path>` writes per-experiment timings, every shape assertion,
//! a per-experiment check-count summary (`counts`) and the run's
//! instrumentation counters (`metrics`, see DESIGN.md §9) as JSON, so
//! the perf trajectory is tracked across PRs (`BENCH_results.json` at
//! the repo root is the committed baseline) and CI can diff the
//! deterministic payload across thread counts. Of the three per-
//! experiment times, `wall_ms` (on-task elapsed) is the one the
//! committed baseline tracks; `queued_ms` and `exclusive_ms` qualify it
//! (see `ksa_bench::ExperimentTiming`).
//!
//! `--trace <path>` records a chrome://tracing-compatible trace of the
//! run (experiment, round, rank-reduction, CSP spans): open the file via
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! `--certs <dir>` writes every certificate the experiments emitted
//! (shelling / homology / solvability verdicts, DESIGN.md §11) as
//! `<experiment>-<idx>-<label>.cert` files under `<dir>`, so the
//! standalone `cert-check` binary can re-verify the whole run without
//! sharing a process — the CI determinism job does exactly that.
//!
//! `--models <glob>` selects models from the builtin registry by
//! canonical name (`*`/`?` wildcards; comma-separated patterns respect
//! braces). Repeatable — occurrences are joined with `,`. It filters
//! `--list-models` and overrides the default ensemble of the
//! registry-driven experiments (`hunt`).
//!
//! Exit code 0 iff every executed experiment's shape assertions held.

use ksa_bench::{
    run_experiments_with_models, ExperimentOutcome, ExperimentTiming, ALL_EXPERIMENTS,
    SMOKE_EXPERIMENTS,
};
use std::process::ExitCode;

/// Filesystem-safe slug of a certificate label (`--certs` file names).
fn cert_slug(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the run as the `BENCH_results.json` document (schema 2:
/// three timing fields per experiment, the folded `counts` summary and
/// the `metrics` section — the old side file is gone). Hand-rolled: the
/// build environment has no serde; the shape is flat enough that string
/// assembly is clearer than a vendored serializer.
fn render_json(results: &[(ExperimentOutcome, ExperimentTiming)]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"ksa-bench-results/2\",\n");
    out.push_str(&format!(
        "  \"ksa_threads\": \"{}\",\n",
        json_escape(&std::env::var("KSA_THREADS").unwrap_or_else(|_| "auto".into()))
    ));
    out.push_str("  \"experiments\": [\n");
    for (i, (outcome, timing)) in results.iter().enumerate() {
        let checks_failed = outcome.checks.iter().filter(|(_, ok)| !ok).count();
        out.push_str("    {\n");
        out.push_str(&format!("      \"id\": \"{}\",\n", json_escape(outcome.id)));
        out.push_str(&format!("      \"passed\": {},\n", outcome.passed));
        // Deterministic at any KSA_THREADS (part of the CI diff):
        // null ⇔ the experiment emits no certificates.
        out.push_str(&format!(
            "      \"certified\": {},\n",
            match outcome.certified {
                Some(v) => v.to_string(),
                None => "null".to_string(),
            }
        ));
        // `wall_ms` (on-task elapsed) is the tracked series; the other
        // two qualify it (see ksa_bench::ExperimentTiming).
        out.push_str(&format!("      \"wall_ms\": {:.1},\n", timing.wall_ms));
        out.push_str(&format!("      \"queued_ms\": {:.1},\n", timing.queued_ms));
        out.push_str(&format!(
            "      \"exclusive_ms\": {:.1},\n",
            timing.exclusive_ms
        ));
        out.push_str(&format!(
            "      \"checks_passed\": {},\n",
            outcome.checks.len() - checks_failed
        ));
        out.push_str(&format!("      \"checks_failed\": {checks_failed},\n"));
        out.push_str(&format!(
            "      \"skipped_models\": [{}],\n",
            outcome
                .skipped_models
                .iter()
                .map(|m| format!("\"{}\"", json_escape(m)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("      \"checks\": [\n");
        for (j, (what, ok)) in outcome.checks.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"what\": \"{}\", \"ok\": {}}}{}\n",
                json_escape(what),
                ok,
                if j + 1 < outcome.checks.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");

    // The per-experiment check-count summary (the former
    // `BENCH_results.json.counts` side file, folded in).
    out.push_str("  \"counts\": {\n");
    for (i, (outcome, _)) in results.iter().enumerate() {
        let failed = outcome.checks.iter().filter(|(_, ok)| !ok).count();
        out.push_str(&format!(
            "    \"{}\": \"{}/{}\"{}\n",
            json_escape(outcome.id),
            outcome.checks.len() - failed,
            outcome.checks.len(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");

    // Instrumentation counters for the whole run (DESIGN.md §9). The
    // deterministic tier is part of the cross-thread determinism
    // contract and is diffed by CI; everything under "perf" is
    // scheduling-dependent and must be stripped first.
    let metrics = ksa_obs::snapshot();
    out.push_str("  \"metrics\": {\n    \"deterministic\": {\n");
    for (i, (name, value)) in metrics.det.iter().enumerate() {
        out.push_str(&format!(
            "      \"{name}\": {value}{}\n",
            if i + 1 < metrics.det.len() { "," } else { "" }
        ));
    }
    out.push_str("    },\n    \"perf\": {\n      \"counters\": {\n");
    for (i, (name, value)) in metrics.perf.iter().enumerate() {
        out.push_str(&format!(
            "        \"{name}\": {value}{}\n",
            if i + 1 < metrics.perf.len() { "," } else { "" }
        ));
    }
    out.push_str("      },\n      \"workers\": [\n");
    for (i, w) in metrics.workers.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"label\": \"{}\", \"steals\": {}, \"parks\": {}, \"spawns\": {}}}{}\n",
            json_escape(&w.label),
            w.steals,
            w.parks,
            w.spawns,
            if i + 1 < metrics.workers.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("      ]\n    }\n  }\n}\n");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    // Pull out `--json <path>` / `--trace <path>` / `--models <glob>` /
    // `--list-models` before interpreting the rest as ids.
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut certs_dir: Option<String> = None;
    let mut model_globs: Vec<String> = Vec::new();
    let mut list_models = false;
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--json" {
            match it.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a path argument");
                    return ExitCode::FAILURE;
                }
            }
        } else if arg == "--certs" {
            match it.next() {
                Some(dir) => certs_dir = Some(dir),
                None => {
                    eprintln!("--certs requires a directory argument");
                    return ExitCode::FAILURE;
                }
            }
        } else if arg == "--trace" {
            match it.next() {
                Some(path) => trace_path = Some(path),
                None => {
                    eprintln!("--trace requires a path argument");
                    return ExitCode::FAILURE;
                }
            }
        } else if arg == "--models" {
            match it.next() {
                Some(glob) => model_globs.push(glob),
                None => {
                    eprintln!("--models requires a glob argument (e.g. 'stars*,ring*')");
                    return ExitCode::FAILURE;
                }
            }
        } else if arg == "--list-models" {
            list_models = true;
        } else {
            selected.push(arg);
        }
    }
    let models: Option<String> = if model_globs.is_empty() {
        None
    } else {
        Some(model_globs.join(","))
    };

    if list_models {
        let reg = ksa_models::registry::builtin();
        let names: Vec<&str> = match &models {
            Some(glob) => reg.select(glob),
            None => reg.names().collect(),
        };
        for name in &names {
            println!("{name}");
        }
        eprintln!("{} of {} builtin models", names.len(), reg.len());
        return ExitCode::SUCCESS;
    }

    let ids: Vec<&str> = if selected.iter().any(|a| a == "--smoke") {
        SMOKE_EXPERIMENTS.to_vec()
    } else if selected.is_empty() || selected.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        selected.iter().map(|s| s.as_str()).collect()
    };

    if trace_path.is_some() {
        ksa_obs::trace_start();
    }

    // Whole experiments fan out as `ksa-exec` tasks (under the default
    // `parallel` feature); results come back in input order, so the
    // printed reports and the JSON payload are independent of the thread
    // count.
    let mut all_ok = true;
    let mut results: Vec<(ExperimentOutcome, ExperimentTiming)> = Vec::new();
    for (id, (result, timing)) in ids
        .iter()
        .zip(run_experiments_with_models(&ids, models.as_deref()))
    {
        match result {
            Ok(outcome) => {
                println!("================================================================");
                println!(
                    "experiment: {} ({:.0} ms on-task, {:.0} ms exclusive)",
                    outcome.id, timing.wall_ms, timing.exclusive_ms
                );
                println!("================================================================");
                println!("{}", outcome.report);
                println!(
                    "result: {}\n",
                    if outcome.passed { "PASSED" } else { "FAILED" }
                );
                all_ok &= outcome.passed;
                results.push((outcome, timing));
            }
            Err(e) => {
                eprintln!("experiment {id}: error: {e}");
                all_ok = false;
            }
        }
    }

    if let Some(dir) = certs_dir {
        let dir = std::path::Path::new(&dir);
        match std::fs::create_dir_all(dir) {
            Err(e) => {
                eprintln!("failed to create {}: {e}", dir.display());
                all_ok = false;
            }
            Ok(()) => {
                let mut written = 0usize;
                for (outcome, _) in &results {
                    for (i, (label, text)) in outcome.certs.iter().enumerate() {
                        let path =
                            dir.join(format!("{}-{i:02}-{}.cert", outcome.id, cert_slug(label)));
                        if let Err(e) = std::fs::write(&path, text) {
                            eprintln!("failed to write {}: {e}", path.display());
                            all_ok = false;
                        } else {
                            written += 1;
                        }
                    }
                }
                println!("wrote {written} certificate(s) to {}", dir.display());
            }
        }
    }

    if let Some(path) = trace_path {
        let doc = ksa_obs::trace_stop();
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("failed to write {path}: {e}");
            all_ok = false;
        } else {
            println!("wrote chrome://tracing trace to {path}");
        }
    }

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, render_json(&results)) {
            eprintln!("failed to write {path}: {e}");
            all_ok = false;
        } else {
            println!("wrote {} experiment results to {path}", results.len());
        }
    }

    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
