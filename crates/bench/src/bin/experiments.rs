//! The experiment harness: regenerates every figure and in-text numerical
//! claim of the paper (see EXPERIMENTS.md for the index).
//!
//! Usage:
//!
//! ```text
//! experiments all            # run everything
//! experiments --smoke        # run the fast subset (CI smoke job)
//! experiments fig1 stars …   # run selected experiments
//! experiments --list         # list experiment ids
//! ```
//!
//! Exit code 0 iff every executed experiment's shape assertions held.

use ksa_bench::{run_experiment, ALL_EXPERIMENTS, SMOKE_EXPERIMENTS};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "--smoke") {
        SMOKE_EXPERIMENTS.to_vec()
    } else if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    let mut all_ok = true;
    for id in ids {
        match run_experiment(id) {
            Ok(outcome) => {
                println!("================================================================");
                println!("experiment: {}", outcome.id);
                println!("================================================================");
                println!("{}", outcome.report);
                println!(
                    "result: {}\n",
                    if outcome.passed { "PASSED" } else { "FAILED" }
                );
                all_ok &= outcome.passed;
            }
            Err(e) => {
                eprintln!("experiment {id}: error: {e}");
                all_ok = false;
            }
        }
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
