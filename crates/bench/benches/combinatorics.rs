//! Criterion benches of the combinatorial-number substrate: the cost of
//! every number the paper's bounds are stated in, as `n` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksa_graphs::covering::covering_number;
use ksa_graphs::dist_domination::distributed_domination_number;
use ksa_graphs::domination::{domination_number, greedy_dominating_set};
use ksa_graphs::equal_domination::equal_domination_number;
use ksa_graphs::max_covering::max_covering_number_with;
use ksa_graphs::perm::symmetric_closure;
use ksa_graphs::random::random_digraph;
use ksa_graphs::{families, Digraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_domination(c: &mut Criterion) {
    let mut group = c.benchmark_group("domination_number");
    for n in [8usize, 12, 16, 24, 32] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = random_digraph(n, 0.25, &mut rng).expect("valid n");
        group.bench_with_input(BenchmarkId::new("exact", n), &g, |b, g| {
            b.iter(|| domination_number(black_box(g)))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &g, |b, g| {
            b.iter(|| greedy_dominating_set(black_box(g)).size)
        });
    }
    group.finish();
}

fn bench_equal_domination(c: &mut Criterion) {
    let mut group = c.benchmark_group("equal_domination");
    for n in [8usize, 16, 32, 64] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = random_digraph(n, 0.3, &mut rng).expect("valid n");
        group.bench_with_input(BenchmarkId::new("closed_form", n), &g, |b, g| {
            b.iter(|| equal_domination_number(black_box(g)))
        });
    }
    group.finish();
}

fn bench_covering(c: &mut Criterion) {
    let mut group = c.benchmark_group("covering_number");
    for n in [8usize, 12, 16, 20] {
        let g = families::cycle(n).expect("valid n");
        group.bench_with_input(BenchmarkId::new("cov_2_cycle", n), &g, |b, g| {
            b.iter(|| covering_number(black_box(g), 2))
        });
        group.bench_with_input(BenchmarkId::new("cov_n/2_cycle", n), &g, |b, g| {
            b.iter(|| covering_number(black_box(g), n / 2))
        });
    }
    group.finish();
}

fn bench_dist_domination(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_domination");
    for n in [4usize, 5, 6] {
        let sym =
            symmetric_closure(&[families::broadcast_star(n, 0).expect("valid")]).expect("closure");
        group.bench_with_input(
            BenchmarkId::new("star_closure", n),
            &sym,
            |b, s: &Vec<Digraph>| b.iter(|| distributed_domination_number(black_box(s))),
        );
    }
    group.finish();
}

fn bench_max_covering(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_covering");
    for n in [4usize, 5, 6] {
        let sym = symmetric_closure(&[families::cycle(n).expect("valid")]).expect("closure");
        let gd = distributed_domination_number(&sym).expect("non-empty");
        group.bench_with_input(
            BenchmarkId::new("cycle_closure_t1", n),
            &(sym, gd),
            |b, (s, gd)| b.iter(|| max_covering_number_with(black_box(s), 1, *gd)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_domination,
    bench_equal_domination,
    bench_covering,
    bench_dist_domination,
    bench_max_covering
);
criterion_main!(benches);
