//! Criterion benches of the multi-round machinery: graph path products,
//! set powers, covering sequences, and the multi-round bound pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksa_core::bounds::report::BoundsReport;
use ksa_graphs::families;
use ksa_graphs::product::{power, set_power};
use ksa_graphs::random::random_digraph;
use ksa_graphs::sequences::covering_sequence;
use ksa_models::named;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_product");
    for n in [8usize, 16, 32, 64] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = random_digraph(n, 0.2, &mut rng).expect("valid n");
        group.bench_with_input(BenchmarkId::new("square", n), &g, |b, g| {
            b.iter(|| power(black_box(g), 2))
        });
        group.bench_with_input(BenchmarkId::new("power8", n), &g, |b, g| {
            b.iter(|| power(black_box(g), 8))
        });
    }
    group.finish();
}

fn bench_set_power(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_power");
    group.sample_size(20);
    for n in [4usize, 5] {
        let gens = named::symmetric_ring(n)
            .expect("valid")
            .generators()
            .to_vec();
        group.bench_with_input(BenchmarkId::new("sym_ring_r2", n), &gens, |b, g| {
            b.iter(|| set_power(black_box(g), 2).map(|v| v.len()))
        });
    }
    group.finish();
}

fn bench_sequences(c: &mut Criterion) {
    let mut group = c.benchmark_group("covering_sequences");
    for n in [6usize, 10, 14] {
        let g = families::cycle(n).expect("valid");
        group.bench_with_input(BenchmarkId::new("cycle_i1", n), &g, |b, g| {
            b.iter(|| covering_sequence(black_box(g), 1))
        });
    }
    group.finish();
}

fn bench_full_report(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounds_report");
    group.sample_size(10);
    for (name, model, r) in [
        (
            "stars_n5_s2_r1",
            named::star_unions(5, 2).expect("valid"),
            1usize,
        ),
        (
            "stars_n5_s2_r2",
            named::star_unions(5, 2).expect("valid"),
            2,
        ),
        ("ring_n4_r2", named::symmetric_ring(4).expect("valid"), 2),
        (
            "kernel_n5_r1",
            named::non_empty_kernel(5).expect("valid"),
            1,
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| BoundsReport::compute(black_box(&model), r))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_product,
    bench_set_power,
    bench_sequences,
    bench_full_report
);
criterion_main!(benches);
