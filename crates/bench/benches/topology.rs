//! Criterion benches of the topology substrate: pseudosphere
//! materialization, homology, protocol-complex construction and
//! connectivity verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksa_core::task::input_complex;
use ksa_core::verify::verify_protocol_connectivity;
use ksa_graphs::families;
use ksa_models::named;
use ksa_topology::connectivity::homological_connectivity;
use ksa_topology::homology::reduced_betti_numbers;
use ksa_topology::pseudosphere::Pseudosphere;
use ksa_topology::shelling::find_shelling_order;
use ksa_topology::uninterpreted::closed_above_pseudosphere;
use std::hint::black_box;

fn bench_pseudosphere_materialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("pseudosphere_to_complex");
    for n in [3usize, 4, 5] {
        let ps = Pseudosphere::new((0..n).map(|p| (p, vec![0u32, 1, 2])).collect())
            .expect("distinct colors");
        group.bench_with_input(BenchmarkId::new("ternary_views", n), &ps, |b, ps| {
            b.iter(|| ps.to_complex().facet_count())
        });
    }
    group.finish();
}

fn bench_homology(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduced_betti");
    for n in [3usize, 4] {
        let complex = Pseudosphere::new((0..n).map(|p| (p, vec![0u32, 1])).collect())
            .expect("distinct colors")
            .to_complex();
        group.bench_with_input(BenchmarkId::new("cross_polytope", n), &complex, |b, cx| {
            b.iter(|| reduced_betti_numbers(black_box(cx)))
        });
    }
    // A closed-above uninterpreted complex (union of pseudospheres).
    let un = closed_above_pseudosphere(&families::cycle(4).expect("valid")).to_complex();
    group.bench_function("uninterpreted_C4_closure", |b| {
        b.iter(|| homological_connectivity(black_box(&un)))
    });
    group.finish();
}

fn bench_protocol_complex(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_complex");
    group.sample_size(10);
    for (name, model, vmax) in [
        (
            "stars_n3_v2",
            named::star_unions(3, 1).expect("valid"),
            1usize,
        ),
        ("ring_n3_v2", named::symmetric_ring(3).expect("valid"), 1),
        ("stars_n3_v3", named::star_unions(3, 1).expect("valid"), 2),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| verify_protocol_connectivity(black_box(&model), vmax, 500_000))
        });
    }
    group.finish();
}

fn bench_input_complex(c: &mut Criterion) {
    let mut group = c.benchmark_group("input_complex");
    for (n, k) in [(3usize, 2usize), (4, 2), (4, 3)] {
        group.bench_with_input(
            BenchmarkId::new("psi", format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| b.iter(|| input_complex(n, k, 10_000_000)),
        );
    }
    group.finish();
}

fn bench_shelling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shelling_search");
    group.sample_size(10);
    for n in [3usize, 4] {
        let complex = Pseudosphere::new((0..n).map(|p| (p, vec![0u32, 1])).collect())
            .expect("distinct colors")
            .to_complex();
        group.bench_with_input(BenchmarkId::new("cross_polytope", n), &complex, |b, cx| {
            b.iter(|| find_shelling_order(black_box(cx)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pseudosphere_materialization,
    bench_homology,
    bench_protocol_complex,
    bench_input_complex,
    bench_shelling
);
criterion_main!(benches);
