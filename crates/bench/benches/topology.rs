//! Criterion benches of the topology substrate: pseudosphere
//! materialization, homology (the chain engine's tracked microbench),
//! protocol-complex construction and connectivity verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksa_core::task::input_complex;
use ksa_core::verify::verify_protocol_connectivity;
use ksa_graphs::families;
use ksa_models::named;
use ksa_topology::complex::Complex;
use ksa_topology::connectivity::{connectivity, connectivity_up_to, homological_connectivity};
use ksa_topology::homology::reduced_betti_numbers;
use ksa_topology::pseudosphere::Pseudosphere;
use ksa_topology::rounds::protocol_complex_rounds;
use ksa_topology::shelling::find_shelling_order;
use ksa_topology::uninterpreted::{closed_above_pseudosphere, closed_above_uninterpreted_complex};
use std::hint::black_box;

fn bench_pseudosphere_materialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("pseudosphere_to_complex");
    for n in [3usize, 4, 5] {
        let ps = Pseudosphere::new((0..n).map(|p| (p, vec![0u32, 1, 2])).collect())
            .expect("distinct colors");
        group.bench_with_input(BenchmarkId::new("ternary_views", n), &ps, |b, ps| {
            b.iter(|| ps.to_complex().facet_count())
        });
    }
    group.finish();
}

fn bench_homology(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduced_betti");
    for n in [3usize, 4] {
        let complex = Pseudosphere::new((0..n).map(|p| (p, vec![0u32, 1])).collect())
            .expect("distinct colors")
            .to_complex();
        group.bench_with_input(BenchmarkId::new("cross_polytope", n), &complex, |b, cx| {
            b.iter(|| reduced_betti_numbers(black_box(cx)))
        });
    }
    // A closed-above uninterpreted complex (union of pseudospheres).
    let un = closed_above_pseudosphere(&families::cycle(4).expect("valid")).to_complex();
    group.bench_function("uninterpreted_C4_closure", |b| {
        b.iter(|| homological_connectivity(black_box(&un)))
    });
    group.finish();
}

/// The chain engine's tracked microbench (DESIGN.md §7): Betti numbers,
/// full connectivity and early-exit `connectivity_up_to` on the n=3–4
/// zoo's uninterpreted complexes and on a 2-round iterated protocol
/// complex — the shapes that dominate the `rounds`/`thm412`/`thm54`
/// experiment wall times.
fn bench_homology_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("homology");
    group.sample_size(20);
    let zoo: Vec<(&str, Complex<ksa_graphs::ProcSet>)> = vec![
        (
            "stars_n3_s1",
            closed_above_uninterpreted_complex(
                named::star_unions(3, 1).expect("valid").generators(),
                2_000_000,
            )
            .expect("in budget"),
        ),
        (
            "ring_n4",
            closed_above_uninterpreted_complex(
                named::symmetric_ring(4).expect("valid").generators(),
                2_000_000,
            )
            .expect("in budget"),
        ),
    ];
    for (name, complex) in &zoo {
        group.bench_with_input(BenchmarkId::new("betti", name), complex, |b, cx| {
            b.iter(|| reduced_betti_numbers(black_box(cx)))
        });
        group.bench_with_input(BenchmarkId::new("connectivity", name), complex, |b, cx| {
            b.iter(|| connectivity(black_box(cx)))
        });
        group.bench_with_input(
            BenchmarkId::new("connectivity_up_to_1", name),
            complex,
            |b, cx| b.iter(|| connectivity_up_to(black_box(cx), 1)),
        );
    }
    // A 2-round iterated-interpretation complex (the round sweep's shape).
    let model = named::star_unions(3, 1).expect("valid");
    let input = input_complex(3, 1, 100_000_000).expect("in budget");
    let rc =
        protocol_complex_rounds(model.generators(), &input, 2, 100_000_000u128).expect("in budget");
    let round2 = rc.complex_at(2).expect("materialized").clone();
    group.bench_function("betti/stars_n3_s1_round2", |b| {
        b.iter(|| reduced_betti_numbers(black_box(&round2)))
    });
    group.bench_function("connectivity_up_to_1/stars_n3_s1_round2", |b| {
        b.iter(|| connectivity_up_to(black_box(&round2), 1))
    });
    group.finish();
}

fn bench_protocol_complex(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_complex");
    group.sample_size(10);
    for (name, model, vmax) in [
        (
            "stars_n3_v2",
            named::star_unions(3, 1).expect("valid"),
            1usize,
        ),
        ("ring_n3_v2", named::symmetric_ring(3).expect("valid"), 1),
        ("stars_n3_v3", named::star_unions(3, 1).expect("valid"), 2),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| verify_protocol_connectivity(black_box(&model), vmax, 500_000))
        });
    }
    group.finish();
}

fn bench_input_complex(c: &mut Criterion) {
    let mut group = c.benchmark_group("input_complex");
    for (n, k) in [(3usize, 2usize), (4, 2), (4, 3)] {
        group.bench_with_input(
            BenchmarkId::new("psi", format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| b.iter(|| input_complex(n, k, 10_000_000)),
        );
    }
    group.finish();
}

/// The shelling portfolio vs the pinned sequential oracle (DESIGN.md
/// §11): the Fig 4 exemplars (tiny accept/reject pair), the octahedron
/// (cross-polytope n = 3, the largest shellable zoo complex) and the
/// n = 4 cross-polytope, each through both search paths plus the
/// certified producer.
fn bench_shelling(c: &mut Criterion) {
    use ksa_topology::shelling::{find_shelling_order_seq, is_shellable_certified};
    use ksa_topology::simplex::{Simplex, Vertex};

    let mut group = c.benchmark_group("shelling");
    group.sample_size(10);
    let tri = |a: usize, b: usize, c: usize| {
        Simplex::new(vec![
            Vertex::new(a, 0u32),
            Vertex::new(b, 0),
            Vertex::new(c, 0),
        ])
        .expect("distinct colors")
    };
    let mut cases: Vec<(String, Complex<u32>)> = vec![
        (
            "fig4a".into(),
            Complex::from_facets(vec![tri(0, 1, 2), tri(0, 2, 3)]),
        ),
        (
            "fig4b".into(),
            Complex::from_facets(vec![tri(0, 1, 2), tri(2, 3, 4)]),
        ),
    ];
    // Cross-polytopes: n = 3 is the octahedron.
    for n in [3usize, 4] {
        let complex = Pseudosphere::new((0..n).map(|p| (p, vec![0u32, 1])).collect())
            .expect("distinct colors")
            .to_complex();
        cases.push((format!("cross_polytope_{n}"), complex));
    }
    for (name, complex) in &cases {
        group.bench_with_input(BenchmarkId::new("portfolio", name), complex, |b, cx| {
            b.iter(|| find_shelling_order(black_box(cx)))
        });
        group.bench_with_input(BenchmarkId::new("seq_oracle", name), complex, |b, cx| {
            b.iter(|| find_shelling_order_seq(black_box(cx)))
        });
        group.bench_with_input(BenchmarkId::new("certified", name), complex, |b, cx| {
            b.iter(|| is_shellable_certified(black_box(cx), "bench"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pseudosphere_materialization,
    bench_homology,
    bench_homology_engine,
    bench_protocol_complex,
    bench_input_complex,
    bench_shelling
);
criterion_main!(benches);
