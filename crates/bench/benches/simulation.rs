//! Criterion benches of the runtime substrate: execution throughput,
//! exhaustive checking, Monte-Carlo batches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ksa_core::algorithms::MinOfAll;
use ksa_core::task::Value;
use ksa_models::named;
use ksa_runtime::checker::check_exhaustive;
use ksa_runtime::execution::execute_schedule;
use ksa_runtime::monte_carlo::monte_carlo;
use std::hint::black_box;

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("execute_schedule");
    for n in [4usize, 8, 16, 32] {
        let g = ksa_graphs::families::cycle(n).expect("valid");
        let schedule = vec![g.clone(), g.clone(), g];
        let inputs: Vec<Value> = (0..n as Value).collect();
        group.bench_with_input(
            BenchmarkId::new("cycle_3_rounds", n),
            &(schedule, inputs),
            |b, (s, i)| b.iter(|| execute_schedule(&MinOfAll::new(), black_box(s), i)),
        );
    }
    group.finish();
}

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_checker");
    group.sample_size(10);
    for (name, model, values) in [
        (
            "kernel_n4_v3",
            named::non_empty_kernel(4).expect("valid"),
            3usize,
        ),
        (
            "stars_n4_s2_v3",
            named::star_unions(4, 2).expect("valid"),
            3,
        ),
        ("ring_n4_v2", named::symmetric_ring(4).expect("valid"), 2),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| check_exhaustive(&MinOfAll::new(), black_box(&model), values, 1, 1 << 40))
        });
    }
    group.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo");
    group.sample_size(10);
    for n in [4usize, 5, 6] {
        let model = named::non_empty_kernel(n).expect("valid");
        group.bench_with_input(BenchmarkId::new("kernel_1000_runs", n), &model, |b, m| {
            b.iter(|| monte_carlo(&MinOfAll::new(), black_box(m), n, 2, 1000, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_execution, bench_checker, bench_monte_carlo);
criterion_main!(benches);
