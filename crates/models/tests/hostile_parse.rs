//! Fuzz-style hostility tests for the [`ModelSpec`] parser: whatever
//! bytes arrive — random garbage, truncations, mutations of canonical
//! spellings, pathological nesting — parsing must return `Err` or a
//! valid spec, and must never panic, overflow the stack, or hang.
//!
//! The analysis server feeds client-supplied model strings straight
//! into this parser, so it is the repo's most exposed surface.

use ksa_models::ModelSpec;
use proptest::prelude::*;
use proptest::TestRng;

/// The characters the grammar uses, plus noise — biased so random
/// strings exercise deep parser paths instead of failing on byte one.
const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789{}(),=:>|_. \t\xff\x00";

fn random_bytes(rng: &mut TestRng) -> Vec<u8> {
    let len = rng.below(200) as usize;
    (0..len)
        .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize])
        .collect()
}

/// A canonical spelling to mutate/truncate.
fn canonical(rng: &mut TestRng) -> String {
    let specs = [
        "stars{n=5,s=2}",
        "kernel{n=4}",
        "ring{n=6,sym}",
        "tournament{n=3}",
        "union(ring{n=4},stars{n=4,s=2},kernel{n=4})",
        "product(ring{n=4},kernel{n=4})",
        "up{n=3:0>1 1>2|_}",
        "set{n=3:0>1,1>0}",
        "random{n=3,p=0.25,seed=7,count=2}",
        "product(union(ring{n=4},kernel{n=4}),stars{n=4,s=1})",
    ];
    specs[rng.below(specs.len() as u64) as usize].to_string()
}

fn arbitrary_input() -> impl Strategy<Value = Vec<u8>> {
    Just(()).prop_perturb(|(), mut rng| random_bytes(&mut rng))
}

fn truncated_canonical() -> impl Strategy<Value = String> {
    Just(()).prop_perturb(|(), mut rng| {
        let full = canonical(&mut rng);
        let cut = rng.below(full.len() as u64 + 1) as usize;
        full[..cut].to_string()
    })
}

fn mutated_canonical() -> impl Strategy<Value = String> {
    Just(()).prop_perturb(|(), mut rng| {
        let mut bytes = canonical(&mut rng).into_bytes();
        for _ in 0..=rng.below(3) {
            if bytes.is_empty() {
                break;
            }
            let at = rng.below(bytes.len() as u64) as usize;
            match rng.below(3) {
                0 => bytes[at] = ALPHABET[rng.below(ALPHABET.len() as u64) as usize],
                1 => {
                    bytes.insert(at, ALPHABET[rng.below(ALPHABET.len() as u64) as usize]);
                }
                _ => {
                    bytes.remove(at);
                }
            }
        }
        String::from_utf8_lossy(&bytes).into_owned()
    })
}

/// The invariant all hostile inputs share: parsing returns, and an `Ok`
/// is a genuine spec (its canonical spelling re-parses to itself).
fn assert_total(input: &str) {
    if let Ok(spec) = input.parse::<ModelSpec>() {
        let canonical = spec.to_string();
        let reparsed: ModelSpec = canonical.parse().unwrap_or_else(|e| {
            panic!("accepted {input:?} but canonical {canonical:?} fails: {e}")
        });
        assert_eq!(reparsed, spec);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn random_bytes_never_panic(bytes in arbitrary_input()) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        assert_total(&text);
    }

    #[test]
    fn truncated_canonical_never_panics(text in truncated_canonical()) {
        assert_total(&text);
    }

    #[test]
    fn mutated_canonical_never_panics(text in mutated_canonical()) {
        assert_total(&text);
    }
}

#[test]
fn deep_union_nesting_errors_instead_of_overflowing() {
    // Before the depth cap this was a guaranteed stack overflow: each
    // `union(` frame recursed with no bound. 10 000 levels would need
    // megabytes of stack; the cap turns it into an early `Err`.
    for head in ["union(", "product("] {
        let hostile = head.repeat(10_000);
        let err = hostile
            .parse::<ModelSpec>()
            .expect_err("unterminated nesting must not parse");
        let msg = err.to_string();
        assert!(msg.contains("nested deeper"), "unexpected error: {msg}");
    }
    // Mixed combinators hit the same cap.
    let mixed = "union(product(".repeat(5_000);
    assert!(mixed.parse::<ModelSpec>().is_err());
}

#[test]
fn nesting_below_the_cap_still_parses() {
    // A legitimate (if absurd) 30-level product tower round-trips.
    let mut spec = "ring{n=3}".to_string();
    for _ in 0..30 {
        spec = format!("product({spec},ring{{n=3}})");
    }
    let parsed: ModelSpec = spec.parse().expect("within the cap");
    assert_eq!(parsed.to_string(), spec);
}

#[test]
fn pathological_flat_inputs_error_quickly() {
    // Wide (not deep) hostile inputs: huge flat unions, huge numbers,
    // endless parameter lists. All must terminate with Err or Ok
    // without excessive work.
    let wide = format!("union({})", vec!["ring{n=3}"; 5_000].join(","));
    assert_total(&wide);
    assert!("ring{n=99999999999999999999999999999999999999999}"
        .parse::<ModelSpec>()
        .is_err());
    let many_params = format!("ring{{{}}}", vec!["n=3"; 10_000].join(","));
    assert_total(&many_params);
    assert_total(&"9".repeat(100_000));
    assert_total(&"a".repeat(100_000));
}
