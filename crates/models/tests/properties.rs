//! Property-based tests for the [`ModelSpec`] text format and registry.
//!
//! The format's contract is *canonical round-tripping*: `Display` emits
//! the canonical spelling, the parser accepts it (plus cosmetic
//! variation), and re-displaying what was parsed reproduces the string
//! exactly — the registry relies on this, because the canonical string
//! **is** the model's name.
//!
//! The vendored proptest shim samples (no shrinking), so generators are
//! written directly against its `TestRng`.

use ksa_graphs::Digraph;
use ksa_models::{ModelSpec, Registry};
use proptest::prelude::*;
use proptest::TestRng;

/// A digraph on `n` processes with ~density/1000 proper-edge probability.
fn random_digraph(rng: &mut TestRng, n: usize) -> Digraph {
    let mut g = Digraph::empty(n).expect("valid n");
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.below(2) == 1 {
                g.add_edge(u, v).expect("in range");
            }
        }
    }
    g
}

/// A leaf (non-combinator) spec, kept at sizes every test can afford to
/// materialize.
fn random_leaf(rng: &mut TestRng) -> ModelSpec {
    let n = 3 + rng.below(3) as usize; // 3..=5
    match rng.below(10) {
        0 => ModelSpec::stars(n, 1 + rng.below(n as u64) as usize),
        1 => ModelSpec::kernel(n),
        2 => ModelSpec::ring(n, rng.below(2) == 1),
        3 => ModelSpec::tournament(2 + rng.below(2) as usize),
        4 => ModelSpec::nonsplit(2 + rng.below(2) as usize),
        5 => ModelSpec::path(n, rng.below(2) == 1),
        6 => ModelSpec::tree(n, rng.below(2) == 1),
        7 => ModelSpec::random(
            3,
            rng.below(1001) as f64 / 1000.0,
            rng.next_u64(),
            1 + rng.below(4) as usize,
        ),
        8 => {
            let count = 1 + rng.below(3) as usize;
            let gs = (0..count).map(|_| random_digraph(rng, 4)).collect();
            ModelSpec::up(4, gs)
        }
        _ => {
            let count = 1 + rng.below(3) as usize;
            let gs = (0..count).map(|_| random_digraph(rng, 4)).collect();
            ModelSpec::set(4, gs)
        }
    }
}

/// A leaf that materializes to a closed-above model on 4 processes — the
/// shape union/product operands must share.
fn random_closed_above_leaf(rng: &mut TestRng) -> ModelSpec {
    match rng.below(4) {
        0 => ModelSpec::ring(4, false),
        1 => ModelSpec::stars(4, 1 + rng.below(4) as usize),
        2 => ModelSpec::kernel(4),
        _ => ModelSpec::up(4, vec![random_digraph(rng, 4)]),
    }
}

/// A spec of combinator depth ≤ 1.
fn random_spec(rng: &mut TestRng) -> ModelSpec {
    match rng.below(6) {
        0 => {
            let count = 2 + rng.below(2) as usize;
            let operands = (0..count).map(|_| random_closed_above_leaf(rng)).collect();
            ModelSpec::union(operands)
        }
        1 => ModelSpec::product(random_closed_above_leaf(rng), random_closed_above_leaf(rng)),
        _ => random_leaf(rng),
    }
}

fn spec() -> impl Strategy<Value = ModelSpec> {
    Just(()).prop_perturb(|(), mut rng| random_spec(&mut rng))
}

fn leaf_spec() -> impl Strategy<Value = ModelSpec> {
    Just(()).prop_perturb(|(), mut rng| random_leaf(&mut rng))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn display_parse_round_trips(s in spec()) {
        let text = s.to_string();
        let parsed: ModelSpec = text.parse().unwrap_or_else(|e| {
            panic!("canonical spelling must parse: {text:?}: {e}")
        });
        prop_assert_eq!(&parsed, &s);
        prop_assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn name_is_display(s in spec()) {
        prop_assert_eq!(s.name(), s.to_string());
    }

    #[test]
    fn parse_tolerates_whitespace(s in spec()) {
        // Cosmetic whitespace after separators must not change meaning.
        let loose = s
            .to_string()
            .replace(',', ", ")
            .replace('{', "{ ")
            .replace('}', " }");
        let parsed: ModelSpec = loose.parse().unwrap_or_else(|e| {
            panic!("whitespace-padded spelling must parse: {loose:?}: {e}")
        });
        prop_assert_eq!(parsed, s);
    }

    #[test]
    fn estimated_work_never_panics_and_bounds_leaves(s in leaf_spec()) {
        let est = s.estimated_work();
        prop_assert!(est >= 1);
        // Materialization under a budget covering the estimate succeeds
        // for these sizes, and explicit models stay within the estimate.
        let budget = est.saturating_add(1);
        let resolved = s.materialize(budget).unwrap_or_else(|e| {
            panic!("{s}: admitted materialization failed: {e}")
        });
        if let Some(m) = resolved.as_explicit() {
            prop_assert!((m.graphs().len() as u128) <= est, "{}", s);
        }
    }

    #[test]
    fn registry_name_resolution_is_cached_and_stable(s in spec()) {
        let mut reg = Registry::new();
        let name = reg.insert(s.clone());
        prop_assert_eq!(&name, &s.to_string());
        let est = s.estimated_work().saturating_add(1);
        let a = reg.resolve(&name, est).unwrap();
        let b = reg.resolve(&name, est).unwrap();
        prop_assert!(std::sync::Arc::ptr_eq(&a, &b), "second hit is cached");
    }
}
