//! Graph adversaries: the round-by-round graph choosers that drive
//! executions.
//!
//! An oblivious model constrains *which* graphs may appear; the adversary
//! decides which one actually does, round after round. The runtime crate
//! executes algorithms against these:
//!
//! * [`FixedSequence`] — replay a fixed schedule (for regression tests and
//!   witnesses found by the checker);
//! * [`GeneratorMinimal`] — always play a generator, i.e. the *fewest*
//!   edges the model allows (the hardest legal graphs for dissemination);
//! * [`RandomInModel`] — seeded random graphs from the model;
//! * [`generator_schedules`] — exhaustive enumeration of all length-`r`
//!   generator schedules, for the exhaustive checker.

use crate::closed_above::ClosedAboveModel;
use crate::ObliviousModel;
use ksa_graphs::Digraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of per-round communication graphs.
pub trait Adversary {
    /// The graph for round `round` (0-based). Implementations must return
    /// a graph allowed by the model they represent.
    fn graph_for_round(&mut self, round: usize) -> Digraph;
}

/// Replays a fixed schedule, cycling when rounds exceed its length.
#[derive(Debug, Clone)]
pub struct FixedSequence {
    schedule: Vec<Digraph>,
}

impl FixedSequence {
    /// Builds the adversary from a non-empty schedule.
    ///
    /// # Panics
    ///
    /// Panics when `schedule` is empty.
    pub fn new(schedule: Vec<Digraph>) -> Self {
        assert!(!schedule.is_empty(), "schedule must be non-empty");
        FixedSequence { schedule }
    }
}

impl Adversary for FixedSequence {
    fn graph_for_round(&mut self, round: usize) -> Digraph {
        self.schedule[round % self.schedule.len()].clone()
    }
}

/// Plays generators only — the minimal graphs of a closed-above model —
/// rotating through them round-robin from a seeded shuffle, or pinned to
/// one index.
#[derive(Debug, Clone)]
pub struct GeneratorMinimal {
    generators: Vec<Digraph>,
    pinned: Option<usize>,
    rng: StdRng,
}

impl GeneratorMinimal {
    /// Rotates randomly (seeded) over the model's generators.
    pub fn shuffled(model: &ClosedAboveModel, seed: u64) -> Self {
        GeneratorMinimal {
            generators: model.generators().to_vec(),
            pinned: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Always plays generator `index` (mod the generator count).
    pub fn pinned(model: &ClosedAboveModel, index: usize) -> Self {
        GeneratorMinimal {
            generators: model.generators().to_vec(),
            pinned: Some(index),
            rng: StdRng::seed_from_u64(0),
        }
    }
}

impl Adversary for GeneratorMinimal {
    fn graph_for_round(&mut self, _round: usize) -> Digraph {
        let idx = match self.pinned {
            Some(i) => i % self.generators.len(),
            None => self.rng.random_range(0..self.generators.len()),
        };
        self.generators[idx].clone()
    }
}

/// Samples a random allowed graph each round from any oblivious model.
pub struct RandomInModel<'m, M: ObliviousModel + ?Sized> {
    model: &'m M,
    rng: StdRng,
}

impl<'m, M: ObliviousModel + ?Sized> RandomInModel<'m, M> {
    /// Seeded constructor.
    pub fn new(model: &'m M, seed: u64) -> Self {
        RandomInModel {
            model,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl<M: ObliviousModel + ?Sized> Adversary for RandomInModel<'_, M> {
    fn graph_for_round(&mut self, _round: usize) -> Digraph {
        self.model.sample(&mut self.rng)
    }
}

/// All length-`r` schedules over the model's generators, as an iterator of
/// `Vec<Digraph>` (odometer order). `|generators|^r` schedules — the
/// exhaustive checker's input.
pub fn generator_schedules(
    model: &ClosedAboveModel,
    r: usize,
) -> impl Iterator<Item = Vec<Digraph>> + '_ {
    let gens = model.generators();
    let m = gens.len();
    let total = (m as u128).checked_pow(r as u32).unwrap_or(u128::MAX);
    (0..total).map(move |mut code| {
        let mut schedule = Vec::with_capacity(r);
        for _ in 0..r {
            schedule.push(gens[(code % m as u128) as usize].clone());
            code /= m as u128;
        }
        schedule
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named;
    use ksa_graphs::families;

    #[test]
    fn fixed_sequence_cycles() {
        let a = families::cycle(3).unwrap();
        let b = families::path(3).unwrap();
        let mut adv = FixedSequence::new(vec![a.clone(), b.clone()]);
        assert_eq!(adv.graph_for_round(0), a);
        assert_eq!(adv.graph_for_round(1), b);
        assert_eq!(adv.graph_for_round(2), a);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn fixed_sequence_rejects_empty() {
        let _ = FixedSequence::new(vec![]);
    }

    #[test]
    fn generator_minimal_plays_generators() {
        let m = named::non_empty_kernel(4).unwrap();
        let mut adv = GeneratorMinimal::shuffled(&m, 7);
        for round in 0..20 {
            let g = adv.graph_for_round(round);
            assert!(m.generators().contains(&g));
        }
        let mut pinned = GeneratorMinimal::pinned(&m, 2);
        assert_eq!(pinned.graph_for_round(0), m.generators()[2]);
        assert_eq!(pinned.graph_for_round(5), m.generators()[2]);
    }

    #[test]
    fn random_in_model_stays_legal() {
        let m = named::symmetric_ring(4).unwrap();
        let mut adv = RandomInModel::new(&m, 99);
        for round in 0..20 {
            let g = adv.graph_for_round(round);
            assert!(m.contains(&g).unwrap());
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let m = named::non_empty_kernel(3).unwrap();
        let seq1: Vec<_> = {
            let mut a = RandomInModel::new(&m, 5);
            (0..5).map(|r| a.graph_for_round(r)).collect()
        };
        let seq2: Vec<_> = {
            let mut a = RandomInModel::new(&m, 5);
            (0..5).map(|r| a.graph_for_round(r)).collect()
        };
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn schedules_enumerate_all() {
        let m = named::non_empty_kernel(3).unwrap(); // 3 generators
        let all: Vec<_> = generator_schedules(&m, 2).collect();
        assert_eq!(all.len(), 9);
        // All distinct.
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 9);
        for sched in all {
            assert_eq!(sched.len(), 2);
        }
        // r = 0: the single empty schedule.
        assert_eq!(generator_schedules(&m, 0).count(), 1);
    }
}
