//! Sweep builders: family grids and seeded ensembles for the registry.
//!
//! `modelgen` turns parameter grids into lists of [`ModelSpec`]s, and
//! [`builtin_specs`] assembles the workspace's builtin zoo from them —
//! the 100+ models behind [`crate::registry::builtin`]. Everything here
//! is *cheap*: specs are data, nothing is materialized until a registry
//! lookup admits it against a `RunBudget`.
//!
//! Random ensembles follow DESIGN.md §4.5: the seed is part of the spec
//! (and therefore of the model's name), so `random{n=4,p=0.5,seed=3,
//! count=4}` denotes the same model everywhere, forever.

use crate::spec::ModelSpec;
use std::ops::RangeInclusive;

/// `stars{n,s}` for every `n` in the range and every `s ∈ [1, n]`.
pub fn stars_grid(ns: RangeInclusive<usize>) -> Vec<ModelSpec> {
    ns.flat_map(|n| (1..=n).map(move |s| ModelSpec::stars(n, s)))
        .collect()
}

/// `kernel{n}` for every `n` in the range.
pub fn kernel_grid(ns: RangeInclusive<usize>) -> Vec<ModelSpec> {
    ns.map(ModelSpec::kernel).collect()
}

/// `ring{n}` / `ring{n,sym}` for every `n` in the range.
pub fn ring_grid(ns: RangeInclusive<usize>, sym: bool) -> Vec<ModelSpec> {
    ns.map(|n| ModelSpec::ring(n, sym)).collect()
}

/// `tournament{n}` for every `n` in the range.
pub fn tournament_grid(ns: RangeInclusive<usize>) -> Vec<ModelSpec> {
    ns.map(ModelSpec::tournament).collect()
}

/// `nonsplit{n}` for every `n` in the range.
pub fn nonsplit_grid(ns: RangeInclusive<usize>) -> Vec<ModelSpec> {
    ns.map(ModelSpec::nonsplit).collect()
}

/// `path{n}` / `path{n,sym}` for every `n` in the range.
pub fn path_grid(ns: RangeInclusive<usize>, sym: bool) -> Vec<ModelSpec> {
    ns.map(|n| ModelSpec::path(n, sym)).collect()
}

/// `tree{n}` / `tree{n,sym}` (binary out-arborescences) for every `n` in
/// the range.
pub fn tree_grid(ns: RangeInclusive<usize>, sym: bool) -> Vec<ModelSpec> {
    ns.map(|n| ModelSpec::tree(n, sym)).collect()
}

/// A seeded random ensemble: one `random{n,p,seed,count}` spec per seed.
/// Each member draws `count` generator graphs with edge probability `p`
/// (DESIGN.md §4.5 seeding — the spec *is* the reproduction recipe).
pub fn random_ensemble(
    n: usize,
    p: f64,
    seeds: RangeInclusive<u64>,
    count: usize,
) -> Vec<ModelSpec> {
    seeds
        .map(|seed| ModelSpec::random(n, p, seed, count))
        .collect()
}

/// The builtin zoo: every model the workspace's experiments, examples and
/// smoke suites may name. Kept ≥ 100 entries by construction (pinned by a
/// test and by the `registry_zoo` experiment's acceptance check).
pub fn builtin_specs() -> Vec<ModelSpec> {
    let mut specs: Vec<ModelSpec> = Vec::new();
    // Family grids at experiment-friendly sizes.
    specs.extend(stars_grid(3..=6)); // 18
    specs.extend(kernel_grid(3..=6)); // 4
    specs.extend(ring_grid(3..=7, false)); // 5
    specs.extend(ring_grid(3..=6, true)); // 4
    specs.extend(tournament_grid(2..=4)); // 3
    specs.extend(nonsplit_grid(2..=4)); // 3
    specs.extend(path_grid(3..=6, false)); // 4
    specs.extend(path_grid(3..=5, true)); // 3
    specs.extend(tree_grid(3..=7, false)); // 5
    specs.extend(tree_grid(3..=5, true)); // 3
    specs.push(ModelSpec::Fig1Star);
    specs.push(ModelSpec::Fig1Second);
    // Seeded random ensembles (DESIGN.md §4.5): 2 sizes × 3 densities ×
    // 8 seeds.
    for n in [3, 4] {
        for p in [0.25, 0.5, 0.75] {
            specs.extend(random_ensemble(n, p, 0..=7, 4)); // 48 total
        }
    }
    // Combinator exemplars: the §6.1 product counterexample shape and a
    // few unions used by docs/tests.
    specs.push(ModelSpec::product(
        ModelSpec::ring(3, false),
        ModelSpec::ring(3, false),
    ));
    specs.push(ModelSpec::product(
        ModelSpec::stars(4, 1),
        ModelSpec::ring(4, false),
    ));
    specs.push(ModelSpec::union(vec![
        ModelSpec::stars(3, 2),
        ModelSpec::ring(3, false),
    ]));
    specs.push(ModelSpec::union(vec![
        ModelSpec::ring(4, false),
        ModelSpec::tree(4, false),
    ]));
    specs.push(ModelSpec::union(vec![
        ModelSpec::Fig1Star,
        ModelSpec::ring(4, true),
    ]));
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::builtin;
    use ksa_graphs::budget::RunBudget;
    use std::collections::BTreeSet;

    #[test]
    fn builtin_zoo_is_large_and_duplicate_free() {
        let specs = builtin_specs();
        assert!(specs.len() >= 100, "only {} specs", specs.len());
        let names: BTreeSet<String> = specs.iter().map(ModelSpec::name).collect();
        assert_eq!(names.len(), specs.len(), "duplicate canonical names");
    }

    #[test]
    fn every_builtin_model_resolves_under_default_budget() {
        let reg = builtin();
        for name in reg.names() {
            let model = reg
                .resolve(name, RunBudget::DEFAULT.max_executions)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(crate::ObliviousModel::n(model.as_ref()) >= 2, "{name}");
        }
    }

    #[test]
    fn grids_cover_expected_shapes() {
        assert_eq!(stars_grid(3..=6).len(), 3 + 4 + 5 + 6);
        assert_eq!(random_ensemble(3, 0.5, 0..=7, 4).len(), 8);
        let names: Vec<String> = ring_grid(3..=4, true).iter().map(ModelSpec::name).collect();
        assert_eq!(names, ["ring{n=3,sym}", "ring{n=4,sym}"]);
    }
}
