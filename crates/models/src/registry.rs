//! The model registry: one named-lookup API for the scenario zoo.
//!
//! A [`Registry`] maps names to [`ModelSpec`]s and materializes them
//! lazily — a lookup builds the model at most once (per registry) and
//! hands out a shared [`Arc<ResolvedModel>`]. Materialization always
//! goes through [`ModelSpec::materialize`], so every model in the
//! workspace is admitted against a [`RunBudget`] before anything is
//! enumerated.
//!
//! Naming convention: **the canonical spec string is the name**. Builtin
//! entries are registered under their canonical `Display` form
//! (`stars{n=5,s=2}`, `random{n=4,p=0.35,seed=7,count=16}`, …), and
//! [`Registry::resolve`] falls back to *parsing* an unregistered name as
//! a spec — so any spec string is a valid model name everywhere a
//! registry name is accepted (`experiments --models`, JSON labels,
//! reproduction recipes).
//!
//! [`builtin`] is the shared, process-wide registry of 100+ models
//! emitted by [`crate::modelgen`]; [`Registry::select`] picks subsets by
//! glob (`stars*,ring*`).

use crate::error::ModelError;
use crate::spec::{ModelSpec, ResolvedModel};
use ksa_graphs::budget::RunBudget;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A named collection of [`ModelSpec`]s with lazy, budget-guarded
/// materialization.
///
/// # Examples
///
/// ```
/// use ksa_models::registry;
///
/// let reg = registry::builtin();
/// let model = reg.resolve("stars{n=5,s=2}", 1_000_000u128).unwrap();
/// assert_eq!(model.as_closed_above().unwrap().generators().len(), 10);
/// // Glob selection over the builtin zoo:
/// assert!(!reg.select("ring*").is_empty());
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    specs: BTreeMap<String, ModelSpec>,
    cache: Mutex<BTreeMap<String, Arc<ResolvedModel>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers `spec` under its canonical name and returns that name.
    /// Re-inserting the same spec is a no-op.
    pub fn insert(&mut self, spec: ModelSpec) -> String {
        let name = spec.name();
        self.specs.insert(name.clone(), spec);
        name
    }

    /// Registers `spec` under an explicit alias (in addition to nothing
    /// else — the canonical name resolves anyway via the parse fallback).
    pub fn insert_named(&mut self, name: impl Into<String>, spec: ModelSpec) {
        self.specs.insert(name.into(), spec);
    }

    /// Number of registered entries.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the registry has no entries.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All registered names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.specs.keys().map(String::as_str)
    }

    /// The spec registered under `name`, if any (no parse fallback).
    pub fn spec(&self, name: &str) -> Option<&ModelSpec> {
        self.specs.get(name)
    }

    /// The registered names matching a pattern list, sorted.
    ///
    /// `pattern` is a comma-separated list of globs (`*` matches any run
    /// of characters, `?` one character); commas nested inside balanced
    /// `{…}` belong to the pattern, so an exact canonical name like
    /// `stars{n=3,s=1}` is itself a valid pattern.
    pub fn select(&self, pattern: &str) -> Vec<&str> {
        let pats = split_pattern_list(pattern);
        self.names()
            .filter(|name| pats.iter().any(|p| glob_match(p, name)))
            .collect()
    }

    /// Looks up `name` and materializes it under `budget` (cached after
    /// the first success). Unregistered names are parsed as specs, so
    /// every canonical spec string resolves.
    ///
    /// # Errors
    ///
    /// [`ModelError::UnknownModel`] if the name is neither registered nor
    /// parseable; any [`ModelSpec::materialize`] error otherwise.
    pub fn resolve(
        &self,
        name: &str,
        budget: impl Into<RunBudget>,
    ) -> Result<Arc<ResolvedModel>, ModelError> {
        match self.specs.get(name) {
            Some(spec) => self.materialize_cached(name, spec, budget.into()),
            None => {
                let spec: ModelSpec = name.parse().map_err(|_| ModelError::UnknownModel {
                    name: name.to_string(),
                })?;
                self.resolve_spec(&spec, budget)
            }
        }
    }

    /// Materializes a spec through this registry's cache (keyed by the
    /// canonical name), without requiring it to be registered.
    ///
    /// # Errors
    ///
    /// Any [`ModelSpec::materialize`] error.
    pub fn resolve_spec(
        &self,
        spec: &ModelSpec,
        budget: impl Into<RunBudget>,
    ) -> Result<Arc<ResolvedModel>, ModelError> {
        self.materialize_cached(&spec.name(), spec, budget.into())
    }

    /// [`resolve`](Self::resolve), then an owned
    /// [`ClosedAboveModel`](crate::ClosedAboveModel) —
    /// the common call-site shape (experiment tables, examples) for
    /// models that must expose generators.
    ///
    /// # Errors
    ///
    /// As [`resolve`](Self::resolve); additionally [`ModelError::Spec`]
    /// when the model is explicit rather than closed-above.
    pub fn resolve_closed_above(
        &self,
        name: &str,
        budget: impl Into<RunBudget>,
    ) -> Result<crate::ClosedAboveModel, ModelError> {
        self.resolve(name, budget)?
            .as_closed_above()
            .cloned()
            .ok_or_else(|| ModelError::Spec {
                message: format!("{name}: not a closed-above model"),
            })
    }

    fn materialize_cached(
        &self,
        key: &str,
        spec: &ModelSpec,
        budget: RunBudget,
    ) -> Result<Arc<ResolvedModel>, ModelError> {
        ksa_obs::count(ksa_obs::Counter::RegistryLookups, 1);
        if let Some(hit) = self.cache.lock().expect("registry cache").get(key) {
            return Ok(Arc::clone(hit));
        }
        // Build outside the lock: materialization can be slow, and an
        // admission error must not poison the cache. Two identical
        // concurrent misses both build and one wins — benign, the results
        // are deterministic and equal. Only the unique insert counts as a
        // materialization (deterministic: one per distinct key); the
        // loser's redundant build is a perf-tier event, since whether the
        // race happens at all depends on scheduling.
        let built = Arc::new(spec.materialize(budget)?);
        use std::collections::btree_map::Entry;
        let mut cache = self.cache.lock().expect("registry cache");
        match cache.entry(key.to_string()) {
            Entry::Occupied(e) => {
                ksa_obs::perf_count(ksa_obs::PerfCounter::RegistryRedundantBuilds, 1);
                Ok(Arc::clone(e.get()))
            }
            Entry::Vacant(v) => {
                ksa_obs::count(ksa_obs::Counter::RegistryMaterializations, 1);
                Ok(Arc::clone(v.insert(built)))
            }
        }
    }
}

/// The process-wide builtin registry: the full generated zoo of
/// [`crate::modelgen::builtin_specs`] (100+ models).
pub fn builtin() -> &'static Registry {
    static BUILTIN: OnceLock<Registry> = OnceLock::new();
    BUILTIN.get_or_init(|| {
        let mut reg = Registry::new();
        for spec in crate::modelgen::builtin_specs() {
            reg.insert(spec);
        }
        reg
    })
}

/// Splits a comma-separated glob list, keeping commas inside balanced
/// `{…}` attached to their pattern (canonical names contain commas).
fn split_pattern_list(pattern: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in pattern.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(pattern[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(pattern[start..].trim());
    out.retain(|p| !p.is_empty());
    out
}

/// Classic glob matching: `*` matches any (possibly empty) run, `?` any
/// single character, everything else literally.
fn glob_match(pattern: &str, name: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let s: Vec<char> = name.chars().collect();
    let (mut pi, mut si) = (0usize, 0usize);
    let (mut star_pi, mut star_si) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == s[si]) {
            pi += 1;
            si += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star_pi = pi;
            star_si = si;
            pi += 1;
        } else if star_pi != usize::MAX {
            // Backtrack: let the last '*' absorb one more character.
            pi = star_pi + 1;
            star_si += 1;
            si = star_si;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_basics() {
        assert!(glob_match("stars*", "stars{n=3,s=1}"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("ring{n=?}", "ring{n=4}"));
        assert!(glob_match("stars{n=3,s=1}", "stars{n=3,s=1}"));
        assert!(!glob_match("stars*", "ring{n=4}"));
        assert!(!glob_match("ring{n=?}", "ring{n=41}"));
        assert!(glob_match("*sym}", "ring{n=4,sym}"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
    }

    #[test]
    fn pattern_lists_respect_braces() {
        assert_eq!(split_pattern_list("stars*,ring*"), vec!["stars*", "ring*"]);
        assert_eq!(
            split_pattern_list("stars{n=3,s=1},ring*"),
            vec!["stars{n=3,s=1}", "ring*"]
        );
        assert_eq!(split_pattern_list(" a , , b "), vec!["a", "b"]);
    }

    #[test]
    fn resolve_registered_and_fallback() {
        let mut reg = Registry::new();
        let name = reg.insert(ModelSpec::stars(3, 1));
        assert_eq!(name, "stars{n=3,s=1}");
        assert_eq!(reg.len(), 1);
        let a = reg.resolve(&name, 1_000u128).unwrap();
        // Cache: same Arc on the second lookup.
        let b = reg.resolve(&name, 1_000u128).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // Unregistered names parse as specs…
        let c = reg.resolve("ring{n=4,sym}", 1_000u128).unwrap();
        assert_eq!(c.as_closed_above().unwrap().generators().len(), 6);
        // …and garbage is UnknownModel.
        let err = reg.resolve("no such model", 1_000u128).unwrap_err();
        assert!(matches!(err, ModelError::UnknownModel { .. }), "{err}");
    }

    #[test]
    fn resolve_does_not_cache_failures() {
        let mut reg = Registry::new();
        let name = reg.insert(ModelSpec::tournament(3));
        assert!(matches!(
            reg.resolve(&name, 2u128).unwrap_err(),
            ModelError::Budget(_)
        ));
        // A later, bigger budget succeeds.
        assert!(reg.resolve(&name, 1_000u128).is_ok());
    }

    #[test]
    fn select_sorted_and_filtered() {
        let mut reg = Registry::new();
        reg.insert(ModelSpec::ring(4, true));
        reg.insert(ModelSpec::ring(3, false));
        reg.insert(ModelSpec::stars(3, 1));
        assert_eq!(
            reg.select("ring*"),
            vec!["ring{n=3}", "ring{n=4,sym}"],
            "sorted by name"
        );
        assert_eq!(reg.select("stars*,ring{n=3}").len(), 2);
        assert!(reg.select("tournament*").is_empty());
    }

    #[test]
    fn builtin_is_shared_and_nonempty() {
        let a = builtin();
        let b = builtin();
        assert!(std::ptr::eq(a, b));
        assert!(a.len() >= 100, "builtin zoo has {} entries", a.len());
    }

    #[test]
    fn aliases_resolve() {
        let mut reg = Registry::new();
        reg.insert_named("fav", ModelSpec::ring(3, false));
        let m = reg.resolve("fav", 10u128).unwrap();
        assert_eq!(m.as_closed_above().unwrap().generators().len(), 1);
        assert_eq!(reg.spec("fav"), Some(&ModelSpec::ring(3, false)));
    }
}
