//! # ksa-models
//!
//! Round-based communication models for the reproduction of *"K-set
//! agreement bounds in round-based models through combinatorial topology"*
//! (Shimi & Castañeda, PODC 2020).
//!
//! A **communication model** fixes, for every round, the set of allowed
//! communication graphs (Def 2.1). The paper studies **oblivious** models
//! (the same set every round, Def 2.2) and, within those, **closed-above**
//! models (Def 2.3): the allowed graphs are everything above a set of
//! generator graphs. This crate provides:
//!
//! * [`ObliviousModel`] — the per-round membership/sampling interface;
//! * [`ClosedAboveModel`] — generators + closure membership + sampling +
//!   multi-round generator products;
//! * [`ExplicitModel`] — a finite explicit graph set (for predicates like
//!   *non-split* that are not closed-above);
//! * [`spec`] — the [`ModelSpec`] text format (`stars{n=5,s=2}`,
//!   `random{n=4,p=0.35,seed=7,count=16}`, `union(…)`, `product(…)`) with
//!   a parser, canonical `Display`, and budget-guarded materialization —
//!   the **single** model-construction path of the workspace;
//! * [`registry`] — named lookup, glob selection, and lazy
//!   materialization over specs; [`registry::builtin`] is the generated
//!   zoo of 100+ models;
//! * [`modelgen`] — the sweep builders (family grids, seeded random
//!   ensembles) that emit the builtin registry;
//! * [`named`] — the classic constructors of the paper's zoo (star unions
//!   of Thm 6.13, symmetric rings, non-empty kernel, non-split,
//!   tournaments), now thin wrappers resolving through [`spec`];
//! * [`adversary`] — graph adversaries that drive executions in the
//!   runtime crate: generator-minimal, random-in-model, fixed sequences,
//!   and exhaustive enumeration of generator schedules.
//!
//! ## Quick example
//!
//! ```
//! use ksa_models::registry;
//! use ksa_models::ObliviousModel;
//! use ksa_graphs::Digraph;
//!
//! // The symmetric union-of-2-stars model on 5 processes (Thm 6.13),
//! // by registry name.
//! let m = registry::builtin().resolve("stars{n=5,s=2}", 1_000_000u128).unwrap();
//! let m = m.as_closed_above().unwrap();
//! assert_eq!(m.generators().len(), 10); // C(5,2) center sets
//! assert!(m.contains(&Digraph::complete(5).unwrap()).unwrap());
//! ```

pub mod adversary;
pub mod closed_above;
pub mod error;
pub mod explicit;
pub mod modelgen;
pub mod named;
pub mod registry;
pub mod spec;

pub use closed_above::ClosedAboveModel;
pub use error::ModelError;
pub use explicit::ExplicitModel;
pub use registry::Registry;
pub use spec::{ModelSpec, ResolvedModel};

use ksa_graphs::Digraph;
use rand::Rng;

/// An oblivious communication model (Def 2.2): one fixed set of allowed
/// graphs, used at every round.
pub trait ObliviousModel {
    /// Number of processes `n = |Π|`.
    fn n(&self) -> usize;

    /// Whether `g` is allowed at a round.
    ///
    /// # Errors
    ///
    /// [`ModelError`] if `g` lives on a different process set.
    fn contains(&self, g: &Digraph) -> Result<bool, ModelError>;

    /// Samples an allowed graph (seeded by the caller's `rng`).
    fn sample(&self, rng: &mut dyn rand::RngCore) -> Digraph;
}

/// Samples with a concrete `Rng` without the `dyn` indirection (blanket
/// helper).
pub fn sample_with<M: ObliviousModel + ?Sized, R: Rng>(model: &M, rng: &mut R) -> Digraph {
    model.sample(rng)
}
