//! Explicit (finite) oblivious models.
//!
//! Not every oblivious model of interest is closed-above — the paper's §2.1
//! example is "all graphs containing a cycle, except the clique". An
//! [`ExplicitModel`] is just a deduplicated finite set of allowed graphs;
//! it is how we materialize predicate models (like *non-split*) for small
//! `n` in the experiments.

use crate::error::ModelError;
use crate::ObliviousModel;
use ksa_graphs::Digraph;
use rand::RngCore;
use std::collections::BTreeSet;
use std::fmt;

/// A finite oblivious model given by its exact allowed-graph set.
#[derive(Clone, PartialEq, Eq)]
pub struct ExplicitModel {
    n: usize,
    graphs: Vec<Digraph>,
}

impl ExplicitModel {
    /// Builds the model from the given graphs (deduplicated, sorted).
    ///
    /// # Errors
    ///
    /// [`ModelError::Graph`] for an empty list or mismatched sizes.
    pub fn new(graphs: Vec<Digraph>) -> Result<Self, ModelError> {
        let first = graphs
            .first()
            .ok_or(ksa_graphs::GraphError::EmptyGraphSet)?;
        let n = first.n();
        for g in &graphs {
            if g.n() != n {
                return Err(ksa_graphs::GraphError::MismatchedSizes {
                    left: n,
                    right: g.n(),
                }
                .into());
            }
        }
        let set: BTreeSet<Digraph> = graphs.into_iter().collect();
        Ok(ExplicitModel {
            n,
            graphs: set.into_iter().collect(),
        })
    }

    /// Builds a model from **all** graphs on `n` processes satisfying a
    /// predicate. Enumerates `2^(n(n−1))` graphs — guarded by `limit`.
    ///
    /// # Errors
    ///
    /// [`ModelError::TooLarge`] when the enumeration exceeds `limit`;
    /// [`ModelError::Graph`] if no graph satisfies the predicate.
    pub fn from_predicate(
        n: usize,
        limit: u128,
        pred: impl Fn(&Digraph) -> bool,
    ) -> Result<Self, ModelError> {
        let base = Digraph::empty(n)?;
        let total = ksa_graphs::closure::closure_size(&base);
        if total > limit {
            return Err(ModelError::TooLarge {
                what: "graph enumeration",
                estimated: total,
                limit,
            });
        }
        let all = ksa_graphs::closure::enumerate_closure(&base, limit as usize)?;
        let graphs: Vec<Digraph> = all.into_iter().filter(|g| pred(g)).collect();
        Self::new(graphs)
    }

    /// The allowed graphs.
    pub fn graphs(&self) -> &[Digraph] {
        &self.graphs
    }
}

impl ObliviousModel for ExplicitModel {
    fn n(&self) -> usize {
        self.n
    }

    fn contains(&self, g: &Digraph) -> Result<bool, ModelError> {
        if g.n() != self.n {
            return Err(ksa_graphs::GraphError::MismatchedSizes {
                left: self.n,
                right: g.n(),
            }
            .into());
        }
        Ok(self.graphs.binary_search(g).is_ok())
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Digraph {
        let idx = (rng.next_u64() % self.graphs.len() as u64) as usize;
        self.graphs[idx].clone()
    }
}

impl fmt::Debug for ExplicitModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ExplicitModel(n={}, {} graphs)",
            self.n,
            self.graphs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_graphs::families;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dedup_and_membership() {
        let c = families::cycle(3).unwrap();
        let m = ExplicitModel::new(vec![c.clone(), c.clone()]).unwrap();
        assert_eq!(m.graphs().len(), 1);
        assert!(m.contains(&c).unwrap());
        assert!(!m.contains(&Digraph::complete(3).unwrap()).unwrap());
    }

    #[test]
    fn predicate_model_nonsplit_n2() {
        // Non-split on 2 processes: every pair hears from a common
        // process. Pairs (0,1): In(0) ∩ In(1) ≠ ∅ required.
        let m = ExplicitModel::from_predicate(2, 1 << 10, |g| {
            !g.in_set(0).intersection(g.in_set(1)).is_empty()
        })
        .unwrap();
        // Graphs on 2 procs: loops + any of the 2 cross edges = 4 graphs;
        // non-split requires some common in-neighbor: 0→1 gives
        // In(1) ⊇ {0}, In(0) = {0}: common = {0} ✓. Loops-only: In(0)={0},
        // In(1)={1}: fails. So 3 of 4 qualify.
        assert_eq!(m.graphs().len(), 3);
    }

    #[test]
    fn predicate_budget() {
        assert!(ExplicitModel::from_predicate(5, 1 << 10, |_| true).is_err());
    }

    #[test]
    fn sample_in_model() {
        let m = ExplicitModel::new(vec![
            families::cycle(3).unwrap(),
            families::path(3).unwrap(),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let g = m.sample(&mut rng);
            assert!(m.contains(&g).unwrap());
        }
    }

    #[test]
    fn empty_predicate_rejected() {
        assert!(ExplicitModel::from_predicate(2, 1 << 10, |_| false).is_err());
    }
}
