//! Error type for the model layer.

use std::error::Error;
use std::fmt;

/// Errors produced by model constructors and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// The underlying graph layer rejected an operation.
    Graph(ksa_graphs::GraphError),
    /// A parameter was outside its documented domain (e.g. `s > n` star
    /// centers).
    BadParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: usize,
        /// Human-readable domain.
        domain: &'static str,
    },
    /// An enumeration request exceeded its explicit budget.
    TooLarge {
        /// What was being enumerated.
        what: &'static str,
        /// Estimated size.
        estimated: u128,
        /// The configured limit.
        limit: u128,
    },
    /// Materialization was refused by [`RunBudget`] admission — the
    /// estimated work exceeds the budget.
    ///
    /// [`RunBudget`]: ksa_graphs::budget::RunBudget
    Budget(ksa_graphs::budget::BudgetExceeded),
    /// A model spec failed to parse, or described an ill-typed
    /// combination (e.g. `union(…)` over an explicit model).
    Spec {
        /// Human-readable description of the problem.
        message: String,
    },
    /// A registry lookup named a model that is neither registered nor a
    /// parseable spec.
    UnknownModel {
        /// The name that failed to resolve.
        name: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Graph(e) => write!(f, "graph error: {e}"),
            ModelError::BadParameter {
                name,
                value,
                domain,
            } => write!(f, "parameter {name} = {value} outside {domain}"),
            ModelError::TooLarge {
                what,
                estimated,
                limit,
            } => write!(
                f,
                "{what} would have about {estimated} elements, above the limit {limit}"
            ),
            ModelError::Budget(e) => write!(f, "budget admission refused: {e}"),
            ModelError::Spec { message } => write!(f, "bad model spec: {message}"),
            ModelError::UnknownModel { name } => write!(
                f,
                "no registered model named {name:?} (and it does not parse as a spec); \
                 try `experiments --list-models`"
            ),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Graph(e) => Some(e),
            ModelError::Budget(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ksa_graphs::GraphError> for ModelError {
    fn from(e: ksa_graphs::GraphError) -> Self {
        ModelError::Graph(e)
    }
}

impl From<ksa_graphs::budget::BudgetExceeded> for ModelError {
    fn from(e: ksa_graphs::budget::BudgetExceeded) -> Self {
        ModelError::Budget(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ModelError::from(ksa_graphs::GraphError::EmptyGraphSet);
        assert!(!e.to_string().is_empty());
        assert!(e.source().is_some());
        let b = ModelError::BadParameter {
            name: "s",
            value: 9,
            domain: "[1, n]",
        };
        assert!(b.to_string().contains('s'));
        assert!(b.source().is_none());
    }
}
