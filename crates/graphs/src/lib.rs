//! # ksa-graphs
//!
//! The graph substrate for the reproduction of *"K-set agreement bounds in
//! round-based models through combinatorial topology"* (Shimi & Castañeda,
//! PODC 2020).
//!
//! The paper studies round-based message-passing models where the
//! communication pattern of each round is a **directed graph** on the process
//! set `Π = {p1, …, pn}`: an edge `u → v` means "`v` receives the message
//! sent by `u` this round". Every process always hears from itself, so all
//! graphs in this crate carry **all self-loops** by construction.
//!
//! On top of the [`Digraph`] type, this crate implements every combinatorial
//! number the paper's bounds are stated in:
//!
//! * [`domination_number`](domination::domination_number) — `γ(G)`, Def 3.1;
//! * [`equal_domination_number`](equal_domination::equal_domination_number)
//!   — `γ_eq(G)` / `γ_eq(S)`, Def 3.3;
//! * [`covering_number`](covering::covering_number) — `cov_i(G)` /
//!   `cov_i(S)`, Def 3.6;
//! * [`distributed_domination_number`](dist_domination::distributed_domination_number)
//!   — `γ_dist(S)`, Def 5.2;
//! * [`max_covering_number`](max_covering::max_covering_number) and
//!   [`max_covering_coefficient`](max_covering::max_covering_coefficient) —
//!   `max-cov_i(S)` and `M_i(S)`, Def 5.3;
//! * [`covering_sequence`](sequences::covering_sequence) — Def 6.6 / 6.8;
//!
//! together with the structural operations the multi-round analysis needs:
//! the graph path product `G ⊗ H` ([`product`]), closure-above machinery
//! ([`closure`]), permutations and symmetric closures ([`perm`]), the graph
//! families used throughout the paper ([`families`]) and seeded random
//! generation ([`random`]).
//!
//! ## Quick example
//!
//! ```
//! use ksa_graphs::families;
//! use ksa_graphs::equal_domination::equal_domination_number;
//! use ksa_graphs::covering::covering_number;
//!
//! // A broadcast star on 4 processes centred at p0 (Def 6.12).
//! let star = families::broadcast_star(4, 0).unwrap();
//! // The centre only hears from itself, so γ_eq is n (§3.2 of the paper).
//! assert_eq!(equal_domination_number(&star), 4);
//! // With self-loops, any i leaves cover exactly themselves: cov_i = i.
//! assert_eq!(covering_number(&star, 2).unwrap(), 2);
//! ```

pub mod budget;
pub mod cancel;
pub mod closure;
pub mod covering;
pub mod digraph;
pub mod dist_domination;
pub mod domination;
pub mod equal_domination;
pub mod error;
pub mod families;
pub mod max_covering;
#[cfg(feature = "parallel")]
pub(crate) mod par_util;
pub mod perm;
pub mod proc_set;
pub mod product;
pub mod random;
pub mod sequences;
pub mod universal_domination;

pub use digraph::Digraph;
pub use error::GraphError;
pub use proc_set::{ProcId, ProcSet, MAX_PROCS};
