//! The distributed domination number `γ_dist(S)` (Def 5.2).
//!
//! `γ_dist(S)` is the least `i > 0` such that every set `P` of `i`
//! processes dominates every collection `S_i` of graphs of `S` **jointly**:
//! `⋃_{G ∈ S_i} Out_G(P) = Π`.
//!
//! ## Which collections? (a faithfulness note)
//!
//! Def 5.2 literally writes `|S_i| = min(i, |S|)`. Read as *exactly that
//! many distinct graphs*, the definition contradicts the paper's own worked
//! example: for the symmetric unions of `s` stars the paper computes
//! `γ_dist(S) = n − s + 1` (§5 and the proof of Thm 6.13), but with the
//! exact-size reading a set `P` with `|P| = i ≥ 2` can only be jointly
//! silent when `C(n−i, s) ≥ min(i, |S|)` *distinct* center-avoiding star
//! unions exist, which already fails at `n = 3, s = 1, i = 2` (yielding
//! `γ_dist = 2 ≠ 3`). The proof of Thm 5.4 moreover instantiates the
//! definition on *tuples* `(G_0, …, G_t)` with repetition, whose supports
//! have any size in `[1, t+1]`.
//!
//! We therefore take the reading that reproduces every number in the paper:
//! `S_i` ranges over **non-empty collections of at most** `min(i, |S|)`
//! graphs. Since joint domination over a larger collection is easier
//! (unions grow), the binding case is singletons, which makes this reading
//! provably equal to the equal-domination number `γ_eq(S)` (Def 3.3) — the
//! paper's inequality `γ_dist(S) ≤ γ_eq(S)` holds with equality on every
//! example the paper works out, and both sides agree on singleton `S`.
//!
//! The literal exact-size reading is still provided as
//! [`distributed_domination_number_exact`] for study; DESIGN.md records the
//! discrepancy.

use crate::digraph::Digraph;
use crate::equal_domination::equal_domination_number_of_set;
use crate::error::GraphError;
use crate::proc_set::ProcSet;

/// Whether every `P` with `|P| = i` jointly dominates every non-empty
/// collection `S_i ⊆ S` with `|S_i| ≤ min(i, |S|)` — the inner predicate of
/// Def 5.2 under the paper-faithful reading (see module docs).
///
/// # Errors
///
/// [`GraphError::EmptyGraphSet`] if `graphs` is empty;
/// [`GraphError::MismatchedSizes`] if graphs disagree on `n`;
/// [`GraphError::IndexOutOfDomain`] unless `1 ≤ i ≤ n`.
pub fn all_jointly_dominating(graphs: &[Digraph], i: usize) -> Result<bool, GraphError> {
    check_set(graphs)?;
    let n = graphs[0].n();
    if i == 0 || i > n {
        return Err(GraphError::IndexOutOfDomain {
            index: i,
            domain: "[1, n]",
        });
    }
    // Unions over larger collections only grow, so "all collections of size
    // ≤ min(i, |S|) dominate" ⟺ "every single graph is dominated".
    let full = ProcSet::full(n);
    let silent_witness = |p: ProcSet| graphs.iter().any(|g| g.out_union(p) != full);

    #[cfg(feature = "parallel")]
    {
        Ok(!crate::par_util::batched_any(
            full.k_subsets(i),
            silent_witness,
        ))
    }
    #[cfg(not(feature = "parallel"))]
    {
        Ok(!full.k_subsets(i).any(silent_witness))
    }
}

/// The distributed domination number `γ_dist(S)` (Def 5.2, paper-faithful
/// reading — see the module docs). Monotone in `i`, so we scan upward;
/// `i = n` always succeeds thanks to self-loops.
///
/// Under this reading `γ_dist(S) = γ_eq(S)`, and we compute it through the
/// `O(|S| · n²)` closed form of [`equal_domination_number_of_set`].
///
/// # Errors
///
/// [`GraphError::EmptyGraphSet`] when `graphs` is empty;
/// [`GraphError::MismatchedSizes`] if graphs disagree on `n`.
///
/// # Examples
///
/// ```
/// use ksa_graphs::{families, perm::symmetric_closure};
/// use ksa_graphs::dist_domination::distributed_domination_number;
///
/// // Symmetric single stars on n = 4: γ_dist = n − s + 1 = 4 (§5 of the
/// // paper, with s = 1).
/// let stars = symmetric_closure(&[families::broadcast_star(4, 0).unwrap()]).unwrap();
/// assert_eq!(distributed_domination_number(&stars).unwrap(), 4);
/// ```
pub fn distributed_domination_number(graphs: &[Digraph]) -> Result<usize, GraphError> {
    check_set(graphs)?;
    equal_domination_number_of_set(graphs)
}

/// The *literal exact-size* variant of Def 5.2: collections of exactly
/// `min(i, |S|)` **distinct** graphs. Diverges from the paper's worked
/// examples (see the module docs); exposed for comparison experiments.
///
/// # Errors
///
/// Same conditions as [`distributed_domination_number`].
pub fn distributed_domination_number_exact(graphs: &[Digraph]) -> Result<usize, GraphError> {
    check_set(graphs)?;
    ksa_obs::count(ksa_obs::Counter::DominationQueries, 1);
    let n = graphs[0].n();
    let full = ProcSet::full(n);
    let graph_idx = ProcSet::full(graphs.len().min(crate::proc_set::MAX_PROCS));
    for i in 1..=n {
        let si_size = i.min(graphs.len());
        // Whether some collection of exactly `si_size` graphs leaves
        // `p`'s joint audience short of Π.
        let jointly_silent = |p: ProcSet| {
            graph_idx.k_subsets(si_size).any(|si| {
                let mut heard = ProcSet::empty();
                for gi in si.iter() {
                    heard = heard.union(graphs[gi].out_union(p));
                    if heard == full {
                        break;
                    }
                }
                heard != full
            })
        };

        #[cfg(feature = "parallel")]
        let silent_exists = crate::par_util::batched_any(full.k_subsets(i), jointly_silent);
        #[cfg(not(feature = "parallel"))]
        let silent_exists = full.k_subsets(i).any(jointly_silent);

        if !silent_exists {
            return Ok(i);
        }
    }
    unreachable!("i = n always jointly dominates thanks to self-loops")
}

pub(crate) fn check_set(graphs: &[Digraph]) -> Result<(), GraphError> {
    let first = graphs.first().ok_or(GraphError::EmptyGraphSet)?;
    for g in graphs {
        if g.n() != first.n() {
            return Err(GraphError::MismatchedSizes {
                left: first.n(),
                right: g.n(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::perm::symmetric_closure;
    use crate::proc_set::ProcSet;

    #[test]
    fn singleton_set_equals_equal_domination() {
        // With |S| = 1 every reading degenerates to γ_eq.
        use crate::equal_domination::equal_domination_number;
        let graphs = [
            families::cycle(5).unwrap(),
            families::fig1_second_graph(),
            families::broadcast_star(4, 1).unwrap(),
        ];
        for g in graphs {
            let s = std::slice::from_ref(&g);
            let geq = equal_domination_number(&g);
            assert_eq!(distributed_domination_number(s).unwrap(), geq, "graph {g}");
            assert_eq!(
                distributed_domination_number_exact(s).unwrap(),
                geq,
                "graph {g}"
            );
        }
    }

    #[test]
    fn star_unions_match_the_paper() {
        // §5 discussion + Thm 6.13 proof: for the symmetric model of
        // unions of s stars on n processes, γ_dist(S) = n − s + 1.
        for n in 3..6usize {
            for s in 1..n {
                let centers: ProcSet = (0..s).collect();
                let gen = families::broadcast_stars(n, centers).unwrap();
                let sym = symmetric_closure(std::slice::from_ref(&gen)).unwrap();
                assert_eq!(
                    distributed_domination_number(&sym).unwrap(),
                    n - s + 1,
                    "n = {n}, s = {s}"
                );
            }
        }
    }

    #[test]
    fn exact_size_reading_diverges_on_stars() {
        // The documented discrepancy: the literal exact-size reading gives
        // 2 on n = 3, s = 1 where the paper computes 3.
        let sym = symmetric_closure(&[families::broadcast_star(3, 0).unwrap()]).unwrap();
        assert_eq!(distributed_domination_number(&sym).unwrap(), 3);
        assert_eq!(distributed_domination_number_exact(&sym).unwrap(), 2);
    }

    #[test]
    fn exact_size_is_at_most_faithful() {
        // Exact-size quantifies over fewer failure scenarios, so its
        // threshold can only be lower.
        let sets = vec![
            symmetric_closure(&[families::cycle(4).unwrap()]).unwrap(),
            symmetric_closure(&[families::fig1_second_graph()]).unwrap(),
            vec![
                families::path(4).unwrap(),
                families::cycle(4).unwrap(),
                families::broadcast_star(4, 0).unwrap(),
            ],
        ];
        for s in sets {
            assert!(
                distributed_domination_number_exact(&s).unwrap()
                    <= distributed_domination_number(&s).unwrap()
            );
        }
    }

    #[test]
    fn agrees_with_equal_domination() {
        // The paper's remark γ_dist(S) ≤ γ_eq(S); under the faithful
        // reading it holds with equality.
        let sets = vec![
            symmetric_closure(&[families::cycle(4).unwrap()]).unwrap(),
            vec![
                families::path(4).unwrap(),
                families::broadcast_star(4, 2).unwrap(),
            ],
        ];
        for s in sets {
            assert_eq!(
                distributed_domination_number(&s).unwrap(),
                equal_domination_number_of_set(&s).unwrap()
            );
        }
    }

    #[test]
    fn clique_is_one() {
        let s = vec![Digraph::complete(4).unwrap()];
        assert_eq!(distributed_domination_number(&s).unwrap(), 1);
        assert_eq!(distributed_domination_number_exact(&s).unwrap(), 1);
    }

    #[test]
    fn errors() {
        assert_eq!(
            distributed_domination_number(&[]),
            Err(GraphError::EmptyGraphSet)
        );
        let bad = vec![families::cycle(3).unwrap(), families::cycle(4).unwrap()];
        assert!(distributed_domination_number(&bad).is_err());
        assert!(all_jointly_dominating(&[families::cycle(3).unwrap()], 0).is_err());
        assert!(all_jointly_dominating(&[families::cycle(3).unwrap()], 4).is_err());
    }

    #[test]
    fn monotone_in_i() {
        let sym = symmetric_closure(&[families::broadcast_star(4, 0).unwrap()]).unwrap();
        let gd = distributed_domination_number(&sym).unwrap();
        for i in 1..gd {
            assert!(!all_jointly_dominating(&sym, i).unwrap(), "i = {i}");
        }
        for i in gd..=4 {
            assert!(all_jointly_dominating(&sym, i).unwrap(), "i = {i}");
        }
    }
}
