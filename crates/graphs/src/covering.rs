//! Covering numbers `cov_i` (Def 3.6).
//!
//! The `i`-th covering number of `G` is the *guaranteed* audience of any
//! `i` processes: `cov_i(G) = min_{|P| = i} |⋃_{p∈P} Out(p)|`. For a set of
//! graphs, `cov_i(S) = min_{G ∈ S} cov_i(G)` — the adversary picks the
//! generator.
//!
//! These numbers power the upper bound of Thm 3.7: the `i` smallest input
//! values are guaranteed to reach `cov_i(S)` processes after one round, so
//! `(i + (n − cov_i(S)))`-set agreement is solvable.
//!
//! We implement Def 3.6 **literally**: no `≠ Π` side condition (that
//! condition belongs to `max-cov`, Def 5.3). With self-loops this gives
//! `cov_i ≥ i` always. See DESIGN.md for the discussion of the paper's
//! loose prose about stars.

use crate::digraph::Digraph;
use crate::error::GraphError;

/// The `i`-th covering number `cov_i(G)` (Def 3.6).
///
/// `i` ranges over `[1, n]` (at `i = n` the value is `n` by self-loops).
/// Complexity `O(C(n, i) · i)`.
///
/// # Errors
///
/// [`GraphError::IndexOutOfDomain`] when `i` is `0` or exceeds `n`.
///
/// # Examples
///
/// ```
/// use ksa_graphs::{families, covering::covering_number};
///
/// let c = families::cycle(4).unwrap();
/// // Any 2 processes of a directed 4-cycle reach at least 3 processes.
/// assert_eq!(covering_number(&c, 2).unwrap(), 3);
/// ```
pub fn covering_number(g: &Digraph, i: usize) -> Result<usize, GraphError> {
    let n = g.n();
    if i == 0 || i > n {
        return Err(GraphError::IndexOutOfDomain {
            index: i,
            domain: "[1, n]",
        });
    }
    ksa_obs::count(ksa_obs::Counter::DominationQueries, 1);
    let mut best = n;
    for p in g.procs().k_subsets(i) {
        let size = g.out_union(p).len();
        if size < best {
            best = size;
            if best == i {
                break; // cov_i ≥ i by self-loops: cannot improve.
            }
        }
    }
    Ok(best)
}

/// The `i`-th covering number of a set: `cov_i(S) = min_{G ∈ S} cov_i(G)`
/// (Def 3.6).
///
/// # Errors
///
/// [`GraphError::EmptyGraphSet`] when `graphs` is empty, plus the
/// conditions of [`covering_number`].
pub fn covering_number_of_set(graphs: &[Digraph], i: usize) -> Result<usize, GraphError> {
    if graphs.is_empty() {
        return Err(GraphError::EmptyGraphSet);
    }
    let mut best = usize::MAX;
    for g in graphs {
        best = best.min(covering_number(g, i)?);
        if best == i {
            break;
        }
    }
    Ok(best)
}

/// All covering numbers `cov_1(G), …, cov_n(G)` in one sweep (shares the
/// subset scans; used by the bench harness and the covering sequences).
pub fn covering_profile(g: &Digraph) -> Vec<usize> {
    (1..=g.n())
        .map(|i| covering_number(g, i).expect("i in [1, n]"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::proc_set::ProcSet;

    #[test]
    fn index_domain_checked() {
        let g = Digraph::empty(3).unwrap();
        assert!(covering_number(&g, 0).is_err());
        assert!(covering_number(&g, 4).is_err());
        assert!(covering_number(&g, 3).is_ok());
    }

    #[test]
    fn loops_only_graph_covers_exactly_i() {
        let g = Digraph::empty(5).unwrap();
        for i in 1..=5 {
            assert_eq!(covering_number(&g, i).unwrap(), i);
        }
    }

    #[test]
    fn clique_covers_everything() {
        let g = Digraph::complete(5).unwrap();
        for i in 1..=5 {
            assert_eq!(covering_number(&g, i).unwrap(), 5);
        }
    }

    #[test]
    fn star_covers_exactly_i() {
        // §3.2 example, per the literal Def 3.6: i leaves cover exactly
        // themselves, so cov_i = i for i < n.
        let g = families::broadcast_star(5, 0).unwrap();
        for i in 1..5 {
            assert_eq!(covering_number(&g, i).unwrap(), i, "i = {i}");
        }
        assert_eq!(covering_number(&g, 5).unwrap(), 5);
    }

    #[test]
    fn directed_cycle_covers_i_plus_one() {
        // i consecutive processes reach i+1 processes; spreading them out
        // only reaches more. cov_i(C_n) = min(i + 1, n)... for i < n it is
        // i + 1 only when the i processes can be consecutive.
        for n in 3..8 {
            let c = families::cycle(n).unwrap();
            for i in 1..n {
                assert_eq!(covering_number(&c, i).unwrap(), i + 1, "n={n}, i={i}");
            }
        }
    }

    #[test]
    fn fig1_second_graph_cov2_is_3() {
        // The reconstruction target (§3.2): cov_2 = 3.
        let g = families::fig1_second_graph();
        assert_eq!(covering_number(&g, 2).unwrap(), 3);
        // Every process has out-degree 2 (itself + one target), so cov_1 = 2.
        assert_eq!(covering_number(&g, 1).unwrap(), 2);
    }

    #[test]
    fn set_version_takes_min() {
        let s = vec![
            Digraph::complete(4).unwrap(), // cov_2 = 4
            families::cycle(4).unwrap(),   // cov_2 = 3
        ];
        assert_eq!(covering_number_of_set(&s, 2).unwrap(), 3);
        assert!(covering_number_of_set(&[], 2).is_err());
    }

    #[test]
    fn symmetric_closure_preserves_covering() {
        use crate::perm::symmetric_closure;
        // cov_i is permutation-invariant, so cov_i(Sym({G})) = cov_i(G)
        // (Cor 3.8's justification).
        let g = families::fig1_second_graph();
        let sym = symmetric_closure(std::slice::from_ref(&g)).unwrap();
        for i in 1..4 {
            assert_eq!(
                covering_number_of_set(&sym, i).unwrap(),
                covering_number(&g, i).unwrap(),
                "i = {i}"
            );
        }
    }

    #[test]
    fn covering_monotone_in_i() {
        // Adding a process to P can only increase the audience.
        let graphs = vec![
            families::cycle(6).unwrap(),
            families::fig1_second_graph(),
            families::binary_out_tree(7).unwrap(),
        ];
        for g in graphs {
            let prof = covering_profile(&g);
            for w in prof.windows(2) {
                assert!(w[0] <= w[1], "profile {prof:?}");
            }
        }
    }

    #[test]
    fn covering_monotone_under_edges() {
        let small = families::path(5).unwrap();
        let mut big = small.clone();
        big.add_edge(4, 0).unwrap();
        for i in 1..=5 {
            assert!(covering_number(&big, i).unwrap() >= covering_number(&small, i).unwrap());
        }
    }

    #[test]
    fn profile_via_out_union() {
        // Spot-check cov_2 of the matching by hand.
        let g = families::forward_matching(4).unwrap(); // 0→1, 2→3
                                                        // P = {1, 3}: both silent, audience = themselves.
        assert_eq!(g.out_union(ProcSet::from_iter([1usize, 3])).len(), 2);
        assert_eq!(covering_number(&g, 2).unwrap(), 2);
    }
}
