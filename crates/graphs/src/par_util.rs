//! Batched parallel scans over combinatorial spaces (crate-internal).
//!
//! `ProcSet::k_subsets` spaces grow as `C(n, k)`; materializing one in
//! full before fanning out would cost unbounded memory and forfeit
//! early exit. These helpers stream the iterator in fixed-size batches
//! instead: each batch is fanned out on the `ksa-exec` work-stealing
//! pool (idle workers steal the larger remaining half of a batch, so
//! uneven per-item costs rebalance), and scanning stops at the first
//! batch containing a witness (for `any`) — bounding memory by the
//! batch size while keeping the cores busy.

use ksa_exec::prelude::*;

/// Items pulled from the source iterator per parallel round.
const BATCH: usize = 4096;

/// Parallel short-circuiting `any` over a streamed iterator.
pub(crate) fn batched_any<T, I, F>(iter: I, pred: F) -> bool
where
    T: Send,
    I: Iterator<Item = T>,
    F: Fn(T) -> bool + Sync,
{
    let mut iter = iter;
    loop {
        let batch: Vec<T> = iter.by_ref().take(BATCH).collect();
        if batch.is_empty() {
            return false;
        }
        if batch.into_par_iter().any(&pred) {
            return true;
        }
    }
}

/// Parallel `filter_map(..).max()` over a streamed iterator.
pub(crate) fn batched_filter_map_max<T, I, F, O>(iter: I, f: F) -> Option<O>
where
    T: Send,
    O: Ord + Send,
    I: Iterator<Item = T>,
    F: Fn(T) -> Option<O> + Sync,
{
    let mut iter = iter;
    let mut best: Option<O> = None;
    loop {
        let batch: Vec<T> = iter.by_ref().take(BATCH).collect();
        if batch.is_empty() {
            return best;
        }
        let local = batch.into_par_iter().filter_map(&f).max();
        best = best.max(local);
    }
}
