//! Cooperative cancellation and deadlines for long-running searches.
//!
//! A [`CancelToken`] is the workspace's single cancellation idiom: the
//! CSP solvability sweep, the multi-round pipeline, the chain engine's
//! rank reductions and the shelling portfolio all poll the same type at
//! their natural checkpoint granularity (per node, per round, per rank
//! reduction), and the racing portfolios' internal first-success flags
//! are *child* tokens of whatever external token the caller supplied —
//! cancelling the parent interrupts every strategy, while a strategy
//! winning its race cancels only its siblings.
//!
//! The contract, in full (DESIGN.md §12.2):
//!
//! * **Cooperative** — nothing is interrupted preemptively; work stops
//!   at the next checkpoint after the token fires. Checkpoints are
//!   placed so the latency is bounded by one unit of the surrounding
//!   loop (one CSP node, one round step, one boundary-rank reduction).
//! * **Monotone** — a fired token never un-fires, and the *reason*
//!   ([`Interrupted::Cancelled`] vs [`Interrupted::DeadlineExceeded`])
//!   is latched by the first observer and stable afterwards.
//! * **Deterministic when silent** — a token that never fires is
//!   side-effect-free: every verdict computed under it is bit-identical
//!   to the token-free run at any `KSA_THREADS`. Tokens without a
//!   deadline never read the clock.
//! * **No partial facts** — searches interrupted by a token publish
//!   nothing into shared memo/no-good tables (the same monotone-table
//!   contract budget exhaustion already obeys).
//!
//! [`RunBudget`](crate::budget::RunBudget) guards *how much* work a
//! computation may do; a [`CancelToken`] decides *whether it may keep
//! going at all*. Both live at the bottom of the workspace so every
//! layer shares one discipline; `ksa-core` re-exports them side by side
//! in `ksa_core::budget`.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a computation was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupted {
    /// [`CancelToken::cancel`] was called (by the caller, or by a
    /// parent token's cancellation propagating down).
    Cancelled,
    /// The token's [`Deadline`] passed.
    DeadlineExceeded,
}

impl fmt::Display for Interrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupted::Cancelled => write!(f, "the operation was cancelled"),
            Interrupted::DeadlineExceeded => write!(f, "the operation ran past its deadline"),
        }
    }
}

impl Error for Interrupted {}

/// A wall-clock deadline, constructed once and attached to a
/// [`CancelToken`]; the token trips the first time a checkpoint runs at
/// or after this instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline at the given instant.
    pub fn at(at: Instant) -> Self {
        Deadline { at }
    }

    /// A deadline `ms` milliseconds from now. `in_millis(0)` is already
    /// past — useful for tests that need a deterministic trip.
    pub fn in_millis(ms: u64) -> Self {
        Deadline {
            at: Instant::now() + Duration::from_millis(ms),
        }
    }

    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Deadline {
            at: Instant::now() + d,
        }
    }

    /// The deadline instant.
    pub fn instant(&self) -> Instant {
        self.at
    }

    /// Time left before the deadline (zero once past).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// Whether the deadline has passed.
    pub fn is_past(&self) -> bool {
        Instant::now() >= self.at
    }
}

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

#[derive(Debug)]
struct Inner {
    /// `LIVE` until the first trip; then latched to `CANCELLED` or
    /// `DEADLINE`. Relaxed ordering everywhere: the flag carries no
    /// data, and cooperative checkpoints tolerate observing a trip one
    /// poll late.
    state: AtomicU8,
    /// The wall-clock trip point, if any. Tokens without one never read
    /// the clock (checkpoints stay a single atomic load).
    deadline: Option<Instant>,
    /// Parent link: a fired parent fires this token at its next poll.
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn status(&self) -> Option<Interrupted> {
        match self.state.load(Ordering::Relaxed) {
            CANCELLED => return Some(Interrupted::Cancelled),
            DEADLINE => return Some(Interrupted::DeadlineExceeded),
            _ => {}
        }
        if let Some(parent) = &self.parent {
            if let Some(why) = parent.status() {
                // Latch the parent's reason locally so deep token chains
                // pay the walk once, not per checkpoint.
                let latched = match why {
                    Interrupted::Cancelled => CANCELLED,
                    Interrupted::DeadlineExceeded => DEADLINE,
                };
                let _ = self.state.compare_exchange(
                    LIVE,
                    latched,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                return Some(why);
            }
        }
        if let Some(at) = self.deadline {
            if Instant::now() >= at {
                if self
                    .state
                    .compare_exchange(LIVE, DEADLINE, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    // Perf tier: *when* a deadline is first observed is
                    // scheduling-dependent by nature.
                    ksa_obs::perf_count(ksa_obs::PerfCounter::DeadlinesTripped, 1);
                }
                return Some(Interrupted::DeadlineExceeded);
            }
        }
        None
    }
}

/// A shareable cancellation handle (clones observe the same state).
///
/// # Examples
///
/// ```
/// use ksa_graphs::cancel::{CancelToken, Interrupted};
///
/// let token = CancelToken::new();
/// assert_eq!(token.checkpoint(), Ok(()));
///
/// // A portfolio race flag is a *child*: cancelling it (first success)
/// // does not fire the parent, while cancelling the parent (external
/// // abort) fires every child.
/// let race = token.child();
/// race.cancel();
/// assert!(race.is_cancelled());
/// assert_eq!(token.checkpoint(), Ok(()));
///
/// token.cancel();
/// assert_eq!(token.child().checkpoint(), Err(Interrupted::Cancelled));
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that fires only via [`CancelToken::cancel`]. Never reads
    /// the clock; a checkpoint is one relaxed atomic load.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A token that additionally fires once `deadline` passes.
    pub fn with_deadline(deadline: Deadline) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: Some(deadline.instant()),
                parent: None,
            }),
        }
    }

    /// A child token: fires when this token fires (same reason), or
    /// when [`CancelToken::cancel`] is called on the child itself —
    /// without affecting the parent. This is how portfolio races nest
    /// under an external token: the race winner cancels the child, an
    /// external abort cancels the parent, and strategies polling the
    /// child observe both.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: None,
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Fires the token with [`Interrupted::Cancelled`]. Idempotent; a
    /// token that already tripped its deadline keeps that reason.
    pub fn cancel(&self) {
        let _ = self.inner.state.compare_exchange(
            LIVE,
            CANCELLED,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Whether the token has fired, and why.
    pub fn status(&self) -> Option<Interrupted> {
        self.inner.status()
    }

    /// Whether the token has fired (cancellation, deadline, or parent).
    pub fn is_cancelled(&self) -> bool {
        self.status().is_some()
    }

    /// The poll point: `Ok(())` while live, the latched reason once
    /// fired. Long-running loops call this once per unit of work.
    pub fn checkpoint(&self) -> Result<(), Interrupted> {
        match self.status() {
            None => Ok(()),
            Some(why) => Err(why),
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.checkpoint(), Ok(()));
        assert_eq!(t.status(), None);
    }

    #[test]
    fn cancel_latches() {
        let t = CancelToken::new();
        t.cancel();
        t.cancel(); // idempotent
        assert_eq!(t.checkpoint(), Err(Interrupted::Cancelled));
        assert_eq!(t.status(), Some(Interrupted::Cancelled));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn past_deadline_fires_as_deadline() {
        let t = CancelToken::with_deadline(Deadline::in_millis(0));
        assert_eq!(t.checkpoint(), Err(Interrupted::DeadlineExceeded));
        // The reason is latched: a later cancel cannot rewrite it.
        t.cancel();
        assert_eq!(t.checkpoint(), Err(Interrupted::DeadlineExceeded));
    }

    #[test]
    fn future_deadline_stays_live() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.is_past());
        assert!(d.remaining() > Duration::from_secs(3000));
        let t = CancelToken::with_deadline(d);
        assert_eq!(t.checkpoint(), Ok(()));
    }

    #[test]
    fn child_cancel_does_not_fire_parent() {
        let parent = CancelToken::new();
        let race = parent.child();
        race.cancel();
        assert_eq!(race.checkpoint(), Err(Interrupted::Cancelled));
        assert_eq!(parent.checkpoint(), Ok(()));
    }

    #[test]
    fn parent_cancel_fires_children_with_reason() {
        let parent = CancelToken::with_deadline(Deadline::in_millis(0));
        let child = parent.child();
        let grandchild = child.child();
        assert_eq!(grandchild.checkpoint(), Err(Interrupted::DeadlineExceeded));
        // The walk latched the reason locally.
        assert_eq!(child.inner.state.load(Ordering::Relaxed), DEADLINE);
    }

    #[test]
    fn interrupted_displays() {
        assert!(!Interrupted::Cancelled.to_string().is_empty());
        assert!(!Interrupted::DeadlineExceeded.to_string().is_empty());
    }
}
