//! Directed communication graphs with mandatory self-loops.
//!
//! A [`Digraph`] on `n` processes is the paper's communication graph for one
//! round: an edge `u → v` means process `v` hears from process `u` in that
//! round (Def 2.1). Following §3.1 ("we assume self-loop"), every process
//! always hears from itself, and this invariant is enforced by every
//! constructor and mutator of this type.

use crate::error::GraphError;
use crate::proc_set::{ProcId, ProcSet, MAX_PROCS};
use std::fmt;

/// A directed graph on `Π = {p0, …, p(n-1)}` with all self-loops.
///
/// The adjacency is stored row-wise as out-neighbor bitsets: `out[u]` is the
/// set of processes that hear from `u`. All self-loops are present in every
/// `Digraph` (the type's core invariant).
///
/// # Examples
///
/// ```
/// use ksa_graphs::Digraph;
///
/// // p0 → p1 plus the mandatory self-loops.
/// let g = Digraph::from_edges(3, &[(0, 1)]).unwrap();
/// assert!(g.has_edge(0, 1));
/// assert!(g.has_edge(2, 2)); // self-loop, always present
/// assert!(!g.has_edge(1, 0));
/// assert_eq!(g.out_set(0).len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digraph {
    n: usize,
    /// `out[u]` = bitset of v such that (u, v) ∈ E. Bit `u` is always set.
    out: Vec<u64>,
}

impl Digraph {
    /// The graph with only the mandatory self-loops ("silent round" for
    /// everyone except oneself).
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyProcessSet`] if `n == 0`,
    /// [`GraphError::TooManyProcesses`] if `n > MAX_PROCS`.
    pub fn empty(n: usize) -> Result<Self, GraphError> {
        Self::check_n(n)?;
        Ok(Digraph {
            n,
            out: (0..n).map(|u| 1u64 << u).collect(),
        })
    }

    /// The complete graph (clique): everybody hears from everybody.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Digraph::empty`].
    pub fn complete(n: usize) -> Result<Self, GraphError> {
        Self::check_n(n)?;
        let full = ProcSet::full(n).bits();
        Ok(Digraph {
            n,
            out: vec![full; n],
        })
    }

    /// Builds a graph from an edge list; self-loops are added automatically.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Digraph::empty`], plus
    /// [`GraphError::ProcessOutOfRange`] for any endpoint `≥ n`.
    pub fn from_edges(n: usize, edges: &[(ProcId, ProcId)]) -> Result<Self, GraphError> {
        let mut g = Self::empty(n)?;
        for &(u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Builds a graph directly from out-neighbor bitsets; self-loops are
    /// added automatically.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Digraph::empty`], plus
    /// [`GraphError::ProcessOutOfRange`] if any row mentions a process `≥ n`.
    pub fn from_out_rows(rows: Vec<ProcSet>) -> Result<Self, GraphError> {
        let n = rows.len();
        Self::check_n(n)?;
        for row in &rows {
            row.check_universe(n)?;
        }
        Ok(Digraph {
            n,
            out: rows
                .into_iter()
                .enumerate()
                .map(|(u, row)| row.bits() | (1u64 << u))
                .collect(),
        })
    }

    fn check_n(n: usize) -> Result<(), GraphError> {
        if n == 0 {
            Err(GraphError::EmptyProcessSet)
        } else if n > MAX_PROCS {
            Err(GraphError::TooManyProcesses { requested: n })
        } else {
            Ok(())
        }
    }

    /// Number of processes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The full process set `Π`.
    #[inline]
    pub fn procs(&self) -> ProcSet {
        ProcSet::full(self.n)
    }

    /// Whether the edge `u → v` is present.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n` or `v >= n`.
    #[inline]
    pub fn has_edge(&self, u: ProcId, v: ProcId) -> bool {
        assert!(u < self.n && v < self.n);
        (self.out[u] >> v) & 1 == 1
    }

    /// Adds the edge `u → v`.
    ///
    /// # Errors
    ///
    /// [`GraphError::ProcessOutOfRange`] if an endpoint is `≥ n`.
    pub fn add_edge(&mut self, u: ProcId, v: ProcId) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::ProcessOutOfRange { proc: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::ProcessOutOfRange { proc: v, n: self.n });
        }
        self.out[u] |= 1u64 << v;
        Ok(())
    }

    /// Removes the edge `u → v`. Self-loops cannot be removed (the request
    /// is ignored), preserving the type invariant.
    ///
    /// # Errors
    ///
    /// [`GraphError::ProcessOutOfRange`] if an endpoint is `≥ n`.
    pub fn remove_edge(&mut self, u: ProcId, v: ProcId) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::ProcessOutOfRange { proc: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::ProcessOutOfRange { proc: v, n: self.n });
        }
        if u != v {
            self.out[u] &= !(1u64 << v);
        }
        Ok(())
    }

    /// Out-neighborhood `Out(u)`: the processes hearing from `u`
    /// (including `u` itself).
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    #[inline]
    pub fn out_set(&self, u: ProcId) -> ProcSet {
        assert!(u < self.n);
        ProcSet::from_bits(self.out[u])
    }

    /// In-neighborhood `In(v)`: the processes `v` hears from
    /// (including `v` itself). Computed in `O(n)`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn in_set(&self, v: ProcId) -> ProcSet {
        assert!(v < self.n);
        let mut s = 0u64;
        for u in 0..self.n {
            s |= ((self.out[u] >> v) & 1) << u;
        }
        ProcSet::from_bits(s)
    }

    /// `Out(P) = ⋃_{p ∈ P} Out(p)` — the set of processes hearing from at
    /// least one member of `P`. This is the quantity inside every
    /// covering/domination definition of the paper.
    pub fn out_union(&self, p: ProcSet) -> ProcSet {
        let mut s = 0u64;
        for u in p.iter() {
            assert!(u < self.n);
            s |= self.out[u];
        }
        ProcSet::from_bits(s)
    }

    /// Whether `P` dominates the graph: `Out(P) = Π` (Def 3.1).
    pub fn dominates(&self, p: ProcSet) -> bool {
        self.out_union(p) == self.procs()
    }

    /// Total number of edges, self-loops included.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(|r| r.count_ones() as usize).sum()
    }

    /// Number of non-loop edges.
    pub fn proper_edge_count(&self) -> usize {
        self.edge_count() - self.n
    }

    /// Iterates over all edges `(u, v)`, self-loops included.
    pub fn edges(&self) -> impl Iterator<Item = (ProcId, ProcId)> + '_ {
        (0..self.n).flat_map(move |u| self.out_set(u).iter().map(move |v| (u, v)))
    }

    /// Iterates over non-loop edges.
    pub fn proper_edges(&self) -> impl Iterator<Item = (ProcId, ProcId)> + '_ {
        self.edges().filter(|&(u, v)| u != v)
    }

    /// Whether `self` contains every edge of `other` (`E(self) ⊇ E(other)`),
    /// i.e. `self ∈ ↑other` when the sizes match (Def 2.3).
    ///
    /// # Errors
    ///
    /// [`GraphError::MismatchedSizes`] if the graphs have different `n`.
    pub fn contains_graph(&self, other: &Digraph) -> Result<bool, GraphError> {
        if self.n != other.n {
            return Err(GraphError::MismatchedSizes {
                left: self.n,
                right: other.n,
            });
        }
        Ok(self
            .out
            .iter()
            .zip(&other.out)
            .all(|(&mine, &theirs)| theirs & !mine == 0))
    }

    /// Edge-wise union of two graphs on the same process set.
    ///
    /// # Errors
    ///
    /// [`GraphError::MismatchedSizes`] if the graphs have different `n`.
    pub fn union(&self, other: &Digraph) -> Result<Digraph, GraphError> {
        if self.n != other.n {
            return Err(GraphError::MismatchedSizes {
                left: self.n,
                right: other.n,
            });
        }
        Ok(Digraph {
            n: self.n,
            out: self
                .out
                .iter()
                .zip(&other.out)
                .map(|(&a, &b)| a | b)
                .collect(),
        })
    }

    /// Edge-wise intersection of two graphs on the same process set.
    /// Self-loops survive by the invariant.
    ///
    /// # Errors
    ///
    /// [`GraphError::MismatchedSizes`] if the graphs have different `n`.
    pub fn intersection(&self, other: &Digraph) -> Result<Digraph, GraphError> {
        if self.n != other.n {
            return Err(GraphError::MismatchedSizes {
                left: self.n,
                right: other.n,
            });
        }
        Ok(Digraph {
            n: self.n,
            out: self
                .out
                .iter()
                .zip(&other.out)
                .map(|(&a, &b)| a & b)
                .collect(),
        })
    }

    /// Whether the graph is the complete graph.
    pub fn is_complete(&self) -> bool {
        let full = ProcSet::full(self.n).bits();
        self.out.iter().all(|&r| r == full)
    }

    /// Minimum in-degree (self-loop included). Drives the closed form of
    /// `γ_eq` (see [`equal_domination`](crate::equal_domination)).
    pub fn min_in_degree(&self) -> usize {
        (0..self.n).map(|v| self.in_set(v).len()).min().unwrap_or(0)
    }

    /// A compact canonical byte encoding (n, then rows); used as a hash key
    /// when deduplicating large graph sets.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(1 + 8 * self.n);
        v.push(self.n as u8);
        for &row in &self.out {
            v.extend_from_slice(&row.to_le_bytes());
        }
        v
    }

    /// GraphViz DOT rendering (self-loops omitted for readability).
    pub fn to_dot(&self, name: &str) -> String {
        let mut s = format!("digraph {name} {{\n");
        for u in 0..self.n {
            s.push_str(&format!("  p{u};\n"));
        }
        for (u, v) in self.proper_edges() {
            s.push_str(&format!("  p{u} -> p{v};\n"));
        }
        s.push_str("}\n");
        s
    }
}

// Debug and Display share one rendering.
macro_rules! fmt_impl {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Digraph(n={}; ", self.n)?;
            let mut first = true;
            for (u, v) in self.proper_edges() {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "p{u}→p{v}")?;
                first = false;
            }
            if first {
                write!(f, "loops only")?;
            }
            write!(f, ")")
        }
    };
}

impl fmt::Debug for Digraph {
    fmt_impl!();
}

impl fmt::Display for Digraph {
    fmt_impl!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_only_loops() {
        let g = Digraph::empty(4).unwrap();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.proper_edge_count(), 0);
        for u in 0..4 {
            assert!(g.has_edge(u, u));
            assert_eq!(g.out_set(u), ProcSet::singleton(u));
            assert_eq!(g.in_set(u), ProcSet::singleton(u));
        }
    }

    #[test]
    fn complete_graph() {
        let g = Digraph::complete(3).unwrap();
        assert!(g.is_complete());
        assert_eq!(g.edge_count(), 9);
        assert_eq!(g.in_set(1), ProcSet::full(3));
        assert!(g.dominates(ProcSet::singleton(0)));
    }

    #[test]
    fn constructors_validate() {
        assert_eq!(Digraph::empty(0), Err(GraphError::EmptyProcessSet));
        assert_eq!(
            Digraph::empty(65),
            Err(GraphError::TooManyProcesses { requested: 65 })
        );
        assert_eq!(
            Digraph::from_edges(2, &[(0, 5)]),
            Err(GraphError::ProcessOutOfRange { proc: 5, n: 2 })
        );
    }

    #[test]
    fn from_edges_and_accessors() {
        let g = Digraph::from_edges(3, &[(0, 1), (2, 0)]).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.out_set(0), ProcSet::from_iter([0usize, 1]));
        assert_eq!(g.in_set(0), ProcSet::from_iter([0usize, 2]));
        assert_eq!(g.in_set(1), ProcSet::from_iter([0usize, 1]));
        assert_eq!(g.proper_edge_count(), 2);
    }

    #[test]
    fn from_out_rows_adds_loops() {
        let g =
            Digraph::from_out_rows(vec![ProcSet::from_iter([1usize]), ProcSet::empty()]).unwrap();
        assert!(g.has_edge(0, 0));
        assert!(g.has_edge(1, 1));
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn self_loops_are_indestructible() {
        let mut g = Digraph::empty(2).unwrap();
        g.remove_edge(1, 1).unwrap();
        assert!(g.has_edge(1, 1));
        g.add_edge(0, 1).unwrap();
        g.remove_edge(0, 1).unwrap();
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn out_union_and_domination() {
        // p0 → p1, p2 isolated.
        let g = Digraph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(
            g.out_union(ProcSet::from_iter([0usize])),
            ProcSet::from_iter([0usize, 1])
        );
        assert!(!g.dominates(ProcSet::from_iter([0usize])));
        assert!(g.dominates(ProcSet::from_iter([0usize, 2])));
        assert_eq!(g.out_union(ProcSet::empty()), ProcSet::empty());
    }

    #[test]
    fn contains_graph_is_closure_membership() {
        let small = Digraph::from_edges(3, &[(0, 1)]).unwrap();
        let big = Digraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(big.contains_graph(&small).unwrap());
        assert!(!small.contains_graph(&big).unwrap());
        assert!(small.contains_graph(&small).unwrap());
        let other = Digraph::empty(4).unwrap();
        assert_eq!(
            small.contains_graph(&other),
            Err(GraphError::MismatchedSizes { left: 3, right: 4 })
        );
    }

    #[test]
    fn union_intersection() {
        let a = Digraph::from_edges(3, &[(0, 1)]).unwrap();
        let b = Digraph::from_edges(3, &[(1, 2)]).unwrap();
        let u = a.union(&b).unwrap();
        assert!(u.has_edge(0, 1) && u.has_edge(1, 2));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Digraph::empty(3).unwrap());
    }

    #[test]
    fn edges_iteration() {
        let g = Digraph::from_edges(2, &[(0, 1)]).unwrap();
        let all: Vec<_> = g.edges().collect();
        assert_eq!(all, vec![(0, 0), (0, 1), (1, 1)]);
        let proper: Vec<_> = g.proper_edges().collect();
        assert_eq!(proper, vec![(0, 1)]);
    }

    #[test]
    fn min_in_degree_star() {
        // Broadcast star centred at 0: centre hears only itself.
        let mut g = Digraph::empty(4).unwrap();
        for v in 0..4 {
            g.add_edge(0, v).unwrap();
        }
        assert_eq!(g.min_in_degree(), 1);
        assert_eq!(Digraph::complete(4).unwrap().min_in_degree(), 4);
    }

    #[test]
    fn encode_distinguishes_graphs() {
        let a = Digraph::from_edges(3, &[(0, 1)]).unwrap();
        let b = Digraph::from_edges(3, &[(1, 0)]).unwrap();
        assert_ne!(a.encode(), b.encode());
        assert_eq!(a.encode(), a.clone().encode());
    }

    #[test]
    fn dot_output_contains_edges() {
        let g = Digraph::from_edges(2, &[(0, 1)]).unwrap();
        let dot = g.to_dot("g");
        assert!(dot.contains("p0 -> p1;"));
        assert!(!dot.contains("p0 -> p0"));
    }

    #[test]
    fn display_nonempty() {
        let g = Digraph::empty(2).unwrap();
        assert!(format!("{g}").contains("loops only"));
        let h = Digraph::from_edges(2, &[(0, 1)]).unwrap();
        assert!(format!("{h}").contains("p0→p1"));
    }
}
