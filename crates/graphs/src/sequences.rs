//! Covering-number sequences (Def 6.6 and Def 6.8).
//!
//! The `i`-th covering sequence tracks the *guaranteed* audience of the `i`
//! smallest input values round after round: start at `cov_i`, then keep
//! applying `s ↦ cov_s` until the set of informed processes is a guaranteed
//! dominating set (`s ≥ γ_eq`), at which point one more round informs
//! everybody (`n`). If the sequence reaches `n` after `r` steps, `i`-set
//! agreement is solvable in `r` rounds (Thm 6.7 for a single generator,
//! Thm 6.9 for a set).

use crate::covering::{covering_number, covering_number_of_set};
use crate::digraph::Digraph;
use crate::equal_domination::{equal_domination_number, equal_domination_number_of_set};
use crate::error::GraphError;

/// The result of unrolling a covering sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoveringSequence {
    /// The starting index `i` of the sequence.
    pub i: usize,
    /// The values `s_1, s_2, …` up to and including the first `n` (or up to
    /// the fixpoint if the sequence stalls below `γ_eq`).
    pub values: Vec<usize>,
    /// The number of rounds after which the sequence reaches `n`, i.e. the
    /// `r` such that `i`-set agreement is solvable in `r` rounds
    /// (Thm 6.7 / 6.9) — `None` if the sequence stalls.
    pub reaches_n_at: Option<usize>,
}

/// The `i`-th covering-number sequence of a single graph (Def 6.6).
///
/// The sequence is non-decreasing (self-loops give `cov_s ≥ s`), so it
/// either hits the `≥ γ_eq` branch and jumps to `n`, or stalls at a
/// fixpoint `s = cov_s < γ_eq`.
///
/// # Errors
///
/// [`GraphError::IndexOutOfDomain`] unless `1 ≤ i ≤ n`.
///
/// # Examples
///
/// ```
/// use ksa_graphs::{families, sequences::covering_sequence};
///
/// // C4: cov grows by one per round, reaching n = 4 in 3 rounds from i=1.
/// let c = families::cycle(4).unwrap();
/// let seq = covering_sequence(&c, 1).unwrap();
/// assert_eq!(seq.reaches_n_at, Some(3));
/// ```
pub fn covering_sequence(g: &Digraph, i: usize) -> Result<CoveringSequence, GraphError> {
    let n = g.n();
    let geq = equal_domination_number(g);
    unroll(i, n, geq, |s| covering_number(g, s))
}

/// The `i`-th covering-number sequence of a set of graphs (Def 6.8):
/// `s_1 = min_G cov_i(G)` and the step uses `min_G cov_s(G)` against
/// `max_G γ_eq(G)`.
///
/// # Errors
///
/// [`GraphError::EmptyGraphSet`] when `graphs` is empty;
/// [`GraphError::IndexOutOfDomain`] unless `1 ≤ i ≤ n`.
pub fn covering_sequence_of_set(
    graphs: &[Digraph],
    i: usize,
) -> Result<CoveringSequence, GraphError> {
    let first = graphs.first().ok_or(GraphError::EmptyGraphSet)?;
    let n = first.n();
    let geq = equal_domination_number_of_set(graphs)?;
    unroll(i, n, geq, |s| covering_number_of_set(graphs, s))
}

fn unroll(
    i: usize,
    n: usize,
    geq: usize,
    cov: impl Fn(usize) -> Result<usize, GraphError>,
) -> Result<CoveringSequence, GraphError> {
    if i == 0 || i > n {
        return Err(GraphError::IndexOutOfDomain {
            index: i,
            domain: "[1, n]",
        });
    }
    let mut values = Vec::new();
    let mut s = cov(i)?;
    values.push(s);
    loop {
        if s == n {
            let at = values.len();
            return Ok(CoveringSequence {
                i,
                values,
                reaches_n_at: Some(at),
            });
        }
        let next = if s >= geq { n } else { cov(s)? };
        if next == s {
            // Fixpoint below γ_eq: the sequence stalls forever.
            return Ok(CoveringSequence {
                i,
                values,
                reaches_n_at: None,
            });
        }
        values.push(next);
        s = next;
    }
}

/// The least `i` whose covering sequence reaches `n` within `r` rounds —
/// i.e. the best upper bound on k-set agreement in `r` rounds obtainable
/// from Thm 6.7 / 6.9 (smaller `k` is a stronger agreement).
///
/// Returns `None` if no sequence reaches `n` within `r` rounds.
///
/// # Errors
///
/// [`GraphError::EmptyGraphSet`] when `graphs` is empty.
pub fn best_k_by_sequences(graphs: &[Digraph], r: usize) -> Result<Option<usize>, GraphError> {
    let first = graphs.first().ok_or(GraphError::EmptyGraphSet)?;
    let n = first.n();
    for i in 1..=n {
        let seq = covering_sequence_of_set(graphs, i)?;
        if matches!(seq.reaches_n_at, Some(at) if at <= r) {
            return Ok(Some(i));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::perm::symmetric_closure;

    #[test]
    fn clique_reaches_in_one_round() {
        let k = Digraph::complete(4).unwrap();
        for i in 1..=4 {
            let seq = covering_sequence(&k, i).unwrap();
            assert_eq!(seq.reaches_n_at, Some(1), "i = {i}");
            assert_eq!(seq.values, vec![4]);
        }
    }

    #[test]
    fn cycle_sequence_grows_by_one() {
        // C5: cov_i = i + 1 for i < 5, γ_eq = 4.
        let c = families::cycle(5).unwrap();
        let seq = covering_sequence(&c, 1).unwrap();
        // s1 = 2, s2 = 3, s3 = 4 ≥ γ_eq=4 → s4 = 5.
        assert_eq!(seq.values, vec![2, 3, 4, 5]);
        assert_eq!(seq.reaches_n_at, Some(4));
        // From i = 3: s1 = 4 ≥ γ_eq → s2 = 5.
        let seq3 = covering_sequence(&c, 3).unwrap();
        assert_eq!(seq3.reaches_n_at, Some(2));
    }

    #[test]
    fn star_sequence_stalls() {
        // Broadcast star at 0: cov_i = i for all i < n, γ_eq = n:
        // the sequence is constant at i — stalls (the single graph ↑star
        // still guarantees one-round n... but i-set agreement for i < n is
        // not promised by the sequence bound).
        let s = families::broadcast_star(4, 0).unwrap();
        for i in 1..4 {
            let seq = covering_sequence(&s, i).unwrap();
            assert_eq!(seq.reaches_n_at, None, "i = {i}");
            assert_eq!(seq.values, vec![i]);
        }
        // i = n trivially reaches n.
        assert_eq!(covering_sequence(&s, 4).unwrap().reaches_n_at, Some(1));
    }

    #[test]
    fn sequences_are_nondecreasing() {
        let graphs = [
            families::cycle(6).unwrap(),
            families::binary_out_tree(6).unwrap(),
            families::fig1_second_graph(),
        ];
        for g in &graphs {
            for i in 1..=g.n() {
                let seq = covering_sequence(g, i).unwrap();
                for w in seq.values.windows(2) {
                    assert!(w[0] <= w[1], "graph {g}, i = {i}: {:?}", seq.values);
                }
            }
        }
    }

    #[test]
    fn set_sequence_uses_min_cov_max_geq() {
        // Mixed set {C4, star}: cov is dragged down by the star
        // (cov_i = i) and γ_eq dragged up to 4, so sequences stall.
        let set = vec![
            families::cycle(4).unwrap(),
            families::broadcast_star(4, 0).unwrap(),
        ];
        let seq = covering_sequence_of_set(&set, 1).unwrap();
        assert_eq!(seq.reaches_n_at, None);
    }

    #[test]
    fn symmetric_cycles_sequence() {
        let sym = symmetric_closure(&[families::cycle(4).unwrap()]).unwrap();
        // cov_i(Sym) = cov_i(C4) = i+1 (permutation-invariant),
        // γ_eq(Sym) = 3.
        let seq = covering_sequence_of_set(&sym, 1).unwrap();
        assert_eq!(seq.values, vec![2, 3, 4]);
        assert_eq!(seq.reaches_n_at, Some(3));
    }

    #[test]
    fn best_k_matches_sequences() {
        let sym = symmetric_closure(&[families::cycle(4).unwrap()]).unwrap();
        // r = 1: need cov_i = 4 in one step: i with cov_i(C4) = 4 → i = 3.
        assert_eq!(best_k_by_sequences(&sym, 1).unwrap(), Some(3));
        // r = 3: i = 1 reaches n in 3 rounds.
        assert_eq!(best_k_by_sequences(&sym, 3).unwrap(), Some(1));
        // Star: only i = n works at any r.
        let star = vec![families::broadcast_star(4, 0).unwrap()];
        assert_eq!(best_k_by_sequences(&star, 10).unwrap(), Some(4));
    }

    #[test]
    fn index_domain() {
        let c = families::cycle(3).unwrap();
        assert!(covering_sequence(&c, 0).is_err());
        assert!(covering_sequence(&c, 4).is_err());
        assert!(covering_sequence_of_set(&[], 1).is_err());
    }
}
