//! The graph path product (Def 6.1) and its iterated forms.
//!
//! `G ⊗ H` has an edge `(u, v)` exactly when there is a `w` with
//! `(u, w) ∈ E(G)` and `(w, v) ∈ E(H)`: the paths with one edge per graph.
//! Over `r` communication rounds with graphs `G_1, …, G_r`, the product
//! `G_1 ⊗ … ⊗ G_r` records who has (transitively) heard from whom — the key
//! object of the multi-round bounds in §6.
//!
//! Because all graphs carry self-loops, `E(G) ∪ E(H) ⊆ E(G ⊗ H)`:
//! information never disappears.

use crate::digraph::Digraph;
use crate::error::GraphError;
use crate::proc_set::ProcSet;
use std::collections::BTreeSet;

/// The path product `g ⊗ h` (Def 6.1).
///
/// Row-wise this is boolean matrix multiplication: `Out_{g⊗h}(u) =
/// ⋃_{w ∈ Out_g(u)} Out_h(w)`.
///
/// # Errors
///
/// [`GraphError::MismatchedSizes`] if the graphs disagree on `n`.
pub fn product(g: &Digraph, h: &Digraph) -> Result<Digraph, GraphError> {
    if g.n() != h.n() {
        return Err(GraphError::MismatchedSizes {
            left: g.n(),
            right: h.n(),
        });
    }
    let n = g.n();
    let mut rows = Vec::with_capacity(n);
    for u in 0..n {
        rows.push(h.out_union(g.out_set(u)));
    }
    Digraph::from_out_rows(rows)
}

/// The `r`-th product power `g^r = g ⊗ … ⊗ g` (`r` factors). `g^0` is the
/// identity for `⊗`: the loops-only graph.
///
/// # Errors
///
/// Propagates construction errors (none occur for valid `g`).
pub fn power(g: &Digraph, r: usize) -> Result<Digraph, GraphError> {
    let mut acc = Digraph::empty(g.n())?;
    for _ in 0..r {
        acc = product(&acc, g)?;
    }
    Ok(acc)
}

/// The set product `S1 ⊗ S2 = {G ⊗ H | G ∈ S1, H ∈ S2}`, deduplicated and
/// sorted for determinism.
///
/// # Errors
///
/// [`GraphError::EmptyGraphSet`] if either set is empty;
/// [`GraphError::MismatchedSizes`] if the sizes disagree.
pub fn set_product(s1: &[Digraph], s2: &[Digraph]) -> Result<Vec<Digraph>, GraphError> {
    if s1.is_empty() || s2.is_empty() {
        return Err(GraphError::EmptyGraphSet);
    }
    let mut out = BTreeSet::new();
    for g in s1 {
        for h in s2 {
            out.insert(product(g, h)?);
        }
    }
    Ok(out.into_iter().collect())
}

/// The set power `S^r = {G_1 ⊗ … ⊗ G_r | G_i ∈ S}` (deduplicated). Used by
/// every multi-round bound (Thm 6.4, 6.5, 6.11).
///
/// `S^0` is the singleton `{loops-only}`. `|S^r|` is at most `|S|^r` before
/// deduplication; deduplication usually collapses it drastically (e.g. star
/// unions are idempotent, Thm 6.13's proof).
///
/// # Errors
///
/// [`GraphError::EmptyGraphSet`] if `s` is empty;
/// [`GraphError::MismatchedSizes`] if the sizes disagree.
pub fn set_power(s: &[Digraph], r: usize) -> Result<Vec<Digraph>, GraphError> {
    let first = s.first().ok_or(GraphError::EmptyGraphSet)?;
    if r == 0 {
        return Ok(vec![Digraph::empty(first.n())?]);
    }
    let mut acc: Vec<Digraph> = {
        let set: BTreeSet<Digraph> = s.iter().cloned().collect();
        set.into_iter().collect()
    };
    for g in s {
        if g.n() != first.n() {
            return Err(GraphError::MismatchedSizes {
                left: first.n(),
                right: g.n(),
            });
        }
    }
    for _ in 1..r {
        acc = set_product(&acc, s)?;
    }
    Ok(acc)
}

/// Who hears from `p` after `r` rounds along the fixed sequence `seq`
/// of graphs: `Out_{G_1 ⊗ … ⊗ G_r}(p)` computed without materializing the
/// product (one BFS-like frontier sweep).
///
/// # Errors
///
/// [`GraphError::MismatchedSizes`] if sizes disagree;
/// [`GraphError::ProcessOutOfRange`] if `p` is out of range.
pub fn dissemination(seq: &[Digraph], p: ProcSet) -> Result<ProcSet, GraphError> {
    let mut frontier = p;
    for g in seq {
        p.check_universe(g.n())?;
        frontier = g.out_union(frontier);
    }
    Ok(frontier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn product_is_relation_composition() {
        // p0 → p1 in g, p1 → p2 in h ⇒ p0 → p2 in g ⊗ h.
        let g = Digraph::from_edges(3, &[(0, 1)]).unwrap();
        let h = Digraph::from_edges(3, &[(1, 2)]).unwrap();
        let p = product(&g, &h).unwrap();
        assert!(p.has_edge(0, 2));
        // Self-loops make both factors sub-graphs of the product.
        assert!(p.contains_graph(&g).unwrap());
        assert!(p.contains_graph(&h).unwrap());
    }

    #[test]
    fn product_not_commutative() {
        let g = Digraph::from_edges(3, &[(0, 1)]).unwrap();
        let h = Digraph::from_edges(3, &[(1, 2)]).unwrap();
        let gh = product(&g, &h).unwrap();
        let hg = product(&h, &g).unwrap();
        assert!(gh.has_edge(0, 2));
        assert!(!hg.has_edge(0, 2));
    }

    #[test]
    fn product_is_associative() {
        let a = families::cycle(5).unwrap();
        let b = families::broadcast_star(5, 2).unwrap();
        let c = families::path(5).unwrap();
        let left = product(&product(&a, &b).unwrap(), &c).unwrap();
        let right = product(&a, &product(&b, &c).unwrap()).unwrap();
        assert_eq!(left, right);
    }

    #[test]
    fn loops_only_is_identity() {
        let id = Digraph::empty(4).unwrap();
        let g = families::cycle(4).unwrap();
        assert_eq!(product(&id, &g).unwrap(), g);
        assert_eq!(product(&g, &id).unwrap(), g);
    }

    #[test]
    fn power_of_cycle_reaches_clique() {
        // In C_n, after n-1 rounds everybody heard everybody.
        let c = families::cycle(4).unwrap();
        assert_eq!(power(&c, 0).unwrap(), Digraph::empty(4).unwrap());
        assert_eq!(power(&c, 1).unwrap(), c);
        let c2 = power(&c, 2).unwrap();
        assert!(c2.has_edge(0, 2));
        assert!(!c2.has_edge(0, 3));
        assert!(power(&c, 3).unwrap().is_complete());
        assert!(power(&c, 7).unwrap().is_complete());
    }

    #[test]
    fn star_is_idempotent() {
        // Star graphs are idempotent for ⊗ (used in the proof of Thm 6.13).
        let s = families::broadcast_star(5, 1).unwrap();
        assert_eq!(power(&s, 2).unwrap(), s);
        assert_eq!(power(&s, 3).unwrap(), s);
        let stars2 = families::broadcast_stars(5, ProcSet::from_iter([0usize, 3])).unwrap();
        assert_eq!(power(&stars2, 2).unwrap(), stars2);
    }

    #[test]
    fn set_product_and_power() {
        let s = vec![
            families::broadcast_star(3, 0).unwrap(),
            families::broadcast_star(3, 1).unwrap(),
        ];
        let p = set_product(&s, &s).unwrap();
        // star_i ⊗ star_j = union of stars i and j... check all members
        // contain some star.
        for g in &p {
            assert!(g.contains_graph(&s[0]).unwrap() || g.contains_graph(&s[1]).unwrap());
        }
        let p2 = set_power(&s, 2).unwrap();
        assert_eq!(p, p2);
        assert_eq!(set_power(&s, 1).unwrap(), {
            let mut sorted = s.clone();
            sorted.sort();
            sorted
        });
        assert_eq!(set_power(&s, 0).unwrap(), vec![Digraph::empty(3).unwrap()]);
    }

    #[test]
    fn set_power_dedups() {
        // A single idempotent star: S^r stays a singleton.
        let s = vec![families::broadcast_star(4, 0).unwrap()];
        for r in 1..4 {
            assert_eq!(set_power(&s, r).unwrap().len(), 1, "r = {r}");
        }
    }

    #[test]
    fn dissemination_matches_product_out() {
        let seq = vec![
            families::cycle(5).unwrap(),
            families::path(5).unwrap(),
            families::broadcast_star(5, 3).unwrap(),
        ];
        let mut prod = Digraph::empty(5).unwrap();
        for g in &seq {
            prod = product(&prod, g).unwrap();
        }
        for p in 0..5 {
            assert_eq!(
                dissemination(&seq, ProcSet::singleton(p)).unwrap(),
                prod.out_set(p),
                "process {p}"
            );
        }
    }

    #[test]
    fn mismatched_sizes_rejected() {
        let g3 = families::cycle(3).unwrap();
        let g4 = families::cycle(4).unwrap();
        assert!(product(&g3, &g4).is_err());
        assert!(set_product(std::slice::from_ref(&g3), &[g4]).is_err());
        assert!(set_product(&[], &[g3]).is_err());
    }
}
