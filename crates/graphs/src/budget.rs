//! Explicit exploration budgets for exhaustive procedures.
//!
//! Every exhaustive search in the workspace — the runtime's execution
//! checker, the solvability decision procedures in `ksa-core`, and the
//! multi-round protocol-complex materialization in `ksa-topology` —
//! takes a [`RunBudget`]: a hard ceiling on the number of cases it may
//! enumerate. The size of a search is estimated *up front* (schedule ×
//! input spaces, superset odometers, per-round facet products), so an
//! oversized instance fails fast with a [`BudgetExceeded`] instead of
//! running unbounded; callers can catch it and fall back to sampling.
//!
//! This type started in `ksa-runtime::checker`, moved down to `ksa-core`
//! for the solvability search, and now lives at the bottom of the
//! workspace (`ksa-graphs` is the lowest domain crate) so the topology
//! layer can enforce it too without a dependency cycle. `ksa-core::budget`
//! and `ksa-runtime::checker` re-export it from the old paths.

use std::error::Error;
use std::fmt;

/// A hard ceiling on the number of cases an exhaustive procedure may
/// enumerate. Accepted anywhere via `impl Into<RunBudget>` from a
/// `u128`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunBudget {
    /// Maximum number of executions an exhaustive check may enumerate.
    pub max_executions: u128,
}

impl RunBudget {
    /// The default ceiling: comfortably interactive on small models.
    pub const DEFAULT: RunBudget = RunBudget {
        max_executions: 100_000_000,
    };

    /// A budget of `max_executions` executions.
    pub fn new(max_executions: u128) -> Self {
        RunBudget { max_executions }
    }

    /// Errors with [`BudgetExceeded`] when `estimated` exceeds this
    /// budget.
    pub fn admit(&self, what: &'static str, estimated: u128) -> Result<(), BudgetExceeded> {
        if estimated > self.max_executions {
            ksa_obs::count(ksa_obs::Counter::BudgetRejections, 1);
            return Err(BudgetExceeded {
                what,
                estimated,
                limit: self.max_executions,
            });
        }
        ksa_obs::count(ksa_obs::Counter::BudgetAdmissions, 1);
        Ok(())
    }
}

impl Default for RunBudget {
    fn default() -> Self {
        RunBudget::DEFAULT
    }
}

impl From<u128> for RunBudget {
    fn from(max_executions: u128) -> Self {
        RunBudget::new(max_executions)
    }
}

/// An exhaustive exploration would exceed its [`RunBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// What was being enumerated.
    pub what: &'static str,
    /// Estimated number of cases.
    pub estimated: u128,
    /// The configured ceiling.
    pub limit: u128,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} would explore about {} cases, above the limit {}",
            self.what, self.estimated, self.limit
        )
    }
}

impl Error for BudgetExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_boundaries() {
        let b = RunBudget::new(100);
        assert!(b.admit("x", 100).is_ok());
        let err = b.admit("x", 101).unwrap_err();
        assert_eq!(err.limit, 100);
        assert_eq!(err.estimated, 101);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn conversions() {
        assert_eq!(RunBudget::from(7u128).max_executions, 7);
        assert_eq!(RunBudget::default(), RunBudget::DEFAULT);
    }
}
