//! The graph families used throughout the paper.
//!
//! * **Broadcast stars** (Def 6.12): a set `S` of centers with edges
//!   `S × Π`. The paper's flagship lower-bound family (Thm 6.13).
//! * **Cycles** — the §6.1 product counterexample uses `C6`.
//! * **Paths, cliques, matchings, in-stars, bidirectional rings** — standard
//!   connectivity patterns for closed-above safety properties (§2.1).
//! * The concrete **figure exemplars** of the paper (Fig 1, Fig 2).

use crate::digraph::Digraph;
use crate::error::GraphError;
use crate::proc_set::{ProcId, ProcSet};

/// Broadcast star centred at `center`: edges `{center} × Π` plus self-loops
/// (Def 6.12 with a single center).
///
/// # Errors
///
/// Propagates size errors; [`GraphError::ProcessOutOfRange`] if
/// `center >= n`.
pub fn broadcast_star(n: usize, center: ProcId) -> Result<Digraph, GraphError> {
    broadcast_stars(n, ProcSet::singleton(center))
}

/// Union of broadcast stars: edges `S × Π` for the set `S` of `centers`
/// (Def 6.12). Every center broadcasts to everyone; non-centers stay silent.
///
/// # Errors
///
/// Propagates size errors; [`GraphError::ProcessOutOfRange`] if a center is
/// `≥ n`.
pub fn broadcast_stars(n: usize, centers: ProcSet) -> Result<Digraph, GraphError> {
    let mut g = Digraph::empty(n)?;
    centers.check_universe(n)?;
    for c in centers.iter() {
        for v in 0..n {
            g.add_edge(c, v)?;
        }
    }
    Ok(g)
}

/// In-star centred at `center`: everybody sends to the center
/// (edges `Π × {center}`), the dual of a broadcast star.
///
/// # Errors
///
/// Propagates size errors; [`GraphError::ProcessOutOfRange`] if
/// `center >= n`.
pub fn in_star(n: usize, center: ProcId) -> Result<Digraph, GraphError> {
    let mut g = Digraph::empty(n)?;
    if center >= n {
        return Err(GraphError::ProcessOutOfRange { proc: center, n });
    }
    for u in 0..n {
        g.add_edge(u, center)?;
    }
    Ok(g)
}

/// Directed cycle `p0 → p1 → … → p(n-1) → p0` (plus self-loops).
///
/// # Errors
///
/// Propagates size errors.
pub fn cycle(n: usize) -> Result<Digraph, GraphError> {
    let mut g = Digraph::empty(n)?;
    for u in 0..n {
        g.add_edge(u, (u + 1) % n)?;
    }
    Ok(g)
}

/// Bidirectional ring: edges both ways around the cycle.
///
/// # Errors
///
/// Propagates size errors.
pub fn bidirectional_ring(n: usize) -> Result<Digraph, GraphError> {
    let mut g = cycle(n)?;
    for u in 0..n {
        g.add_edge((u + 1) % n, u)?;
    }
    Ok(g)
}

/// Directed path `p0 → p1 → … → p(n-1)` (plus self-loops).
///
/// # Errors
///
/// Propagates size errors.
pub fn path(n: usize) -> Result<Digraph, GraphError> {
    let mut g = Digraph::empty(n)?;
    for u in 0..n.saturating_sub(1) {
        g.add_edge(u, u + 1)?;
    }
    Ok(g)
}

/// Perfect matching on consecutive pairs: `p0 → p1, p2 → p3, …`
/// (odd last process stays silent).
///
/// # Errors
///
/// Propagates size errors.
pub fn forward_matching(n: usize) -> Result<Digraph, GraphError> {
    let mut g = Digraph::empty(n)?;
    let mut u = 0;
    while u + 1 < n {
        g.add_edge(u, u + 1)?;
        u += 2;
    }
    Ok(g)
}

/// The complete graph (everybody hears everybody); re-exported here for
/// discoverability next to the other families.
///
/// # Errors
///
/// Propagates size errors.
pub fn clique(n: usize) -> Result<Digraph, GraphError> {
    Digraph::complete(n)
}

/// A rooted out-arborescence on `n` processes: edges from each node
/// `u ≥ 1` *from* its parent `(u-1)/2` (binary heap shape), so information at
/// the root floods down.
///
/// # Errors
///
/// Propagates size errors.
pub fn binary_out_tree(n: usize) -> Result<Digraph, GraphError> {
    let mut g = Digraph::empty(n)?;
    for u in 1..n {
        g.add_edge((u - 1) / 2, u)?;
    }
    Ok(g)
}

/// The example graph of **Figure 2** of the paper (3 processes):
/// `In(p0) = {p0, p2}`, `In(p1) = {p0, p1}`, `In(p2) = {p2}`,
/// i.e. edges `p2 → p0` and `p0 → p1`.
///
/// (The paper indexes processes from 1; we shift to 0-based.)
pub fn fig2_graph() -> Digraph {
    Digraph::from_edges(3, &[(2, 0), (0, 1)]).expect("static example is valid")
}

/// The first **Figure 1** model generator: a broadcast star on 4 processes
/// (the symmetric closure is taken at the model level).
pub fn fig1_star() -> Digraph {
    broadcast_star(4, 0).expect("static example is valid")
}

/// The second **Figure 1** model generator, reconstructed from the paper's
/// stated invariants (`n = 4`, `cov_2(S) = 3`, `γ_eq(S) = 4`, see §3.2):
/// a 3-cycle `p0 → p1 → p2 → p0` plus the edge `p3 → p0`. Process `p3`
/// hears only from itself, which forces `γ_eq = 4`, while every pair of
/// processes reaches at least 3 processes, giving `cov_2 = 3`.
///
/// The exact drawing in the paper is not recoverable from the text; this
/// reconstruction provably carries the same combinatorial numbers (verified
/// in `experiments fig1` and in this crate's tests).
pub fn fig1_second_graph() -> Digraph {
    Digraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (3, 0)]).expect("static example is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_star_shape() {
        let g = broadcast_star(4, 1).unwrap();
        for v in 0..4 {
            assert!(g.has_edge(1, v));
        }
        assert_eq!(g.out_set(0), ProcSet::singleton(0));
        assert_eq!(
            g.in_set(1),
            ProcSet::singleton(1),
            "center hears only itself"
        );
        assert_eq!(g.proper_edge_count(), 3);
    }

    #[test]
    fn broadcast_stars_union() {
        let g = broadcast_stars(5, ProcSet::from_iter([0usize, 2])).unwrap();
        assert!(g.dominates(ProcSet::singleton(0)));
        assert!(g.dominates(ProcSet::singleton(2)));
        assert!(!g.dominates(ProcSet::singleton(1)));
        assert_eq!(g.proper_edge_count(), 8);
    }

    #[test]
    fn broadcast_stars_rejects_stray_center() {
        assert!(broadcast_stars(3, ProcSet::singleton(5)).is_err());
    }

    #[test]
    fn in_star_shape() {
        let g = in_star(4, 2).unwrap();
        for u in 0..4 {
            assert!(g.has_edge(u, 2));
        }
        assert_eq!(g.in_set(2), ProcSet::full(4));
        assert_eq!(g.out_set(0), ProcSet::from_iter([0usize, 2]));
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(4).unwrap();
        assert!(g.has_edge(0, 1) && g.has_edge(3, 0));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.proper_edge_count(), 4);
        // n = 1: the wrap-around edge is the self-loop.
        let g1 = cycle(1).unwrap();
        assert_eq!(g1.proper_edge_count(), 0);
    }

    #[test]
    fn bidirectional_ring_shape() {
        let g = bidirectional_ring(4).unwrap();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert_eq!(g.proper_edge_count(), 8);
    }

    #[test]
    fn path_shape() {
        let g = path(4).unwrap();
        assert!(g.has_edge(0, 1) && g.has_edge(2, 3));
        assert!(!g.has_edge(3, 0));
        assert_eq!(g.proper_edge_count(), 3);
        assert_eq!(path(1).unwrap().proper_edge_count(), 0);
    }

    #[test]
    fn forward_matching_shape() {
        let g = forward_matching(5).unwrap();
        assert!(g.has_edge(0, 1) && g.has_edge(2, 3));
        assert!(!g.has_edge(4, 0));
        assert_eq!(g.proper_edge_count(), 2);
    }

    #[test]
    fn binary_out_tree_floods_from_root() {
        let g = binary_out_tree(7).unwrap();
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2) && g.has_edge(1, 3));
        assert_eq!(g.in_set(0), ProcSet::singleton(0));
    }

    #[test]
    fn fig2_views_match_paper() {
        let g = fig2_graph();
        assert_eq!(g.in_set(0), ProcSet::from_iter([0usize, 2]));
        assert_eq!(g.in_set(1), ProcSet::from_iter([0usize, 1]));
        assert_eq!(g.in_set(2), ProcSet::singleton(2));
    }

    #[test]
    fn fig1_second_graph_invariants() {
        let g = fig1_second_graph();
        // p3 hears only from itself → no 3-set containing everything but p3
        // can dominate.
        assert_eq!(g.in_set(3), ProcSet::singleton(3));
        // Every pair reaches at least 3 processes.
        for pair in ProcSet::full(4).k_subsets(2) {
            assert!(g.out_union(pair).len() >= 3, "pair {pair}");
        }
        // Some pair reaches exactly 3.
        assert!(ProcSet::full(4)
            .k_subsets(2)
            .any(|pair| g.out_union(pair).len() == 3));
    }
}
