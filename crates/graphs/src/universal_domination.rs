//! The universal domination number `γ_univ(S)` — an **extension** beyond
//! the paper.
//!
//! `γ_univ(S)` is the size of the smallest single set `P ⊆ Π` that
//! dominates *every* graph of `S` simultaneously. The paper's upper bounds
//! for general closed-above models only use `γ_eq` (every set of that size
//! dominates) and covering numbers; but the Thm 3.2 trick generalizes: if
//! one fixed `P` dominates all generators, then "decide the minimum value
//! received from `P`" solves `|P|`-set agreement in one round on the whole
//! model — no knowledge of which generator the adversary picked is needed.
//!
//! Orderings: `γ(G) = γ_univ({G})`, and for any `S`
//! `max_G γ(G) ≤ γ_univ(S) ≤ γ_eq(S)`.
//!
//! This bound can beat everything in the paper (see
//! `ksa-core::bounds::extensions` for the worked `{C4, reversed C4}`
//! example where it also exposes the Thm 5.4 scoping issue documented in
//! DESIGN.md).
//!
//! Computationally this is a **hitting set** problem: `P` must intersect
//! `In_G(q)` for every pair `(G, q)` — solved exactly by branch and bound
//! with a greedy incumbent, like [`domination`](crate::domination).

use crate::digraph::Digraph;
use crate::dist_domination::check_set;
use crate::error::GraphError;
use crate::proc_set::ProcSet;

/// A universal dominating set with its size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniversalDominatingSet {
    /// The witnessing set of processes.
    pub set: ProcSet,
    /// `set.len()`, i.e. `γ_univ(S)` when produced by
    /// [`minimum_universal_dominating_set`].
    pub size: usize,
}

/// The universal domination number `γ_univ(S)`: the smallest `|P|` with
/// `Out_G(P) = Π` for every `G ∈ S`.
///
/// # Errors
///
/// [`GraphError::EmptyGraphSet`] / [`GraphError::MismatchedSizes`] as
/// usual.
pub fn universal_domination_number(graphs: &[Digraph]) -> Result<usize, GraphError> {
    Ok(minimum_universal_dominating_set(graphs)?.size)
}

/// A minimum universal dominating set (exact branch and bound over the
/// hitting-set formulation).
///
/// # Errors
///
/// [`GraphError::EmptyGraphSet`] / [`GraphError::MismatchedSizes`] as
/// usual.
pub fn minimum_universal_dominating_set(
    graphs: &[Digraph],
) -> Result<UniversalDominatingSet, GraphError> {
    check_set(graphs)?;
    ksa_obs::count(ksa_obs::Counter::DominationQueries, 1);
    let n = graphs[0].n();
    // Requirements: P must hit In_G(q) for every (G, q); dedup them.
    let mut reqs: Vec<ProcSet> = graphs
        .iter()
        .flat_map(|g| (0..n).map(move |q| g.in_set(q)))
        .collect();
    reqs.sort();
    reqs.dedup();
    // Drop requirements implied by smaller ones (hitting a subset hits the
    // superset).
    let mut minimal: Vec<ProcSet> = Vec::new();
    'outer: for r in &reqs {
        for m in &minimal {
            if m.is_subset(*r) {
                continue 'outer;
            }
        }
        minimal.retain(|m| !r.is_subset(*m));
        minimal.push(*r);
    }

    // Greedy incumbent: repeatedly take the process hitting the most
    // remaining requirements.
    let mut best = greedy_hitting_set(n, &minimal);
    let mut best_size = best.len();

    // Branch and bound on requirements: pick an unhit requirement, branch
    // on its members.
    fn rec(n: usize, reqs: &[ProcSet], chosen: ProcSet, best: &mut ProcSet, best_size: &mut usize) {
        if chosen.len() >= *best_size {
            return;
        }
        // First requirement not hit by `chosen`.
        match reqs.iter().find(|r| r.is_disjoint(chosen)) {
            None => {
                *best = chosen;
                *best_size = chosen.len();
            }
            Some(r) => {
                for p in r.iter() {
                    let _ = n;
                    rec(n, reqs, chosen.with(p), best, best_size);
                }
            }
        }
    }
    rec(n, &minimal, ProcSet::empty(), &mut best, &mut best_size);

    debug_assert!(graphs.iter().all(|g| g.dominates(best)));
    Ok(UniversalDominatingSet {
        set: best,
        size: best_size,
    })
}

fn greedy_hitting_set(n: usize, reqs: &[ProcSet]) -> ProcSet {
    let mut chosen = ProcSet::empty();
    let mut remaining: Vec<ProcSet> = reqs.to_vec();
    while !remaining.is_empty() {
        let (p, _) = (0..n)
            .map(|p| (p, remaining.iter().filter(|r| r.contains(p)).count()))
            .max_by_key(|&(p, hits)| (hits, std::cmp::Reverse(p)))
            .expect("n > 0");
        chosen.insert(p);
        remaining.retain(|r| !r.contains(p));
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domination::domination_number;
    use crate::equal_domination::equal_domination_number_of_set;
    use crate::families;
    use crate::perm::symmetric_closure;

    #[test]
    fn singleton_equals_gamma() {
        for g in [
            families::cycle(4).unwrap(),
            families::cycle(5).unwrap(),
            families::fig1_second_graph(),
            families::broadcast_star(5, 2).unwrap(),
        ] {
            assert_eq!(
                universal_domination_number(std::slice::from_ref(&g)).unwrap(),
                domination_number(&g),
                "graph {g}"
            );
        }
    }

    #[test]
    fn cycle_and_reverse_share_a_dominating_pair() {
        // The headline example: {p0, p2} dominates C4 and its reverse.
        let c = families::cycle(4).unwrap();
        let rev = Digraph::from_edges(4, &[(1, 0), (2, 1), (3, 2), (0, 3)]).unwrap();
        let set = vec![c, rev];
        let w = minimum_universal_dominating_set(&set).unwrap();
        assert_eq!(w.size, 2);
        for g in &set {
            assert!(g.dominates(w.set));
        }
    }

    #[test]
    fn bounded_by_gamma_eq_and_from_below_by_each_gamma() {
        let sets = vec![
            symmetric_closure(&[families::cycle(4).unwrap()]).unwrap(),
            symmetric_closure(&[families::broadcast_star(4, 0).unwrap()]).unwrap(),
            vec![families::path(4).unwrap(), families::cycle(4).unwrap()],
        ];
        for s in sets {
            let univ = universal_domination_number(&s).unwrap();
            assert!(univ <= equal_domination_number_of_set(&s).unwrap());
            for g in &s {
                assert!(domination_number(g) <= univ);
            }
        }
    }

    #[test]
    fn symmetric_star_closure_needs_n_minus_zero() {
        // Every single star must be dominated; only its center or …
        // everyone-but-nothing: P must contain, for each center c, a
        // process hearing-from-relationship: In(center) = {center}, so P
        // must contain every possible center: γ_univ(Sym(star)) = n.
        let sym = symmetric_closure(&[families::broadcast_star(4, 0).unwrap()]).unwrap();
        assert_eq!(universal_domination_number(&sym).unwrap(), 4);
    }

    #[test]
    fn kernel_vs_ring_mixture() {
        // Ring closure: every cycle must be dominated by one common P.
        let sym = symmetric_closure(&[families::cycle(4).unwrap()]).unwrap();
        let univ = universal_domination_number(&sym).unwrap();
        // γ_eq(Sym C4) = 3; the universal number can be smaller or equal.
        assert!(univ <= 3);
        // And it cannot be 1: a single process never dominates a 4-cycle.
        assert!(univ >= 2);
    }

    #[test]
    fn greedy_covers() {
        let reqs = vec![
            ProcSet::from_iter([0usize, 1]),
            ProcSet::from_iter([1usize, 2]),
            ProcSet::from_iter([3usize]),
        ];
        let hs = greedy_hitting_set(4, &reqs);
        for r in &reqs {
            assert!(!r.is_disjoint(hs));
        }
    }

    #[test]
    fn errors() {
        assert!(universal_domination_number(&[]).is_err());
    }

    use crate::digraph::Digraph;
}
