//! Error types for the graph substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by fallible constructors and operations on
/// [`Digraph`](crate::Digraph) and [`ProcSet`](crate::ProcSet).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A process identifier was at least the number of processes `n`.
    ProcessOutOfRange {
        /// The offending process identifier.
        proc: usize,
        /// The number of processes of the graph or set involved.
        n: usize,
    },
    /// The requested number of processes exceeds
    /// [`MAX_PROCS`](crate::MAX_PROCS).
    TooManyProcesses {
        /// The requested number of processes.
        requested: usize,
    },
    /// `n = 0` was requested; the paper fixes a non-empty `Π`.
    EmptyProcessSet,
    /// Two graphs that must share a process set had different sizes.
    MismatchedSizes {
        /// Size of the left-hand graph.
        left: usize,
        /// Size of the right-hand graph.
        right: usize,
    },
    /// An operation on a set of graphs received an empty set.
    EmptyGraphSet,
    /// A subset-size parameter `i` was outside its documented domain.
    IndexOutOfDomain {
        /// The offending parameter.
        index: usize,
        /// Human-readable description of the valid domain.
        domain: &'static str,
    },
    /// A permutation was not a bijection on `[0, n)`.
    InvalidPermutation,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::ProcessOutOfRange { proc, n } => {
                write!(f, "process p{proc} is out of range for n = {n} processes")
            }
            GraphError::TooManyProcesses { requested } => write!(
                f,
                "{requested} processes requested but at most {} are supported",
                crate::MAX_PROCS
            ),
            GraphError::EmptyProcessSet => write!(f, "the process set must be non-empty"),
            GraphError::MismatchedSizes { left, right } => {
                write!(
                    f,
                    "graphs have different process counts ({left} vs {right})"
                )
            }
            GraphError::EmptyGraphSet => write!(f, "the set of graphs must be non-empty"),
            GraphError::IndexOutOfDomain { index, domain } => {
                write!(f, "index {index} outside valid domain {domain}")
            }
            GraphError::InvalidPermutation => {
                write!(f, "the permutation is not a bijection on the process set")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs = [
            GraphError::ProcessOutOfRange { proc: 7, n: 4 },
            GraphError::TooManyProcesses { requested: 1000 },
            GraphError::EmptyProcessSet,
            GraphError::MismatchedSizes { left: 3, right: 4 },
            GraphError::EmptyGraphSet,
            GraphError::IndexOutOfDomain {
                index: 9,
                domain: "[1, n]",
            },
            GraphError::InvalidPermutation,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_object_usable() {
        let e: Box<dyn Error + Send + Sync> = Box::new(GraphError::EmptyProcessSet);
        assert!(e.source().is_none());
    }
}
