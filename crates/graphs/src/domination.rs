//! The domination number `γ(G)` (Def 3.1).
//!
//! `γ(G)` is the size of the smallest `P ⊆ Π` with `⋃_{p∈P} Out(p) = Π`.
//! It characterizes exactly what is solvable in one round on the *simple*
//! closed-above model `↑G` (Thm 3.2 + Thm 5.1): `γ(G)`-set agreement is
//! solvable, `(γ(G)−1)`-set agreement is not.
//!
//! Minimum domination is NP-hard in general (it is set cover), so this
//! module provides:
//!
//! * an exact **branch-and-bound** solver, practical well beyond the sizes
//!   the rest of the repository needs (it prunes with a greedy upper bound
//!   and a max-coverage lower bound);
//! * the **greedy** `O(n²)` approximation (ln-n factor), exposed separately
//!   because the bench harness contrasts the two.

use crate::digraph::Digraph;
use crate::proc_set::ProcSet;
#[cfg(feature = "parallel")]
use ksa_exec::prelude::*;

/// Depth to which the branch-and-bound tree is expanded into a frontier
/// of independent subproblems for parallel search (≤ 2^DEPTH tasks).
#[cfg(feature = "parallel")]
const PAR_SPLIT_DEPTH: usize = 4;

/// A dominating set together with its size; produced by the exact solver so
/// callers can reuse the witness (e.g. the Thm 3.2 algorithm hardcodes it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominatingSet {
    /// The witnessing set of processes.
    pub set: ProcSet,
    /// `set.len()`, i.e. `γ(G)` when produced by [`minimum_dominating_set`].
    pub size: usize,
}

/// The domination number `γ(G)` (Def 3.1), exact.
///
/// # Examples
///
/// ```
/// use ksa_graphs::{families, domination::domination_number};
///
/// let star = families::broadcast_star(5, 2).unwrap();
/// assert_eq!(domination_number(&star), 1); // the center dominates
/// ```
pub fn domination_number(g: &Digraph) -> usize {
    minimum_dominating_set(g).size
}

/// A minimum dominating set of `g` (exact branch and bound).
///
/// Always succeeds: `Π` itself dominates thanks to self-loops.
pub fn minimum_dominating_set(g: &Digraph) -> DominatingSet {
    ksa_obs::count(ksa_obs::Counter::DominationQueries, 1);
    let n = g.n();
    let full = ProcSet::full(n);

    // Greedy upper bound (also our incumbent solution).
    let greedy = greedy_dominating_set(g);
    let mut best = greedy.set;
    let mut best_size = greedy.size;

    // Candidate order: by decreasing out-degree (classic set-cover order).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(g.out_set(u).len()));
    let max_out = g.out_set(order[0]).len();

    // The two branch guards, shared verbatim by the sequential
    // recursion and the parallel frontier expansion — the paths only
    // return identical witnesses if these never diverge.

    /// Taking `order[idx]` is useful iff it covers something new.
    fn can_take(g: &Digraph, u: usize, covered: ProcSet) -> bool {
        !g.out_set(u).difference(covered).is_empty()
    }

    /// Skipping `order[idx]` is sound iff the remaining candidates can
    /// still cover everything.
    fn can_skip(g: &Digraph, order: &[usize], idx: usize, covered: ProcSet, full: ProcSet) -> bool {
        let mut rest = covered;
        for &v in &order[idx + 1..] {
            rest = rest.union(g.out_set(v));
        }
        full.is_subset(rest)
    }

    // Depth-first branch and bound over the candidate list.
    #[allow(clippy::too_many_arguments)]
    fn rec(
        g: &Digraph,
        order: &[usize],
        idx: usize,
        chosen: ProcSet,
        covered: ProcSet,
        full: ProcSet,
        max_out: usize,
        best: &mut ProcSet,
        best_size: &mut usize,
    ) {
        if covered == full {
            if chosen.len() < *best_size {
                *best = chosen;
                *best_size = chosen.len();
            }
            return;
        }
        if idx >= order.len() {
            return;
        }
        let uncovered = full.difference(covered).len();
        // Lower bound: each new pick covers at most max_out new processes.
        let lb = chosen.len() + uncovered.div_ceil(max_out);
        if lb >= *best_size {
            return;
        }
        let u = order[idx];
        // Branch 1: take u.
        if can_take(g, u, covered) {
            rec(
                g,
                order,
                idx + 1,
                chosen.with(u),
                covered.union(g.out_set(u)),
                full,
                max_out,
                best,
                best_size,
            );
        }
        // Branch 2: skip u.
        if can_skip(g, order, idx, covered, full) {
            rec(
                g,
                order,
                idx + 1,
                chosen,
                covered,
                full,
                max_out,
                best,
                best_size,
            );
        }
    }

    // Parallel path: expand the take/skip decision tree to a shallow
    // frontier of independent subproblems (pre-order, so merging in
    // frontier order reproduces the sequential first-found witness),
    // then branch-and-bound each subtree on its own thread. Subtrees
    // don't share an incumbent, so pruning is weaker than the
    // sequential scan — the price of parallelism — but each starts
    // from the greedy incumbent, which keeps the loss minor.
    #[cfg(feature = "parallel")]
    {
        let mut frontier: Vec<(usize, ProcSet, ProcSet)> = Vec::new();
        let mut stack = vec![(0usize, ProcSet::empty(), ProcSet::empty())];
        while let Some((idx, chosen, covered)) = stack.pop() {
            if covered == full || idx >= order.len() || idx >= PAR_SPLIT_DEPTH {
                frontier.push((idx, chosen, covered));
                continue;
            }
            let u = order[idx];
            // Push skip below take: the LIFO pop explores take first,
            // so frontier leaves are emitted in pre-order — merging in
            // that order reproduces the sequential first-found witness.
            if can_skip(g, &order, idx, covered, full) {
                stack.push((idx + 1, chosen, covered));
            }
            if can_take(g, u, covered) {
                stack.push((idx + 1, chosen.with(u), covered.union(g.out_set(u))));
            }
        }
        let incumbent_size = best_size;
        let results: Vec<(ProcSet, usize)> = frontier
            .into_par_iter()
            .map(|(idx, chosen, covered)| {
                let mut sub_best = best;
                let mut sub_size = incumbent_size;
                rec(
                    g,
                    &order,
                    idx,
                    chosen,
                    covered,
                    full,
                    max_out,
                    &mut sub_best,
                    &mut sub_size,
                );
                (sub_best, sub_size)
            })
            .collect();
        for (set, size) in results {
            if size < best_size {
                best = set;
                best_size = size;
            }
        }
    }
    #[cfg(not(feature = "parallel"))]
    rec(
        g,
        &order,
        0,
        ProcSet::empty(),
        ProcSet::empty(),
        full,
        max_out,
        &mut best,
        &mut best_size,
    );

    debug_assert!(g.dominates(best));
    DominatingSet {
        set: best,
        size: best_size,
    }
}

/// Greedy dominating set: repeatedly pick the process covering the most
/// uncovered processes. `O(n²)`; guaranteed within `ln n + 1` of `γ(G)`.
pub fn greedy_dominating_set(g: &Digraph) -> DominatingSet {
    let n = g.n();
    let full = ProcSet::full(n);
    let mut covered = ProcSet::empty();
    let mut chosen = ProcSet::empty();
    while covered != full {
        let (u, gain) = (0..n)
            .map(|u| (u, g.out_set(u).difference(covered).len()))
            .max_by_key(|&(u, gain)| (gain, std::cmp::Reverse(u)))
            .expect("n > 0");
        debug_assert!(gain > 0, "self-loops guarantee progress");
        chosen.insert(u);
        covered = covered.union(g.out_set(u));
    }
    DominatingSet {
        size: chosen.len(),
        set: chosen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    /// Brute-force reference: smallest k with a dominating k-subset.
    fn brute_gamma(g: &Digraph) -> usize {
        let n = g.n();
        for k in 1..=n {
            if ProcSet::full(n).k_subsets(k).any(|p| g.dominates(p)) {
                return k;
            }
        }
        unreachable!("Π dominates")
    }

    #[test]
    fn star_has_gamma_one() {
        let g = families::broadcast_star(6, 3).unwrap();
        assert_eq!(domination_number(&g), 1);
        let w = minimum_dominating_set(&g);
        assert_eq!(w.set, ProcSet::singleton(3));
    }

    #[test]
    fn empty_graph_needs_everyone() {
        let g = Digraph::empty(5).unwrap();
        assert_eq!(domination_number(&g), 5);
    }

    #[test]
    fn clique_needs_one() {
        assert_eq!(domination_number(&Digraph::complete(4).unwrap()), 1);
    }

    #[test]
    fn cycle_gamma_is_ceil_half() {
        // In the directed cycle each process covers itself and its successor:
        // γ(C_n) = ⌈n/2⌉.
        for n in 2..9 {
            let c = families::cycle(n).unwrap();
            assert_eq!(domination_number(&c), n.div_ceil(2), "n = {n}");
        }
    }

    #[test]
    fn matches_brute_force_on_families() {
        let graphs = vec![
            families::cycle(6).unwrap(),
            families::path(6).unwrap(),
            families::forward_matching(6).unwrap(),
            families::binary_out_tree(6).unwrap(),
            families::fig1_second_graph(),
            families::bidirectional_ring(7).unwrap(),
            families::broadcast_stars(6, ProcSet::from_iter([1usize, 4])).unwrap(),
        ];
        for g in graphs {
            assert_eq!(domination_number(&g), brute_gamma(&g), "graph {g}");
        }
    }

    #[test]
    fn witness_dominates_and_has_reported_size() {
        for n in 2..7 {
            let g = families::path(n).unwrap();
            let w = minimum_dominating_set(&g);
            assert!(g.dominates(w.set));
            assert_eq!(w.set.len(), w.size);
        }
    }

    #[test]
    fn greedy_is_dominating_and_at_least_optimal() {
        let graphs = vec![
            families::cycle(8).unwrap(),
            families::path(9).unwrap(),
            families::fig1_second_graph(),
        ];
        for g in graphs {
            let greedy = greedy_dominating_set(&g);
            assert!(g.dominates(greedy.set));
            assert!(greedy.size >= domination_number(&g));
        }
    }

    #[test]
    fn monotone_under_edge_addition() {
        // More edges ⇒ domination can only get easier.
        let small = families::cycle(6).unwrap();
        let mut big = small.clone();
        big.add_edge(0, 3).unwrap();
        big.add_edge(2, 5).unwrap();
        assert!(domination_number(&big) <= domination_number(&small));
    }
}
