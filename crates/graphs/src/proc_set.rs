//! Bitset representation of subsets of the process set `Π`.
//!
//! Every combinatorial number of the paper (`γ_eq`, `cov_i`, `γ_dist`,
//! `max-cov_i`, …) quantifies over subsets `P ⊆ Π`, so subset scans are the
//! hot loop of this whole repository. [`ProcSet`] packs a subset of up to 64
//! processes into a single `u64`, making union/intersection single
//! instructions and k-subset enumeration a Gosper-style bit trick.

use crate::error::GraphError;
use std::fmt;

/// Maximum number of processes supported by the bitset representation.
pub const MAX_PROCS: usize = 64;

/// Identifier of a process: an index in `[0, n)` standing for `p_{i+1}` in
/// the paper's notation.
pub type ProcId = usize;

/// A subset of the process set `Π`, packed into a `u64` bitmask.
///
/// `ProcSet` does not remember the universe size `n`; operations that need it
/// (like [`complement`](Self::complement)) take it explicitly. This keeps the
/// type `Copy` and trivially hashable.
///
/// # Examples
///
/// ```
/// use ksa_graphs::ProcSet;
///
/// let p = ProcSet::from_iter([0usize, 2]);
/// assert!(p.contains(0));
/// assert!(!p.contains(1));
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.union(ProcSet::singleton(1)), ProcSet::full(3));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ProcSet(u64);

impl ProcSet {
    /// The empty set.
    #[inline]
    pub const fn empty() -> Self {
        ProcSet(0)
    }

    /// The full set `{0, …, n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PROCS`.
    #[inline]
    pub const fn full(n: usize) -> Self {
        assert!(n <= MAX_PROCS);
        if n == MAX_PROCS {
            ProcSet(u64::MAX)
        } else {
            ProcSet((1u64 << n) - 1)
        }
    }

    /// The singleton `{p}`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= MAX_PROCS`.
    #[inline]
    pub const fn singleton(p: ProcId) -> Self {
        assert!(p < MAX_PROCS);
        ProcSet(1u64 << p)
    }

    /// Builds a set from a raw bitmask.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        ProcSet(bits)
    }

    /// The raw bitmask.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Number of processes in the set.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `p` belongs to the set.
    #[inline]
    pub const fn contains(self, p: ProcId) -> bool {
        p < MAX_PROCS && (self.0 >> p) & 1 == 1
    }

    /// Returns the set with `p` inserted.
    #[inline]
    pub const fn with(self, p: ProcId) -> Self {
        assert!(p < MAX_PROCS);
        ProcSet(self.0 | (1u64 << p))
    }

    /// Returns the set with `p` removed.
    #[inline]
    pub const fn without(self, p: ProcId) -> Self {
        assert!(p < MAX_PROCS);
        ProcSet(self.0 & !(1u64 << p))
    }

    /// Inserts `p` in place. Returns whether the set changed.
    #[inline]
    pub fn insert(&mut self, p: ProcId) -> bool {
        assert!(p < MAX_PROCS);
        let old = self.0;
        self.0 |= 1u64 << p;
        self.0 != old
    }

    /// Removes `p` in place. Returns whether the set changed.
    #[inline]
    pub fn remove(&mut self, p: ProcId) -> bool {
        assert!(p < MAX_PROCS);
        let old = self.0;
        self.0 &= !(1u64 << p);
        self.0 != old
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: Self) -> Self {
        ProcSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: Self) -> Self {
        ProcSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub const fn difference(self, other: Self) -> Self {
        ProcSet(self.0 & !other.0)
    }

    /// Complement within the universe `{0, …, n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_PROCS`.
    #[inline]
    pub const fn complement(self, n: usize) -> Self {
        ProcSet(!self.0 & Self::full(n).0)
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub const fn is_subset(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether `self ⊇ other`.
    #[inline]
    pub const fn is_superset(self, other: Self) -> bool {
        other.is_subset(self)
    }

    /// Whether the two sets are disjoint.
    #[inline]
    pub const fn is_disjoint(self, other: Self) -> bool {
        self.0 & other.0 == 0
    }

    /// The smallest process in the set, if any.
    #[inline]
    pub fn min(self) -> Option<ProcId> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// The largest process in the set, if any.
    #[inline]
    pub fn max(self) -> Option<ProcId> {
        if self.0 == 0 {
            None
        } else {
            Some(63 - self.0.leading_zeros() as usize)
        }
    }

    /// Iterates over the members in increasing order.
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }

    /// Validates that all members are below `n`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ProcessOutOfRange`] naming the smallest
    /// offending process.
    pub fn check_universe(self, n: usize) -> Result<(), GraphError> {
        let stray = self.difference(Self::full(n.min(MAX_PROCS)));
        match stray.min() {
            None => Ok(()),
            Some(p) => Err(GraphError::ProcessOutOfRange { proc: p, n }),
        }
    }

    /// Iterates over **all** subsets of `self` (including the empty set and
    /// `self` itself), in increasing bitmask order.
    ///
    /// This is exponential in `self.len()`; intended for small universes.
    pub fn subsets(self) -> Subsets {
        Subsets {
            universe: self.0,
            current: 0,
            done: false,
        }
    }

    /// Iterates over all subsets of `self` with exactly `k` members, in
    /// lexicographic order of their member lists.
    ///
    /// Yields nothing when `k > self.len()`.
    pub fn k_subsets(self, k: usize) -> KSubsets {
        let members: Vec<ProcId> = self.iter().collect();
        let done = k > members.len();
        KSubsets {
            members,
            indices: (0..k).collect(),
            done,
            fresh: true,
        }
    }
}

impl FromIterator<ProcId> for ProcSet {
    fn from_iter<I: IntoIterator<Item = ProcId>>(iter: I) -> Self {
        let mut s = ProcSet::empty();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<ProcId> for ProcSet {
    fn extend<I: IntoIterator<Item = ProcId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl IntoIterator for ProcSet {
    type Item = ProcId;
    type IntoIter = Iter;
    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl fmt::Debug for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProcSet{{")?;
        let mut first = true;
        for p in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "p{p}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for p in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "p{p}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Iterator over the members of a [`ProcSet`], produced by
/// [`ProcSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter(u64);

impl Iterator for Iter {
    type Item = ProcId;

    #[inline]
    fn next(&mut self) -> Option<ProcId> {
        if self.0 == 0 {
            None
        } else {
            let p = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(p)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let c = self.0.count_ones() as usize;
        (c, Some(c))
    }
}

impl ExactSizeIterator for Iter {}

/// Iterator over all subsets of a set, produced by [`ProcSet::subsets`].
#[derive(Debug, Clone)]
pub struct Subsets {
    universe: u64,
    current: u64,
    done: bool,
}

impl Iterator for Subsets {
    type Item = ProcSet;

    fn next(&mut self) -> Option<ProcSet> {
        if self.done {
            return None;
        }
        let out = ProcSet(self.current);
        if self.current == self.universe {
            self.done = true;
        } else {
            // Standard trick: enumerate submasks of `universe` in increasing
            // order by rippling the carry through the non-universe bits.
            self.current = (self.current.wrapping_sub(self.universe)) & self.universe;
        }
        Some(out)
    }
}

/// Iterator over the k-element subsets of a set, produced by
/// [`ProcSet::k_subsets`].
#[derive(Debug, Clone)]
pub struct KSubsets {
    members: Vec<ProcId>,
    indices: Vec<usize>,
    done: bool,
    fresh: bool,
}

impl Iterator for KSubsets {
    type Item = ProcSet;

    fn next(&mut self) -> Option<ProcSet> {
        if self.done {
            return None;
        }
        if self.fresh {
            self.fresh = false;
        } else {
            // Advance the combination indices (standard revolving-door-free
            // lexicographic successor).
            let k = self.indices.len();
            let n = self.members.len();
            let mut i = k;
            loop {
                if i == 0 {
                    self.done = true;
                    return None;
                }
                i -= 1;
                if self.indices[i] != i + n - k {
                    break;
                }
            }
            self.indices[i] += 1;
            for j in i + 1..k {
                self.indices[j] = self.indices[j - 1] + 1;
            }
        }
        let set: ProcSet = self.indices.iter().map(|&i| self.members[i]).collect();
        Some(set)
    }
}

/// `n!`, saturating at `u128::MAX`. Used by model-size estimates
/// (symmetric closures enumerate all `n!` relabelings).
pub fn factorial(n: usize) -> u128 {
    let mut acc: u128 = 1;
    for i in 2..=n as u128 {
        acc = acc.saturating_mul(i);
    }
    acc
}

/// Number of k-element subsets of an n-element set, saturating at
/// `u128::MAX`.
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        assert_eq!(ProcSet::empty().len(), 0);
        assert!(ProcSet::empty().is_empty());
        assert_eq!(ProcSet::full(5).len(), 5);
        assert_eq!(ProcSet::full(64).len(), 64);
        assert_eq!(ProcSet::full(0), ProcSet::empty());
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = ProcSet::empty();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn with_without_are_pure() {
        let s = ProcSet::singleton(1);
        let t = s.with(2);
        assert!(!s.contains(2));
        assert!(t.contains(2));
        assert_eq!(t.without(2), s);
    }

    #[test]
    fn set_algebra() {
        let a = ProcSet::from_iter([0usize, 1, 2]);
        let b = ProcSet::from_iter([2usize, 3]);
        assert_eq!(a.union(b), ProcSet::from_iter([0usize, 1, 2, 3]));
        assert_eq!(a.intersection(b), ProcSet::singleton(2));
        assert_eq!(a.difference(b), ProcSet::from_iter([0usize, 1]));
        assert_eq!(a.complement(4), ProcSet::singleton(3));
        assert!(a.intersection(b).is_subset(a));
        assert!(a.union(b).is_superset(b));
        assert!(ProcSet::singleton(0).is_disjoint(ProcSet::singleton(1)));
    }

    #[test]
    fn min_max() {
        let s = ProcSet::from_iter([5usize, 9, 2]);
        assert_eq!(s.min(), Some(2));
        assert_eq!(s.max(), Some(9));
        assert_eq!(ProcSet::empty().min(), None);
        assert_eq!(ProcSet::empty().max(), None);
    }

    #[test]
    fn iter_ascending() {
        let s = ProcSet::from_iter([7usize, 0, 63, 12]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![0, 7, 12, 63]);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn subsets_count_and_membership() {
        let s = ProcSet::from_iter([1usize, 4, 6]);
        let all: Vec<_> = s.subsets().collect();
        assert_eq!(all.len(), 8);
        for sub in &all {
            assert!(sub.is_subset(s));
        }
        assert!(all.contains(&ProcSet::empty()));
        assert!(all.contains(&s));
        // Pairwise distinct.
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }

    #[test]
    fn k_subsets_matches_binomial() {
        let s = ProcSet::full(6);
        for k in 0..=6 {
            let got = s.k_subsets(k).count() as u128;
            assert_eq!(got, binomial(6, k), "k = {k}");
        }
        assert_eq!(s.k_subsets(7).count(), 0);
    }

    #[test]
    fn k_subsets_have_right_size_and_are_subsets() {
        let s = ProcSet::from_iter([0usize, 2, 3, 5]);
        for k in 0..=4 {
            for sub in s.k_subsets(k) {
                assert_eq!(sub.len(), k);
                assert!(sub.is_subset(s));
            }
        }
    }

    #[test]
    fn k_subsets_of_empty() {
        assert_eq!(ProcSet::empty().k_subsets(0).count(), 1);
        assert_eq!(ProcSet::empty().k_subsets(1).count(), 0);
    }

    #[test]
    fn check_universe_errors() {
        let s = ProcSet::from_iter([0usize, 5]);
        assert!(s.check_universe(6).is_ok());
        assert_eq!(
            s.check_universe(4),
            Err(GraphError::ProcessOutOfRange { proc: 5, n: 4 })
        );
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(4, 7), 0);
        assert_eq!(binomial(64, 32), 1_832_624_140_942_590_534);
    }

    #[test]
    fn display_and_debug() {
        let s = ProcSet::from_iter([0usize, 2]);
        assert_eq!(format!("{s}"), "{p0, p2}");
        assert_eq!(format!("{s:?}"), "ProcSet{p0,p2}");
        assert_eq!(format!("{}", ProcSet::empty()), "{}");
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: ProcSet = [1usize, 3].into_iter().collect();
        s.extend([5usize]);
        assert_eq!(s, ProcSet::from_iter([1usize, 3, 5]));
        let back: Vec<ProcId> = s.into_iter().collect();
        assert_eq!(back, vec![1, 3, 5]);
    }
}
