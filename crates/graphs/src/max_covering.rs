//! Max-covering numbers `max-cov_i(S)` and coefficients `M_i(S)` (Def 5.3).
//!
//! Where covering numbers bound dissemination from *below* (worst case, for
//! upper bounds), max-covering numbers bound it from *above among
//! non-dominating scenarios* (best case, for lower bounds): for
//! `i < γ_dist(S)`,
//!
//! ```text
//! max-cov_i(S) = max { |⋃_{G ∈ S_i} Out_G(P)| :
//!                      |P| = i, S_i ⊆ S non-empty, |S_i| ≤ min(i, |S|),
//!                      ⋃_{G ∈ S_i} Out_G(P) ≠ Π }
//! ```
//!
//! The side condition `≠ Π` keeps only the scenarios where some process is
//! still ignorant — exactly the simplexes that survive in the intersections
//! of the protocol complex (proof of Thm 5.4). Collections are read as
//! *at most* `min(i, |S|)` graphs, mirroring the reading of `γ_dist`
//! justified in [`dist_domination`](crate::dist_domination) (the paper's
//! star and symmetric-closure computations come out exactly under this
//! reading; see DESIGN.md).
//!
//! The coefficient
//!
//! ```text
//! M_i(S) = ⌊(n−i−1)/(max-cov_i(S)−i)⌋   if max-cov_i(S) > i
//!        = n − i                          if max-cov_i(S) = i
//! ```
//!
//! counts how many such scenarios can be chained before everybody is
//! reached, which is the connectivity the nerve argument of Thm 5.4
//! extracts.

use crate::digraph::Digraph;
use crate::dist_domination::{check_set, distributed_domination_number};
use crate::error::GraphError;
use crate::proc_set::ProcSet;

/// The `i`-th max-covering number `max-cov_i(S)` (Def 5.3).
///
/// Defined for `1 ≤ i < γ_dist(S)`; pass `gamma_dist` if already computed
/// (use [`max_covering_number`] otherwise).
///
/// # Errors
///
/// [`GraphError::EmptyGraphSet`] / [`GraphError::MismatchedSizes`] as
/// usual; [`GraphError::IndexOutOfDomain`] unless `1 ≤ i < γ_dist(S)`
/// (below `γ_dist` a non-dominating scenario is guaranteed to exist).
pub fn max_covering_number_with(
    graphs: &[Digraph],
    i: usize,
    gamma_dist: usize,
) -> Result<usize, GraphError> {
    check_set(graphs)?;
    let n = graphs[0].n();
    if i == 0 || i >= gamma_dist {
        return Err(GraphError::IndexOutOfDomain {
            index: i,
            domain: "[1, γ_dist(S) − 1]",
        });
    }
    ksa_obs::count(ksa_obs::Counter::DominationQueries, 1);
    let full = ProcSet::full(n);
    let m = i.min(graphs.len());

    // The best non-dominating audience union for one choice of `P` —
    // independent across `P`-subsets, which are the parallel work unit.
    let best_for_subset = |p: ProcSet| -> Option<usize> {
        // Deduplicate the audiences Out_G(P): collections only see these.
        let mut audiences: Vec<ProcSet> = graphs.iter().map(|g| g.out_union(p)).collect();
        audiences.sort();
        audiences.dedup();
        // A collection's union avoids some witness q; scan witnesses.
        let mut best: Option<usize> = None;
        for q in 0..n {
            let cands: Vec<ProcSet> = audiences
                .iter()
                .copied()
                .filter(|a| !a.contains(q))
                .collect();
            if cands.is_empty() {
                continue;
            }
            let u = best_union(&cands, m);
            debug_assert!(u != full);
            if best.is_none_or(|b| u.len() > b) {
                best = Some(u.len());
            }
        }
        best
    };

    #[cfg(feature = "parallel")]
    let best: Option<usize> =
        crate::par_util::batched_filter_map_max(full.k_subsets(i), best_for_subset);
    #[cfg(not(feature = "parallel"))]
    let best: Option<usize> = full.k_subsets(i).filter_map(best_for_subset).max();

    best.ok_or(GraphError::IndexOutOfDomain {
        index: i,
        domain: "no non-dominating scenario exists (i ≥ γ_dist?)",
    })
}

/// Exact max-coverage: the largest union of at most `m` of the candidate
/// sets. Branch and bound over the candidates sorted by decreasing size.
fn best_union(cands: &[ProcSet], m: usize) -> ProcSet {
    if cands.len() <= m {
        return cands.iter().fold(ProcSet::empty(), |acc, &c| acc.union(c));
    }
    let mut sorted = cands.to_vec();
    sorted.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let mut best = ProcSet::empty();
    fn rec(sorted: &[ProcSet], idx: usize, left: usize, acc: ProcSet, best: &mut ProcSet) {
        if acc.len() > best.len() {
            *best = acc;
        }
        if left == 0 || idx >= sorted.len() {
            return;
        }
        // Optimistic bound: the next `left` candidates, counted fully.
        let optimistic: usize = acc.len()
            + sorted[idx..]
                .iter()
                .take(left)
                .map(|c| c.len())
                .sum::<usize>();
        if optimistic <= best.len() {
            return;
        }
        rec(sorted, idx + 1, left - 1, acc.union(sorted[idx]), best);
        rec(sorted, idx + 1, left, acc, best);
    }
    rec(&sorted, 0, m, ProcSet::empty(), &mut best);
    best
}

/// The `i`-th max-covering number, computing `γ_dist(S)` internally.
///
/// # Errors
///
/// Same conditions as [`max_covering_number_with`].
pub fn max_covering_number(graphs: &[Digraph], i: usize) -> Result<usize, GraphError> {
    let gd = distributed_domination_number(graphs)?;
    max_covering_number_with(graphs, i, gd)
}

/// The `i`-th max-covering coefficient `M_i(S)` (Def 5.3).
///
/// # Errors
///
/// Same conditions as [`max_covering_number_with`].
pub fn max_covering_coefficient_with(
    graphs: &[Digraph],
    i: usize,
    gamma_dist: usize,
) -> Result<usize, GraphError> {
    let n = graphs.first().ok_or(GraphError::EmptyGraphSet)?.n();
    let mc = max_covering_number_with(graphs, i, gamma_dist)?;
    Ok(if mc > i {
        (n - i - 1) / (mc - i)
    } else {
        n - i
    })
}

/// The `i`-th max-covering coefficient, computing `γ_dist(S)` internally.
///
/// # Errors
///
/// Same conditions as [`max_covering_number_with`].
pub fn max_covering_coefficient(graphs: &[Digraph], i: usize) -> Result<usize, GraphError> {
    let gd = distributed_domination_number(graphs)?;
    max_covering_coefficient_with(graphs, i, gd)
}

/// The Cor 5.5 estimate of `M_t(Sym({g}))` computed **from the single
/// graph** `g` (no symmetric closure materialized):
///
/// ```text
/// M_t = ⌊(n−t−1)/(t·(max-cov_t({g}) − t))⌋   if max-cov_t({g}) > t
///     = n − t                                  if max-cov_t({g}) = t
/// ```
///
/// # Errors
///
/// Same conditions as [`max_covering_number_with`] applied to `{g}`.
pub fn symmetric_coefficient_estimate(g: &Digraph, t: usize) -> Result<usize, GraphError> {
    let single = std::slice::from_ref(g);
    let gd = distributed_domination_number(single)?;
    let mc = max_covering_number_with(single, t, gd)?;
    let n = g.n();
    Ok(if mc > t {
        (n - t - 1) / (t * (mc - t))
    } else {
        n - t
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::perm::symmetric_closure;

    #[test]
    fn star_unions_are_silent() {
        // Thm 6.13 / §5: for symmetric unions of s stars, any t < γ_dist
        // processes avoiding the centers stay silent: max-cov_t = t and
        // M_t = n − t.
        for (n, s) in [(4usize, 1usize), (4, 2), (5, 2)] {
            let centers: ProcSet = (0..s).collect();
            let gen = families::broadcast_stars(n, centers).unwrap();
            let sym = symmetric_closure(std::slice::from_ref(&gen)).unwrap();
            let gd = distributed_domination_number(&sym).unwrap();
            assert_eq!(gd, n - s + 1);
            for t in 1..gd {
                assert_eq!(
                    max_covering_number_with(&sym, t, gd).unwrap(),
                    t,
                    "n={n}, s={s}, t={t}"
                );
                assert_eq!(
                    max_covering_coefficient_with(&sym, t, gd).unwrap(),
                    n - t,
                    "n={n}, s={s}, t={t}"
                );
            }
        }
    }

    #[test]
    fn index_domain_enforced() {
        let sym = symmetric_closure(&[families::broadcast_star(4, 0).unwrap()]).unwrap();
        let gd = distributed_domination_number(&sym).unwrap(); // = 4
        assert!(max_covering_number_with(&sym, 0, gd).is_err());
        assert!(max_covering_number_with(&sym, gd, gd).is_err());
        assert!(max_covering_number_with(&sym, 1, gd).is_ok());
    }

    #[test]
    fn cycle_max_covering() {
        // Directed 4-cycle symmetric closure: one process reaches at most 2
        // processes (itself + successor), and 2 < 4 = n, so max-cov_1 = 2.
        let sym = symmetric_closure(&[families::cycle(4).unwrap()]).unwrap();
        let gd = distributed_domination_number(&sym).unwrap(); // γ_eq(C4) = 3
        assert_eq!(gd, 3);
        assert_eq!(max_covering_number_with(&sym, 1, gd).unwrap(), 2);
        // M_1 = ⌊(4−1−1)/(2−1)⌋ = 2.
        assert_eq!(max_covering_coefficient_with(&sym, 1, gd).unwrap(), 2);
        // t = 2: two adjacent processes reach 3 ≠ Π; pairs of cycles can
        // share that audience, so max-cov_2 = 3 and M_2 = ⌊1/1⌋ = 1.
        assert_eq!(max_covering_number_with(&sym, 2, gd).unwrap(), 3);
        assert_eq!(max_covering_coefficient_with(&sym, 2, gd).unwrap(), 1);
    }

    #[test]
    fn single_graph_max_covering_is_best_nondominating_audience() {
        // For a singleton set the definition collapses to
        // max {|Out_G(P)| : |P| = i, Out_G(P) ≠ Π}.
        let g = families::fig1_second_graph();
        let gd = distributed_domination_number(std::slice::from_ref(&g)).unwrap(); // 4
                                                                                   // i = 1: best single audience ≠ Π is 2 (every process reaches 2).
        assert_eq!(
            max_covering_number_with(std::slice::from_ref(&g), 1, gd).unwrap(),
            2
        );
        // i = 2: pairs reach 3 or 4; best ≠ Π is 3.
        assert_eq!(
            max_covering_number_with(std::slice::from_ref(&g), 2, gd).unwrap(),
            3
        );
        // i = 3: {p0,p1,p2} reaches {p0,p1,p2} (p3 hears nobody) = 3.
        assert_eq!(
            max_covering_number_with(std::slice::from_ref(&g), 3, gd).unwrap(),
            3
        );
    }

    #[test]
    fn max_covering_at_least_covering_when_nondominating() {
        use crate::covering::covering_number_of_set;
        let sym = symmetric_closure(&[families::cycle(5).unwrap()]).unwrap();
        let gd = distributed_domination_number(&sym).unwrap();
        for i in 1..gd {
            let cov = covering_number_of_set(&sym, i).unwrap();
            let mc = max_covering_number_with(&sym, i, gd).unwrap();
            if cov < 5 {
                assert!(mc >= cov, "i = {i}: max-cov {mc} < cov {cov}");
            }
        }
    }

    #[test]
    fn coefficient_formula_branches() {
        // max-cov = i branch (stars).
        let stars = symmetric_closure(&[families::broadcast_star(5, 0).unwrap()]).unwrap();
        let gd = distributed_domination_number(&stars).unwrap();
        assert_eq!(max_covering_coefficient_with(&stars, 2, gd).unwrap(), 3); // n−i
                                                                              // max-cov > i branch (cycles).
        let cyc = symmetric_closure(&[families::cycle(5).unwrap()]).unwrap();
        let gd = distributed_domination_number(&cyc).unwrap();
        let mc = max_covering_number_with(&cyc, 1, gd).unwrap();
        assert!(mc > 1);
        assert_eq!(
            max_covering_coefficient_with(&cyc, 1, gd).unwrap(),
            (5 - 1 - 1) / (mc - 1)
        );
    }

    #[test]
    fn symmetric_estimate_matches_cor55_on_stars() {
        // Cor 5.5 (proof in App. C): for max-cov_t({G}) = t the symmetric
        // coefficient is n − t.
        let g = families::broadcast_star(5, 0).unwrap();
        for t in 1..4 {
            assert_eq!(symmetric_coefficient_estimate(&g, t).unwrap(), 5 - t);
        }
        // For the cycle, the estimate follows Cor 5.5's formula from the
        // single-graph max-cov (e.g. max-cov_2({C5}) = 4: a non-adjacent
        // pair reaches 4 ≠ Π processes).
        let c = families::cycle(5).unwrap();
        let single = std::slice::from_ref(&c);
        let gd = distributed_domination_number(single).unwrap();
        for t in 1..4 {
            let mc = max_covering_number_with(single, t, gd).unwrap();
            assert!(mc > t);
            assert_eq!(
                symmetric_coefficient_estimate(&c, t).unwrap(),
                (5 - t - 1) / (t * (mc - t)),
                "t = {t}"
            );
        }
        assert_eq!(
            max_covering_number_with(single, 2, gd).unwrap(),
            4,
            "non-adjacent pair in C5"
        );
    }

    #[test]
    fn estimate_is_a_safe_underestimate_of_direct_m() {
        // Cor 5.5's estimate may only under-approximate the directly
        // computed M_t(Sym(G)) (it over-approximates max-cov): safe for
        // lower bounds.
        for g in [families::cycle(4).unwrap(), families::cycle(5).unwrap()] {
            let sym = symmetric_closure(std::slice::from_ref(&g)).unwrap();
            let gd = distributed_domination_number(&sym).unwrap();
            for t in 1..gd {
                let direct = max_covering_coefficient_with(&sym, t, gd).unwrap();
                let est = symmetric_coefficient_estimate(&g, t).unwrap();
                assert!(
                    est <= direct,
                    "graph {g}, t = {t}: est {est} > direct {direct}"
                );
            }
        }
    }

    #[test]
    fn empty_set_rejected() {
        assert!(max_covering_number(&[], 1).is_err());
    }

    #[test]
    fn best_union_exactness() {
        // {0,1}, {2,3}, {1,2}: best pair is the disjoint one.
        let cands = vec![
            ProcSet::from_iter([0usize, 1]),
            ProcSet::from_iter([2usize, 3]),
            ProcSet::from_iter([1usize, 2]),
        ];
        assert_eq!(super::best_union(&cands, 2).len(), 4);
        assert_eq!(super::best_union(&cands, 1).len(), 2);
        assert_eq!(super::best_union(&cands, 3).len(), 4);
    }
}
