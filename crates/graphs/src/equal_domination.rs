//! The equal-domination number `γ_eq` (Def 3.3).
//!
//! `γ_eq(G)` is the least `i` such that **every** set of `i` processes
//! dominates `G`; `γ_eq(S) = max_{G ∈ S} γ_eq(G)`. Since the adversary of a
//! general closed-above model picks the generator, an algorithm can only
//! rely on sets that dominate *all* generators — hence the `max` (contrast
//! with `γ_dist`, Def 5.2, which takes a `min`-flavored view for lower
//! bounds).
//!
//! A closed form: `P` fails to dominate iff some process `q` hears from no
//! member of `P`, i.e. `P ∩ In(q) = ∅`. The largest failing `P` is
//! `Π \ In(q)` for the `q` of minimum in-degree, so
//!
//! ```text
//! γ_eq(G) = n − min_q |In(q)| + 1
//! ```
//!
//! which this module computes in `O(n²)` (and cross-checks against the
//! brute-force definition in tests).

use crate::digraph::Digraph;
use crate::error::GraphError;

/// The equal-domination number `γ_eq(G)` of a single graph (Def 3.3).
///
/// # Examples
///
/// ```
/// use ksa_graphs::{families, equal_domination::equal_domination_number};
///
/// // The star center hears only from itself, so only Π itself is
/// // guaranteed to dominate: γ_eq = n (§3.2).
/// let star = families::broadcast_star(4, 0).unwrap();
/// assert_eq!(equal_domination_number(&star), 4);
/// ```
pub fn equal_domination_number(g: &Digraph) -> usize {
    ksa_obs::count(ksa_obs::Counter::DominationQueries, 1);
    g.n() - g.min_in_degree() + 1
}

/// The equal-domination number `γ_eq(S) = max_{G ∈ S} γ_eq(G)` of a set of
/// graphs (Def 3.3).
///
/// # Errors
///
/// [`GraphError::EmptyGraphSet`] if `graphs` is empty.
pub fn equal_domination_number_of_set(graphs: &[Digraph]) -> Result<usize, GraphError> {
    graphs
        .iter()
        .map(equal_domination_number)
        .max()
        .ok_or(GraphError::EmptyGraphSet)
}

/// Brute-force `γ_eq(G)` straight from Def 3.3 (every `i`-subset must
/// dominate). Exponential; exported for differential testing and the bench
/// harness.
pub fn equal_domination_number_brute(g: &Digraph) -> usize {
    let n = g.n();
    for i in 1..=n {
        if g.procs().k_subsets(i).all(|p| g.dominates(p)) {
            return i;
        }
    }
    unreachable!("i = n always dominates thanks to self-loops")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::proc_set::ProcSet;

    #[test]
    fn closed_form_matches_brute_force() {
        let graphs = vec![
            Digraph::empty(4).unwrap(),
            Digraph::complete(4).unwrap(),
            families::cycle(4).unwrap(),
            families::cycle(5).unwrap(),
            families::path(5).unwrap(),
            families::broadcast_star(4, 0).unwrap(),
            families::broadcast_stars(5, ProcSet::from_iter([0usize, 2])).unwrap(),
            families::in_star(4, 1).unwrap(),
            families::fig1_second_graph(),
            families::fig2_graph(),
            families::forward_matching(6).unwrap(),
        ];
        for g in graphs {
            assert_eq!(
                equal_domination_number(&g),
                equal_domination_number_brute(&g),
                "graph {g}"
            );
        }
    }

    #[test]
    fn star_needs_everyone() {
        // §3.2: "its equal-domination number equals n".
        for n in 2..7 {
            let g = families::broadcast_star(n, 0).unwrap();
            assert_eq!(equal_domination_number(&g), n);
        }
    }

    #[test]
    fn clique_needs_one() {
        assert_eq!(equal_domination_number(&Digraph::complete(5).unwrap()), 1);
    }

    #[test]
    fn empty_graph_needs_everyone() {
        assert_eq!(equal_domination_number(&Digraph::empty(5).unwrap()), 5);
    }

    #[test]
    fn directed_cycle() {
        // In(q) = {q-1, q}: min in-degree 2, so γ_eq = n − 1.
        for n in 3..8 {
            let c = families::cycle(n).unwrap();
            assert_eq!(equal_domination_number(&c), n - 1, "n = {n}");
        }
    }

    #[test]
    fn fig1_second_graph_value() {
        // The reconstruction target: γ_eq = 4 (§3.2 of the paper).
        assert_eq!(equal_domination_number(&families::fig1_second_graph()), 4);
    }

    #[test]
    fn set_version_takes_max() {
        let s = vec![
            Digraph::complete(4).unwrap(),           // γ_eq = 1
            families::cycle(4).unwrap(),             // γ_eq = 3
            families::broadcast_star(4, 2).unwrap(), // γ_eq = 4
        ];
        assert_eq!(equal_domination_number_of_set(&s).unwrap(), 4);
        assert_eq!(
            equal_domination_number_of_set(&[]),
            Err(GraphError::EmptyGraphSet)
        );
    }

    #[test]
    fn gamma_eq_at_least_gamma() {
        use crate::domination::domination_number;
        let graphs = vec![
            families::cycle(6).unwrap(),
            families::path(6).unwrap(),
            families::fig1_second_graph(),
            families::broadcast_star(5, 1).unwrap(),
        ];
        for g in graphs {
            assert!(equal_domination_number(&g) >= domination_number(&g));
        }
    }

    #[test]
    fn invariant_under_permutation() {
        use crate::perm::all_permutations;
        let g = families::fig1_second_graph();
        let base = equal_domination_number(&g);
        for p in all_permutations(4) {
            assert_eq!(equal_domination_number(&p.apply_graph(&g).unwrap()), base);
        }
    }
}
