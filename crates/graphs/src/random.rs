//! Seeded random graph generation for workloads and property tests.
//!
//! Everything here takes an explicit `&mut impl Rng`, so experiment runs are
//! reproducible byte-for-byte from their seeds (DESIGN.md §4.5).

use crate::digraph::Digraph;
use crate::error::GraphError;
use crate::proc_set::{ProcId, ProcSet};
use rand::seq::SliceRandom;
use rand::Rng;

/// A random digraph on `n` processes where each non-loop edge is present
/// independently with probability `p` (self-loops always present).
///
/// # Errors
///
/// Propagates size errors from [`Digraph::empty`].
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]` (propagated from `rand`).
pub fn random_digraph(n: usize, p: f64, rng: &mut impl Rng) -> Result<Digraph, GraphError> {
    let mut g = Digraph::empty(n)?;
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.random_bool(p) {
                g.add_edge(u, v)?;
            }
        }
    }
    Ok(g)
}

/// A uniformly random member of `↑g` — i.e. `g` plus each missing edge
/// independently with probability `1/2`.
///
/// # Errors
///
/// Never fails for a valid `g`; signature kept fallible for uniformity.
pub fn random_superset(g: &Digraph, rng: &mut impl Rng) -> Result<Digraph, GraphError> {
    random_superset_with(g, 0.5, rng)
}

/// A random member of `↑g` where each missing edge is added independently
/// with probability `p_extra`. `p_extra = 0` returns `g` itself; `1`
/// returns the clique.
///
/// # Errors
///
/// Never fails for a valid `g`; signature kept fallible for uniformity.
pub fn random_superset_with(
    g: &Digraph,
    p_extra: f64,
    rng: &mut impl Rng,
) -> Result<Digraph, GraphError> {
    let mut h = g.clone();
    for u in 0..g.n() {
        for v in 0..g.n() {
            if u != v && !g.has_edge(u, v) && rng.random_bool(p_extra) {
                h.add_edge(u, v)?;
            }
        }
    }
    Ok(h)
}

/// A random permutation image of `g` (uniform over relabelings).
///
/// # Errors
///
/// Never fails for a valid `g`; signature kept fallible for uniformity.
pub fn random_relabeling(g: &Digraph, rng: &mut impl Rng) -> Result<Digraph, GraphError> {
    let mut map: Vec<ProcId> = (0..g.n()).collect();
    map.shuffle(rng);
    crate::perm::Permutation::new(map)?.apply_graph(g)
}

/// A random `k`-subset of `{0, …, n-1}` (uniform).
///
/// # Panics
///
/// Panics if `k > n` or `n > MAX_PROCS`.
pub fn random_k_subset(n: usize, k: usize, rng: &mut impl Rng) -> ProcSet {
    assert!(k <= n);
    // Floyd's algorithm.
    let mut s = ProcSet::empty();
    for j in n - k..n {
        let t = rng.random_range(0..=j);
        if !s.insert(t) {
            s.insert(j);
        }
    }
    debug_assert_eq!(s.len(), k);
    s
}

/// A random union of `s` broadcast stars with distinct centers (uniform
/// over center sets) — the Thm 6.13 workload.
///
/// # Errors
///
/// Propagates size errors.
///
/// # Panics
///
/// Panics if `s > n`.
pub fn random_star_union(n: usize, s: usize, rng: &mut impl Rng) -> Result<Digraph, GraphError> {
    let centers = random_k_subset(n, s, rng);
    crate::families::broadcast_stars(n, centers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD15C0)
    }

    #[test]
    fn extremes_of_edge_probability() {
        let mut r = rng();
        assert_eq!(
            random_digraph(5, 0.0, &mut r).unwrap(),
            Digraph::empty(5).unwrap()
        );
        assert_eq!(
            random_digraph(5, 1.0, &mut r).unwrap(),
            Digraph::complete(5).unwrap()
        );
    }

    #[test]
    fn random_digraph_is_seed_deterministic() {
        let a = random_digraph(6, 0.3, &mut rng()).unwrap();
        let b = random_digraph(6, 0.3, &mut rng()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn superset_contains_base() {
        let g = crate::families::cycle(6).unwrap();
        let mut r = rng();
        for _ in 0..20 {
            let h = random_superset(&g, &mut r).unwrap();
            assert!(h.contains_graph(&g).unwrap());
        }
        assert_eq!(random_superset_with(&g, 0.0, &mut r).unwrap(), g);
        assert!(random_superset_with(&g, 1.0, &mut r).unwrap().is_complete());
    }

    #[test]
    fn relabeling_preserves_isomorphism_class() {
        use crate::perm::canonical_form;
        let g = crate::families::fig1_second_graph();
        let mut r = rng();
        for _ in 0..10 {
            let h = random_relabeling(&g, &mut r).unwrap();
            assert_eq!(canonical_form(&h), canonical_form(&g));
        }
    }

    #[test]
    fn k_subset_sizes() {
        let mut r = rng();
        for k in 0..=8 {
            let s = random_k_subset(8, k, &mut r);
            assert_eq!(s.len(), k);
            assert!(s.is_subset(ProcSet::full(8)));
        }
    }

    #[test]
    fn k_subset_covers_space() {
        // Over many draws, every process should appear at least once.
        let mut r = rng();
        let mut seen = ProcSet::empty();
        for _ in 0..200 {
            seen = seen.union(random_k_subset(6, 2, &mut r));
        }
        assert_eq!(seen, ProcSet::full(6));
    }

    #[test]
    fn star_union_has_s_centers() {
        let mut r = rng();
        for s in 1..4 {
            let g = random_star_union(5, s, &mut r).unwrap();
            let centers = (0..5).filter(|&c| g.out_set(c) == ProcSet::full(5)).count();
            assert_eq!(centers, s);
        }
    }
}
