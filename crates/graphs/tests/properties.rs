//! Property-based tests for the graph substrate.
//!
//! These check the structural laws the paper's proofs rely on — monotonicity
//! under edge addition, permutation invariance, Lemma 6.2's inclusion, and
//! the orderings among the combinatorial numbers — on randomly generated
//! graphs rather than hand-picked families.

use ksa_graphs::covering::{covering_number, covering_profile};
use ksa_graphs::digraph::Digraph;
use ksa_graphs::dist_domination::{
    distributed_domination_number, distributed_domination_number_exact,
};
use ksa_graphs::domination::{domination_number, greedy_dominating_set, minimum_dominating_set};
use ksa_graphs::equal_domination::{
    equal_domination_number, equal_domination_number_brute, equal_domination_number_of_set,
};
use ksa_graphs::perm::{all_permutations, Permutation};
use ksa_graphs::proc_set::ProcSet;
use ksa_graphs::product::{dissemination, power, product};
use ksa_graphs::sequences::covering_sequence;
use proptest::prelude::*;

/// Strategy: a digraph on `n` processes with each proper edge present with
/// the sampled density.
fn digraph(n: usize) -> impl Strategy<Value = Digraph> {
    let bits = n * n;
    prop::collection::vec(any::<bool>(), bits).prop_map(move |edges| {
        let mut g = Digraph::empty(n).expect("valid n");
        for u in 0..n {
            for v in 0..n {
                if u != v && edges[u * n + v] {
                    g.add_edge(u, v).expect("in range");
                }
            }
        }
        g
    })
}

fn small_digraph() -> impl Strategy<Value = Digraph> {
    (2usize..=6).prop_flat_map(digraph)
}

fn permutation(n: usize) -> impl Strategy<Value = Permutation> {
    Just(()).prop_perturb(move |_, mut rng| {
        let mut map: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            map.swap(i, j);
        }
        Permutation::new(map).expect("shuffle is a bijection")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gamma_le_gamma_eq(g in small_digraph()) {
        prop_assert!(domination_number(&g) <= equal_domination_number(&g));
    }

    #[test]
    fn gamma_eq_closed_form_matches_definition(g in small_digraph()) {
        prop_assert_eq!(
            equal_domination_number(&g),
            equal_domination_number_brute(&g)
        );
    }

    #[test]
    fn minimum_dominating_set_is_dominating_and_minimum(g in small_digraph()) {
        let w = minimum_dominating_set(&g);
        prop_assert!(g.dominates(w.set));
        // No smaller subset dominates.
        let n = g.n();
        if w.size > 1 {
            for p in ProcSet::full(n).k_subsets(w.size - 1) {
                prop_assert!(!g.dominates(p));
            }
        }
    }

    #[test]
    fn greedy_at_least_exact(g in small_digraph()) {
        let greedy = greedy_dominating_set(&g);
        prop_assert!(g.dominates(greedy.set));
        prop_assert!(greedy.size >= domination_number(&g));
    }

    #[test]
    fn covering_profile_monotone(g in small_digraph()) {
        let prof = covering_profile(&g);
        for w in prof.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // cov_i ≥ i (self-loops) and cov_n = n.
        for (idx, &c) in prof.iter().enumerate() {
            prop_assert!(c > idx);
        }
        prop_assert_eq!(prof[g.n() - 1], g.n());
    }

    #[test]
    fn numbers_monotone_under_edge_addition(g in digraph(5), u in 0usize..5, v in 0usize..5) {
        prop_assume!(u != v);
        let mut big = g.clone();
        big.add_edge(u, v).expect("in range");
        prop_assert!(domination_number(&big) <= domination_number(&g));
        prop_assert!(equal_domination_number(&big) <= equal_domination_number(&g));
        for i in 1..=5 {
            prop_assert!(
                covering_number(&big, i).unwrap() >= covering_number(&g, i).unwrap()
            );
        }
    }

    #[test]
    fn numbers_invariant_under_permutation(g in digraph(5), p in permutation(5)) {
        let h = p.apply_graph(&g).expect("sizes match");
        prop_assert_eq!(domination_number(&h), domination_number(&g));
        prop_assert_eq!(equal_domination_number(&h), equal_domination_number(&g));
        for i in 1..=5 {
            prop_assert_eq!(
                covering_number(&h, i).unwrap(),
                covering_number(&g, i).unwrap()
            );
        }
    }

    #[test]
    fn product_associative(a in digraph(5), b in digraph(5), c in digraph(5)) {
        let left = product(&product(&a, &b).unwrap(), &c).unwrap();
        let right = product(&a, &product(&b, &c).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn product_contains_both_factors(a in digraph(5), b in digraph(5)) {
        let p = product(&a, &b).unwrap();
        prop_assert!(p.contains_graph(&a).unwrap());
        prop_assert!(p.contains_graph(&b).unwrap());
    }

    #[test]
    fn product_monotone(a in digraph(4), b in digraph(4), extra in digraph(4)) {
        // a ⊆ a∪extra ⇒ a⊗b ⊆ (a∪extra)⊗b (monotonicity in each factor).
        let bigger = a.union(&extra).unwrap();
        let small = product(&a, &b).unwrap();
        let large = product(&bigger, &b).unwrap();
        prop_assert!(large.contains_graph(&small).unwrap());
    }

    #[test]
    fn lemma_6_2_inclusion(g in digraph(4), h in digraph(4), gp in digraph(4), hp in digraph(4)) {
        // ↑G ⊗ ↑H ⊆ ↑(G ⊗ H): any supersets G' ⊇ G, H' ⊇ H have
        // G' ⊗ H' ⊇ G ⊗ H.
        let g_sup = g.union(&gp).unwrap();
        let h_sup = h.union(&hp).unwrap();
        let base = product(&g, &h).unwrap();
        let lifted = product(&g_sup, &h_sup).unwrap();
        prop_assert!(lifted.contains_graph(&base).unwrap());
    }

    #[test]
    fn power_stabilizes_at_transitive_closure(g in digraph(5)) {
        // g^n = g^(n+1): by n rounds every path has been contracted.
        let gn = power(&g, 5).unwrap();
        let gn1 = power(&g, 6).unwrap();
        prop_assert_eq!(gn, gn1);
    }

    #[test]
    fn dissemination_equals_product_rows(g in digraph(5), h in digraph(5)) {
        let prod = product(&g, &h).unwrap();
        for p in 0..5 {
            prop_assert_eq!(
                dissemination(&[g.clone(), h.clone()], ProcSet::singleton(p)).unwrap(),
                prod.out_set(p)
            );
        }
    }

    #[test]
    fn covering_sequence_nondecreasing_and_consistent(g in small_digraph(), i in 1usize..=4) {
        prop_assume!(i <= g.n());
        let seq = covering_sequence(&g, i).unwrap();
        for w in seq.values.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        match seq.reaches_n_at {
            Some(at) => {
                prop_assert_eq!(seq.values.len(), at);
                prop_assert_eq!(*seq.values.last().unwrap(), g.n());
            }
            None => prop_assert!(*seq.values.last().unwrap() < g.n()),
        }
    }

    #[test]
    fn dist_domination_faithful_equals_gamma_eq(g in digraph(4), h in digraph(4)) {
        let set = vec![g, h];
        prop_assert_eq!(
            distributed_domination_number(&set).unwrap(),
            equal_domination_number_of_set(&set).unwrap()
        );
    }

    #[test]
    fn dist_domination_exact_at_most_faithful(g in digraph(4), h in digraph(4)) {
        let set = vec![g, h];
        prop_assert!(
            distributed_domination_number_exact(&set).unwrap()
                <= distributed_domination_number(&set).unwrap()
        );
    }

    #[test]
    fn symmetric_closure_contains_all_relabelings(g in digraph(4)) {
        let sym = ksa_graphs::perm::symmetric_closure(std::slice::from_ref(&g)).unwrap();
        for p in all_permutations(4) {
            let img = p.apply_graph(&g).unwrap();
            prop_assert!(sym.contains(&img));
        }
    }

    // --- orbit-key laws (load-bearing for the solvability symmetry
    // breaking, DESIGN.md §10: the no-good table keys partial
    // assignments by canonical forms, so canonical_form must be a
    // genuine orbit invariant and Sym a genuine closure operator). ---

    #[test]
    fn canonical_form_is_orbit_invariant(g in digraph(4), p in permutation(4)) {
        // σ(g) is in g's orbit, so both must canonicalize identically.
        let img = p.apply_graph(&g).unwrap();
        prop_assert_eq!(
            ksa_graphs::perm::canonical_form(&g),
            ksa_graphs::perm::canonical_form(&img)
        );
    }

    #[test]
    fn canonical_form_is_idempotent_and_minimal(g in digraph(4)) {
        let c = ksa_graphs::perm::canonical_form(&g);
        prop_assert_eq!(ksa_graphs::perm::canonical_form(&c), c.clone());
        prop_assert!(c <= g, "the canonical form is the orbit minimum");
    }

    #[test]
    fn symmetric_closure_is_idempotent(gs in prop::collection::vec(digraph(4), 1..=3)) {
        let once = ksa_graphs::perm::symmetric_closure(&gs).unwrap();
        let twice = ksa_graphs::perm::symmetric_closure(&once).unwrap();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn stabilizing_permutations_form_a_group(gs in prop::collection::vec(digraph(4), 1..=3)) {
        let stab = ksa_graphs::perm::stabilizing_permutations(&gs).unwrap();
        prop_assert!(stab.contains(&Permutation::identity(4)));
        for a in &stab {
            prop_assert!(stab.contains(&a.inverse()));
            for b in &stab {
                prop_assert!(stab.contains(&a.compose(b)));
            }
        }
        // Every member genuinely stabilizes the set.
        let set: std::collections::BTreeSet<_> = gs.iter().cloned().collect();
        for a in &stab {
            let img: std::collections::BTreeSet<_> =
                set.iter().map(|g| a.apply_graph(g).unwrap()).collect();
            prop_assert_eq!(&img, &set);
        }
    }

    #[test]
    fn symmetric_closure_stabilized_by_everything(gs in prop::collection::vec(digraph(4), 1..=2)) {
        // Sym(S) is permutation-closed, so its stabilizer is all of S_n.
        let sym = ksa_graphs::perm::symmetric_closure(&gs).unwrap();
        let stab = ksa_graphs::perm::stabilizing_permutations(&sym).unwrap();
        prop_assert_eq!(stab.len(), 24);
    }
}
