//! End-to-end tests against an in-process server: the happy paths, the
//! cache byte-identity guarantee, deadlines, overload shedding, and
//! mid-stream disconnects.

use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Mutex;

use ksa_server::client;
use ksa_server::framing::write_frame;
use ksa_server::json::{parse, Value};
use ksa_server::server::{start, Config, Handle};

/// Servers in this binary share the process-global obs counters and, in
/// the faults configuration, the fault schedule — serialize them.
static SERIAL: Mutex<()> = Mutex::new(());

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ksa-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn(name: &str, queue_cap: usize, workers: usize) -> (Handle, PathBuf) {
    let dir = scratch(name);
    let handle = start(Config {
        socket: dir.join("sock"),
        cache_dir: dir.join("cache"),
        queue_cap,
        workers,
    })
    .unwrap();
    (handle, dir)
}

fn terminal(frames: &[Vec<u8>]) -> &[u8] {
    frames.last().expect("at least one response frame")
}

fn event_of(frame: &[u8]) -> String {
    parse(frame)
        .unwrap()
        .get("event")
        .and_then(Value::as_str)
        .unwrap()
        .to_string()
}

#[test]
fn ping_and_shutdown() {
    let _guard = SERIAL.lock().unwrap();
    let (handle, dir) = spawn("ping", 8, 1);
    let frames = client::request(handle.socket(), br#"{"query":"ping"}"#).unwrap();
    assert_eq!(
        frames,
        vec![br#"{"event":"result","query":"ping"}"#.to_vec()]
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn solv_cold_then_cached_byte_identical() {
    let _guard = SERIAL.lock().unwrap();
    let (handle, dir) = spawn("solv-cache", 8, 1);
    let req = br#"{"query":"solv","model":"ring{n=3}","k_max":3}"#;
    let cold = client::request(handle.socket(), req).unwrap();
    assert!(
        cold.len() > 1,
        "cold run streams progress before the result"
    );
    for frame in &cold[..cold.len() - 1] {
        assert_eq!(event_of(frame), "progress");
    }
    assert_eq!(event_of(terminal(&cold)), "result");

    let cached = client::request(handle.socket(), req).unwrap();
    assert_eq!(
        cached.len(),
        1,
        "cache hits replay the result with no progress"
    );
    assert_eq!(
        terminal(&cold),
        terminal(&cached),
        "cold and cached results are byte-identical"
    );

    // Bypassing the cache recomputes, and the bytes still match.
    let no_cache = client::request(
        handle.socket(),
        br#"{"query":"solv","model":"ring{n=3}","k_max":3,"no_cache":true}"#,
    )
    .unwrap();
    assert_eq!(terminal(&cold), terminal(&no_cache));

    // Sanity on the payload itself.
    let result = parse(terminal(&cold)).unwrap();
    assert_eq!(
        result.get("model").and_then(Value::as_str),
        Some("ring{n=3}")
    );
    let Some(Value::Arr(verdicts)) = result.get("verdicts") else {
        panic!("verdicts array");
    };
    assert_eq!(verdicts.len(), 3);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn rounds_cold_then_cached_byte_identical() {
    let _guard = SERIAL.lock().unwrap();
    let (handle, dir) = spawn("rounds-cache", 8, 1);
    let req = br#"{"query":"rounds","model":"ring{n=3}","value_max":1,"rounds":2}"#;
    let cold = client::request(handle.socket(), req).unwrap();
    assert_eq!(event_of(terminal(&cold)), "result");
    let cached = client::request(handle.socket(), req).unwrap();
    assert_eq!(terminal(&cold), terminal(&cached));
    let result = parse(terminal(&cold)).unwrap();
    assert_eq!(
        result.get("consistent").and_then(Value::as_bool),
        Some(true)
    );
    let Some(Value::Arr(per_round)) = result.get("per_round") else {
        panic!("per_round array");
    };
    assert_eq!(per_round.len(), 2);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn bad_requests_get_structured_errors() {
    let _guard = SERIAL.lock().unwrap();
    let (handle, dir) = spawn("bad-req", 8, 1);
    for (payload, expect_kind) in [
        (&br#"not json at all"#[..], "bad_request"),
        (br#"{"query":"frobnicate"}"#, "bad_request"),
        (
            br#"{"query":"solv","model":"ring{n=3}","k_max":0}"#,
            "bad_request",
        ),
        (
            br#"{"query":"solv","model":"no such model","k_max":2}"#,
            "bad_request",
        ),
    ] {
        let frames = client::request(handle.socket(), payload).unwrap();
        assert_eq!(frames.len(), 1);
        let v = parse(terminal(&frames)).unwrap();
        assert_eq!(v.get("event").and_then(Value::as_str), Some("error"));
        assert_eq!(
            v.get("kind").and_then(Value::as_str),
            Some(expect_kind),
            "payload: {}",
            String::from_utf8_lossy(payload)
        );
    }
    // The server is still healthy after all of that.
    let frames = client::request(handle.socket(), br#"{"query":"ping"}"#).unwrap();
    assert_eq!(event_of(terminal(&frames)), "result");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn expired_deadline_trips_deterministically() {
    let _guard = SERIAL.lock().unwrap();
    let (handle, dir) = spawn("deadline", 8, 1);
    // deadline_ms 0 is already past when the token is created, so the
    // very first checkpoint fires regardless of machine speed.
    let frames = client::request(
        handle.socket(),
        br#"{"query":"solv","model":"ring{n=3}","k_max":3,"deadline_ms":0}"#,
    )
    .unwrap();
    let v = parse(terminal(&frames)).unwrap();
    assert_eq!(v.get("event").and_then(Value::as_str), Some("error"));
    assert_eq!(v.get("kind").and_then(Value::as_str), Some("deadline"));
    // A deadline failure never poisons the cache: the same query
    // without a deadline computes fresh and succeeds.
    let frames = client::request(
        handle.socket(),
        br#"{"query":"solv","model":"ring{n=3}","k_max":3}"#,
    )
    .unwrap();
    assert_eq!(event_of(terminal(&frames)), "result");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn full_queue_sheds_with_overloaded() {
    let _guard = SERIAL.lock().unwrap();
    // No workers: nothing drains the queue, so filling it is
    // deterministic.
    let (handle, dir) = spawn("overload", 2, 0);
    let mut parked = Vec::new();
    for i in 0..2 {
        let mut stream = UnixStream::connect(handle.socket()).unwrap();
        write_frame(&mut stream, br#"{"query":"ping"}"#).unwrap();
        parked.push(stream);
        // Wait until the connection thread has actually enqueued it.
        while handle.queue_len() < i + 1 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    let frames = client::request(handle.socket(), br#"{"query":"ping"}"#).unwrap();
    assert_eq!(frames.len(), 1);
    let v = parse(terminal(&frames)).unwrap();
    assert_eq!(v.get("event").and_then(Value::as_str), Some("overloaded"));
    assert!(v.get("retry_after_ms").and_then(Value::as_i64).unwrap() > 0);
    drop(parked);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn mid_stream_disconnect_leaves_server_healthy() {
    let _guard = SERIAL.lock().unwrap();
    let (handle, dir) = spawn("disconnect", 8, 1);
    {
        let mut stream = UnixStream::connect(handle.socket()).unwrap();
        write_frame(
            &mut stream,
            br#"{"query":"solv","model":"ring{n=4}","k_max":4,"no_cache":true}"#,
        )
        .unwrap();
        // Hang up without reading anything: the worker discovers the
        // dead stream at its next progress write and cancels the
        // computation instead of finishing it for nobody.
    }
    // The server keeps serving; a full query still completes.
    let frames = client::request(
        handle.socket(),
        br#"{"query":"solv","model":"ring{n=3}","k_max":2}"#,
    )
    .unwrap();
    assert_eq!(event_of(terminal(&frames)), "result");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn shutdown_request_stops_the_server() {
    let _guard = SERIAL.lock().unwrap();
    let (handle, dir) = spawn("shutdown-req", 8, 1);
    let frames = client::request(handle.socket(), br#"{"query":"shutdown"}"#).unwrap();
    let v = parse(terminal(&frames)).unwrap();
    assert_eq!(v.get("event").and_then(Value::as_str), Some("result"));
    // wait() returns because the accept loop observed the stop flag.
    handle.wait();
    let _ = std::fs::remove_dir_all(dir);
}
