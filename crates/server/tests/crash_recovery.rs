//! Crash-recovery tests against the real `ksa-server` binary: a
//! `kill -9` mid-cache-write must never leave a torn entry, and a
//! restarted server must serve the same bytes it would have served
//! without the crash.
//!
//! The kill window is held open deterministically with the
//! `cache_write_stall` fault site, so this suite needs the `faults`
//! feature (`cargo test -p ksa-server --features faults`).

#![cfg(feature = "faults")]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ksa_server::client;
use ksa_server::json::{parse, Value};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ksa-crash-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_server(dir: &Path, faults: Option<&str>) -> (Child, PathBuf) {
    let socket = dir.join("sock");
    let _ = std::fs::remove_file(&socket);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ksa-server"));
    cmd.arg("--socket")
        .arg(&socket)
        .arg("--cache-dir")
        .arg(dir.join("cache"))
        .arg("--workers")
        .arg("1")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    match faults {
        Some(spec) => cmd.env("KSA_FAULTS", spec),
        None => cmd.env_remove("KSA_FAULTS"),
    };
    let child = cmd.spawn().expect("spawn ksa-server");
    // Wait for the socket to exist rather than parsing stdout: the
    // listening line and the bind race equally.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "server did not come up");
        std::thread::sleep(Duration::from_millis(10));
    }
    (child, socket)
}

fn cache_files(dir: &Path) -> Vec<String> {
    match std::fs::read_dir(dir.join("cache")) {
        Ok(entries) => entries
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect(),
        Err(_) => Vec::new(),
    }
}

#[test]
fn kill_nine_mid_cache_write_leaves_no_torn_entry() {
    let dir = scratch("kill9");
    let req = br#"{"query":"solv","model":"ring{n=3}","k_max":2}"#;

    // Phase 1: a server whose first cache write stalls for 60 s between
    // writing the temp file and the publishing rename. The request
    // computes, starts the write, and hangs in the kill window.
    let (mut child, socket) = spawn_server(&dir, Some("cache_write_stall@1:60000"));
    let socket_for_client = socket.clone();
    let client_thread = std::thread::spawn(move || {
        // The response frame is only sent after the (stalled) cache
        // write, so this read outlives the kill below and fails — that
        // is expected.
        client::request(&socket_for_client, req)
    });
    // Wait for the temp file: proof the writer is inside the window.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if cache_files(&dir).iter().any(|name| name.contains(".tmp.")) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "writer never reached the stall window"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // SIGKILL: no destructors, no cleanup, the worst case.
    child.kill().unwrap();
    child.wait().unwrap();
    let _ = client_thread.join();

    let after_crash = cache_files(&dir);
    assert!(
        after_crash.iter().all(|name| !name.ends_with(".entry")),
        "no published entry may exist after the crash: {after_crash:?}"
    );

    // Phase 2: clean restart, no faults. The stale temp file is swept,
    // and the same query computes cold then replays cached,
    // byte-identical.
    let (mut child, socket) = spawn_server(&dir, None);
    let cold = client::request(&socket, req).unwrap();
    let cold_result = cold.last().unwrap().clone();
    let v = parse(&cold_result).unwrap();
    assert_eq!(v.get("event").and_then(Value::as_str), Some("result"));
    let cached = client::request(&socket, req).unwrap();
    assert_eq!(cached.len(), 1, "second run is a cache hit");
    assert_eq!(cold_result, cached[0]);
    let files = cache_files(&dir);
    assert!(
        files.iter().all(|name| !name.contains(".tmp.")),
        "restart swept the stale temp file: {files:?}"
    );
    assert!(
        files.iter().any(|name| name.ends_with(".entry")),
        "the recomputed entry is published: {files:?}"
    );

    let _ = client::request(&socket, br#"{"query":"shutdown"}"#);
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn bit_flipped_entry_is_quarantined_and_recomputed_identically() {
    let dir = scratch("bitflip");
    let req = br#"{"query":"rounds","model":"ring{n=3}","value_max":1,"rounds":1}"#;
    let (mut child, socket) = spawn_server(&dir, None);
    let cold = client::request(&socket, req).unwrap();
    let cold_result = cold.last().unwrap().clone();

    // Flip one bit in the published entry on disk.
    let entry = std::fs::read_dir(dir.join("cache"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "entry"))
        .expect("one published entry");
    let mut raw = std::fs::read(&entry).unwrap();
    let last = raw.len() - 1;
    raw[last] ^= 0x40;
    std::fs::write(&entry, &raw).unwrap();

    // The read quarantines the corrupt entry and recomputes: the
    // response is byte-identical to the original cold run.
    let recomputed = client::request(&socket, req).unwrap();
    assert_eq!(&cold_result, recomputed.last().unwrap());
    let files = cache_files(&dir);
    assert!(
        files.iter().any(|name| name.ends_with(".quarantined")),
        "corrupt entry quarantined: {files:?}"
    );
    assert!(
        files.iter().any(|name| name.ends_with(".entry")),
        "fresh entry republished: {files:?}"
    );
    // And the republished entry serves hits again.
    let cached = client::request(&socket, req).unwrap();
    assert_eq!(cached.len(), 1);
    assert_eq!(&cold_result, &cached[0]);

    let _ = client::request(&socket, br#"{"query":"shutdown"}"#);
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(dir);
}
