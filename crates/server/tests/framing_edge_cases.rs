//! Hostile-wire tests: torn prefixes, absurd declared lengths, garbage
//! payloads, and half-closed sockets, each followed by a health probe —
//! a broken client must never take the server down.

use std::io::{Read, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

use ksa_server::client;
use ksa_server::framing::write_frame;
use ksa_server::json::{parse, Value};
use ksa_server::server::{start, Config, Handle};

static SERIAL: Mutex<()> = Mutex::new(());

fn spawn(name: &str) -> (Handle, PathBuf) {
    let dir = std::env::temp_dir().join(format!("ksa-fr-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let handle = start(Config {
        socket: dir.join("sock"),
        cache_dir: dir.join("cache"),
        queue_cap: 8,
        workers: 1,
    })
    .unwrap();
    (handle, dir)
}

fn assert_healthy(handle: &Handle) {
    let frames = client::request(handle.socket(), br#"{"query":"ping"}"#).unwrap();
    let v = parse(frames.last().unwrap()).unwrap();
    assert_eq!(v.get("event").and_then(Value::as_str), Some("result"));
}

fn read_all(stream: &mut UnixStream) -> Vec<u8> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    out
}

#[test]
fn truncated_length_prefix() {
    let _guard = SERIAL.lock().unwrap();
    let (handle, dir) = spawn("torn-prefix");
    let mut stream = UnixStream::connect(handle.socket()).unwrap();
    stream.write_all(&[0u8, 0]).unwrap(); // 2 of 4 prefix bytes
    stream.shutdown(Shutdown::Write).unwrap();
    let response = read_all(&mut stream);
    // The server answers the framing error with a structured frame.
    assert!(!response.is_empty(), "torn prefix gets an error response");
    let v = parse(&response[4..]).unwrap();
    assert_eq!(v.get("kind").and_then(Value::as_str), Some("bad_request"));
    assert_healthy(&handle);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn absurd_declared_length_is_rejected() {
    let _guard = SERIAL.lock().unwrap();
    let (handle, dir) = spawn("absurd-len");
    let mut stream = UnixStream::connect(handle.socket()).unwrap();
    // Declare a 4 GiB frame; send only a few bytes. The server must
    // reject on the prefix alone (before allocating), not wait for the
    // payload.
    stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
    stream.write_all(b"tiny").unwrap();
    let response = read_all(&mut stream);
    assert!(!response.is_empty());
    let v = parse(&response[4..]).unwrap();
    assert_eq!(v.get("event").and_then(Value::as_str), Some("error"));
    assert_eq!(v.get("kind").and_then(Value::as_str), Some("bad_request"));
    assert_healthy(&handle);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn garbage_payload_is_a_bad_request() {
    let _guard = SERIAL.lock().unwrap();
    let (handle, dir) = spawn("garbage");
    for payload in [
        &b"\xff\xfe\x00\x01 not utf-8"[..],
        b"[[[[[[[[[[[[[[[[[[[[",
        b"{\"query\":42}",
    ] {
        let mut stream = UnixStream::connect(handle.socket()).unwrap();
        write_frame(&mut stream, payload).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        let response = read_all(&mut stream);
        assert!(!response.is_empty(), "garbage gets a response");
        let v = parse(&response[4..]).unwrap();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("bad_request"));
    }
    assert_healthy(&handle);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn deeply_nested_request_is_rejected_not_overflowed() {
    let _guard = SERIAL.lock().unwrap();
    let (handle, dir) = spawn("deep-nest");
    let deep = vec![b'['; 100_000];
    let frames = client::request(handle.socket(), &deep).unwrap();
    let v = parse(frames.last().unwrap()).unwrap();
    assert_eq!(v.get("kind").and_then(Value::as_str), Some("bad_request"));
    assert_healthy(&handle);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn half_closed_silent_connection_is_dropped_cleanly() {
    let _guard = SERIAL.lock().unwrap();
    let (handle, dir) = spawn("half-closed");
    // Connect, send nothing, half-close the write side: the server
    // sees a clean EOF at a frame boundary and just drops the
    // connection — no response, no error, no stuck thread.
    let mut stream = UnixStream::connect(handle.socket()).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let response = read_all(&mut stream);
    assert!(response.is_empty(), "silent close draws no response");
    // Abrupt full drop mid-handshake is equally harmless.
    drop(UnixStream::connect(handle.socket()).unwrap());
    assert_healthy(&handle);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}
