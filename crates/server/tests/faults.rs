//! Deterministic fault-injection suite (`cargo test -p ksa-server
//! --features faults`): each test arms a seeded schedule, drives the
//! in-process server into the fault, and asserts it degrades exactly as
//! documented — then serves the next request as if nothing happened.
//!
//! The fault schedule and the obs counters are process-global, so every
//! test serializes on one mutex and disarms on the way out.

#![cfg(feature = "faults")]

use std::path::PathBuf;
use std::sync::Mutex;

use ksa_server::client;
use ksa_server::json::{parse, Value};
use ksa_server::server::{start, Config, Handle};

static SERIAL: Mutex<()> = Mutex::new(());

struct Rig {
    handle: Option<Handle>,
    dir: PathBuf,
}

impl Rig {
    fn new(name: &str) -> Rig {
        let dir = std::env::temp_dir().join(format!("ksa-faults-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let handle = start(Config {
            socket: dir.join("sock"),
            cache_dir: dir.join("cache"),
            queue_cap: 8,
            workers: 1,
        })
        .unwrap();
        Rig {
            handle: Some(handle),
            dir,
        }
    }

    fn request(&self, payload: &[u8]) -> Vec<Vec<u8>> {
        client::request(self.handle.as_ref().unwrap().socket(), payload).unwrap()
    }

    fn terminal_event_kind(&self, payload: &[u8]) -> (String, Option<String>) {
        let frames = self.request(payload);
        let v = parse(frames.last().expect("terminal frame")).unwrap();
        (
            v.get("event").and_then(Value::as_str).unwrap().to_string(),
            v.get("kind").and_then(Value::as_str).map(str::to_string),
        )
    }
}

impl Drop for Rig {
    fn drop(&mut self) {
        ksa_faults::disarm();
        if let Some(handle) = self.handle.take() {
            handle.shutdown();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

const SOLV: &[u8] = br#"{"query":"solv","model":"ring{n=3}","k_max":2}"#;

fn perf_value(name: &str) -> u64 {
    let snapshot = ksa_obs::snapshot();
    snapshot
        .perf
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(0, |(_, v)| *v)
}

#[test]
fn worker_panic_is_absorbed_and_server_keeps_serving() {
    let _guard = SERIAL.lock().unwrap();
    let rig = Rig::new("panic");
    let panicked_before = perf_value("requests_panicked");
    ksa_faults::arm("worker_panic@1").unwrap();

    let (event, kind) = rig.terminal_event_kind(SOLV);
    assert_eq!(event, "error");
    assert_eq!(kind.as_deref(), Some("panic"));
    assert_eq!(perf_value("requests_panicked"), panicked_before + 1);

    // The worker survived; the very next request computes normally.
    let (event, _) = rig.terminal_event_kind(SOLV);
    assert_eq!(event, "result");
}

#[test]
fn cache_write_failure_degrades_to_uncached_but_identical() {
    let _guard = SERIAL.lock().unwrap();
    let rig = Rig::new("write-io");
    ksa_faults::arm("cache_write_io@1").unwrap();

    let first = rig.request(SOLV);
    let second = rig.request(SOLV);
    // The first write failed, so the second request is also a cold
    // compute (it streams progress frames again) — but the result bytes
    // are identical, and the second run's write succeeds.
    assert!(second.len() > 1, "second run recomputed (write had failed)");
    assert_eq!(first.last().unwrap(), second.last().unwrap());
    let third = rig.request(SOLV);
    assert_eq!(third.len(), 1, "third run is a genuine cache hit");
    assert_eq!(first.last().unwrap(), &third[0]);
}

#[test]
fn cache_read_failure_degrades_to_recompute_with_identical_bytes() {
    let _guard = SERIAL.lock().unwrap();
    let rig = Rig::new("read-io");
    let cold = rig.request(SOLV);

    ksa_faults::arm("cache_read_io@1").unwrap();
    let recomputed = rig.request(SOLV);
    assert!(
        recomputed.len() > 1,
        "injected read error forces a recompute"
    );
    assert_eq!(cold.last().unwrap(), recomputed.last().unwrap());

    ksa_faults::disarm();
    let cached = rig.request(SOLV);
    assert_eq!(cached.len(), 1, "cache serves hits again once disarmed");
    assert_eq!(cold.last().unwrap(), &cached[0]);
}

#[test]
fn compute_stall_trips_a_deadline() {
    let _guard = SERIAL.lock().unwrap();
    let rig = Rig::new("stall");
    // The stall (400 ms) dwarfs the deadline (50 ms); the deadline
    // clock starts before the stall, so the first checkpoint after it
    // must trip.
    ksa_faults::arm("compute_stall@1:400").unwrap();
    let deadlines_before = perf_value("deadlines_tripped");
    let (event, kind) = rig
        .terminal_event_kind(br#"{"query":"solv","model":"ring{n=3}","k_max":2,"deadline_ms":50}"#);
    assert_eq!(event, "error");
    assert_eq!(kind.as_deref(), Some("deadline"));
    assert_eq!(perf_value("deadlines_tripped"), deadlines_before + 1);

    // Disarmed, the same request (no deadline) completes and caches.
    ksa_faults::disarm();
    let (event, _) = rig.terminal_event_kind(SOLV);
    assert_eq!(event, "result");
}

#[test]
fn faults_disarmed_cold_and_cached_are_byte_identical() {
    let _guard = SERIAL.lock().unwrap();
    let rig = Rig::new("disarmed");
    assert!(!ksa_faults::armed());
    for req in [
        SOLV,
        br#"{"query":"rounds","model":"ring{n=3}","value_max":1,"rounds":2}"#.as_slice(),
    ] {
        let cold = rig.request(req);
        let cached = rig.request(req);
        assert_eq!(cached.len(), 1);
        assert_eq!(cold.last().unwrap(), &cached[0]);
    }
}
