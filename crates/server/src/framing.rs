//! Length-prefixed framing over a byte stream (DESIGN.md §12.3).
//!
//! Every message on the wire is `u32` big-endian payload length followed
//! by that many payload bytes (UTF-8 JSON at the layer above, but this
//! module is content-agnostic). The length is validated against
//! [`MAX_FRAME`] **before any allocation**, so a hostile peer declaring
//! a 4 GiB frame costs the server one 4-byte read, not an OOM.
//!
//! A clean EOF at a frame boundary reads as `Ok(None)` — the peer hung
//! up between messages, which is normal. An EOF anywhere inside a frame
//! (mid-prefix or mid-payload) is `ErrorKind::UnexpectedEof`: the peer
//! died mid-message and the frame must not be trusted.

use std::io::{self, Read, Write};

/// Hard ceiling on a single frame's payload, checked before allocating.
/// Generous for this protocol — the largest legitimate response (a full
/// round-sweep report) is a few kilobytes.
pub const MAX_FRAME: u32 = 8 * 1024 * 1024;

/// Write one frame: length prefix, payload, flush.
///
/// # Errors
///
/// `ErrorKind::InvalidInput` if the payload exceeds [`MAX_FRAME`]; any
/// underlying I/O error otherwise.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame payload of {} bytes exceeds MAX_FRAME", payload.len()),
            )
        })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
///
/// `ErrorKind::UnexpectedEof` for an EOF inside a frame;
/// `ErrorKind::InvalidData` for a declared length beyond [`MAX_FRAME`]
/// (rejected before any buffer is allocated); any underlying I/O error
/// otherwise.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        let n = r.read(&mut prefix[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside a frame length prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared frame length {len} exceeds MAX_FRAME ({MAX_FRAME})"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside a frame payload",
            )
        } else {
            e
        }
    })?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_including_empty() {
        for payload in [&b""[..], b"x", b"{\"query\":\"ping\"}"] {
            let mut buf = Vec::new();
            write_frame(&mut buf, payload).unwrap();
            let mut cursor = Cursor::new(buf);
            assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), payload);
            assert!(read_frame(&mut cursor).unwrap().is_none());
        }
    }

    #[test]
    fn several_frames_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"two").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"one");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"two");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn clean_eof_is_none_torn_prefix_is_error() {
        let mut empty = Cursor::new(Vec::new());
        assert!(read_frame(&mut empty).unwrap().is_none());
        // Two of the four prefix bytes, then EOF.
        let mut torn = Cursor::new(vec![0u8, 0]);
        let err = read_frame(&mut torn).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn torn_payload_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(4 + 2); // prefix + 2 of 5 payload bytes
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn absurd_declared_length_rejected_before_allocation() {
        let mut buf = u32::MAX.to_be_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Just over the limit is rejected too; just under is a normal
        // (if short) read that fails only on the missing payload.
        let over = (MAX_FRAME + 1).to_be_bytes().to_vec();
        let err = read_frame(&mut Cursor::new(over)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversize_writes_are_refused() {
        let big = vec![0u8; MAX_FRAME as usize + 1];
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &big).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(sink.is_empty(), "nothing written for a refused frame");
    }
}
