//! `ksa-server`: a fault-tolerant analysis service over a unix socket
//! (DESIGN.md §12).
//!
//! The service exposes the repo's long-running analyses — one-round
//! solvability k-sweeps and multi-round lower-bound cross-checks — over
//! a tiny length-prefixed JSON protocol, with:
//!
//! - **deadlines and cooperative cancellation** threaded through the
//!   whole compute pipeline as [`ksa_core::budget::CancelToken`]s,
//! - a **crash-safe content-addressed response cache** (temp-write,
//!   atomic rename, checksum + quarantine on read),
//! - **panic isolation** per request, **overload shedding** on a
//!   bounded queue, and streamed progress events,
//! - optional **deterministic fault injection** (`--features faults`,
//!   driven by the `KSA_FAULTS` env var) for the robustness suite.
//!
//! Everything is hand-rolled on `std` — no new dependencies.

pub mod cache;
pub mod client;
pub mod framing;
pub mod json;
pub mod protocol;
pub mod server;
