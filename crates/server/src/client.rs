//! Client-side plumbing shared by the `ksa` CLI and the test suites:
//! connect with bounded retry, send one request, collect response
//! frames.

use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use crate::framing::{read_frame, write_frame};

/// Connect to the server socket, retrying with linear backoff while the
/// server is still coming up. Bounded: fails after `attempts` tries.
///
/// # Errors
///
/// The last connection error once the attempts are exhausted.
pub fn connect_with_retry(socket: &Path, attempts: u32, backoff_ms: u64) -> io::Result<UnixStream> {
    let mut last = None;
    for attempt in 0..attempts.max(1) {
        match UnixStream::connect(socket) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(backoff_ms * u64::from(attempt + 1)));
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("no connection attempts made")))
}

/// Send one request payload and collect every response frame until the
/// server closes the connection. Frames are returned raw so callers can
/// compare responses byte-for-byte.
///
/// # Errors
///
/// Any I/O or framing error on the stream.
pub fn roundtrip(mut stream: UnixStream, request: &[u8]) -> io::Result<Vec<Vec<u8>>> {
    write_frame(&mut stream, request)?;
    let mut frames = Vec::new();
    while let Some(frame) = read_frame(&mut stream)? {
        frames.push(frame);
    }
    Ok(frames)
}

/// [`connect_with_retry`] then [`roundtrip`] in one call.
///
/// # Errors
///
/// As the two steps.
pub fn request(socket: &Path, payload: &[u8]) -> io::Result<Vec<Vec<u8>>> {
    let stream = connect_with_retry(socket, 10, 20)?;
    roundtrip(stream, payload)
}
