//! A small, dependency-free JSON value with a depth-limited parser and a
//! byte-stable serializer.
//!
//! The server's crash-safe cache stores *serialized response strings*
//! and promises cold-vs-cached responses are byte-identical (DESIGN.md
//! §12.4), so serialization must be a pure function of the value:
//! objects keep insertion order (no hash-map iteration order leaking
//! into the wire format), integers print as integers, and floats use
//! Rust's shortest round-trip formatting.
//!
//! The parser is the hostile-input face of the server — it runs on
//! whatever bytes a client framed — so recursion is capped at
//! [`MAX_DEPTH`] and every malformed input is an `Err`, never a panic.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. Legitimate protocol
/// messages nest 3–4 levels; 64 leaves headroom while keeping a hostile
/// `[[[[…` well clear of the stack guard.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Object members keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Numbers without a fraction or exponent, within `i64` range.
    Int(i64),
    /// All other numbers.
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match); `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize to the canonical byte-stable string.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` is Rust's shortest round-trip form and
                    // always includes a `.` or exponent.
                    let _ = write!(out, "{f:?}");
                } else {
                    // JSON has no NaN/Infinity.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Exactly one value, with only whitespace
/// around it.
///
/// # Errors
///
/// A human-readable description of the first problem: bad UTF-8, bad
/// syntax, nesting beyond [`MAX_DEPTH`], numbers that don't fit, or
/// trailing garbage.
pub fn parse(bytes: &[u8]) -> Result<Value, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("invalid UTF-8: {e}"))?;
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(members));
                        }
                        _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte 0x{other:02x} at offset {}",
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        if fractional {
            let f: f64 = text
                .parse()
                .map_err(|_| format!("bad number `{text}` at offset {start}"))?;
            if !f.is_finite() {
                return Err(format!("non-finite number `{text}` at offset {start}"));
            }
            Ok(Value::Float(f))
        } else {
            let i: i64 = text
                .parse()
                .map_err(|_| format!("bad integer `{text}` at offset {start}"))?;
            Ok(Value::Int(i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the paired
                                // low surrogate escape.
                                if !(self.eat_literal("\\u")) {
                                    return Err("unpaired surrogate".to_string());
                                }
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err("unpaired surrogate".to_string());
                                }
                                let scalar = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(scalar)
                            } else {
                                char::from_u32(first)
                            };
                            out.push(c.ok_or("invalid \\u escape")?);
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", other as char));
                        }
                    }
                }
                b if b < 0x20 => return Err("raw control byte in string".to_string()),
                _ => {
                    // Copy the full UTF-8 sequence (input was validated
                    // as UTF-8 up front).
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[self.pos - 1..end])
                            .expect("validated UTF-8"),
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }
}

/// Shorthand for building an object in insertion order.
#[must_use]
pub fn obj(members: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(text: &str) {
        let value = parse(text.as_bytes()).unwrap();
        assert_eq!(value.to_json(), text);
        assert_eq!(parse(value.to_json().as_bytes()).unwrap(), value);
    }

    #[test]
    fn round_trips_canonical_forms() {
        round_trip("null");
        round_trip("true");
        round_trip("-42");
        round_trip("3.25");
        round_trip("\"hi \\\"there\\\" \\n\"");
        round_trip("[1,[2,null],{\"a\":false}]");
        round_trip("{\"query\":\"solv\",\"model\":\"ring{n=3}\",\"k_max\":3}");
        // Insertion order is preserved, not sorted.
        round_trip("{\"z\":1,\"a\":2}");
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(br#""a\u00e9\u20ac\ud83d\ude00b""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\u{e9}\u{20ac}\u{1f600}b");
        let back = parse(v.to_json().as_bytes()).unwrap();
        assert_eq!(back, v);
        assert!(parse(br#""\ud83d""#).is_err(), "unpaired surrogate");
        assert!(parse(br#""\uZZZZ""#).is_err());
        assert!(parse(b"\"raw\x01control\"").is_err());
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            &b""[..],
            b"{",
            b"}",
            b"[1,",
            b"{\"a\"}",
            b"{\"a\":}",
            b"nul",
            b"truee",
            b"1 2",
            b"--3",
            b"1e",
            b"\"unterminated",
            b"\xff\xfe",
            b"{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn nesting_is_depth_limited() {
        let mut deep = String::new();
        for _ in 0..(MAX_DEPTH + 10) {
            deep.push('[');
        }
        let err = parse(deep.as_bytes()).unwrap_err();
        assert!(err.contains("nesting"), "got: {err}");
        // Right at the limit parses fine.
        let mut ok = String::new();
        for _ in 0..MAX_DEPTH {
            ok.push('[');
        }
        ok.push('1');
        for _ in 0..MAX_DEPTH {
            ok.push(']');
        }
        assert!(parse(ok.as_bytes()).is_ok());
    }

    #[test]
    fn integers_and_floats_split_correctly() {
        assert_eq!(parse(b"7").unwrap(), Value::Int(7));
        assert_eq!(parse(b"-7").unwrap(), Value::Int(-7));
        assert_eq!(parse(b"7.5").unwrap(), Value::Float(7.5));
        assert_eq!(parse(b"1e3").unwrap(), Value::Float(1000.0));
        assert!(parse(b"99999999999999999999").is_err(), "i64 overflow");
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
    }

    #[test]
    fn get_and_accessors() {
        let v = parse(br#"{"a":1,"b":"x","c":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
        assert!(Value::Null.get("a").is_none());
    }
}
