//! The analysis server daemon.
//!
//! ```text
//! ksa-server --socket /tmp/ksa.sock --cache-dir /tmp/ksa-cache \
//!            [--queue 64] [--workers 4]
//! ```
//!
//! Prints `listening on <socket>` once the socket is bound (scripts and
//! the CI job wait for that line), then serves until a `shutdown`
//! request arrives. With `--features faults`, a `KSA_FAULTS` schedule
//! is armed at startup; without the feature, setting `KSA_FAULTS` is a
//! startup error rather than a silently inert suite.

use std::path::PathBuf;
use std::process::exit;

struct Args {
    socket: PathBuf,
    cache_dir: PathBuf,
    queue: usize,
    workers: usize,
}

fn usage() -> ! {
    eprintln!("usage: ksa-server --socket PATH --cache-dir PATH [--queue N] [--workers N]");
    exit(2);
}

fn parse_args() -> Args {
    let mut socket = None;
    let mut cache_dir = None;
    let mut queue = 64usize;
    let mut workers = std::thread::available_parallelism().map_or(2, |n| n.get().min(4));
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket"))),
            "--cache-dir" => cache_dir = Some(PathBuf::from(value("--cache-dir"))),
            "--queue" => {
                queue = value("--queue").parse().unwrap_or_else(|_| usage());
            }
            "--workers" => {
                workers = value("--workers").parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    let Some(socket) = socket else { usage() };
    let Some(cache_dir) = cache_dir else { usage() };
    Args {
        socket,
        cache_dir,
        queue,
        workers,
    }
}

fn main() {
    let args = parse_args();
    match ksa_faults::arm_from_env() {
        Ok(false) => {}
        Ok(true) => eprintln!("fault schedule armed from KSA_FAULTS"),
        Err(e) => {
            eprintln!("KSA_FAULTS: {e}");
            exit(2);
        }
    }
    let handle = match ksa_server::server::start(ksa_server::server::Config {
        socket: args.socket.clone(),
        cache_dir: args.cache_dir,
        queue_cap: args.queue,
        workers: args.workers,
    }) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("failed to start: {e}");
            exit(1);
        }
    };
    println!("listening on {}", args.socket.display());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.wait();
}
