//! `ksa` — the CLI client for the analysis server.
//!
//! ```text
//! ksa --socket /tmp/ksa.sock ping
//! ksa --socket /tmp/ksa.sock solv 'ring{n=3}' --k-max 3 [--deadline-ms N] [--no-cache]
//! ksa --socket /tmp/ksa.sock rounds 'ring{n=3}' --value-max 1 --rounds 2
//! ksa --socket /tmp/ksa.sock shutdown
//! ```
//!
//! Progress frames go to stderr; the terminal frame's JSON goes to
//! stdout verbatim, so piping two invocations into files and `diff`ing
//! them checks the cold-vs-cached byte-identity the cache promises.
//! An `overloaded` response is retried after the server's
//! `retry_after_ms` hint, a bounded number of times.
//!
//! Exit codes: 0 result, 1 error frame or exhausted retries,
//! 2 usage / connection failure.

use std::path::PathBuf;
use std::process::exit;

use ksa_server::client;
use ksa_server::json::{obj, parse, Value};

fn usage() -> ! {
    eprintln!(
        "usage: ksa --socket PATH <ping|shutdown|solv MODEL --k-max N|rounds MODEL --value-max N --rounds N>\n\
         options: --deadline-ms N   fail the query after N ms\n\
         \x20        --no-cache        bypass the server's response cache\n\
         \x20        --retries N       attempts for connect and overload retry (default 10)"
    );
    exit(2);
}

struct Cli {
    socket: PathBuf,
    request: Value,
    retries: u32,
}

fn parse_cli() -> Cli {
    let mut socket = None;
    let mut retries = 10u32;
    let mut deadline_ms: Option<i64> = None;
    let mut no_cache = false;
    let mut k_max: Option<i64> = None;
    let mut value_max: Option<i64> = None;
    let mut rounds: Option<i64> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        let int_value = |name: &str, raw: String| {
            raw.parse::<i64>().unwrap_or_else(|_| {
                eprintln!("bad integer for {name}: `{raw}`");
                usage()
            })
        };
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket"))),
            "--retries" => {
                let raw = value("--retries");
                retries = raw.parse().unwrap_or_else(|_| usage());
            }
            "--deadline-ms" => {
                let raw = value("--deadline-ms");
                deadline_ms = Some(int_value("--deadline-ms", raw));
            }
            "--no-cache" => no_cache = true,
            "--k-max" => {
                let raw = value("--k-max");
                k_max = Some(int_value("--k-max", raw));
            }
            "--value-max" => {
                let raw = value("--value-max");
                value_max = Some(int_value("--value-max", raw));
            }
            "--rounds" => {
                let raw = value("--rounds");
                rounds = Some(int_value("--rounds", raw));
            }
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("unknown option `{other}`");
                usage();
            }
            other => positional.push(other.to_string()),
        }
    }
    let Some(socket) = socket else { usage() };
    let query = positional.first().map(String::as_str);
    let mut members: Vec<(&str, Value)> = Vec::new();
    match query {
        Some("ping") => members.push(("query", Value::Str("ping".to_string()))),
        Some("shutdown") => members.push(("query", Value::Str("shutdown".to_string()))),
        Some("solv") => {
            let (Some(model), Some(k)) = (positional.get(1), k_max) else {
                usage()
            };
            members.push(("query", Value::Str("solv".to_string())));
            members.push(("model", Value::Str(model.clone())));
            members.push(("k_max", Value::Int(k)));
        }
        Some("rounds") => {
            let (Some(model), Some(v), Some(r)) = (positional.get(1), value_max, rounds) else {
                usage()
            };
            members.push(("query", Value::Str("rounds".to_string())));
            members.push(("model", Value::Str(model.clone())));
            members.push(("value_max", Value::Int(v)));
            members.push(("rounds", Value::Int(r)));
        }
        _ => usage(),
    }
    if let Some(ms) = deadline_ms {
        members.push(("deadline_ms", Value::Int(ms)));
    }
    if no_cache {
        members.push(("no_cache", Value::Bool(true)));
    }
    Cli {
        socket,
        request: obj(members),
        retries,
    }
}

fn main() {
    let cli = parse_cli();
    let payload = cli.request.to_json();
    for _attempt in 0..cli.retries.max(1) {
        let stream = match client::connect_with_retry(&cli.socket, cli.retries, 20) {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("connect {}: {e}", cli.socket.display());
                exit(2);
            }
        };
        let frames = match client::roundtrip(stream, payload.as_bytes()) {
            Ok(frames) => frames,
            Err(e) => {
                eprintln!("request failed: {e}");
                exit(2);
            }
        };
        let mut retry_after = None;
        for frame in &frames {
            let text = String::from_utf8_lossy(frame);
            let Ok(decoded) = parse(frame) else {
                eprintln!("unparseable frame from server: {text}");
                exit(1);
            };
            match decoded.get("event").and_then(Value::as_str) {
                Some("progress") => eprintln!("{text}"),
                Some("result") => {
                    println!("{text}");
                    exit(0);
                }
                Some("error") => {
                    eprintln!("{text}");
                    exit(1);
                }
                Some("overloaded") => {
                    let ms = decoded
                        .get("retry_after_ms")
                        .and_then(Value::as_i64)
                        .and_then(|v| u64::try_from(v).ok())
                        .unwrap_or(50);
                    retry_after = Some(ms);
                }
                _ => {
                    eprintln!("unexpected frame from server: {text}");
                    exit(1);
                }
            }
        }
        match retry_after {
            Some(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            None => {
                eprintln!("server closed the connection without a terminal frame");
                exit(1);
            }
        }
    }
    eprintln!("server overloaded; retries exhausted");
    exit(1);
}
