//! The analysis server: accept loop, bounded queue, worker pool
//! (DESIGN.md §12.1).
//!
//! Life of a request: a connection handler thread reads the single
//! request frame, parses it, and tries to enqueue it on the bounded job
//! queue. A full queue sheds the request immediately with an
//! `overloaded` frame (`requests_shed` perf counter) — the server
//! prefers fast refusal over unbounded memory. Worker threads pop jobs
//! and run them under `catch_unwind`: a panicking request produces a
//! structured `error` frame (`kind: "panic"`, `requests_panicked` perf
//! counter) and the worker keeps serving.
//!
//! Deadlines become [`CancelToken`]s threaded through the whole compute
//! pipeline; a failed progress write (the client hung up mid-stream)
//! cancels the token so the computation stops instead of finishing for
//! nobody.

use std::collections::VecDeque;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ksa_core::budget::{CancelToken, Deadline};
use ksa_core::error::CoreError;
use ksa_obs as obs;

use crate::cache::Cache;
use crate::framing::{read_frame, write_frame};
use crate::json::{obj, parse, Value};
use crate::protocol::{error_frame, overloaded_frame, progress_frame, ErrorKind, Request};

/// The execution budget every query runs under. Fixed server-side so
/// cache keys are canonical: the same request always means the same
/// computation.
pub const EXEC_LIMIT: usize = 2_000_000;
/// CSP node budget, fixed like [`EXEC_LIMIT`].
pub const NODE_BUDGET: usize = 50_000_000;
/// `retry_after_ms` hint carried by `overloaded` frames.
pub const RETRY_AFTER_MS: u64 = 50;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Unix socket path to listen on.
    pub socket: PathBuf,
    /// Response cache directory.
    pub cache_dir: PathBuf,
    /// Bounded job-queue capacity; a full queue sheds requests.
    pub queue_cap: usize,
    /// Worker threads. `0` is allowed (useful in tests: nothing drains
    /// the queue, so shedding is deterministic).
    pub workers: usize,
}

struct Job {
    request: Request,
    stream: UnixStream,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    stop: AtomicBool,
    queue_cap: usize,
    cache: Cache,
    socket: PathBuf,
}

/// A running server. Dropping the handle does not stop the server; call
/// [`Handle::shutdown`] (or send a `shutdown` request).
pub struct Handle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Handle {
    /// The socket path the server is listening on.
    #[must_use]
    pub fn socket(&self) -> &PathBuf {
        &self.shared.socket
    }

    /// Current job-queue depth. A test helper: with `workers: 0`
    /// nothing drains the queue, so tests can fill it to capacity and
    /// observe deterministic shedding.
    #[doc(hidden)]
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// Stop the server and join all its threads. Idempotent.
    pub fn shutdown(mut self) {
        request_stop(&self.shared);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let _ = std::fs::remove_file(&self.shared.socket);
    }

    /// Block until the server stops (via a `shutdown` request), then
    /// join all threads.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let _ = std::fs::remove_file(&self.shared.socket);
    }
}

fn request_stop(shared: &Shared) {
    shared.stop.store(true, Ordering::SeqCst);
    shared.available.notify_all();
    // The accept loop is blocked in `accept`; poke it with a throwaway
    // connection so it observes the stop flag.
    let _ = UnixStream::connect(&shared.socket);
}

/// Bind the socket and start the accept loop and worker pool.
///
/// # Errors
///
/// Any I/O error binding the socket or opening the cache directory.
pub fn start(config: Config) -> std::io::Result<Handle> {
    let _ = std::fs::remove_file(&config.socket);
    let listener = UnixListener::bind(&config.socket)?;
    let cache = Cache::open(&config.cache_dir)?;
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        stop: AtomicBool::new(false),
        queue_cap: config.queue_cap.max(1),
        cache,
        socket: config.socket.clone(),
    });

    let workers = (0..config.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("ksa-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("ksa-accept".to_string())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn accept loop")
    };

    Ok(Handle {
        shared,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(listener: &UnixListener, shared: &Arc<Shared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let shared = Arc::clone(shared);
        // One short-lived thread per connection: it only reads and
        // routes the single request frame; the heavy work happens on
        // the bounded worker pool.
        let _ = std::thread::Builder::new()
            .name("ksa-conn".to_string())
            .spawn(move || handle_connection(stream, &shared));
    }
}

/// Read the one request frame, parse it, and route it. Every failure
/// mode answers on this thread; only well-formed work reaches the
/// queue.
fn handle_connection(mut stream: UnixStream, shared: &Arc<Shared>) {
    let frame = match read_frame(&mut stream) {
        Ok(Some(frame)) => frame,
        Ok(None) => return, // connected and hung up; nothing to answer
        Err(e) => {
            let _ = send(
                &mut stream,
                &error_frame(ErrorKind::BadRequest, &e.to_string()),
            );
            return;
        }
    };
    let request = match parse(&frame).and_then(|v| Request::from_json(&v)) {
        Ok(request) => request,
        Err(message) => {
            let _ = send(&mut stream, &error_frame(ErrorKind::BadRequest, &message));
            return;
        }
    };
    match request {
        Request::Shutdown => {
            let _ = send(
                &mut stream,
                &obj(vec![
                    ("event", Value::Str("result".to_string())),
                    ("query", Value::Str("shutdown".to_string())),
                ]),
            );
            request_stop(shared);
        }
        request => {
            let mut queue = shared.queue.lock().unwrap();
            if queue.len() >= shared.queue_cap {
                drop(queue);
                obs::perf_count(obs::PerfCounter::RequestsShed, 1);
                let _ = send(&mut stream, &overloaded_frame(RETRY_AFTER_MS));
                return;
            }
            queue.push_back(Job { request, stream });
            drop(queue);
            shared.available.notify_one();
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        run_job(job, shared);
        if shared.stop.load(Ordering::SeqCst) {
            // Drain nothing further; shutdown wins over queued work.
            return;
        }
    }
}

/// Run one job under panic isolation. The worker thread itself never
/// dies: a panic inside the request becomes an `error` frame.
fn run_job(job: Job, shared: &Shared) {
    let Job { request, stream } = job;
    let mut stream_for_panic = stream.try_clone().ok();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut stream = stream;
        ksa_faults::maybe_panic(ksa_faults::Site::WorkerPanic);
        serve_request(&request, &mut stream, shared);
    }));
    if let Err(payload) = outcome {
        obs::perf_count(obs::PerfCounter::RequestsPanicked, 1);
        let message = panic_message(payload.as_ref());
        if let Some(stream) = stream_for_panic.as_mut() {
            let _ = send(stream, &error_frame(ErrorKind::Panic, &message));
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "request panicked".to_string()
    }
}

fn send(stream: &mut UnixStream, value: &Value) -> std::io::Result<()> {
    write_frame(stream, value.to_json().as_bytes())
}

fn cancel_token_for(deadline_ms: Option<u64>) -> CancelToken {
    match deadline_ms {
        Some(ms) => CancelToken::with_deadline(Deadline::in_millis(ms)),
        None => CancelToken::new(),
    }
}

/// The canonical form of a model reference: its parsed spec's canonical
/// name when it parses, the raw string otherwise (registered aliases).
fn canonical_model(model: &str) -> String {
    model
        .parse::<ksa_models::ModelSpec>()
        .map_or_else(|_| model.to_string(), |spec| spec.name())
}

fn serve_request(request: &Request, stream: &mut UnixStream, shared: &Shared) {
    match request {
        Request::Ping => {
            let _ = send(
                stream,
                &obj(vec![
                    ("event", Value::Str("result".to_string())),
                    ("query", Value::Str("ping".to_string())),
                ]),
            );
        }
        Request::Shutdown => unreachable!("shutdown handled on the connection thread"),
        Request::Solv {
            model,
            k_max,
            deadline_ms,
            no_cache,
        } => {
            let key = format!(
                "solv|{}|k_max={k_max}|exec={EXEC_LIMIT}|node={NODE_BUDGET}",
                canonical_model(model)
            );
            let progress_stream = stream.try_clone().ok();
            serve_cached(stream, shared, &key, *no_cache, move || {
                compute_solv(model, *k_max, *deadline_ms, progress_stream)
            });
        }
        Request::Rounds {
            model,
            value_max,
            rounds,
            deadline_ms,
            no_cache,
        } => {
            let key = format!(
                "rounds|{}|value_max={value_max}|rounds={rounds}|exec={EXEC_LIMIT}",
                canonical_model(model)
            );
            serve_cached(stream, shared, &key, *no_cache, || {
                compute_rounds(model, *value_max, *rounds, *deadline_ms)
            });
        }
    }
}

/// Cache-through wrapper: replay a verified entry byte-for-byte, or
/// compute, publish (only successful results), and send. Error frames
/// are never cached — a deadline trip must not poison the key.
fn serve_cached(
    stream: &mut UnixStream,
    shared: &Shared,
    key: &str,
    no_cache: bool,
    compute: impl FnOnce() -> Result<Value, Value>,
) {
    if !no_cache {
        if let Some(payload) = shared.cache.get(key) {
            let _ = write_frame(stream, payload.as_bytes());
            return;
        }
    }
    match compute() {
        Ok(result) => {
            let payload = result.to_json();
            if !no_cache {
                // A failed write degrades to "computed but not cached";
                // the response is unaffected.
                let _ = shared.cache.put(key, &payload);
            }
            let _ = write_frame(stream, payload.as_bytes());
        }
        Err(error) => {
            let _ = send(stream, &error);
        }
    }
}

fn error_for(e: &CoreError) -> Value {
    let kind = match e {
        CoreError::Cancelled => ErrorKind::Cancelled,
        CoreError::DeadlineExceeded => ErrorKind::Deadline,
        CoreError::Model(_) | CoreError::BadParameter { .. } => ErrorKind::BadRequest,
        _ => ErrorKind::Internal,
    };
    error_frame(kind, &e.to_string())
}

fn compute_solv(
    model_name: &str,
    k_max: usize,
    deadline_ms: Option<u64>,
    mut progress_stream: Option<UnixStream>,
) -> Result<Value, Value> {
    // The deadline clock starts before the injected stall, so a
    // `compute_stall` fault longer than the deadline reliably trips it.
    let cancel = cancel_token_for(deadline_ms);
    ksa_faults::maybe_stall(ksa_faults::Site::ComputeStall);
    let model = ksa_models::registry::builtin()
        .resolve_closed_above(model_name, EXEC_LIMIT as u128)
        .map_err(|e| error_for(&e.into()))?;
    let cancel_for_progress = cancel.clone();
    let mut progress = |p: ksa_core::solvability::SweepProgress| {
        if let Some(s) = progress_stream.as_mut() {
            if send(s, &progress_frame(p.k, p.decided, p.total)).is_err() {
                // The client hung up mid-stream: stop computing for
                // nobody. The token is shared, so the sweep sees it.
                cancel_for_progress.cancel();
                progress_stream = None;
            }
        }
    };
    let sweep = ksa_core::solvability::decide_one_round_sweep_cancellable(
        &model,
        k_max,
        EXEC_LIMIT,
        NODE_BUDGET,
        &cancel,
        &mut progress,
    )
    .map_err(|e| error_for(&e))?;
    let verdicts = sweep
        .verdicts
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let (name, witness_views) = match v {
                ksa_core::solvability::Solvability::Solvable(map) => ("solvable", map.len() as i64),
                ksa_core::solvability::Solvability::Unsolvable => ("unsolvable", 0),
                ksa_core::solvability::Solvability::Unknown => ("unknown", 0),
            };
            obj(vec![
                ("k", Value::Int((i + 1) as i64)),
                ("verdict", Value::Str(name.to_string())),
                ("witness_views", Value::Int(witness_views)),
            ])
        })
        .collect();
    Ok(obj(vec![
        ("event", Value::Str("result".to_string())),
        ("query", Value::Str("solv".to_string())),
        ("model", Value::Str(canonical_model(model_name))),
        ("k_max", Value::Int(k_max as i64)),
        ("verdicts", Value::Arr(verdicts)),
        ("searched", Value::Int(sweep.searched as i64)),
        ("seeded", Value::Int(sweep.seeded as i64)),
        ("pruned", Value::Int(sweep.pruned as i64)),
    ]))
}

fn compute_rounds(
    model_name: &str,
    value_max: usize,
    rounds: usize,
    deadline_ms: Option<u64>,
) -> Result<Value, Value> {
    let cancel = cancel_token_for(deadline_ms);
    ksa_faults::maybe_stall(ksa_faults::Site::ComputeStall);
    let report = ksa_core::bounds::cross_check::cross_check_round_sweep_by_name_cancellable(
        model_name,
        value_max,
        rounds,
        EXEC_LIMIT as u128,
        &cancel,
    )
    .map_err(|e| error_for(&e))?;
    let per_round = report
        .per_round
        .iter()
        .map(|row| {
            let lower = match &row.lower {
                Some(lb) => obj(vec![
                    ("impossible_k", Value::Int(lb.impossible_k as i64)),
                    ("theorem", Value::Str(lb.theorem.to_string())),
                    ("rounds", Value::Int(lb.rounds as i64)),
                ]),
                None => Value::Null,
            };
            obj(vec![
                ("round", Value::Int(row.round as i64)),
                ("predicted_l", Value::Int(row.predicted_l as i64)),
                (
                    "measured_connectivity",
                    Value::Int(row.measured_connectivity as i64),
                ),
                (
                    "betti",
                    Value::Arr(row.betti.iter().map(|&b| Value::Int(b as i64)).collect()),
                ),
                ("facets", Value::Int(row.facets as i64)),
                ("interned_views", Value::Int(row.interned_views as i64)),
                ("consistent", Value::Bool(row.is_consistent())),
                ("lower", lower),
            ])
        })
        .collect();
    Ok(obj(vec![
        ("event", Value::Str("result".to_string())),
        ("query", Value::Str("rounds".to_string())),
        ("model", Value::Str(canonical_model(model_name))),
        ("n", Value::Int(report.n as i64)),
        ("value_max", Value::Int(report.value_max as i64)),
        ("rounds", Value::Int(rounds as i64)),
        ("consistent", Value::Bool(report.is_consistent())),
        ("per_round", Value::Arr(per_round)),
    ]))
}
