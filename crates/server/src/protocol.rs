//! Request/response vocabulary of the analysis service (DESIGN.md §12.3).
//!
//! Every connection carries exactly one request frame followed by the
//! server's response frames: zero or more `progress` events, then a
//! terminal `result`, `error`, or `overloaded` frame, after which the
//! server closes the connection.
//!
//! Result frames contain only deterministic fields (no timestamps,
//! request ids, or timing), so a cached replay of a response is
//! byte-identical to computing it fresh — the property the cache tests
//! and the CI integration job diff for.

use crate::json::{obj, Value};

/// Queries a client can send. One request per connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered from the worker pool, so it also probes
    /// queue capacity.
    Ping,
    /// Orderly shutdown of the server.
    Shutdown,
    /// One-round solvability k-sweep for a model (the `solv`
    /// experiment's convention: per-k inputs over `{0, …, k}`).
    Solv {
        /// Model name or canonical spec string.
        model: String,
        /// Sweep ceiling (`k ∈ {1, …, k_max}`).
        k_max: usize,
        /// Client deadline; `None` runs to completion.
        deadline_ms: Option<u64>,
        /// Bypass the response cache for this request.
        no_cache: bool,
    },
    /// Multi-round lower-bound/topology cross-check sweep.
    Rounds {
        /// Model name or canonical spec string.
        model: String,
        /// Inputs over `{0, …, value_max}`.
        value_max: usize,
        /// Rounds to sweep.
        rounds: usize,
        /// Client deadline; `None` runs to completion.
        deadline_ms: Option<u64>,
        /// Bypass the response cache for this request.
        no_cache: bool,
    },
}

fn usize_field(v: &Value, key: &str) -> Result<usize, String> {
    let raw = v
        .get(key)
        .ok_or_else(|| format!("missing field `{key}`"))?
        .as_i64()
        .ok_or_else(|| format!("field `{key}` must be an integer"))?;
    usize::try_from(raw).map_err(|_| format!("field `{key}` must be non-negative"))
}

fn optional_u64_field(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(raw) => {
            let i = raw
                .as_i64()
                .ok_or_else(|| format!("field `{key}` must be an integer"))?;
            u64::try_from(i)
                .map(Some)
                .map_err(|_| format!("field `{key}` must be non-negative"))
        }
    }
}

fn bool_field_or_false(v: &Value, key: &str) -> Result<bool, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(false),
        Some(raw) => raw
            .as_bool()
            .ok_or_else(|| format!("field `{key}` must be a boolean")),
    }
}

fn model_field(v: &Value) -> Result<String, String> {
    let model = v
        .get("model")
        .ok_or("missing field `model`")?
        .as_str()
        .ok_or("field `model` must be a string")?;
    if model.is_empty() || model.len() > 4096 {
        return Err("field `model` must be 1–4096 bytes".to_string());
    }
    Ok(model.to_string())
}

impl Request {
    /// Parse a request from its decoded JSON frame.
    ///
    /// # Errors
    ///
    /// A `bad_request` message describing the first problem.
    pub fn from_json(v: &Value) -> Result<Request, String> {
        let query = v
            .get("query")
            .ok_or("missing field `query`")?
            .as_str()
            .ok_or("field `query` must be a string")?;
        match query {
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            "solv" => {
                let k_max = usize_field(v, "k_max")?;
                if k_max == 0 || k_max > 16 {
                    return Err("field `k_max` must be in 1–16".to_string());
                }
                Ok(Request::Solv {
                    model: model_field(v)?,
                    k_max,
                    deadline_ms: optional_u64_field(v, "deadline_ms")?,
                    no_cache: bool_field_or_false(v, "no_cache")?,
                })
            }
            "rounds" => {
                let value_max = usize_field(v, "value_max")?;
                let rounds = usize_field(v, "rounds")?;
                if rounds == 0 || rounds > 8 {
                    return Err("field `rounds` must be in 1–8".to_string());
                }
                if value_max > 8 {
                    return Err("field `value_max` must be at most 8".to_string());
                }
                Ok(Request::Rounds {
                    model: model_field(v)?,
                    value_max,
                    rounds,
                    deadline_ms: optional_u64_field(v, "deadline_ms")?,
                    no_cache: bool_field_or_false(v, "no_cache")?,
                })
            }
            other => Err(format!("unknown query `{other}`")),
        }
    }

    /// The deadline for this request, if any.
    #[must_use]
    pub fn deadline_ms(&self) -> Option<u64> {
        match self {
            Request::Solv { deadline_ms, .. } | Request::Rounds { deadline_ms, .. } => *deadline_ms,
            _ => None,
        }
    }
}

/// Error kinds a terminal `error` frame can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request was malformed or named an unknown model.
    BadRequest,
    /// The request was cancelled (e.g. the client disconnected).
    Cancelled,
    /// The request's deadline fired before the result was ready.
    Deadline,
    /// The worker running the request panicked; the server absorbed it.
    Panic,
    /// Anything else (budget exhaustion, internal invariant).
    Internal,
}

impl ErrorKind {
    /// The wire name of this kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Panic => "panic",
            ErrorKind::Internal => "internal",
        }
    }
}

/// Build a terminal `error` frame.
#[must_use]
pub fn error_frame(kind: ErrorKind, message: &str) -> Value {
    obj(vec![
        ("event", Value::Str("error".to_string())),
        ("kind", Value::Str(kind.name().to_string())),
        ("message", Value::Str(message.to_string())),
    ])
}

/// Build a terminal `overloaded` frame (request shed, try again).
#[must_use]
pub fn overloaded_frame(retry_after_ms: u64) -> Value {
    obj(vec![
        ("event", Value::Str("overloaded".to_string())),
        (
            "retry_after_ms",
            Value::Int(i64::try_from(retry_after_ms).unwrap_or(i64::MAX)),
        ),
    ])
}

/// Build a streamed `progress` frame for a running sweep.
#[must_use]
pub fn progress_frame(k: usize, decided: usize, total: usize) -> Value {
    obj(vec![
        ("event", Value::Str("progress".to_string())),
        ("k", Value::Int(k as i64)),
        ("decided", Value::Int(decided as i64)),
        ("total", Value::Int(total as i64)),
    ])
}

/// What kind of terminal frame a decoded response is.
#[must_use]
pub fn terminal_event(v: &Value) -> Option<&str> {
    match v.get("event").and_then(Value::as_str) {
        Some("progress") => None,
        Some(event) => Some(event),
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn parses_each_query() {
        let ping = parse(br#"{"query":"ping"}"#).unwrap();
        assert_eq!(Request::from_json(&ping).unwrap(), Request::Ping);
        let solv = parse(
            br#"{"query":"solv","model":"ring{n=3}","k_max":3,"deadline_ms":250,"no_cache":true}"#,
        )
        .unwrap();
        assert_eq!(
            Request::from_json(&solv).unwrap(),
            Request::Solv {
                model: "ring{n=3}".to_string(),
                k_max: 3,
                deadline_ms: Some(250),
                no_cache: true,
            }
        );
        let rounds =
            parse(br#"{"query":"rounds","model":"ring{n=3}","value_max":1,"rounds":2}"#).unwrap();
        assert_eq!(
            Request::from_json(&rounds).unwrap(),
            Request::Rounds {
                model: "ring{n=3}".to_string(),
                value_max: 1,
                rounds: 2,
                deadline_ms: None,
                no_cache: false,
            }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            r#"{}"#,
            r#"{"query":"frobnicate"}"#,
            r#"{"query":"solv"}"#,
            r#"{"query":"solv","model":"ring{n=3}","k_max":0}"#,
            r#"{"query":"solv","model":"ring{n=3}","k_max":999}"#,
            r#"{"query":"solv","model":"","k_max":2}"#,
            r#"{"query":"solv","model":"ring{n=3}","k_max":2,"deadline_ms":-5}"#,
            r#"{"query":"rounds","model":"ring{n=3}","value_max":1,"rounds":0}"#,
            r#"{"query":"rounds","model":"ring{n=3}","value_max":99,"rounds":1}"#,
            r#"{"query":"solv","model":"ring{n=3}","k_max":2,"no_cache":"yes"}"#,
        ] {
            let v = parse(bad.as_bytes()).unwrap();
            assert!(Request::from_json(&v).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn frames_serialize_stably() {
        assert_eq!(
            error_frame(ErrorKind::Deadline, "too slow").to_json(),
            r#"{"event":"error","kind":"deadline","message":"too slow"}"#
        );
        assert_eq!(
            overloaded_frame(50).to_json(),
            r#"{"event":"overloaded","retry_after_ms":50}"#
        );
        assert_eq!(
            progress_frame(2, 1, 3).to_json(),
            r#"{"event":"progress","k":2,"decided":1,"total":3}"#
        );
        let progress = parse(br#"{"event":"progress","k":1,"decided":0,"total":2}"#).unwrap();
        assert_eq!(terminal_event(&progress), None);
        let result = parse(br#"{"event":"result"}"#).unwrap();
        assert_eq!(terminal_event(&result), Some("result"));
    }
}
