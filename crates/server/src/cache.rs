//! Crash-safe content-addressed response cache (DESIGN.md §12.4).
//!
//! Entries are keyed by a canonical request string (query kind +
//! canonical `ModelSpec` + the server's fixed budgets) and store the
//! *entire serialized response frame*, so a cache hit replays bytes
//! that are identical to a fresh computation by construction.
//!
//! # Crash safety
//!
//! Writes go to a temp file in the cache directory and are published
//! with an atomic `rename`. A `kill -9` at any instant therefore leaves
//! either no visible entry or a complete one — never a torn one. Stale
//! temp files from a crashed writer are swept on [`Cache::open`].
//!
//! # Corruption
//!
//! Every entry carries a header with the key and payload lengths and an
//! FNV-1a-64 checksum over `key ++ 0x00 ++ payload`, plus an echo of
//! the key itself. A read that fails *any* structural or checksum test
//! quarantines the file (rename to `*.quarantined`, counted by the
//! `cache_corruptions_quarantined` perf counter) and reports a miss, so
//! a bit-flipped entry is recomputed transparently. A key echo that
//! simply doesn't match the requested key is a filename-hash collision,
//! not corruption: the read is a miss and the entry is left in place.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use ksa_obs as obs;

const MAGIC: &str = "ksa-cache/1";

/// FNV-1a 64-bit — the repo's standalone checksum of choice (fast,
/// dependency-free, and good enough to catch torn or bit-flipped
/// entries; this is corruption detection, not cryptography).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn entry_checksum(key: &str, payload: &str) -> u64 {
    let mut bytes = Vec::with_capacity(key.len() + 1 + payload.len());
    bytes.extend_from_slice(key.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(payload.as_bytes());
    fnv1a64(&bytes)
}

/// An on-disk response cache rooted at one directory.
#[derive(Debug)]
pub struct Cache {
    dir: PathBuf,
    seq: std::sync::atomic::AtomicU64,
}

impl Cache {
    /// Open (creating if needed) a cache directory and sweep temp files
    /// left behind by a crashed writer.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or scanning the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Cache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.contains(".tmp.") {
                // A previous writer died between create and rename; the
                // published namespace never saw this file.
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(Cache {
            dir,
            seq: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The directory this cache lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.entry", fnv1a64(key.as_bytes())))
    }

    /// Look up `key`. Counts `cache_hits`/`cache_misses`; any
    /// structural failure quarantines the entry and reads as a miss.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<String> {
        let hit = self.read_verified(key);
        if hit.is_some() {
            obs::count(obs::Counter::CacheHits, 1);
        } else {
            obs::count(obs::Counter::CacheMisses, 1);
        }
        hit
    }

    fn read_verified(&self, key: &str) -> Option<String> {
        if ksa_faults::maybe_io_error(ksa_faults::Site::CacheReadIo).is_err() {
            // Injected read failure: degrade to a miss, recompute.
            return None;
        }
        let path = self.entry_path(key);
        let mut raw = Vec::new();
        match fs::File::open(&path) {
            Ok(mut f) => {
                if f.read_to_end(&mut raw).is_err() {
                    self.quarantine(&path);
                    return None;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(_) => return None,
        }
        match parse_entry(&raw) {
            Ok((stored_key, payload)) => {
                if stored_key == key {
                    Some(payload)
                } else {
                    // Filename-hash collision: not our entry, not
                    // corruption. Plain miss.
                    None
                }
            }
            Err(_) => {
                self.quarantine(&path);
                None
            }
        }
    }

    fn quarantine(&self, path: &Path) {
        let mut target = path.as_os_str().to_owned();
        target.push(".quarantined");
        if fs::rename(path, &target).is_ok() {
            obs::perf_count(obs::PerfCounter::CacheCorruptionsQuarantined, 1);
        }
    }

    /// Publish `payload` under `key` with a temp-write-then-rename.
    /// Counts `cache_writes` on success.
    ///
    /// # Errors
    ///
    /// Any I/O error; the published namespace is untouched on failure.
    pub fn put(&self, key: &str, payload: &str) -> io::Result<()> {
        ksa_faults::maybe_io_error(ksa_faults::Site::CacheWriteIo)?;
        let path = self.entry_path(key);
        let serial = self.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            "{:016x}.tmp.{}.{serial}",
            fnv1a64(key.as_bytes()),
            std::process::id()
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(format_entry(key, payload).as_bytes())?;
            f.sync_all()?;
        }
        // The fault suite's kill-9 window: the temp file exists, the
        // rename has not happened.
        ksa_faults::maybe_stall(ksa_faults::Site::CacheWriteStall);
        fs::rename(&tmp, &path)?;
        obs::count(obs::Counter::CacheWrites, 1);
        Ok(())
    }
}

fn format_entry(key: &str, payload: &str) -> String {
    format!(
        "{MAGIC} {} {} {:016x}\n{key}\n{payload}",
        key.len(),
        payload.len(),
        entry_checksum(key, payload)
    )
}

fn parse_entry(raw: &[u8]) -> Result<(String, String), String> {
    let text = std::str::from_utf8(raw).map_err(|_| "entry is not UTF-8".to_string())?;
    let (header, body) = text
        .split_once('\n')
        .ok_or_else(|| "missing header line".to_string())?;
    let mut fields = header.split(' ');
    if fields.next() != Some(MAGIC) {
        return Err("bad magic".to_string());
    }
    let key_len: usize = fields
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "bad key length".to_string())?;
    let payload_len: usize = fields
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "bad payload length".to_string())?;
    let checksum = fields
        .next()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| "bad checksum".to_string())?;
    if fields.next().is_some() {
        return Err("trailing header fields".to_string());
    }
    // body = key "\n" payload, with both lengths declared up front.
    if body.len() != key_len + 1 + payload_len {
        return Err("length mismatch".to_string());
    }
    if !body.is_char_boundary(key_len) || body.as_bytes().get(key_len) != Some(&b'\n') {
        return Err("key/payload separator missing".to_string());
    }
    let key = &body[..key_len];
    let payload = &body[key_len + 1..];
    if entry_checksum(key, payload) != checksum {
        return Err("checksum mismatch".to_string());
    }
    Ok((key.to_string(), payload.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ksa-cache-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn entry_format_round_trips() {
        let (key, payload) = parse_entry(format_entry("k|v", "{\"a\":1}\n").as_bytes()).unwrap();
        assert_eq!(key, "k|v");
        assert_eq!(payload, "{\"a\":1}\n");
    }

    #[test]
    fn put_get_roundtrip_and_miss() {
        let dir = scratch("roundtrip");
        let cache = Cache::open(&dir).unwrap();
        assert_eq!(cache.get("absent"), None);
        cache.put("key-1", "payload one").unwrap();
        assert_eq!(cache.get("key-1").as_deref(), Some("payload one"));
        // Overwrite is atomic and visible.
        cache.put("key-1", "payload two").unwrap();
        assert_eq!(cache.get("key-1").as_deref(), Some("payload two"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_are_quarantined_and_recomputable() {
        let dir = scratch("corrupt");
        let cache = Cache::open(&dir).unwrap();
        cache.put("key", "genuine payload").unwrap();
        let path = cache.entry_path("key");
        // Flip one payload byte on disk.
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        fs::write(&path, &raw).unwrap();
        assert_eq!(cache.get("key"), None, "corrupt entry reads as a miss");
        assert!(!path.exists(), "corrupt entry no longer published");
        let quarantined: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".quarantined")
            })
            .collect();
        assert_eq!(quarantined.len(), 1);
        // Recompute-and-republish restores the entry.
        cache.put("key", "genuine payload").unwrap();
        assert_eq!(cache.get("key").as_deref(), Some("genuine payload"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_entry_is_quarantined() {
        let dir = scratch("truncated");
        let cache = Cache::open(&dir).unwrap();
        cache
            .put("key", "a payload that will be cut short")
            .unwrap();
        let path = cache.entry_path("key");
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        assert_eq!(cache.get("key"), None);
        assert!(!path.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_echo_mismatch_is_a_plain_miss() {
        let dir = scratch("collision");
        let cache = Cache::open(&dir).unwrap();
        // Forge a structurally valid entry for a different key at the
        // location our key hashes to — a filename-hash collision.
        let path = cache.entry_path("wanted");
        fs::write(&path, format_entry("other", "other payload")).unwrap();
        assert_eq!(cache.get("wanted"), None);
        assert!(path.exists(), "collision victim is not quarantined");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_sweeps_stale_tmp_files() {
        let dir = scratch("sweep");
        fs::create_dir_all(&dir).unwrap();
        let stale = dir.join("0123456789abcdef.tmp.999.0");
        fs::write(&stale, "half-written").unwrap();
        let keeper = dir.join("0123456789abcdef.entry");
        fs::write(&keeper, "not a tmp file").unwrap();
        let _cache = Cache::open(&dir).unwrap();
        assert!(!stale.exists(), "stale tmp swept on open");
        assert!(keeper.exists(), "published entries untouched");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keys_with_newlines_round_trip() {
        // Keys are length-prefixed, so an embedded newline can't confuse
        // the header parse.
        let dir = scratch("newline");
        let cache = Cache::open(&dir).unwrap();
        cache.put("key\nwith\nnewlines", "payload\n\n").unwrap();
        assert_eq!(
            cache.get("key\nwith\nnewlines").as_deref(),
            Some("payload\n\n")
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
