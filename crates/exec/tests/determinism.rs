//! Property tests pinning the engine's determinism contract: every
//! order-preserving combinator must return results identical to the
//! sequential `std` iterator pipeline, on randomized inputs, regardless
//! of how the adaptive splitter carved the workload.

use ksa_exec::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn map_matches_sequential(v in prop::collection::vec(any::<u32>(), 0..2000)) {
        let par: Vec<u64> = v.par_iter().map(|&x| u64::from(x) * 3 + 1).collect();
        let seq: Vec<u64> = v.iter().map(|&x| u64::from(x) * 3 + 1).collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn filter_map_keeps_order(v in prop::collection::vec(any::<u32>(), 0..2000)) {
        let par: Vec<u32> = v
            .par_iter()
            .filter_map(|&x| (x % 3 == 0).then_some(x / 3))
            .collect();
        let seq: Vec<u32> = v
            .iter()
            .filter_map(|&x| (x % 3 == 0).then_some(x / 3))
            .collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn reductions_match_sequential(v in prop::collection::vec(any::<u32>(), 0..2000)) {
        let wide: Vec<u64> = v.iter().map(|&x| u64::from(x)).collect();
        prop_assert_eq!(wide.par_iter().map(|&x| x).sum::<u64>(), wide.iter().sum::<u64>());
        prop_assert_eq!(wide.par_iter().map(|&x| x).min(), wide.iter().copied().min());
        prop_assert_eq!(wide.par_iter().map(|&x| x).max(), wide.iter().copied().max());
        prop_assert_eq!(wide.par_iter().map(|&x| x).count(), wide.len());
        // Ordered reduce on a non-commutative (but associative) operator:
        // string-ish concatenation modeled as digit folding.
        let digits: Vec<u64> = v.iter().map(|&x| u64::from(x % 10)).collect();
        let par = digits
            .par_iter()
            .map(|&d| (d, 10u64))
            .reduce(
                || (0, 1),
                |(a, pa), (b, pb)| (a.wrapping_mul(pb).wrapping_add(b), pa.wrapping_mul(pb)),
            );
        let seq = digits
            .iter()
            .map(|&d| (d, 10u64))
            .fold((0u64, 1u64), |(a, pa), (b, pb)| {
                (a.wrapping_mul(pb).wrapping_add(b), pa.wrapping_mul(pb))
            });
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn searches_match_sequential(v in prop::collection::vec(0u32..100, 0..2000), needle in 0u32..100) {
        prop_assert_eq!(v.par_iter().any(|&x| x == needle), v.contains(&needle));
        prop_assert_eq!(
            v.par_iter().all(|&x| *x != needle),
            v.iter().all(|&x| x != needle)
        );
    }

    #[test]
    fn min_by_key_tiebreak_is_first(v in prop::collection::vec((0u32..8, any::<u32>()), 1..500)) {
        // Earliest-wins on equal keys, exactly like the sequential scan.
        let par = v.par_iter().map(|p| *p).min_by_key(|p| p.0);
        let seq = v
            .iter()
            .copied()
            .min_by(|a, b| a.0.cmp(&b.0));
        prop_assert_eq!(par, seq);
    }
}
