//! Stress tests for the work-stealing engine: hammer `join`, stealing,
//! scopes and the iterator layer under forced pool sizes (1, 2 and 8
//! workers — oversubscribed relative to small CI machines on purpose, so
//! steals, contended pops and park/wake races actually happen).

use ksa_exec::prelude::*;
use ksa_exec::ThreadPool;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The pool sizes every test runs at (mirrors the CI `KSA_THREADS`
/// matrix, plus an oversubscribed size).
const SIZES: [usize; 3] = [1, 2, 8];

/// Fork-join fibonacci: a deep, very fine-grained task tree — worst case
/// for join overhead, best case for finding deque races.
fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = ksa_exec::join(|| fib(n - 1), || fib(n - 2));
    a + b
}

#[test]
fn join_tree_at_forced_sizes() {
    for threads in SIZES {
        let pool = ThreadPool::new(threads);
        assert_eq!(pool.num_threads(), threads);
        let result = pool.install(|| fib(20));
        assert_eq!(result, 6765, "threads = {threads}");
    }
}

#[test]
fn join_returns_both_results_in_order() {
    for threads in SIZES {
        let pool = ThreadPool::new(threads);
        for i in 0..200u64 {
            let (a, b) = pool.join(move || i * 2, move || i * 2 + 1);
            assert_eq!((a, b), (i * 2, i * 2 + 1));
        }
    }
}

#[test]
fn nested_joins_inside_iterators() {
    for threads in SIZES {
        let pool = ThreadPool::new(threads);
        let total: u64 = pool.install(|| {
            (0..64usize)
                .into_par_iter()
                .map(|i| fib((i % 12) as u64))
                .sum()
        });
        let expected: u64 = (0..64usize).map(|i| fib((i % 12) as u64)).sum();
        assert_eq!(total, expected, "threads = {threads}");
    }
}

#[test]
fn scope_spawn_storm() {
    for threads in SIZES {
        let pool = ThreadPool::new(threads);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..512 {
                s.spawn(|s| {
                    // Nested spawn from inside a task.
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1024, "threads = {threads}");
    }
}

#[test]
fn iterator_results_identical_across_pool_sizes() {
    // The determinism guarantee that lets the solvability portfolio and
    // checker merge in enumeration order: same results at 1, 2 and 8
    // workers.
    let input: Vec<u64> = (0..50_000).collect();
    let reference: Vec<u64> = input.iter().map(|&x| x.wrapping_mul(x) % 977).collect();
    let ref_sum: u64 = reference.iter().sum();
    for threads in SIZES {
        let pool = ThreadPool::new(threads);
        let (mapped, sum) = pool.install(|| {
            let mapped: Vec<u64> = input.par_iter().map(|&x| x.wrapping_mul(x) % 977).collect();
            let sum: u64 = input.par_iter().map(|&x| x.wrapping_mul(x) % 977).sum();
            (mapped, sum)
        });
        assert_eq!(mapped, reference, "threads = {threads}");
        assert_eq!(sum, ref_sum, "threads = {threads}");
    }
}

#[test]
fn steal_heavy_irregular_workload() {
    // Wildly uneven leaf costs: a static chunker serializes behind the
    // expensive tail; work-stealing must keep finishing (and stay
    // correct) at every size.
    for threads in SIZES {
        let pool = ThreadPool::new(threads);
        let total: u64 = pool.install(|| {
            (0..256usize)
                .into_par_iter()
                .map(|i| {
                    let work = if i % 17 == 0 { 22 } else { 3 };
                    fib(work)
                })
                .sum()
        });
        let expected: u64 = (0..256usize)
            .map(|i| fib(if i % 17 == 0 { 22 } else { 3 }))
            .sum();
        assert_eq!(total, expected, "threads = {threads}");
    }
}

#[test]
fn panic_propagates_from_join() {
    let pool = ThreadPool::new(2);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.install(|| {
            ksa_exec::join(
                || 1 + 1,
                || -> usize { panic!("deliberate test panic (b)") },
            )
        })
    }));
    assert!(result.is_err());
    // The pool survives the unwind and keeps scheduling.
    assert_eq!(pool.install(|| fib(10)), 55);
}

#[test]
fn panic_in_scope_task_propagates_after_completion() {
    let pool = ThreadPool::new(2);
    let completed = AtomicUsize::new(0);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let completed = &completed;
        pool.scope(|s| {
            for i in 0..16 {
                s.spawn(move |_| {
                    if i == 7 {
                        panic!("deliberate test panic (scope)");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
    }));
    assert!(result.is_err());
    // Every non-panicking sibling still ran before the panic surfaced.
    assert_eq!(completed.load(Ordering::SeqCst), 15);
    assert_eq!(pool.install(|| fib(10)), 55);
}

#[test]
fn external_threads_share_one_pool() {
    // Many OS threads hammering install/join on the same pool at once:
    // exercises the injector, LockLatch wakeups and cross-thread result
    // delivery.
    let pool = ThreadPool::new(4);
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let pool = &pool;
            s.spawn(move || {
                for i in 0..50 {
                    let (a, b) = pool.join(move || t * 1000 + i, move || fib(10));
                    assert_eq!(a, t * 1000 + i);
                    assert_eq!(b, 55);
                }
            });
        }
    });
}

#[test]
fn ksa_threads_configuration_is_respected() {
    // `configured_threads` drives the global pool; the CI matrix runs
    // the whole suite under KSA_THREADS=1 and KSA_THREADS=4. Here we
    // check the parse contract against whatever the harness set.
    let configured = ksa_exec::configured_threads();
    match std::env::var("KSA_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => assert_eq!(configured, n),
        _ => assert!(configured >= 1),
    }
    assert!(ksa_exec::current_num_threads() >= 1);
}
