//! A lock-sharded concurrent set — the substrate for **monotone pruning
//! oracles** (no-good / transposition tables) shared by racing search
//! strategies on the pool.
//!
//! The intended discipline (and the reason this lives in `ksa-exec`
//! rather than in a search crate): every key a client inserts must be a
//! **fact about the problem instance** — "this canonical subtree holds
//! no solution" — never a fact about one strategy's schedule. Under that
//! contract the table is a *monotone pruning oracle*: a lookup hit lets
//! a reader skip work it would otherwise redo, and can never change what
//! the search concludes, because the skipped subtree's outcome is
//! already decided by the published fact. Determinism at any
//! `KSA_THREADS` is then preserved by construction — scheduling changes
//! *which* prunes fire, not *what* is computed. (The solvability
//! no-good table, DESIGN.md §10, is the motivating client.)
//!
//! Internally: a fixed power-of-two number of shards, each a
//! `Mutex<HashSet<K>>`, selected by key hash. Writers contend only
//! within a shard; with the default shard count, simultaneous
//! publications from every worker of even an oversubscribed pool rarely
//! collide.

use std::collections::HashSet;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::Mutex;

/// Default shard count: enough that a full pool of publishing workers
/// rarely collides, small enough that `snapshot`/`len` stay cheap.
const DEFAULT_SHARDS: usize = 64;

/// A lock-sharded concurrent hash set (see the module docs for the
/// monotone-oracle contract its clients rely on).
pub struct ShardedSet<K> {
    shards: Box<[Mutex<HashSet<K>>]>,
    hasher: RandomState,
}

impl<K: Hash + Eq> ShardedSet<K> {
    /// An empty set with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// An empty set with `shards` shards (rounded up to a power of two,
    /// minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        ShardedSet {
            shards: (0..count).map(|_| Mutex::new(HashSet::new())).collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashSet<K>> {
        let h = self.hasher.hash_one(key) as usize;
        // The shard count is a power of two, so masking is uniform.
        &self.shards[h & (self.shards.len() - 1)]
    }

    /// Whether `key` has been published.
    pub fn contains(&self, key: &K) -> bool {
        self.shard(key)
            .lock()
            .expect("shard poisoned")
            .contains(key)
    }

    /// Publishes `key`; returns `true` if it was new.
    pub fn insert(&self, key: K) -> bool {
        self.shard(&key).lock().expect("shard poisoned").insert(key)
    }

    /// Number of published keys (locks every shard; not a hot-path call).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    /// Whether no key has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Hash + Eq + Clone> ShardedSet<K> {
    /// All published keys, in unspecified order (locks every shard).
    /// Intended for harvesting a finished search's facts to seed a later
    /// one — the incremental-reuse path, not the hot path.
    pub fn snapshot(&self) -> Vec<K> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("shard poisoned")
                    .iter()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

impl<K: Hash + Eq> Default for ShardedSet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> std::fmt::Debug for ShardedSet<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSet")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_len() {
        let s: ShardedSet<u64> = ShardedSet::new();
        assert!(s.is_empty());
        assert!(s.insert(7));
        assert!(!s.insert(7), "duplicate publication is idempotent");
        assert!(s.insert(8));
        assert!(s.contains(&7));
        assert!(!s.contains(&9));
        assert_eq!(s.len(), 2);
        let mut snap = s.snapshot();
        snap.sort_unstable();
        assert_eq!(snap, vec![7, 8]);
    }

    #[test]
    fn shard_count_rounds_up() {
        let s: ShardedSet<u32> = ShardedSet::with_shards(3);
        for i in 0..100 {
            s.insert(i);
        }
        assert_eq!(s.len(), 100);
        let zero: ShardedSet<u32> = ShardedSet::with_shards(0);
        assert!(zero.insert(1));
    }

    #[test]
    fn concurrent_publication_is_a_set_union() {
        let s: ShardedSet<u64> = ShardedSet::new();
        let pool = crate::ThreadPool::new(4);
        pool.install(|| {
            crate::scope(|sc| {
                for t in 0..8u64 {
                    let s = &s;
                    sc.spawn(move |_| {
                        // Overlapping ranges: every value published by
                        // two workers.
                        for v in (t * 500)..(t * 500 + 1000) {
                            s.insert(v);
                        }
                    });
                }
            });
        });
        assert_eq!(s.len(), 4500);
        for v in 0..4500u64 {
            assert!(s.contains(&v));
        }
    }
}
