//! A Chase–Lev work-stealing deque of [`JobRef`]s.
//!
//! One worker owns each deque: it pushes and pops at the *bottom* in LIFO
//! order (newest first — the cache-hot subtree of a recursive split),
//! while thieves take from the *top* in FIFO order (oldest first — the
//! biggest remaining subtree, which minimizes steal traffic). The
//! implementation follows the C11 formulation of Lê, Pop, Cohen &
//! Zappa Nardelli, *Correct and Efficient Work-Stealing for Weak Memory
//! Models* (PPoPP 2013): a growable circular buffer, `top`/`bottom`
//! indices, and a single CAS on `top` arbitrating the last-element race
//! between the owner and a thief.
//!
//! Buffer growth never frees the old buffer while the deque lives — a
//! thief may still be reading a slot of it — so retired buffers are
//! parked in a side list and reclaimed when the deque drops. A deque
//! holds at most `O(log capacity)` retired buffers totalling less than
//! its current buffer's size, so this "leak" is bounded and tiny.

use crate::job::JobRef;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::Mutex;

/// Initial circular-buffer capacity (power of two).
const INITIAL_CAPACITY: usize = 64;

/// Outcome of a steal attempt.
pub(crate) enum Steal {
    /// The deque had no stealable job.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// Successfully stole a job.
    Success(JobRef),
}

/// A growable circular buffer of job slots.
struct Buffer {
    capacity: usize,
    slots: Box<[UnsafeCell<MaybeUninit<JobRef>>]>,
}

impl Buffer {
    fn alloc(capacity: usize) -> Box<Buffer> {
        debug_assert!(capacity.is_power_of_two());
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Buffer { capacity, slots })
    }

    /// Reads the slot for logical index `i`.
    ///
    /// # Safety
    ///
    /// The Chase–Lev protocol must guarantee the slot was written (the
    /// caller observed `top ≤ i < bottom`).
    unsafe fn read(&self, i: isize) -> JobRef {
        let slot = &self.slots[(i as usize) & (self.capacity - 1)];
        (*slot.get()).assume_init()
    }

    /// Writes the slot for logical index `i` (owner only).
    ///
    /// # Safety
    ///
    /// Only the owner may write, and only at index `bottom` with
    /// `bottom − top < capacity` (so no thief can be reading the slot).
    unsafe fn write(&self, i: isize, job: JobRef) {
        let slot = &self.slots[(i as usize) & (self.capacity - 1)];
        *slot.get() = MaybeUninit::new(job);
    }
}

/// The work-stealing deque. `push`/`pop` are owner-only; `steal` is free
/// for all.
pub(crate) struct Deque {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer>,
    /// Old buffers kept alive until the deque drops (thieves may hold
    /// stale buffer pointers across a steal). The boxing is the point:
    /// each retired `Buffer` must stay at the exact heap address the
    /// thieves' raw pointers reference, so it cannot be moved into the
    /// `Vec`'s own storage.
    #[allow(clippy::vec_box)]
    retired: Mutex<Vec<Box<Buffer>>>,
}

// Shared across worker threads; soundness comes from the owner-only
// contract on push/pop plus the protocol's CAS arbitration.
unsafe impl Send for Deque {}
unsafe impl Sync for Deque {}

impl Deque {
    pub(crate) fn new() -> Self {
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Buffer::alloc(INITIAL_CAPACITY))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Pushes a job at the bottom.
    ///
    /// # Safety
    ///
    /// Owner-only: must be called from the worker thread owning this
    /// deque.
    pub(crate) unsafe fn push(&self, job: JobRef) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buffer.load(Ordering::Relaxed);
        if b - t >= (*buf).capacity as isize {
            buf = self.grow(buf, t, b);
        }
        (*buf).write(b, job);
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Pops the most recently pushed job, if any.
    ///
    /// # Safety
    ///
    /// Owner-only: must be called from the worker thread owning this
    /// deque.
    pub(crate) unsafe fn pop(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let job = (*buf).read(b);
            if t == b {
                // Last element: race a thief for it via the CAS on top.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                won.then_some(job)
            } else {
                Some(job)
            }
        } else {
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Attempts to steal the oldest job. Callable from any thread.
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let buf = self.buffer.load(Ordering::Acquire);
            // Read before the CAS: the retired-buffer list keeps the
            // memory valid even if the owner grows concurrently, and the
            // CAS decides whether the read value is ours.
            let job = unsafe { (*buf).read(t) };
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                return Steal::Retry;
            }
            Steal::Success(job)
        } else {
            Steal::Empty
        }
    }

    /// Doubles the buffer, copying live slots; retires the old buffer.
    ///
    /// # Safety
    ///
    /// Owner-only, with `t`/`b` the current top/bottom.
    unsafe fn grow(&self, old: *mut Buffer, t: isize, b: isize) -> *mut Buffer {
        let new = Buffer::alloc((*old).capacity * 2);
        for i in t..b {
            new.write(i, (*old).read(i));
        }
        let new_ptr = Box::into_raw(new);
        self.buffer.store(new_ptr, Ordering::Release);
        self.retired
            .lock()
            .expect("retired list poisoned")
            .push(Box::from_raw(old));
        new_ptr
    }
}

impl Drop for Deque {
    fn drop(&mut self) {
        // Reclaim the live buffer; `retired` drops itself. Any JobRefs
        // still queued are plain pointers — their owners are responsible
        // for them (the pool drains all work before dropping deques).
        unsafe {
            drop(Box::from_raw(self.buffer.load(Ordering::Relaxed)));
        }
    }
}
