//! The thread pool: a registry of workers, each owning a Chase–Lev
//! deque, plus a mutex-protected injector for work arriving from outside
//! the pool.
//!
//! Scheduling discipline: a worker prefers its own deque (LIFO — depth
//! first through its own splits), then the injector (externally submitted
//! roots), then stealing the *oldest* job from a sibling (FIFO — the
//! largest available subtree). Idle workers park on a condvar with a
//! short timeout; every push wakes sleepers, and the timeout bounds the
//! cost of any lost-wakeup race instead of complicating the protocol.

use crate::job::{HeapJob, JobRef, LockLatch, StackJob};
use crate::{deque::Deque, deque::Steal};
use ksa_obs::PerfCounter;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

thread_local! {
    /// Nanoseconds this thread has spent executing jobs acquired from
    /// *outside* its own deque (injector pops, sibling steals) while
    /// waiting inside a `join`/`scope`. See [`helped_nanos`].
    static HELPED_NS: Cell<u64> = const { Cell::new(0) };
}

/// This thread's cumulative helped-time account, in nanoseconds.
///
/// While a worker waits for a stolen job to finish it moonlights on work
/// from the injector or sibling deques; that wall time belongs to *other*
/// tasks, not to whatever frame the worker is nominally inside. Callers
/// timing a task on a worker thread (the bench fan-out) subtract the
/// delta of this account across the task to get exclusive on-task time.
///
/// Accounting is self-time based: when helped jobs nest (a helped job
/// itself waits and helps), the outer job's recorded time absorbs the
/// inner accruals, so any frame's delta is at most its elapsed time and
/// never double-counts. Own-deque pops are *not* counted — those are the
/// frame's own split-off work. Time helping descendants of the frame's
/// own task that were stolen and re-split by siblings is counted as
/// helped, so the delta is an upper bound on foreign work.
pub fn helped_nanos() -> u64 {
    HELPED_NS.with(Cell::get)
}

/// Executes a job acquired from the injector or a sibling deque during a
/// wait loop, charging its wall time to this thread's helped account
/// (absorbing any accruals made by nested helping inside it).
///
/// # Safety
///
/// Same contract as `JobRef::execute`: the job must be executed exactly
/// once.
pub(crate) unsafe fn execute_helped(job: JobRef) {
    let before = HELPED_NS.with(Cell::get);
    let start = std::time::Instant::now();
    job.execute();
    let elapsed = start.elapsed().as_nanos() as u64;
    HELPED_NS.with(|c| {
        let inner = c.get() - before;
        c.set(before + elapsed.max(inner));
    });
}

/// Distinguishes registries so a thread can tell which pool it belongs
/// to (pools are rare; ids never wrap in practice).
static NEXT_REGISTRY_ID: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// `(registry id, worker index, registry pointer)` of the pool this
    /// thread works for, if any. The pointer stays valid for the whole
    /// worker lifetime (the worker holds an `Arc` to its registry).
    static WORKER: Cell<Option<(usize, usize, *const Registry)>> = const { Cell::new(None) };
}

/// Shared state of one pool.
pub(crate) struct Registry {
    id: usize,
    deques: Vec<Deque>,
    injector: Mutex<VecDeque<JobRef>>,
    sleep_mutex: Mutex<()>,
    sleep_cv: Condvar,
    sleepers: AtomicUsize,
    terminate: AtomicBool,
}

impl Registry {
    /// The worker index of the current thread in *this* registry.
    pub(crate) fn current_worker(&self) -> Option<usize> {
        WORKER.with(|w| match w.get() {
            Some((id, index, _)) if id == self.id => Some(index),
            _ => None,
        })
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.deques.len()
    }

    /// Whether any worker is currently parked (used by the adaptive
    /// splitter: idle workers mean splitting finer pays off).
    pub(crate) fn has_sleepers(&self) -> bool {
        self.sleepers.load(Ordering::Relaxed) > 0
    }

    /// Pushes onto the calling worker's own deque.
    ///
    /// # Safety
    ///
    /// `index` must be the calling thread's own worker index in this
    /// registry.
    pub(crate) unsafe fn push_local(&self, index: usize, job: JobRef) {
        ksa_obs::perf_count(PerfCounter::ExecSpawns, 1);
        self.deques[index].push(job);
        self.wake();
    }

    /// Submits a job from outside (or from a worker, when it has no
    /// deque slot of its own to use).
    pub(crate) fn inject(&self, job: JobRef) {
        ksa_obs::perf_count(PerfCounter::ExecSpawns, 1);
        self.injector
            .lock()
            .expect("injector poisoned")
            .push_back(job);
        self.wake();
    }

    /// One round of work-finding for `index`: own deque, injector, then
    /// stealing from siblings.
    pub(crate) fn find_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = unsafe { self.deques[index].pop() } {
            return Some(job);
        }
        self.steal_work(index)
    }

    /// Pops the calling worker's own deque (wait loops distinguish own
    /// work from helped work for the [`helped_nanos`] account).
    ///
    /// # Safety
    ///
    /// `index` must be the calling thread's own worker index in this
    /// registry.
    pub(crate) unsafe fn pop_own(&self, index: usize) -> Option<JobRef> {
        self.deques[index].pop()
    }

    /// Work from anywhere but `index`'s own deque (also used while a
    /// worker waits on a latch, so it keeps the pool busy instead of
    /// spinning).
    pub(crate) fn steal_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = self.injector.lock().expect("injector poisoned").pop_front() {
            ksa_obs::perf_count(PerfCounter::ExecSteals, 1);
            return Some(job);
        }
        let n = self.deques.len();
        // A couple of sweeps absorb CAS-race `Retry`s without busy-looping
        // on a contended victim forever.
        for _ in 0..2 {
            let mut contended = false;
            for offset in 1..n {
                let victim = (index + offset) % n;
                match self.deques[victim].steal() {
                    Steal::Success(job) => {
                        ksa_obs::perf_count(PerfCounter::ExecSteals, 1);
                        return Some(job);
                    }
                    Steal::Retry => contended = true,
                    Steal::Empty => {}
                }
            }
            if !contended {
                break;
            }
        }
        None
    }

    fn wake(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Taking the lock orders this notify after a racing parker's
            // re-check; the park timeout bounds any remaining window.
            drop(self.sleep_mutex.lock().expect("sleep mutex poisoned"));
            self.sleep_cv.notify_all();
        }
    }

    fn park(&self) {
        ksa_obs::perf_count(PerfCounter::ExecParks, 1);
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let guard = self.sleep_mutex.lock().expect("sleep mutex poisoned");
        let _ = self
            .sleep_cv
            .wait_timeout(guard, Duration::from_millis(1))
            .expect("sleep mutex poisoned");
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_loop(registry: Arc<Registry>, index: usize) {
    WORKER.with(|w| w.set(Some((registry.id, index, Arc::as_ptr(&registry)))));
    loop {
        if let Some(job) = registry.find_work(index) {
            unsafe { job.execute() };
            continue;
        }
        if registry.terminate.load(Ordering::SeqCst) {
            break;
        }
        registry.park();
    }
    WORKER.with(|w| w.set(None));
}

/// A work-stealing thread pool.
///
/// Most callers never construct one: the [`crate::join`], [`crate::scope`]
/// and parallel-iterator entry points lazily start a process-global pool
/// sized by the `KSA_THREADS` environment variable (falling back to the
/// number of available cores). Explicit pools exist for tests and for
/// embedding at a forced size.
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Starts a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let registry = Arc::new(Registry {
            id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
            deques: (0..threads).map(|_| Deque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep_mutex: Mutex::new(()),
            sleep_cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            terminate: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|index| {
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("ksa-exec-{index}"))
                    // Deep enough for backtracking searches executed on
                    // workers (the CSP solver recurses once per view).
                    .stack_size(8 << 20)
                    .spawn(move || worker_loop(registry, index))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool { registry, handles }
    }

    /// Starts a pool sized by [`crate::configured_threads`].
    pub fn from_env() -> Self {
        ThreadPool::new(crate::configured_threads())
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Runs `f` inside the pool: on a worker thread, with full access to
    /// work-stealing `join`/`scope`. If the calling thread already is a
    /// worker of this pool, `f` runs inline.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        install_into(&self.registry, f)
    }

    /// Runs `f` with a [`crate::Scope`] on this pool; see [`crate::scope`].
    pub fn scope<'scope, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&crate::Scope<'scope>) -> R + Send,
        R: Send,
    {
        crate::scope::scope_in(&self.registry, f)
    }

    /// Work-stealing fork-join on this pool: potentially runs `a` and
    /// `b` in parallel, returning both results. See [`crate::join`].
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let registry: &Registry = &self.registry;
        match registry.current_worker() {
            Some(index) => join_in_worker(registry, index, a, b),
            None => install_into(registry, || {
                let index = registry.current_worker().expect("installed on a worker");
                join_in_worker(registry, index, a, b)
            }),
        }
    }

    /// Fire-and-forget execution of `f` on the pool.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let job = HeapJob::new(Box::new(move || {
            // A panicking spawned task must not unwind into the worker
            // loop; mirror std::thread and abort-free swallow it after
            // printing (the panic hook has already reported it).
            let _ = panic::catch_unwind(AssertUnwindSafe(f));
        }));
        self.registry.inject(job.into_job_ref());
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate.store(true, Ordering::SeqCst);
        // Workers notice within one park timeout; nudge them anyway.
        self.registry.sleep_cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Runs `f` on a worker of `registry`, inline when already on one.
pub(crate) fn install_into<F, R>(registry: &Registry, f: F) -> R
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    if registry.current_worker().is_some() {
        return f();
    }
    let job = StackJob::new(LockLatch::new(), f);
    unsafe { registry.inject(job.as_job_ref()) };
    job.latch().wait();
    job.into_result()
}

/// The registry the current thread works for, if any.
///
/// # Safety of the returned reference
///
/// The pointer in TLS is valid for as long as this thread is a worker
/// (the worker holds an `Arc` on its registry for its whole life), and
/// the reference does not escape the current job's execution.
pub(crate) fn current_registry() -> Option<(usize, &'static Registry)> {
    WORKER.with(|w| w.get().map(|(_, index, ptr)| (index, unsafe { &*ptr })))
}

/// The fork-join primitive, executed on a worker thread.
///
/// `b` is published on the worker's deque so any idle sibling can steal
/// it; the worker runs `a` itself, then either pops `b` back (running it
/// inline — the common, allocation-free fast path) or, if `b` was stolen,
/// works on other jobs until `b`'s latch is set.
pub(crate) fn join_in_worker<A, B, RA, RB>(
    registry: &Registry,
    index: usize,
    a: A,
    b: B,
) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(crate::job::SpinLatch::new(), b);
    unsafe { registry.push_local(index, job_b.as_job_ref()) };

    let result_a = panic::catch_unwind(AssertUnwindSafe(a));

    // Whether or not `a` panicked, `job_b` lives on this stack frame and
    // may have been stolen — we must not unwind past it until its latch
    // is set.
    let mut spins = 0u32;
    while !job_b.latch().probe() {
        // Popping our own deque may return `job_b` itself (executed
        // inline via its JobRef) or deeper jobs pushed by ancestors —
        // running those here is sound: their joiners treat "gone from
        // the deque" exactly like "stolen" and wait on the latch.
        if let Some(job) = unsafe { registry.deques[index].pop() } {
            unsafe { job.execute() };
            spins = 0;
        } else if let Some(job) = registry.steal_work(index) {
            // Stolen/injected work belongs to some other frame; charge
            // its wall time to the helped account so task timers can
            // subtract it (see `helped_nanos`).
            unsafe { execute_helped(job) };
            spins = 0;
        } else if spins < 64 {
            std::hint::spin_loop();
            spins += 1;
        } else {
            std::thread::yield_now();
        }
    }

    match result_a {
        Ok(ra) => (ra, job_b.into_result()),
        // `a`'s panic wins; `b`'s result (even a panic payload) is
        // dropped with the job.
        Err(p) => panic::resume_unwind(p),
    }
}
