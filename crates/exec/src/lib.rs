//! # ksa-exec
//!
//! A from-scratch **work-stealing execution engine** for the k-set
//! agreement reproduction: the scheduling substrate under every
//! `parallel`-feature hot path (the exhaustive checker, the solvability
//! CSP search, the combinatorial-number searches).
//!
//! Why not keep the static-chunking `vendor/rayon` shim? The workspace's
//! search trees are *irregular*: one branch-and-bound subtree dies at
//! depth 2 while its sibling explodes, one CSP variable ordering finishes
//! in milliseconds while another thrashes. Static chunking serializes
//! behind the unluckiest chunk; work-stealing rebalances continuously.
//!
//! ## Architecture
//!
//! * `deque` *(internal)* — Chase–Lev per-worker deques: the owner
//!   pushes/pops LIFO (depth-first through its own splits, cache-hot),
//!   thieves steal FIFO (the oldest, biggest subtree).
//! * [`ThreadPool`] — a registry of workers with a shared injector for
//!   external submissions; idle workers park on a condvar. The
//!   process-global pool starts lazily, sized by **`KSA_THREADS`** (else
//!   the number of available cores).
//! * [`join`] — the fork-join primitive: `b` is published for stealing,
//!   the caller runs `a`, then pops `b` back (the common allocation-free
//!   path) or helps the pool while a thief finishes `b`.
//! * [`scope`] / [`Scope::spawn`] — structured spawning of tasks that
//!   may borrow the enclosing frame; the scope helps the pool until all
//!   tasks complete.
//! * [`iter`] — rayon-style parallel iterators with **adaptive
//!   splitting** (halve by `join` down to a pool-sized grain, finer while
//!   workers are idle) and **ordered reduction**: every merge is in input
//!   order, so parallel and sequential results are byte-identical for
//!   the associative operators the workspace uses, at any thread count.
//!
//! The iterator surface is API-identical to the workspace's
//! `vendor/rayon` shim, which remains the drop-in fallback and the
//! template for slotting crates.io rayon back in when a registry is
//! available (see `vendor/README.md`).
//!
//! ## Example
//!
//! ```
//! use ksa_exec::prelude::*;
//!
//! // Fork-join over an irregular recursion:
//! fn fib(n: u64) -> u64 {
//!     if n < 2 {
//!         return n;
//!     }
//!     let (a, b) = ksa_exec::join(|| fib(n - 1), || fib(n - 2));
//!     a + b
//! }
//! assert_eq!(fib(16), 987);
//!
//! // Deterministic data parallelism:
//! let squares: Vec<u64> = (0..1000usize).into_par_iter().map(|i| (i * i) as u64).collect();
//! assert_eq!(squares[999], 998_001);
//! ```

#![deny(missing_docs)]

mod deque;
pub mod iter;
mod job;
mod pool;
mod scope;
pub mod sharded;

pub use pool::{helped_nanos, ThreadPool};
pub use scope::Scope;
pub use sharded::ShardedSet;

/// The rayon-compatible imports: `par_iter`, `into_par_iter`, and the
/// [`iter::ParallelIterator`] combinators.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

use std::sync::OnceLock;

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-global pool, started on first use with
/// [`configured_threads`] workers. It lives for the rest of the process.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(ThreadPool::from_env)
}

/// The worker count the global pool is (or would be) started with: the
/// `KSA_THREADS` environment variable when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`].
///
/// Read once per pool construction — changing the variable after the
/// global pool has started has no effect.
pub fn configured_threads() -> usize {
    match std::env::var("KSA_THREADS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => available_cores(),
        },
        Err(_) => available_cores(),
    }
}

fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Number of workers serving the calling context: the enclosing pool's
/// size when called from a worker thread, the global pool's size
/// otherwise.
pub fn current_num_threads() -> usize {
    match pool::current_registry() {
        Some((_, registry)) => registry.num_threads(),
        None => global().num_threads(),
    }
}

/// Potentially-parallel fork-join: runs `a` and `b`, possibly on
/// different workers, and returns both results.
///
/// On a worker thread (of whichever pool the caller is executing in),
/// this is the allocation-free Chase–Lev fast path; from outside a pool
/// the pair is installed onto the global pool first. If either closure
/// panics, the panic is re-thrown here — after both closures have
/// stopped running (`a`'s payload wins when both panic).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match pool::current_registry() {
        Some((index, registry)) => pool::join_in_worker(registry, index, a, b),
        None => global().join(a, b),
    }
}

/// Runs `f` with a [`Scope`] on the pool serving the calling context
/// (the enclosing pool on a worker thread, the global pool otherwise);
/// returns once `f` and every task it spawned have completed.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    match pool::current_registry() {
        Some((_, registry)) => scope::scope_in(registry, f),
        None => global().scope(f),
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_basic() {
        let (a, b) = super::join(|| 1 + 1, || 2 + 2);
        assert_eq!((a, b), (2, 4));
    }

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<usize> = Vec::new();
        assert_eq!(
            v.par_iter().map(|&x| x).collect::<Vec<_>>(),
            Vec::<usize>::new()
        );
        assert_eq!(v.into_par_iter().min(), None);
    }

    #[test]
    fn reductions() {
        let v: Vec<u64> = (1..=1000).collect();
        assert_eq!(v.par_iter().map(|&x| x).sum::<u64>(), 500_500);
        assert_eq!(v.par_iter().map(|&x| x).min(), Some(1));
        assert_eq!(v.par_iter().map(|&x| x).max(), Some(1000));
        assert_eq!(v.par_iter().map(|&x| x).count(), 1000);
        assert_eq!(
            (0..100usize).into_par_iter().reduce(|| 0, |a, b| a + b),
            4950
        );
    }

    #[test]
    fn searches() {
        let v: Vec<usize> = (0..10_000).collect();
        assert!(v.par_iter().any(|&x| x == 9_999));
        assert!(!v.par_iter().any(|&x| x == 10_000));
        assert!(v.par_iter().all(|&x| *x < 10_000));
        assert_eq!(
            v.par_iter().find_any(|&&x| x % 7_777 == 7_776),
            Some(&7_776)
        );
    }

    #[test]
    fn min_by_key_breaks_ties_deterministically() {
        let v = vec![(3, 'a'), (1, 'b'), (1, 'c'), (2, 'd')];
        assert_eq!(v.into_par_iter().min_by_key(|p| p.0), Some((1, 'b')));
    }

    #[test]
    fn scope_spawns_complete_before_return() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }
}
