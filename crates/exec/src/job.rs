//! Type-erased units of work and the latches that signal their
//! completion.
//!
//! A [`JobRef`] is a fat raw pointer (data + execute fn) to a job living
//! either on a blocked caller's stack ([`StackJob`], used by `join` and
//! `install`) or on the heap ([`HeapJob`], used by `scope::spawn` and
//! `ThreadPool::spawn`). Stack jobs are sound because the frame that owns
//! them blocks — actively working, or on a lock — until the job's latch is
//! set, which happens only *after* the result has been written.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// A unit of work executable through a type-erased pointer.
///
/// # Safety
///
/// `execute` must be called at most once per job instance, with a pointer
/// obtained from [`JobRef::new`] on a still-live job.
pub(crate) trait Job {
    /// Runs the job. See the trait-level safety contract.
    unsafe fn execute(this: *const Self);
}

/// A type-erased pointer to a [`Job`], safe to send to another worker.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
}

// A JobRef is just an address; the Job safety contract (execute once,
// while live) is what makes moving it across threads sound.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Erases `job` into a sendable reference.
    ///
    /// # Safety
    ///
    /// `job` must stay live until the returned reference is executed.
    pub(crate) unsafe fn new<J: Job>(job: *const J) -> JobRef {
        unsafe fn execute_erased<J: Job>(ptr: *const ()) {
            J::execute(ptr.cast::<J>());
        }
        JobRef {
            data: job.cast::<()>(),
            execute_fn: execute_erased::<J>,
        }
    }

    /// Runs the job.
    ///
    /// # Safety
    ///
    /// Must be called exactly once, while the job is live.
    pub(crate) unsafe fn execute(self) {
        (self.execute_fn)(self.data);
    }
}

/// Completion signal, set exactly once by whichever thread ran the job.
pub(crate) trait Latch {
    /// Marks the latch as set, releasing any waiter.
    fn set(&self);
}

/// A latch probed by a worker that keeps stealing while it waits.
pub(crate) struct SpinLatch {
    done: AtomicBool,
}

impl SpinLatch {
    pub(crate) fn new() -> Self {
        SpinLatch {
            done: AtomicBool::new(false),
        }
    }

    /// Whether the latch has been set (acquires the job's result writes).
    pub(crate) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        self.done.store(true, Ordering::Release);
    }
}

/// A blocking latch for threads outside the pool (they have no deque to
/// steal from, so they sleep on a condvar).
pub(crate) struct LockLatch {
    state: Mutex<bool>,
    cv: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> Self {
        LockLatch {
            state: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Blocks until the latch is set.
    pub(crate) fn wait(&self) {
        let mut done = self.state.lock().expect("latch poisoned");
        while !*done {
            done = self.cv.wait(done).expect("latch poisoned");
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.state.lock().expect("latch poisoned");
        *done = true;
        self.cv.notify_all();
    }
}

/// The outcome slot of a [`StackJob`].
enum JobResult<R> {
    /// Not executed yet.
    Pending,
    /// Completed with a value.
    Ok(R),
    /// The closure panicked; the payload is re-thrown at the joiner.
    Panic(Box<dyn Any + Send>),
}

/// A job allocated on the stack of the frame that waits for it.
///
/// The frame pushes `as_job_ref()` onto a deque, then blocks (working or
/// sleeping) until the latch reports completion, then reads the result —
/// so the referenced closure and result slot never outlive the frame.
pub(crate) struct StackJob<L: Latch, F, R> {
    latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

impl<L, F, R> StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R,
{
    pub(crate) fn new(latch: L, func: F) -> Self {
        StackJob {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::Pending),
        }
    }

    pub(crate) fn latch(&self) -> &L {
        &self.latch
    }

    /// Erases this job. See [`JobRef::new`] for the liveness contract.
    ///
    /// # Safety
    ///
    /// The caller must keep `self` alive (blocked in place) until the
    /// returned reference has executed, and execute it at most once.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef::new(self)
    }

    /// Consumes the completed job, returning its result or resuming the
    /// panic its closure raised.
    ///
    /// Must only be called after the latch is set.
    pub(crate) fn into_result(self) -> R {
        match self.result.into_inner() {
            JobResult::Ok(r) => r,
            JobResult::Panic(p) => panic::resume_unwind(p),
            JobResult::Pending => unreachable!("StackJob::into_result before completion"),
        }
    }
}

impl<L, F, R> Job for StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R,
{
    unsafe fn execute(this: *const Self) {
        let this = &*this;
        let func = (*this.func.get()).take().expect("StackJob executed twice");
        let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(r) => JobResult::Ok(r),
            Err(p) => JobResult::Panic(p),
        };
        *this.result.get() = result;
        // Result write happens-before the Release store in set().
        this.latch.set();
    }
}

/// A fire-and-forget heap job (used by `spawn`); panics are caught by the
/// closure the spawner wraps around the user callback, so `execute` never
/// unwinds into the worker loop.
pub(crate) struct HeapJob {
    func: Box<dyn FnOnce() + Send>,
}

impl HeapJob {
    pub(crate) fn new(func: Box<dyn FnOnce() + Send>) -> Box<Self> {
        Box::new(HeapJob { func })
    }

    /// Erases the boxed job; ownership passes to the returned reference
    /// (freed when executed).
    pub(crate) fn into_job_ref(self: Box<Self>) -> JobRef {
        unsafe { JobRef::new(Box::into_raw(self)) }
    }
}

impl Job for HeapJob {
    unsafe fn execute(this: *const Self) {
        let boxed = Box::from_raw(this as *mut Self);
        (boxed.func)();
    }
}
