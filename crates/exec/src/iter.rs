//! Rayon-style parallel iterators over the work-stealing pool.
//!
//! The API surface (traits, method set, determinism guarantees) is
//! deliberately identical to the workspace's `vendor/rayon` shim, so the
//! same call sites compile against either: `map`/`filter`/`collect`
//! preserve input order, reductions combine partial results in input
//! order (deterministic for associative operators), and `any`/`find_any`
//! cooperatively early-exit through a shared flag.
//!
//! Where the shim splits a workload into one static chunk per core, this
//! implementation splits **adaptively**: work is divided by recursive
//! [`crate::join`], halving down to a grain sized for the pool and
//! splitting even finer while workers are observed idle. Idle workers
//! steal the biggest outstanding half, so irregular per-item costs (a
//! branch-and-bound subtree that fizzles vs one that explodes) rebalance
//! instead of serializing behind the unluckiest static chunk.
//!
//! Determinism note: all merge steps are in input order, so every
//! combinator except `find_any` returns results independent of the split
//! tree and thread count; `find_any` (like rayon's) returns *some* match.

use crate::pool::current_registry;
use std::sync::atomic::{AtomicBool, Ordering};

/// Smallest workload worth a task of its own when workers are idle.
const MIN_GRAIN: usize = 4;

/// Per-leaf workload target: enough leaves to balance, few enough that
/// split overhead stays invisible.
fn grain_for(len: usize) -> usize {
    let threads = match current_registry() {
        Some((_, registry)) => registry.num_threads(),
        None => crate::configured_threads(),
    };
    (len / (threads * 4)).max(1)
}

/// Whether a workload of `len` items should fork again.
fn should_split(len: usize, grain: usize) -> bool {
    if len <= 1 {
        return false;
    }
    if len > grain {
        return true;
    }
    // Adaptive refinement: below the static grain, keep splitting only
    // while some worker is parked hungry. Results are unaffected (all
    // merges are order-preserving); only the task granularity changes.
    len >= MIN_GRAIN && current_registry().is_some_and(|(_, registry)| registry.has_sleepers())
}

/// Runs `f` over adaptively-sized contiguous chunks of `items`, in
/// parallel; returns the per-chunk results **in input order**.
fn run_chunks<T, O, F>(items: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(Vec<T>) -> O + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let grain = grain_for(items.len());

    fn recurse<T, O, F>(items: Vec<T>, grain: usize, f: &F) -> Vec<O>
    where
        T: Send,
        O: Send,
        F: Fn(Vec<T>) -> O + Sync,
    {
        if !should_split(items.len(), grain) {
            return vec![f(items)];
        }
        let mid = items.len() / 2;
        let mut left = items;
        let right = left.split_off(mid);
        let (mut out_left, out_right) =
            crate::join(|| recurse(left, grain, f), || recurse(right, grain, f));
        out_left.extend(out_right);
        out_left
    }

    recurse(items, grain, &f)
}

/// Conversion into a parallel iterator (owning).
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;

    /// Materializes the source into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Conversion into a borrowing parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Send + 'a;

    /// A parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// A materialized parallel iterator: the items to process, in order.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The consuming operations — same trait shape as real rayon's
/// `ParallelIterator`, same determinism guarantees as the vendor shim.
pub trait ParallelIterator: Sized {
    /// The item type.
    type Item: Send;

    /// Consumes `self` into its ordered item vector.
    fn into_items(self) -> Vec<Self::Item>;

    /// Order-preserving parallel map.
    fn map<O, F>(self, f: F) -> ParIter<O>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync,
    {
        let results = run_chunks(self.into_items(), |chunk| {
            chunk.into_iter().map(&f).collect::<Vec<O>>()
        });
        ParIter {
            items: results.into_iter().flatten().collect(),
        }
    }

    /// Pairs each item with its index (indexed iterator semantics).
    fn enumerate(self) -> ParIter<(usize, Self::Item)> {
        ParIter {
            items: self.into_items().into_iter().enumerate().collect(),
        }
    }

    /// Order-preserving parallel filter.
    fn filter<F>(self, f: F) -> ParIter<Self::Item>
    where
        F: Fn(&Self::Item) -> bool + Sync,
    {
        let results = run_chunks(self.into_items(), |chunk| {
            chunk.into_iter().filter(&f).collect::<Vec<_>>()
        });
        ParIter {
            items: results.into_iter().flatten().collect(),
        }
    }

    /// Order-preserving parallel filter-map.
    fn filter_map<O, F>(self, f: F) -> ParIter<O>
    where
        O: Send,
        F: Fn(Self::Item) -> Option<O> + Sync,
    {
        let results = run_chunks(self.into_items(), |chunk| {
            chunk.into_iter().filter_map(&f).collect::<Vec<O>>()
        });
        ParIter {
            items: results.into_iter().flatten().collect(),
        }
    }

    /// Parallel for-each (no ordering guarantees between chunks).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run_chunks(self.into_items(), |chunk| chunk.into_iter().for_each(&f));
    }

    /// Collects into any `FromIterator` target, preserving order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.into_items().into_iter().collect()
    }

    /// Parallel reduction. `identity` seeds each chunk; `op` must be
    /// associative for a deterministic result (partial results combine
    /// in input order).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let partials = run_chunks(self.into_items(), |chunk| {
            chunk.into_iter().fold(identity(), &op)
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Minimum item, `None` when empty.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        let partials = run_chunks(self.into_items(), |chunk| chunk.into_iter().min());
        partials.into_iter().flatten().min()
    }

    /// Maximum item, `None` when empty.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        let partials = run_chunks(self.into_items(), |chunk| chunk.into_iter().max());
        partials.into_iter().flatten().max()
    }

    /// Minimum by key; on ties the earliest item wins (deterministic).
    fn min_by_key<K, F>(self, f: F) -> Option<Self::Item>
    where
        K: Ord + Send,
        F: Fn(&Self::Item) -> K + Sync,
    {
        let partials = run_chunks(self.into_items(), |chunk| {
            chunk
                .into_iter()
                .map(|item| (f(&item), item))
                .min_by(|a, b| a.0.cmp(&b.0))
        });
        partials
            .into_iter()
            .flatten()
            .min_by(|a, b| a.0.cmp(&b.0))
            .map(|(_, item)| item)
    }

    /// Parallel sum.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let partials = run_chunks(self.into_items(), |chunk| chunk.into_iter().sum::<S>());
        partials.into_iter().sum()
    }

    /// Number of items.
    fn count(self) -> usize {
        self.into_items().len()
    }

    /// Whether any item satisfies `f`; stops scheduling work after the
    /// first match.
    fn any<F>(self, f: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Sync,
    {
        let found = AtomicBool::new(false);
        run_chunks(self.into_items(), |chunk| {
            for item in chunk {
                if found.load(Ordering::Relaxed) {
                    return;
                }
                if f(item) {
                    found.store(true, Ordering::Relaxed);
                    return;
                }
            }
        });
        found.load(Ordering::Relaxed)
    }

    /// Whether every item satisfies `f` (early exit on a witness).
    fn all<F>(self, f: F) -> bool
    where
        F: Fn(&Self::Item) -> bool + Sync,
    {
        !self.any(|item| !f(&item))
    }

    /// Some item matching the predicate, if one exists. Like rayon's
    /// `find_any`, *which* match is returned is not deterministic.
    fn find_any<F>(self, f: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item) -> bool + Sync,
    {
        let found = AtomicBool::new(false);
        let partials = run_chunks(self.into_items(), |chunk| {
            for item in chunk {
                if found.load(Ordering::Relaxed) {
                    return None;
                }
                if f(&item) {
                    found.store(true, Ordering::Relaxed);
                    return Some(item);
                }
            }
            None
        });
        partials.into_iter().flatten().next()
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn into_items(self) -> Vec<T> {
        self.items
    }
}
