//! Structured task spawning: [`scope`](crate::scope) creates a [`Scope`]
//! whose spawned tasks may borrow from the enclosing stack frame; the
//! scope does not return until every spawned task (including nested
//! spawns) has completed, and the spawning worker helps execute them
//! while it waits.

use crate::job::HeapJob;
use crate::pool::Registry;
use std::any::Any;
use std::marker::PhantomData;
use std::mem;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A raw pointer wrapper that is `Send` (the scope protocol guarantees
/// the pointee outlives every use).
struct SendPtr<T>(*const T);
unsafe impl<T> Send for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Send` wrapper, not the raw pointer inside it.
    fn get(&self) -> *const T {
        self.0
    }
}

/// A spawn scope tied to the stack frame of the [`crate::scope`] call.
///
/// Tasks spawned on the scope may borrow anything that outlives `'scope`;
/// the scope blocks (productively — executing pool work) until all of
/// them finish. The first panic raised by a task is re-thrown from
/// `scope` once every task has completed.
pub struct Scope<'scope> {
    /// The owning pool. Valid for the scope's whole lifetime: the scope
    /// body runs on a worker, whose registry outlives the frame.
    registry: *const Registry,
    /// Spawned-but-unfinished task count.
    pending: AtomicUsize,
    /// First panic payload raised by a spawned task.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Makes `'scope` invariant, as required for soundness of borrows.
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `f` onto the pool. The closure receives the scope again,
    /// so tasks can spawn further tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let scope_ptr = SendPtr(self as *const Scope<'scope>);
        let task = move || {
            // Valid: scope() blocks until `pending` drains, so the Scope
            // outlives this execution.
            let scope = unsafe { &*scope_ptr.get() };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| f(scope))) {
                let mut first = scope.panic.lock().expect("scope panic slot poisoned");
                first.get_or_insert(payload);
            }
            scope.pending.fetch_sub(1, Ordering::SeqCst);
        };
        // Erase 'scope: the completion protocol above is the actual
        // lifetime guarantee.
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(task);
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { mem::transmute(task) };
        let job = HeapJob::new(task).into_job_ref();
        let registry = unsafe { &*self.registry };
        match registry.current_worker() {
            Some(index) => unsafe { registry.push_local(index, job) },
            None => registry.inject(job),
        }
    }
}

/// Runs `f` with a scope on `registry`'s pool; called via
/// [`crate::scope`] / `ThreadPool::scope`.
pub(crate) fn scope_in<'scope, F, R>(registry: &Registry, f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    crate::pool::install_into(registry, || {
        let registry = crate::pool::current_registry()
            .expect("scope body runs on a worker")
            .1;
        let scope = Scope {
            registry: registry as *const Registry,
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            _marker: PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));

        // Help the pool until every spawned task has finished. Even if
        // `f` panicked we must wait: tasks borrow the enclosing frame.
        let index = registry
            .current_worker()
            .expect("scope body runs on a worker");
        let mut spins = 0u32;
        while scope.pending.load(Ordering::SeqCst) != 0 {
            // Own-deque pops are this scope's spawned work; injector and
            // sibling steals belong to other frames and are charged to
            // the helped account (`crate::helped_nanos`).
            if let Some(job) = unsafe { registry.pop_own(index) } {
                unsafe { job.execute() };
                spins = 0;
            } else if let Some(job) = registry.steal_work(index) {
                unsafe { crate::pool::execute_helped(job) };
                spins = 0;
            } else if spins < 64 {
                std::hint::spin_loop();
                spins += 1;
            } else {
                std::thread::yield_now();
            }
        }

        match result {
            Ok(r) => {
                let task_panic = scope
                    .panic
                    .lock()
                    .expect("scope panic slot poisoned")
                    .take();
                match task_panic {
                    Some(payload) => panic::resume_unwind(payload),
                    None => r,
                }
            }
            Err(payload) => panic::resume_unwind(payload),
        }
    })
}
