//! Property-based tests for the runtime substrate.

use ksa_core::algorithms::MinOfAll;
use ksa_core::task::Value;
use ksa_graphs::Digraph;
use ksa_runtime::approx::{averaging_round, diameter, is_non_split};
use ksa_runtime::execution::execute_schedule;
use ksa_runtime::full_info::flatten_matches_oblivious_execution;
use proptest::prelude::*;

fn digraph(n: usize) -> impl Strategy<Value = Digraph> {
    prop::collection::vec(any::<bool>(), n * n).prop_map(move |edges| {
        let mut g = Digraph::empty(n).expect("valid n");
        for u in 0..n {
            for v in 0..n {
                if u != v && edges[u * n + v] {
                    g.add_edge(u, v).expect("in range");
                }
            }
        }
        g
    })
}

fn schedule(n: usize) -> impl Strategy<Value = Vec<Digraph>> {
    prop::collection::vec(digraph(n), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn views_grow_monotonically(s in schedule(4), seed in 0u32..100) {
        let inputs: Vec<Value> = (0..4).map(|p| (seed + p) % 5).collect();
        let trace = execute_schedule(&MinOfAll::new(), &s, &inputs).expect("runs");
        for p in 0..4 {
            for r in 1..trace.views.len() {
                // Everything known at round r−1 is still known at round r
                // (self-loops re-deliver own knowledge).
                for pair in &trace.views[r - 1][p] {
                    prop_assert!(trace.views[r][p].contains(pair));
                }
            }
        }
    }

    #[test]
    fn decisions_are_valid_and_known(s in schedule(4), seed in 0u32..100) {
        let inputs: Vec<Value> = (0..4).map(|p| (seed * 3 + p * 7) % 9).collect();
        let trace = execute_schedule(&MinOfAll::new(), &s, &inputs).expect("runs");
        for (p, d) in trace.decisions.iter().enumerate() {
            prop_assert!(trace.inputs.contains(d));
            // The min algorithm decides a value it actually heard.
            prop_assert!(trace.views.last().expect("rounds ≥ 1")[p]
                .iter()
                .any(|&(_, v)| v == *d));
        }
    }

    #[test]
    fn full_information_bridge(s in schedule(4)) {
        prop_assert!(
            flatten_matches_oblivious_execution(&s, &[4, 1, 3, 2]).expect("runs")
        );
    }

    #[test]
    fn distinct_decisions_bounded_by_sources(s in schedule(4), seed in 0u32..50) {
        // Never more distinct decisions than distinct inputs.
        let inputs: Vec<Value> = (0..4).map(|p| (seed + p * 2) % 3).collect();
        let mut distinct_inputs = inputs.clone();
        distinct_inputs.sort_unstable();
        distinct_inputs.dedup();
        let trace = execute_schedule(&MinOfAll::new(), &s, &inputs).expect("runs");
        prop_assert!(trace.distinct_decisions() <= distinct_inputs.len());
    }

    #[test]
    fn averaging_stays_in_hull_and_contracts_on_non_split(
        g in digraph(4),
        raw in prop::collection::vec(0.0f64..10.0, 4),
    ) {
        let before = diameter(&raw);
        let after_vals = averaging_round(&g, &raw).expect("sizes match");
        let lo = raw.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = raw.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for v in &after_vals {
            prop_assert!(*v >= lo - 1e-12 && *v <= hi + 1e-12);
        }
        let after = diameter(&after_vals);
        prop_assert!(after <= before + 1e-12, "diameter never grows");
        if is_non_split(&g) {
            prop_assert!(after <= before / 2.0 + 1e-12, "halving on non-split");
        }
    }
}
