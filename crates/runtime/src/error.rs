//! Error type for the runtime.

use std::error::Error;
use std::fmt;

/// Errors produced by execution and checking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// Input vector length does not match the process count.
    InputLengthMismatch {
        /// Provided inputs.
        inputs: usize,
        /// Expected process count.
        n: usize,
    },
    /// The adversary produced a graph on the wrong process set.
    AdversaryGraphMismatch {
        /// The round at which it happened.
        round: usize,
        /// The graph's process count.
        got: usize,
        /// Expected process count.
        n: usize,
    },
    /// An exhaustive exploration exceeded its explicit budget.
    TooLarge {
        /// What was being enumerated.
        what: &'static str,
        /// Estimated size.
        estimated: u128,
        /// The configured limit.
        limit: u128,
    },
    /// Zero rounds or zero values requested.
    BadParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: usize,
        /// Human-readable domain.
        domain: &'static str,
    },
    /// An underlying layer failed.
    Graph(ksa_graphs::GraphError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InputLengthMismatch { inputs, n } => {
                write!(f, "{inputs} inputs provided for {n} processes")
            }
            RuntimeError::AdversaryGraphMismatch { round, got, n } => write!(
                f,
                "adversary produced a graph on {got} processes at round {round}, expected {n}"
            ),
            RuntimeError::TooLarge {
                what,
                estimated,
                limit,
            } => write!(
                f,
                "{what} would explore about {estimated} cases, above the limit {limit}"
            ),
            RuntimeError::BadParameter {
                name,
                value,
                domain,
            } => write!(f, "parameter {name} = {value} outside {domain}"),
            RuntimeError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ksa_graphs::GraphError> for RuntimeError {
    fn from(e: ksa_graphs::GraphError) -> Self {
        RuntimeError::Graph(e)
    }
}

impl From<ksa_core::budget::BudgetExceeded> for RuntimeError {
    fn from(e: ksa_core::budget::BudgetExceeded) -> Self {
        RuntimeError::TooLarge {
            what: e.what,
            estimated: e.estimated,
            limit: e.limit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            RuntimeError::InputLengthMismatch { inputs: 2, n: 3 },
            RuntimeError::AdversaryGraphMismatch {
                round: 1,
                got: 2,
                n: 3,
            },
            RuntimeError::TooLarge {
                what: "checker",
                estimated: 1 << 40,
                limit: 1 << 20,
            },
            RuntimeError::BadParameter {
                name: "rounds",
                value: 0,
                domain: "[1, ∞)",
            },
            RuntimeError::Graph(ksa_graphs::GraphError::EmptyProcessSet),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
