//! Monte-Carlo exploration for instances beyond the exhaustive budget.
//!
//! Seeded random executions: random allowed graphs (via the model's
//! sampler) and random inputs. Reports the distribution of distinct
//! decisions, which the experiments compare against the theoretical
//! bounds.

use crate::error::RuntimeError;
use crate::execution::{execute, ExecutionTrace};
use ksa_core::algorithms::ObliviousAlgorithm;
use ksa_core::task::Value;
use ksa_models::adversary::RandomInModel;
use ksa_models::ObliviousModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Aggregated Monte-Carlo results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonteCarloReport {
    /// Executions run.
    pub executions: usize,
    /// `histogram[d]` = number of executions with exactly `d` distinct
    /// decisions (index 0 unused).
    pub histogram: Vec<usize>,
    /// Largest observed number of distinct decisions.
    pub worst_distinct: usize,
    /// Whether validity held in every execution.
    pub validity_ok: bool,
}

impl MonteCarloReport {
    /// The mean number of distinct decisions.
    pub fn mean_distinct(&self) -> f64 {
        if self.executions == 0 {
            return 0.0;
        }
        let total: usize = self.histogram.iter().enumerate().map(|(d, &c)| d * c).sum();
        total as f64 / self.executions as f64
    }
}

/// Runs `executions` seeded random executions of `algorithm` on `model`
/// (`rounds` rounds, inputs uniform over `{0, …, values−1}`).
///
/// # Errors
///
/// [`RuntimeError::BadParameter`] for zero rounds/values/executions.
pub fn monte_carlo<A: ObliviousAlgorithm + ?Sized, M: ObliviousModel + ?Sized>(
    algorithm: &A,
    model: &M,
    values: usize,
    rounds: usize,
    executions: usize,
    seed: u64,
) -> Result<MonteCarloReport, RuntimeError> {
    if values == 0 || rounds == 0 || executions == 0 {
        return Err(RuntimeError::BadParameter {
            name: "values/rounds/executions",
            value: 0,
            domain: "[1, ∞)",
        });
    }
    let n = model.n();
    let mut input_rng = StdRng::seed_from_u64(seed);
    let mut report = MonteCarloReport {
        executions: 0,
        histogram: vec![0; n + 1],
        worst_distinct: 0,
        validity_ok: true,
    };
    for run in 0..executions {
        let inputs: Vec<Value> = (0..n)
            .map(|_| input_rng.random_range(0..values as Value))
            .collect();
        let mut adv = RandomInModel::new(model, seed ^ (run as u64).wrapping_mul(0x9E37_79B9));
        let trace: ExecutionTrace = execute(algorithm, &mut adv, &inputs, rounds)?;
        let d = trace.distinct_decisions();
        report.histogram[d] += 1;
        report.worst_distinct = report.worst_distinct.max(d);
        for dec in &trace.decisions {
            if !trace.inputs.contains(dec) {
                report.validity_ok = false;
            }
        }
        report.executions += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_core::algorithms::MinOfAll;
    use ksa_models::named;

    #[test]
    fn histogram_sums_to_executions() {
        let m = named::non_empty_kernel(4).unwrap();
        let rep = monte_carlo(&MinOfAll::new(), &m, 3, 1, 200, 7).unwrap();
        assert_eq!(rep.executions, 200);
        assert_eq!(rep.histogram.iter().sum::<usize>(), 200);
        assert!(rep.validity_ok);
        assert!(rep.worst_distinct <= 4);
        assert!(rep.mean_distinct() >= 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let m = named::symmetric_ring(4).unwrap();
        let a = monte_carlo(&MinOfAll::new(), &m, 4, 2, 100, 11).unwrap();
        let b = monte_carlo(&MinOfAll::new(), &m, 4, 2, 100, 11).unwrap();
        assert_eq!(a, b);
        let c = monte_carlo(&MinOfAll::new(), &m, 4, 2, 100, 12).unwrap();
        // Different seeds explore different executions (with overwhelming
        // probability; fixed seeds keep this deterministic).
        assert!(a != c || a.histogram == c.histogram);
    }

    #[test]
    fn stays_within_gamma_eq() {
        // Random graphs from the star-union model: the min algorithm never
        // exceeds γ_eq = n − s + 1 distinct decisions.
        let m = named::star_unions(5, 2).unwrap();
        let rep = monte_carlo(&MinOfAll::new(), &m, 5, 1, 500, 3).unwrap();
        assert!(rep.worst_distinct <= 4, "worst = {}", rep.worst_distinct);
    }

    #[test]
    fn more_rounds_reduce_mean() {
        let m = named::symmetric_ring(5).unwrap();
        let r1 = monte_carlo(&MinOfAll::new(), &m, 5, 1, 300, 5).unwrap();
        let r3 = monte_carlo(&MinOfAll::new(), &m, 5, 3, 300, 5).unwrap();
        assert!(r3.mean_distinct() <= r1.mean_distinct() + 1e-9);
    }

    #[test]
    fn parameters_validated() {
        let m = named::simple_ring(3).unwrap();
        assert!(monte_carlo(&MinOfAll::new(), &m, 0, 1, 10, 0).is_err());
        assert!(monte_carlo(&MinOfAll::new(), &m, 2, 0, 10, 0).is_err());
        assert!(monte_carlo(&MinOfAll::new(), &m, 2, 1, 0, 0).is_err());
    }
}
