//! Exhaustive model checking of k-set agreement on small instances.
//!
//! For a closed-above model, an algorithm and a round count, the checker
//! enumerates **every generator schedule** and **every input assignment**
//! over a value range, runs the execution, and reports:
//!
//! * the worst-case number of distinct decisions (the empirical `k` the
//!   algorithm achieves — it must not exceed the theorem that justifies
//!   the algorithm), and
//! * any validity violation (would indicate an implementation bug),
//! * a witness trace of the worst execution.
//!
//! Playing only generator schedules is sound for these *monotone*
//! min-style algorithms (more edges only merge more views and lower
//! worst-case distinctness is checked separately by
//! [`check_with_supersets`], which additionally samples random
//! supersets to exercise the full closed-above set).

use crate::error::RuntimeError;
use crate::execution::{execute_schedule, ExecutionTrace};
use ksa_core::algorithms::ObliviousAlgorithm;
use ksa_core::task::Value;
#[cfg(feature = "parallel")]
use ksa_exec::prelude::*;
use ksa_models::adversary::generator_schedules;
use ksa_models::ClosedAboveModel;
use ksa_models::ObliviousModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generator schedules pulled per parallel round: bounds the memory
/// held in cloned schedules while keeping every core busy (each
/// schedule expands to `values^n` executions of work).
#[cfg(feature = "parallel")]
const SCHEDULE_BATCH: usize = 256;

/// The explicit exploration budget: the guard that makes exhaustive
/// checks degrade into a clean [`RuntimeError::TooLarge`] instead of
/// hanging (or exhausting memory) on an instance that is too big.
///
/// The size of a check is known up front (`|generators|^rounds ·
/// values^n` executions), so the budget is enforced *before* any work
/// starts; callers can catch the error and fall back to
/// [`monte_carlo`](crate::monte_carlo) sampling.
///
/// The type itself now lives in [`ksa_core::budget`] (the solvability
/// search enforces it too); this re-export preserves the historical
/// `ksa_runtime::checker::RunBudget` path.
pub use ksa_core::budget::RunBudget;

/// Outcome of an exhaustive (or sampled) check.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Executions explored.
    pub executions: usize,
    /// The worst (largest) number of distinct decisions observed.
    pub worst_distinct: usize,
    /// Whether every decision was some process's input.
    pub validity_ok: bool,
    /// A witness achieving `worst_distinct`.
    pub witness: Option<ExecutionTrace>,
}

impl CheckReport {
    fn empty() -> Self {
        CheckReport {
            executions: 0,
            worst_distinct: 0,
            validity_ok: true,
            witness: None,
        }
    }

    /// Folds `other` into `self`. Merging reports in schedule order
    /// reproduces exactly the sequential scan: the witness is the first
    /// trace (in enumeration order) achieving the global worst.
    fn merge(&mut self, other: CheckReport) {
        self.executions += other.executions;
        self.validity_ok &= other.validity_ok;
        if other.worst_distinct > self.worst_distinct {
            self.worst_distinct = other.worst_distinct;
            self.witness = other.witness;
        }
    }
}

/// Enumerates all input assignments over `values` for `n` processes
/// (odometer), applying `f` to each.
fn for_all_inputs(
    n: usize,
    values: usize,
    mut f: impl FnMut(&[Value]) -> Result<(), RuntimeError>,
) -> Result<(), RuntimeError> {
    let mut assignment = vec![0 as Value; n];
    loop {
        f(&assignment)?;
        let mut pos = 0;
        loop {
            if pos == n {
                return Ok(());
            }
            assignment[pos] += 1;
            if (assignment[pos] as usize) < values {
                break;
            }
            assignment[pos] = 0;
            pos += 1;
        }
    }
}

/// Exhaustively checks `algorithm` on `model` for `rounds` rounds over all
/// input assignments from `{0, …, values−1}`, playing **generator
/// schedules only**.
///
/// # Errors
///
/// [`RuntimeError::TooLarge`] when `|generators|^rounds · values^n`
/// exceeds `budget`; [`RuntimeError::BadParameter`] for zero
/// rounds/values.
pub fn check_exhaustive<A: ObliviousAlgorithm + Sync + ?Sized>(
    algorithm: &A,
    model: &ClosedAboveModel,
    values: usize,
    rounds: usize,
    budget: impl Into<RunBudget>,
) -> Result<CheckReport, RuntimeError> {
    let budget = budget.into();
    if values == 0 {
        return Err(RuntimeError::BadParameter {
            name: "values",
            value: 0,
            domain: "[1, ∞)",
        });
    }
    if rounds == 0 {
        return Err(RuntimeError::BadParameter {
            name: "rounds",
            value: 0,
            domain: "[1, ∞)",
        });
    }
    let n = model.n();
    let g = model.generators().len() as u128;
    let total = g
        .checked_pow(rounds as u32)
        .and_then(|s| {
            (values as u128)
                .checked_pow(n as u32)
                .map(|i| s.saturating_mul(i))
        })
        .unwrap_or(u128::MAX);
    budget.admit("exhaustive check", total)?;
    let _span = ksa_obs::span("runtime", || "check_exhaustive").arg("rounds", rounds as u64);

    // One independent sub-report per generator schedule; merged in
    // schedule order, so the parallel and sequential paths return
    // byte-identical reports.
    let per_schedule = |schedule: &[ksa_graphs::Digraph]| -> Result<CheckReport, RuntimeError> {
        let mut local = CheckReport::empty();
        for_all_inputs(n, values, |inputs| {
            let trace = execute_schedule(algorithm, schedule, inputs)?;
            record(&mut local, trace);
            Ok(())
        })?;
        Ok(local)
    };

    let mut report = CheckReport::empty();
    #[cfg(feature = "parallel")]
    {
        // Stream schedules in bounded batches (a schedule clones
        // `rounds` digraphs, so a full up-front collect could dwarf
        // the execution count in memory) and merge in schedule order.
        let mut schedules = generator_schedules(model, rounds);
        loop {
            let batch: Vec<Vec<ksa_graphs::Digraph>> =
                schedules.by_ref().take(SCHEDULE_BATCH).collect();
            if batch.is_empty() {
                break;
            }
            let partials: Vec<Result<CheckReport, RuntimeError>> = batch
                .par_iter()
                .map(|schedule| per_schedule(schedule))
                .collect();
            for partial in partials {
                report.merge(partial?);
            }
        }
    }
    #[cfg(not(feature = "parallel"))]
    for schedule in generator_schedules(model, rounds) {
        report.merge(per_schedule(&schedule)?);
    }
    ksa_obs::count(
        ksa_obs::Counter::CheckerExecutions,
        report.executions as u64,
    );
    Ok(report)
}

/// Like [`check_exhaustive`], but each enumerated schedule is additionally
/// perturbed with `samples` random superset schedules (seeded), to
/// exercise non-minimal graphs of the closed-above model.
///
/// # Errors
///
/// Same conditions as [`check_exhaustive`].
pub fn check_with_supersets<A: ObliviousAlgorithm + Sync + ?Sized>(
    algorithm: &A,
    model: &ClosedAboveModel,
    values: usize,
    rounds: usize,
    samples: usize,
    seed: u64,
    budget: impl Into<RunBudget>,
) -> Result<CheckReport, RuntimeError> {
    let mut base = check_exhaustive(algorithm, model, values, rounds, budget)?;
    // The exhaustive prefix already counted its executions above; only
    // the superset samples below are new.
    let exhaustive_executions = base.executions;
    let n = model.n();

    // Each schedule perturbs with its own generator, derived from
    // (seed, schedule index) — schedules are independent streams, so the
    // parallel and sequential paths sample identical supersets.
    let per_schedule =
        |(idx, schedule): (usize, &[ksa_graphs::Digraph])| -> Result<CheckReport, RuntimeError> {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut local = CheckReport::empty();
            for _ in 0..samples {
                let lifted: Vec<ksa_graphs::Digraph> = schedule
                    .iter()
                    .map(|g| ksa_graphs::random::random_superset(g, &mut rng))
                    .collect::<Result<_, _>>()?;
                for_all_inputs(n, values, |inputs| {
                    let trace = execute_schedule(algorithm, &lifted, inputs)?;
                    record(&mut local, trace);
                    Ok(())
                })?;
            }
            Ok(local)
        };

    #[cfg(feature = "parallel")]
    {
        let mut schedules = generator_schedules(model, rounds).enumerate();
        loop {
            let batch: Vec<(usize, Vec<ksa_graphs::Digraph>)> =
                schedules.by_ref().take(SCHEDULE_BATCH).collect();
            if batch.is_empty() {
                break;
            }
            let partials: Vec<Result<CheckReport, RuntimeError>> = batch
                .par_iter()
                .map(|(idx, schedule)| per_schedule((*idx, schedule.as_slice())))
                .collect();
            for partial in partials {
                base.merge(partial?);
            }
        }
    }
    #[cfg(not(feature = "parallel"))]
    for (idx, schedule) in generator_schedules(model, rounds).enumerate() {
        base.merge(per_schedule((idx, schedule.as_slice()))?);
    }
    ksa_obs::count(
        ksa_obs::Counter::CheckerExecutions,
        (base.executions - exhaustive_executions) as u64,
    );
    Ok(base)
}

fn record(report: &mut CheckReport, trace: ExecutionTrace) {
    report.executions += 1;
    for d in &trace.decisions {
        if !trace.inputs.contains(d) {
            report.validity_ok = false;
        }
    }
    let distinct = trace.distinct_decisions();
    if distinct > report.worst_distinct {
        report.worst_distinct = distinct;
        report.witness = Some(trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_core::algorithms::{MinOfAll, MinOfDominatingSet};
    use ksa_core::bounds::report::BoundsReport;
    use ksa_models::named;

    #[test]
    fn min_of_all_respects_gamma_eq_on_kernel_model() {
        // Thm 3.4: γ_eq(kernel n=4) = 4... the min algorithm never exceeds
        // it (trivially ≤ n); more interesting below with stars where the
        // bound is n − s + 1.
        let m = named::star_unions(4, 2).unwrap(); // γ_eq = 3
        let rep = check_exhaustive(&MinOfAll::new(), &m, 3, 1, 10_000_000).unwrap();
        assert!(rep.validity_ok);
        assert!(rep.worst_distinct <= 3, "worst = {}", rep.worst_distinct);
        assert!(rep.executions > 0);
    }

    #[test]
    fn min_of_all_achieves_the_lower_bound_on_stars() {
        // Thm 6.13: (n−s)-set agreement impossible. The min algorithm must
        // actually exhibit n−s+1 distinct decisions somewhere (tightness).
        let (n, s) = (4, 2);
        let m = named::star_unions(n, s).unwrap();
        let rep = check_exhaustive(&MinOfAll::new(), &m, n, 1, 100_000_000).unwrap();
        assert_eq!(rep.worst_distinct, n - s + 1);
        let w = rep.witness.expect("worst witness recorded");
        assert_eq!(w.distinct_decisions(), n - s + 1);
    }

    #[test]
    fn dominating_set_algorithm_meets_gamma_on_simple_ring() {
        // Thm 3.2: γ(C4) = 2; the dominating-set algorithm decides ≤ 2
        // values on every graph of ↑C4 (generator + sampled supersets).
        let m = named::simple_ring(4).unwrap();
        let alg = MinOfDominatingSet::for_graph(&m.generators()[0]);
        let rep = check_with_supersets(&alg, &m, 3, 1, 5, 0xBEEF, 100_000_000).unwrap();
        assert!(rep.validity_ok);
        assert!(rep.worst_distinct <= 2, "worst = {}", rep.worst_distinct);
        // And 2 is achieved (the bound is tight, Thm 5.1).
        assert_eq!(rep.worst_distinct, 2);
    }

    #[test]
    fn min_of_all_matches_report_upper_bound_across_zoo() {
        // The flood-and-min algorithm realizes the γ_eq and sequence
        // upper bounds; its worst case must stay within the best
        // *min-algorithm-realizable* bound (γ_eq / covering / sequences).
        for m in [
            named::star_unions(3, 1).unwrap(),
            named::star_unions(4, 3).unwrap(),
            named::symmetric_ring(4).unwrap(),
        ] {
            for rounds in 1..=2 {
                let report = BoundsReport::compute(&m, rounds).unwrap();
                // Thm 3.2's dominating-set bound needs knowledge of the
                // generator; the flooding algorithm realizes the others.
                let realizable = report
                    .uppers
                    .iter()
                    .filter(|u| u.theorem != "Thm 3.2" && u.theorem != "Thm 6.3")
                    .map(|u| u.k)
                    .min()
                    .expect("γ_eq bound always present");
                let chk = check_exhaustive(&MinOfAll::new(), &m, 3, rounds, 100_000_000).unwrap();
                assert!(
                    chk.worst_distinct <= realizable,
                    "{m:?} r={rounds}: worst {} > bound {realizable}",
                    chk.worst_distinct
                );
                assert!(chk.validity_ok);
            }
        }
    }

    #[test]
    fn multi_round_improves_observed_agreement() {
        let m = named::simple_ring(4).unwrap();
        let r1 = check_exhaustive(&MinOfAll::new(), &m, 2, 1, 10_000_000).unwrap();
        let r3 = check_exhaustive(&MinOfAll::new(), &m, 2, 3, 10_000_000).unwrap();
        assert!(r3.worst_distinct <= r1.worst_distinct);
        assert_eq!(r3.worst_distinct, 1, "C4^3 is complete: consensus");
    }

    #[test]
    fn budget_enforced() {
        let m = named::symmetric_ring(5).unwrap();
        assert!(check_exhaustive(&MinOfAll::new(), &m, 5, 3, 1000).is_err());
    }

    #[test]
    fn parameters_validated() {
        let m = named::simple_ring(3).unwrap();
        assert!(check_exhaustive(&MinOfAll::new(), &m, 0, 1, 1000).is_err());
        assert!(check_exhaustive(&MinOfAll::new(), &m, 2, 0, 1000).is_err());
    }

    #[test]
    fn witness_is_reproducible() {
        let m = named::star_unions(3, 1).unwrap();
        let rep = check_exhaustive(&MinOfAll::new(), &m, 3, 1, 1_000_000).unwrap();
        let w = rep.witness.expect("nonempty exploration");
        // Re-running the witness schedule yields the same decisions.
        let again = execute_schedule(&MinOfAll::new(), &w.graphs, &w.inputs).unwrap();
        assert_eq!(again.decisions, w.decisions);
    }
}
