//! The full-information protocol and Def 2.5's `flat(·)`.
//!
//! The paper defines oblivious algorithms as full-information protocols
//! whose decision map only sees the **flattened** view: after rounds of
//! exchanging entire histories, `flat` forgets who said what when and
//! keeps only the `(process, initial value)` pairs. This module implements
//! the nested views literally and proves (in tests, and via
//! [`flatten_matches_oblivious_execution`] used by integration tests) that
//! flattening the full-information protocol reproduces exactly the flat
//! views the oblivious engine in [`execution`](crate::execution) computes
//! directly.

use crate::error::RuntimeError;
use ksa_core::task::Value;
use ksa_graphs::Digraph;
use ksa_topology::interpretation::FlatView;

/// A full-information view: either an initial value, or the bundle of
/// views received in the last round (sender → what the sender knew).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FullView {
    /// The process's initial value (the round-0 view).
    Input(Value),
    /// One round of received histories: `(sender, sender's previous
    /// view)`, sorted by sender.
    Round(Vec<(usize, FullView)>),
}

impl FullView {
    /// The nesting depth (0 for an initial value) — equals the number of
    /// rounds executed.
    pub fn depth(&self) -> usize {
        match self {
            FullView::Input(_) => 0,
            FullView::Round(pairs) => 1 + pairs.iter().map(|(_, v)| v.depth()).max().unwrap_or(0),
        }
    }

    /// Def 2.5's `flat`: the set of `(process, initial value)` pairs
    /// appearing anywhere in the view. `owner` is the process holding the
    /// view (needed to attribute a bare `Input`).
    pub fn flatten(&self, owner: usize) -> FlatView<Value> {
        let mut out = Vec::new();
        self.collect(owner, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect(&self, owner: usize, out: &mut Vec<(usize, Value)>) {
        match self {
            FullView::Input(v) => out.push((owner, *v)),
            FullView::Round(pairs) => {
                for (sender, view) in pairs {
                    view.collect(*sender, out);
                }
            }
        }
    }
}

/// Runs the full-information protocol along a fixed schedule and returns
/// the per-round nested views: `views[r][p]` after round `r`
/// (`views[0]` are the `Input`s).
///
/// # Errors
///
/// [`RuntimeError::BadParameter`] for an empty schedule;
/// [`RuntimeError::AdversaryGraphMismatch`] on size mismatches.
pub fn run_full_information(
    schedule: &[Digraph],
    inputs: &[Value],
) -> Result<Vec<Vec<FullView>>, RuntimeError> {
    if schedule.is_empty() {
        return Err(RuntimeError::BadParameter {
            name: "schedule",
            value: 0,
            domain: "non-empty",
        });
    }
    let n = inputs.len();
    let mut views: Vec<Vec<FullView>> = vec![inputs.iter().map(|&v| FullView::Input(v)).collect()];
    for (round, g) in schedule.iter().enumerate() {
        if g.n() != n {
            return Err(RuntimeError::AdversaryGraphMismatch {
                round,
                got: g.n(),
                n,
            });
        }
        let prev = views.last().expect("seeded");
        let next: Vec<FullView> = (0..n)
            .map(|p| FullView::Round(g.in_set(p).iter().map(|q| (q, prev[q].clone())).collect()))
            .collect();
        views.push(next);
    }
    Ok(views)
}

/// The bridge theorem behind Def 2.5, checked computationally: flattening
/// the full-information views equals the flat views of the oblivious
/// engine, at every round, for every process. Returns `Ok(true)` when
/// they all match.
///
/// # Errors
///
/// Propagates execution errors.
pub fn flatten_matches_oblivious_execution(
    schedule: &[Digraph],
    inputs: &[Value],
) -> Result<bool, RuntimeError> {
    let full = run_full_information(schedule, inputs)?;
    let oblivious = crate::execution::execute_schedule(
        &ksa_core::algorithms::MinOfAll::new(),
        schedule,
        inputs,
    )?;
    for (r, row) in full.iter().enumerate() {
        for (p, view) in row.iter().enumerate() {
            if view.flatten(p) != oblivious.views[r][p] {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_graphs::families;

    #[test]
    fn depth_counts_rounds() {
        let c = families::cycle(3).unwrap();
        let views = run_full_information(&[c.clone(), c], &[1, 2, 3]).unwrap();
        assert_eq!(views[0][0].depth(), 0);
        assert_eq!(views[1][0].depth(), 1);
        assert_eq!(views[2][0].depth(), 2);
    }

    #[test]
    fn flatten_input() {
        assert_eq!(FullView::Input(7).flatten(2), vec![(2, 7)]);
    }

    #[test]
    fn one_round_flatten_matches_in_set() {
        let c = families::cycle(3).unwrap();
        let views = run_full_information(std::slice::from_ref(&c), &[5, 6, 7]).unwrap();
        // p0 heard p2 (and itself): flat view {(0,5), (2,7)}.
        assert_eq!(views[1][0].flatten(0), vec![(0, 5), (2, 7)]);
    }

    #[test]
    fn nested_views_keep_provenance_but_flat_forgets_it() {
        // Two rounds of C3: p0's nested view distinguishes "p2 told me
        // p1's value" from "p1 told me directly"; flat does not.
        let c = families::cycle(3).unwrap();
        let views = run_full_information(&[c.clone(), c.clone()], &[5, 6, 7]).unwrap();
        let v = &views[2][0];
        // Structure: Round[(0, Round[...]), (2, Round[...])].
        match v {
            FullView::Round(pairs) => {
                assert_eq!(pairs.len(), 2);
                assert_eq!(pairs[0].0, 0);
                assert_eq!(pairs[1].0, 2);
            }
            _ => panic!("expected a Round view"),
        }
        // Flat view: after 2 rounds of C3, p0 heard everyone.
        assert_eq!(v.flatten(0), vec![(0, 5), (1, 6), (2, 7)]);
    }

    #[test]
    fn bridge_theorem_on_families() {
        for schedule in [
            vec![families::cycle(4).unwrap()],
            vec![families::cycle(4).unwrap(), families::path(4).unwrap()],
            vec![
                families::broadcast_star(4, 1).unwrap(),
                families::cycle(4).unwrap(),
                families::forward_matching(4).unwrap(),
            ],
        ] {
            assert!(flatten_matches_oblivious_execution(&schedule, &[9, 3, 5, 1]).unwrap());
        }
    }

    #[test]
    fn bridge_theorem_on_random_schedules() {
        use ksa_graphs::random::random_digraph;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(25);
        for _ in 0..20 {
            let schedule: Vec<Digraph> = (0..3)
                .map(|_| random_digraph(4, 0.4, &mut rng).expect("valid"))
                .collect();
            assert!(flatten_matches_oblivious_execution(&schedule, &[4, 8, 2, 6]).unwrap());
        }
    }

    #[test]
    fn empty_schedule_rejected() {
        assert!(run_full_information(&[], &[1, 2]).is_err());
    }

    #[test]
    fn duplicate_values_flatten_correctly() {
        // Same value at two processes: flat keeps both pairs (names
        // matter in the pair set, even though the oblivious decision only
        // uses values — exactly Def 2.5's point).
        let k = ksa_graphs::Digraph::complete(2).unwrap();
        let views = run_full_information(std::slice::from_ref(&k), &[5, 5]).unwrap();
        assert_eq!(views[1][0].flatten(0), vec![(0, 5), (1, 5)]);
    }
}
