//! Approximate consensus on non-split models (§2.1 context).
//!
//! The paper motivates closed-above models with the **non-split**
//! predicate — "each pair of processes hears from a common process" — used
//! by Charron-Bost, Függer and Nowak (the paper's \[8\]) to characterize
//! approximate consensus: with the midpoint averaging rule, the diameter
//! of the held values halves every non-split round, so ε-agreement is
//! reached in `⌈log2(D/ε)⌉` rounds.
//!
//! This module implements the averaging substrate and the contraction
//! analysis, giving the repository a second, quantitative agreement task
//! on the same communication models. The halving theorem is re-proved in
//! miniature in the tests: exhaustively over all non-split graphs on 3
//! processes, and refuted on split rounds (loops-only).

use crate::error::RuntimeError;
use ksa_graphs::Digraph;
use ksa_models::adversary::Adversary;

/// The midpoint averaging rule: next value = (min received + max
/// received) / 2.
fn midpoint(values: &[f64]) -> f64 {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (min + max) / 2.0
}

/// The spread (diameter) of held values.
pub fn diameter(values: &[f64]) -> f64 {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max > min {
        max - min
    } else {
        0.0
    }
}

/// Whether a graph is non-split: every pair of processes hears from a
/// common process (§2.1).
pub fn is_non_split(g: &Digraph) -> bool {
    let n = g.n();
    (0..n).all(|a| (a + 1..n).all(|b| !g.in_set(a).intersection(g.in_set(b)).is_empty()))
}

/// One averaging round along `g`: every process moves to the midpoint of
/// the values it receives.
///
/// # Errors
///
/// [`RuntimeError::InputLengthMismatch`] if sizes disagree.
pub fn averaging_round(g: &Digraph, values: &[f64]) -> Result<Vec<f64>, RuntimeError> {
    if g.n() != values.len() {
        return Err(RuntimeError::InputLengthMismatch {
            inputs: values.len(),
            n: g.n(),
        });
    }
    Ok((0..g.n())
        .map(|p| {
            let received: Vec<f64> = g.in_set(p).iter().map(|q| values[q]).collect();
            midpoint(&received)
        })
        .collect())
}

/// The trace of an approximate-consensus run.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxTrace {
    /// Values per round (`values[0]` = inputs).
    pub values: Vec<Vec<f64>>,
    /// Diameter per round.
    pub diameters: Vec<f64>,
    /// Round at which the diameter first dropped to ≤ ε (if it did within
    /// the budget).
    pub converged_at: Option<usize>,
}

/// Runs midpoint averaging under `adversary` until the diameter is ≤
/// `epsilon` or `max_rounds` elapse.
///
/// # Errors
///
/// [`RuntimeError::BadParameter`] for non-positive `epsilon`;
/// [`RuntimeError::AdversaryGraphMismatch`] on a misbehaving adversary.
pub fn run_approximate_consensus(
    adversary: &mut dyn Adversary,
    inputs: &[f64],
    epsilon: f64,
    max_rounds: usize,
) -> Result<ApproxTrace, RuntimeError> {
    if epsilon.is_nan() || epsilon <= 0.0 {
        return Err(RuntimeError::BadParameter {
            name: "epsilon",
            value: 0,
            domain: "(0, ∞)",
        });
    }
    let n = inputs.len();
    let mut values = vec![inputs.to_vec()];
    let mut diameters = vec![diameter(inputs)];
    let mut converged_at = (diameters[0] <= epsilon).then_some(0);
    for round in 0..max_rounds {
        if converged_at.is_some() {
            break;
        }
        let g = adversary.graph_for_round(round);
        if g.n() != n {
            return Err(RuntimeError::AdversaryGraphMismatch {
                round,
                got: g.n(),
                n,
            });
        }
        let next = averaging_round(&g, values.last().expect("seeded"))?;
        let d = diameter(&next);
        values.push(next);
        diameters.push(d);
        if d <= epsilon {
            converged_at = Some(round + 1);
        }
    }
    Ok(ApproxTrace {
        values,
        diameters,
        converged_at,
    })
}

/// The halving theorem's round budget: `⌈log2(D/ε)⌉` non-split rounds
/// suffice (0 when already within ε).
pub fn rounds_to_epsilon(initial_diameter: f64, epsilon: f64) -> usize {
    if initial_diameter <= epsilon {
        return 0;
    }
    (initial_diameter / epsilon).log2().ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_models::adversary::FixedSequence;
    use ksa_models::named;

    #[test]
    fn non_split_detection() {
        // A broadcast star is non-split; loops-only is split.
        assert!(is_non_split(
            &ksa_graphs::families::broadcast_star(3, 0).unwrap()
        ));
        assert!(!is_non_split(&Digraph::empty(3).unwrap()));
        // The directed 3-cycle IS non-split? In(0)={2,0}, In(1)={0,1}:
        // common = {0} ✓; In(2)={1,2} vs In(0)={2,0}: common {2} ✓;
        // In(1) vs In(2): common {1} ✓.
        assert!(is_non_split(&ksa_graphs::families::cycle(3).unwrap()));
        // C4 is split: In(0)={3,0} vs In(2)={1,2} share nothing.
        assert!(!is_non_split(&ksa_graphs::families::cycle(4).unwrap()));
    }

    #[test]
    fn diameter_halves_on_every_non_split_graph_n3() {
        // The Charron-Bost–Függer–Nowak halving, exhaustively: every
        // non-split 3-process graph contracts the diameter by ≥ 1/2 under
        // midpoint averaging, for a grid of inputs.
        let model = named::non_split_within(3, 1u128 << 18).unwrap();
        let grids: Vec<Vec<f64>> = vec![
            vec![0.0, 1.0, 0.5],
            vec![0.0, 1.0, 1.0],
            vec![-3.0, 2.0, 7.0],
            vec![1.0, 1.0, 1.0],
            vec![0.25, 0.5, 0.125],
        ];
        for g in model.graphs() {
            assert!(is_non_split(g));
            for inputs in &grids {
                let before = diameter(inputs);
                let after = diameter(&averaging_round(g, inputs).unwrap());
                assert!(
                    after <= before / 2.0 + 1e-12,
                    "graph {g}, inputs {inputs:?}: {before} -> {after}"
                );
            }
        }
    }

    #[test]
    fn split_round_can_stall() {
        // Loops-only: nobody learns anything; the diameter is unchanged.
        let e = Digraph::empty(3).unwrap();
        let inputs = [0.0, 1.0, 0.5];
        let after = averaging_round(&e, &inputs).unwrap();
        assert_eq!(after.to_vec(), inputs.to_vec());
    }

    #[test]
    fn values_stay_in_the_initial_hull() {
        let g = ksa_graphs::families::cycle(3).unwrap();
        let inputs = [0.0, 10.0, 4.0];
        let after = averaging_round(&g, &inputs).unwrap();
        for v in after {
            assert!((0.0..=10.0).contains(&v));
        }
    }

    #[test]
    fn convergence_within_log_budget() {
        // Kernel generators are non-split, so any schedule converges in
        // ⌈log2(D/ε)⌉ rounds.
        let model = named::non_empty_kernel(4).unwrap();
        let inputs = [0.0, 1.0, 0.25, 0.75];
        let eps = 1e-3;
        let budget = rounds_to_epsilon(diameter(&inputs), eps);
        assert_eq!(budget, 10);
        let mut adv = FixedSequence::new(vec![
            model.generators()[0].clone(),
            model.generators()[2].clone(),
        ]);
        let trace = run_approximate_consensus(&mut adv, &inputs, eps, budget).unwrap();
        assert!(trace.converged_at.is_some(), "{:?}", trace.diameters);
        assert!(trace.converged_at.unwrap() <= budget);
        // Diameters are non-increasing throughout.
        for w in trace.diameters.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn split_schedule_never_converges() {
        let mut adv = FixedSequence::new(vec![Digraph::empty(3).unwrap()]);
        let trace = run_approximate_consensus(&mut adv, &[0.0, 1.0, 0.5], 1e-3, 20).unwrap();
        assert_eq!(trace.converged_at, None);
        assert_eq!(trace.diameters.last().copied(), Some(1.0));
    }

    #[test]
    fn parameters_validated() {
        let mut adv = FixedSequence::new(vec![Digraph::empty(3).unwrap()]);
        assert!(run_approximate_consensus(&mut adv, &[0.0], 0.0, 5).is_err());
        let mut mismatched = FixedSequence::new(vec![Digraph::empty(4).unwrap()]);
        assert!(run_approximate_consensus(&mut mismatched, &[0.0, 1.0], 0.5, 5).is_err());
        assert!(averaging_round(&Digraph::empty(3).unwrap(), &[0.0]).is_err());
    }

    #[test]
    fn already_converged_inputs() {
        let mut adv = FixedSequence::new(vec![Digraph::complete(3).unwrap()]);
        let trace = run_approximate_consensus(&mut adv, &[5.0, 5.0, 5.0], 0.1, 3).unwrap();
        assert_eq!(trace.converged_at, Some(0));
        assert_eq!(rounds_to_epsilon(0.0, 0.1), 0);
    }
}
