//! # ksa-runtime
//!
//! The round-based execution substrate for the reproduction of *"K-set
//! agreement bounds in round-based models through combinatorial topology"*
//! (Shimi & Castañeda, PODC 2020).
//!
//! The theory crates compute what is and is not solvable; this crate
//! actually **runs** the algorithms:
//!
//! * [`execution`] — execute an oblivious algorithm (Def 2.5) for `r`
//!   communication-closed rounds under a graph [`Adversary`]
//!   (re-exported from `ksa-models`), collecting full traces;
//! * [`checker`] — exhaustive model checking for small instances: every
//!   generator schedule × every input assignment, verifying validity and
//!   counting distinct decisions (the empirical teeth of the upper
//!   bounds, and witness-finder for the lower bounds);
//! * [`monte_carlo`] — seeded random exploration for instances beyond the
//!   exhaustive budget.
//!
//! ## Quick example
//!
//! ```
//! use ksa_runtime::execution::execute;
//! use ksa_core::algorithms::MinOfAll;
//! use ksa_models::adversary::FixedSequence;
//! use ksa_graphs::families;
//!
//! // One round of C3: p0 hears p2, so it decides min(v0, v2).
//! let mut adv = FixedSequence::new(vec![families::cycle(3).unwrap()]);
//! let trace = execute(&MinOfAll::new(), &mut adv, &[5, 1, 3], 1).unwrap();
//! assert_eq!(trace.decisions, vec![3, 1, 1]);
//! ```

pub mod approx;
pub mod checker;
pub mod error;
pub mod execution;
pub mod full_info;
pub mod monte_carlo;

pub use error::RuntimeError;
pub use ksa_models::adversary::Adversary;
