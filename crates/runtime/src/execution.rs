//! Executing oblivious algorithms over communication-closed rounds.
//!
//! The execution model is exactly the paper's (§2): at each round, every
//! process sends its current **flat view** (the set of `(process, initial
//! value)` pairs it knows — obliviousness baked in); the round's
//! communication graph decides which messages arrive; receivers merge what
//! they got. After `r` rounds, the algorithm's decision map runs on each
//! final flat view.

use crate::error::RuntimeError;
use ksa_core::algorithms::ObliviousAlgorithm;
use ksa_core::task::Value;
use ksa_models::adversary::Adversary;
use ksa_topology::interpretation::FlatView;

/// A completed execution: the graphs played, the view evolution, the
/// decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionTrace {
    /// Initial values, indexed by process.
    pub inputs: Vec<Value>,
    /// The communication graph of each round.
    pub graphs: Vec<ksa_graphs::Digraph>,
    /// `views[round][process]`: the flat view after that round
    /// (`views[0]` is the initial singleton view).
    pub views: Vec<Vec<FlatView<Value>>>,
    /// Final decisions, indexed by process.
    pub decisions: Vec<Value>,
}

impl ExecutionTrace {
    /// Number of distinct decided values.
    pub fn distinct_decisions(&self) -> usize {
        let mut d = self.decisions.clone();
        d.sort_unstable();
        d.dedup();
        d.len()
    }
}

/// Merges two sorted flat views (set union).
fn merge(a: &FlatView<Value>, b: &FlatView<Value>) -> FlatView<Value> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Runs `algorithm` for `rounds` rounds under `adversary` from the given
/// inputs, returning the full trace.
///
/// # Errors
///
/// [`RuntimeError::BadParameter`] for `rounds = 0`;
/// [`RuntimeError::AdversaryGraphMismatch`] if the adversary misbehaves.
pub fn execute<A: ObliviousAlgorithm + ?Sized>(
    algorithm: &A,
    adversary: &mut dyn Adversary,
    inputs: &[Value],
    rounds: usize,
) -> Result<ExecutionTrace, RuntimeError> {
    if rounds == 0 {
        return Err(RuntimeError::BadParameter {
            name: "rounds",
            value: 0,
            domain: "[1, ∞)",
        });
    }
    let n = inputs.len();
    let mut views: Vec<Vec<FlatView<Value>>> = Vec::with_capacity(rounds + 1);
    views.push(
        inputs
            .iter()
            .enumerate()
            .map(|(p, &v)| vec![(p, v)])
            .collect(),
    );
    let mut graphs = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let g = adversary.graph_for_round(round);
        if g.n() != n {
            return Err(RuntimeError::AdversaryGraphMismatch {
                round,
                got: g.n(),
                n,
            });
        }
        let prev = views.last().expect("seeded with the initial views");
        let mut next: Vec<FlatView<Value>> = Vec::with_capacity(n);
        for p in 0..n {
            let mut acc: FlatView<Value> = Vec::new();
            for q in g.in_set(p).iter() {
                acc = merge(&acc, &prev[q]);
            }
            next.push(acc);
        }
        graphs.push(g);
        views.push(next);
    }
    let final_views = views.last().expect("at least one round ran");
    let decisions = (0..n)
        .map(|p| algorithm.decide(p, &final_views[p]))
        .collect();
    Ok(ExecutionTrace {
        inputs: inputs.to_vec(),
        graphs,
        views,
        decisions,
    })
}

/// Runs an execution along an explicit graph schedule (convenience wrapper
/// used everywhere by the checker).
///
/// # Errors
///
/// [`RuntimeError::BadParameter`] when `schedule` is empty; size
/// mismatches as in [`execute`].
pub fn execute_schedule<A: ObliviousAlgorithm + ?Sized>(
    algorithm: &A,
    schedule: &[ksa_graphs::Digraph],
    inputs: &[Value],
) -> Result<ExecutionTrace, RuntimeError> {
    if schedule.is_empty() {
        return Err(RuntimeError::BadParameter {
            name: "schedule",
            value: 0,
            domain: "non-empty",
        });
    }
    let mut adv = ksa_models::adversary::FixedSequence::new(schedule.to_vec());
    execute(algorithm, &mut adv, inputs, schedule.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_core::algorithms::{MinOfAll, MinOfDominatingSet};
    use ksa_graphs::{families, Digraph, ProcSet};
    use ksa_models::adversary::FixedSequence;

    #[test]
    fn one_round_cycle_views() {
        let c = families::cycle(3).unwrap();
        let trace =
            execute_schedule(&MinOfAll::new(), std::slice::from_ref(&c), &[5, 1, 3]).unwrap();
        // In(0) = {0, 2}: knows (0,5) and (2,3).
        assert_eq!(trace.views[1][0], vec![(0, 5), (2, 3)]);
        assert_eq!(trace.decisions, vec![3, 1, 1]);
        assert_eq!(trace.distinct_decisions(), 2);
    }

    #[test]
    fn complete_graph_floods_in_one_round() {
        let k = Digraph::complete(4).unwrap();
        let trace =
            execute_schedule(&MinOfAll::new(), std::slice::from_ref(&k), &[9, 2, 7, 4]).unwrap();
        for p in 0..4 {
            assert_eq!(trace.views[1][p].len(), 4);
            assert_eq!(trace.decisions[p], 2);
        }
        assert_eq!(trace.distinct_decisions(), 1);
    }

    #[test]
    fn loops_only_keeps_everyone_ignorant() {
        let e = Digraph::empty(3).unwrap();
        let trace =
            execute_schedule(&MinOfAll::new(), std::slice::from_ref(&e), &[4, 5, 6]).unwrap();
        assert_eq!(trace.decisions, vec![4, 5, 6]);
        assert_eq!(trace.distinct_decisions(), 3);
    }

    #[test]
    fn multi_round_flooding_on_cycle() {
        // C4 takes 3 rounds for full dissemination.
        let c = families::cycle(4).unwrap();
        let sched = vec![c.clone(), c.clone(), c];
        let trace = execute_schedule(&MinOfAll::new(), &sched, &[8, 1, 6, 3]).unwrap();
        for p in 0..4 {
            assert_eq!(trace.views[3][p].len(), 4, "p{p} knows everything");
            assert_eq!(trace.decisions[p], 1);
        }
        // After round 1 each process knows exactly 2 pairs.
        for p in 0..4 {
            assert_eq!(trace.views[1][p].len(), 2);
        }
    }

    #[test]
    fn views_match_product_dissemination() {
        // Who p knows after rounds g1, g2 = In of the product, dually.
        let g1 = families::cycle(4).unwrap();
        let g2 = families::broadcast_star(4, 2).unwrap();
        let sched = vec![g1.clone(), g2.clone()];
        let trace = execute_schedule(&MinOfAll::new(), &sched, &[0, 1, 2, 3]).unwrap();
        let prod = ksa_graphs::product::product(&g1, &g2).unwrap();
        for p in 0..4 {
            let known: ProcSet = trace.views[2][p].iter().map(|&(q, _)| q).collect();
            assert_eq!(known, prod.in_set(p), "p{p}");
        }
    }

    #[test]
    fn dominating_set_algorithm_on_ring_closure() {
        // Thm 3.2 in action: {p0, p2} dominates C4; at most 2 values
        // decided on ANY superset of C4.
        let c = families::cycle(4).unwrap();
        let alg = MinOfDominatingSet::for_graph(&c);
        let mut superset = c.clone();
        superset.add_edge(0, 2).unwrap();
        superset.add_edge(3, 1).unwrap();
        let trace = execute_schedule(&alg, std::slice::from_ref(&superset), &[4, 3, 2, 1]).unwrap();
        assert!(trace.distinct_decisions() <= 2, "{:?}", trace.decisions);
        // Validity: all decisions are inputs.
        for d in &trace.decisions {
            assert!(trace.inputs.contains(d));
        }
    }

    #[test]
    fn zero_rounds_rejected() {
        let mut adv = FixedSequence::new(vec![families::cycle(3).unwrap()]);
        assert!(execute(&MinOfAll::new(), &mut adv, &[1, 2, 3], 0).is_err());
        assert!(execute_schedule(&MinOfAll::new(), &[], &[1, 2, 3]).is_err());
    }

    #[test]
    fn adversary_size_mismatch_detected() {
        let mut adv = FixedSequence::new(vec![families::cycle(4).unwrap()]);
        let err = execute(&MinOfAll::new(), &mut adv, &[1, 2, 3], 1).unwrap_err();
        assert!(matches!(err, RuntimeError::AdversaryGraphMismatch { .. }));
    }

    #[test]
    fn merge_is_set_union() {
        let a = vec![(0, 1), (2, 3)];
        let b = vec![(1, 2), (2, 3)];
        assert_eq!(super::merge(&a, &b), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(super::merge(&a, &vec![]), a);
    }
}
