//! Deterministic fault injection for the analysis pipeline.
//!
//! A *fault site* is a named point in the codebase (worker entry, cache
//! read, cache write, …) that asks this crate "should I fail right now?"
//! before doing its real work. Which call actually fails is decided by a
//! *schedule*: a comma-separated spec armed once at startup, typically
//! from the `KSA_FAULTS` environment variable:
//!
//! ```text
//! worker_panic@2,cache_write_stall@1:10000
//! ```
//!
//! reads "the 2nd arrival at `worker_panic` panics; the 1st arrival at
//! `cache_write_stall` sleeps 10 000 ms". Occurrences are 1-based arrival
//! indices counted per site with an atomic counter, so a single-threaded
//! driver replays the exact same fault on every run — there is no
//! randomness anywhere in this crate. Multi-threaded drivers get
//! per-site determinism as long as arrivals at that site are ordered
//! (the server's cache and worker paths arrange exactly that in the
//! fault suite).
//!
//! The whole crate is feature-gated behind `enabled` and compiled out by
//! default, mirroring `ksa-obs`: the disabled stubs keep every call site
//! valid while [`arm`] fails loudly so a test suite can never silently
//! run with its faults missing.

/// A named fault site. The instrumented code names the site; the
/// schedule decides whether this arrival fails.
///
/// The spec names (`worker_panic`, …) are the `Display`/parse strings —
/// the registry is closed on purpose so a typo in `KSA_FAULTS` is an
/// arm-time error, not a silently inert fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Site {
    /// Inside a server worker, right before it runs a request: the
    /// injected fault is a deliberate panic the dispatcher must absorb.
    WorkerPanic,
    /// Reading a cache entry back from disk: the injected fault is a
    /// simulated I/O error ("injected fault: cache_read_io").
    CacheReadIo,
    /// Persisting a cache entry: the injected fault is a simulated I/O
    /// error before any byte is written.
    CacheWriteIo,
    /// Persisting a cache entry: the injected fault stalls mid-write
    /// (after the temp file exists, before the rename) for the
    /// scheduled number of milliseconds — the window a `kill -9` test
    /// aims at.
    CacheWriteStall,
    /// Inside the compute path of a request: the injected fault stalls
    /// for the scheduled number of milliseconds so a deadline can trip.
    ComputeStall,
}

/// Every site, in declaration order.
pub const ALL_SITES: [Site; 5] = [
    Site::WorkerPanic,
    Site::CacheReadIo,
    Site::CacheWriteIo,
    Site::CacheWriteStall,
    Site::ComputeStall,
];

impl Site {
    /// The spec/display name of this site.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Site::WorkerPanic => "worker_panic",
            Site::CacheReadIo => "cache_read_io",
            Site::CacheWriteIo => "cache_write_io",
            Site::CacheWriteStall => "cache_write_stall",
            Site::ComputeStall => "compute_stall",
        }
    }

    #[cfg_attr(not(any(feature = "enabled", test)), allow(dead_code))]
    fn from_name(name: &str) -> Option<Site> {
        ALL_SITES.iter().copied().find(|s| s.name() == name)
    }

    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    fn index(self) -> usize {
        match self {
            Site::WorkerPanic => 0,
            Site::CacheReadIo => 1,
            Site::CacheWriteIo => 2,
            Site::CacheWriteStall => 3,
            Site::ComputeStall => 4,
        }
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled fault, as returned by [`check`] when this arrival is
/// the scheduled occurrence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Stall duration for the `*_stall` sites; `0` for the others.
    pub stall_ms: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(not(any(feature = "enabled", test)), allow(dead_code))]
struct Entry {
    site: Site,
    occurrence: u64,
    stall_ms: u64,
}

#[cfg_attr(not(any(feature = "enabled", test)), allow(dead_code))]
fn parse_spec(spec: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, rest) = part
            .split_once('@')
            .ok_or_else(|| format!("fault spec `{part}`: expected site@occurrence[:millis]"))?;
        let site = Site::from_name(name.trim())
            .ok_or_else(|| format!("fault spec `{part}`: unknown site `{}`", name.trim()))?;
        let (occ_str, stall_ms) = match rest.split_once(':') {
            Some((occ, ms)) => {
                let ms: u64 = ms
                    .trim()
                    .parse()
                    .map_err(|_| format!("fault spec `{part}`: bad millis `{ms}`"))?;
                (occ, ms)
            }
            None => (rest, 0),
        };
        let occurrence: u64 = occ_str
            .trim()
            .parse()
            .map_err(|_| format!("fault spec `{part}`: bad occurrence `{occ_str}`"))?;
        if occurrence == 0 {
            return Err(format!(
                "fault spec `{part}`: occurrences are 1-based arrival indices"
            ));
        }
        entries.push(Entry {
            site,
            occurrence,
            stall_ms,
        });
    }
    Ok(entries)
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{parse_spec, Entry, Fault, Site, ALL_SITES};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    static SCHEDULE: Mutex<Option<Vec<Entry>>> = Mutex::new(None);
    static ARRIVALS: [AtomicU64; ALL_SITES.len()] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];

    /// Arm a schedule, replacing any previous one and resetting all
    /// arrival counters.
    ///
    /// # Errors
    ///
    /// Returns the parse error message for a malformed spec; nothing is
    /// armed in that case.
    pub fn arm(spec: &str) -> Result<(), String> {
        let entries = parse_spec(spec)?;
        let mut guard = SCHEDULE.lock().unwrap();
        for counter in &ARRIVALS {
            counter.store(0, Ordering::Relaxed);
        }
        *guard = Some(entries);
        Ok(())
    }

    /// Arm from the `KSA_FAULTS` environment variable if it is set.
    /// Returns `Ok(true)` if a schedule was armed.
    ///
    /// # Errors
    ///
    /// Propagates the parse error for a malformed variable.
    pub fn arm_from_env() -> Result<bool, String> {
        match std::env::var("KSA_FAULTS") {
            Ok(spec) => arm(&spec).map(|()| true),
            Err(_) => Ok(false),
        }
    }

    /// Drop the schedule and reset arrival counters.
    pub fn disarm() {
        let mut guard = SCHEDULE.lock().unwrap();
        for counter in &ARRIVALS {
            counter.store(0, Ordering::Relaxed);
        }
        *guard = None;
    }

    /// Whether a schedule is currently armed.
    #[must_use]
    pub fn armed() -> bool {
        SCHEDULE.lock().unwrap().is_some()
    }

    /// How many arrivals `site` has seen since the schedule was armed.
    #[must_use]
    pub fn arrivals(site: Site) -> u64 {
        ARRIVALS[site.index()].load(Ordering::Relaxed)
    }

    /// Record an arrival at `site` and return the scheduled fault if
    /// this arrival is one. With no armed schedule this is a single
    /// relaxed atomic increment.
    #[must_use]
    pub fn check(site: Site) -> Option<Fault> {
        let arrival = ARRIVALS[site.index()].fetch_add(1, Ordering::Relaxed) + 1;
        let guard = SCHEDULE.lock().unwrap();
        let entries = guard.as_ref()?;
        entries
            .iter()
            .find(|e| e.site == site && e.occurrence == arrival)
            .map(|e| Fault {
                stall_ms: e.stall_ms,
            })
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{Fault, Site};

    /// Disabled stub: fault injection is compiled out, so arming is a
    /// loud error — a suite that sets a schedule must notice the feature
    /// is missing rather than run green with no faults.
    pub fn arm(_spec: &str) -> Result<(), String> {
        Err("ksa-faults compiled without the `enabled` feature".to_string())
    }

    /// Disabled stub: reports whether `KSA_FAULTS` is set, and errors if
    /// it is — see [`arm`].
    pub fn arm_from_env() -> Result<bool, String> {
        match std::env::var("KSA_FAULTS") {
            Ok(_) => arm(""),
            Err(_) => return Ok(false),
        }
        .map(|()| true)
    }

    /// Disabled stub: nothing to disarm.
    pub fn disarm() {}

    /// Disabled stub: never armed.
    #[must_use]
    pub fn armed() -> bool {
        false
    }

    /// Disabled stub: no arrivals are counted.
    #[must_use]
    pub fn arrivals(_site: Site) -> u64 {
        0
    }

    /// Disabled stub: never a fault. Inlines to `None`.
    #[inline(always)]
    #[must_use]
    pub fn check(_site: Site) -> Option<Fault> {
        None
    }
}

pub use imp::{arm, arm_from_env, armed, arrivals, check, disarm};

/// Panic if this arrival at `site` is scheduled. The panic payload names
/// the site so `catch_unwind` handlers can report it.
pub fn maybe_panic(site: Site) {
    if check(site).is_some() {
        panic!("injected fault: {site}");
    }
}

/// Return a simulated I/O error if this arrival at `site` is scheduled.
///
/// # Errors
///
/// `ErrorKind::Other` with a message naming the site, only on the
/// scheduled arrival.
pub fn maybe_io_error(site: Site) -> std::io::Result<()> {
    match check(site) {
        Some(_) => Err(std::io::Error::other(format!("injected fault: {site}"))),
        None => Ok(()),
    }
}

/// Sleep for the scheduled duration if this arrival at `site` is a
/// scheduled stall.
pub fn maybe_stall(site: Site) {
    if let Some(fault) = check(site) {
        if fault.stall_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(fault.stall_ms));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_rejects() {
        let entries = parse_spec("worker_panic@2,cache_write_stall@1:250").unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].site, Site::WorkerPanic);
        assert_eq!(entries[0].occurrence, 2);
        assert_eq!(entries[0].stall_ms, 0);
        assert_eq!(entries[1].site, Site::CacheWriteStall);
        assert_eq!(entries[1].stall_ms, 250);
        assert!(parse_spec("").unwrap().is_empty());
        assert!(parse_spec("no_such_site@1").is_err());
        assert!(parse_spec("worker_panic").is_err());
        assert!(parse_spec("worker_panic@0").is_err());
        assert!(parse_spec("worker_panic@x").is_err());
        assert!(parse_spec("compute_stall@1:abc").is_err());
    }

    #[test]
    fn site_names_round_trip() {
        for site in ALL_SITES {
            assert_eq!(Site::from_name(site.name()), Some(site));
        }
        assert_eq!(Site::from_name("bogus"), None);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn schedule_fires_on_exact_arrival() {
        // Tests in this crate share the global schedule; this is the
        // only enabled-mode test, so no cross-test interference.
        arm("cache_read_io@2").unwrap();
        assert!(armed());
        assert!(check(Site::CacheReadIo).is_none());
        assert_eq!(check(Site::CacheReadIo), Some(Fault { stall_ms: 0 }));
        assert!(check(Site::CacheReadIo).is_none());
        assert_eq!(arrivals(Site::CacheReadIo), 3);
        assert_eq!(arrivals(Site::WorkerPanic), 0);
        assert!(maybe_io_error(Site::CacheWriteIo).is_ok());
        disarm();
        assert!(!armed());
        assert_eq!(arrivals(Site::CacheReadIo), 0);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_stubs_are_inert_and_arm_fails() {
        assert!(arm("worker_panic@1").is_err());
        assert!(!armed());
        assert!(check(Site::WorkerPanic).is_none());
        assert!(maybe_io_error(Site::CacheReadIo).is_ok());
        maybe_panic(Site::WorkerPanic);
        maybe_stall(Site::ComputeStall);
        assert_eq!(arrivals(Site::WorkerPanic), 0);
    }
}
