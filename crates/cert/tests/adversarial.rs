//! Adversarial integration tests: every checker must reject a mutated
//! certificate (ISSUE: ≥ 1 rejection test per cert kind), and each
//! reject path is paired with the accept path it perturbs, so a checker
//! that rejects everything cannot pass either. All mutations go through
//! the public textual surface where possible — the same bytes
//! `cert-check` consumes.

use ksa_cert::{
    check_homology, check_shelling, check_solvability, Cert, CertError, HomologyCert, RankWitness,
    ShellingCert, ShellingVerdict, SolvVerdict, SolvabilityCert,
};

/// The 4-facet path graph (as a 1-dimensional complex): shellable in
/// index order, and order-sensitive enough that prefix permutations
/// break the step condition.
fn path_cert() -> ShellingCert {
    ShellingCert {
        label: "path-4".into(),
        facets: vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]],
        verdict: ShellingVerdict::Order(vec![0, 1, 2, 3]),
    }
}

/// The circle (empty triangle): b̃ = (0, 1), connectivity 0, with the
/// full GF(2) witness for rank ∂₁ = 2.
fn circle_cert() -> HomologyCert {
    HomologyCert {
        label: "circle".into(),
        facets: vec![vec![0, 1], vec![0, 2], vec![1, 2]],
        betti: vec![0, 1],
        connectivity: 0,
        ranks: vec![RankWitness {
            k: 1,
            rank: 2,
            basis: vec![vec![0, 1], vec![1, 2]],
            combo: vec![vec![0], vec![2]],
        }],
    }
}

/// Binary consensus on 2 processes over the complete graph: decide the
/// minimum heard value.
fn consensus_cert() -> SolvabilityCert {
    SolvabilityCert {
        label: "consensus".into(),
        n: 2,
        k: 1,
        value_max: 1,
        graphs: vec![vec![vec![0, 1], vec![0, 1]]],
        verdict: SolvVerdict::Map(vec![
            (vec![(0, 0), (1, 0)], 0),
            (vec![(0, 0), (1, 1)], 0),
            (vec![(0, 1), (1, 0)], 0),
            (vec![(0, 1), (1, 1)], 1),
        ]),
    }
}

fn rejected(result: Result<(), CertError>) -> bool {
    matches!(result, Err(CertError::Reject(_)))
}

#[test]
fn shelling_accepts_then_rejects_permuted_prefix() {
    let good = path_cert();
    assert_eq!(check_shelling(&good), Ok(()));
    // Permute the prefix so a later facet arrives before its neighbor:
    // [1,2] ∩ ([2,3] ∪ …) at position where the union misses vertex 1.
    let mut bad = good.clone();
    bad.verdict = ShellingVerdict::Order(vec![0, 2, 1, 3]);
    assert!(rejected(check_shelling(&bad)), "permuted prefix must fail");
    // A non-permutation (duplicate index) is rejected structurally.
    let mut dup = good.clone();
    dup.verdict = ShellingVerdict::Order(vec![0, 0, 2, 3]);
    assert!(rejected(check_shelling(&dup)));
    // A false exhaustion claim on the same (shellable) facets is
    // refuted by the checker's own brute force.
    let mut lie = good;
    lie.verdict = ShellingVerdict::Exhausted { states: 7 };
    assert!(rejected(check_shelling(&lie)));
}

#[test]
fn homology_accepts_then_rejects_rank_off_by_one() {
    let good = circle_cert();
    assert_eq!(check_homology(&good), Ok(()));
    // Claim rank 1 with a single basis row: the reduction test finds
    // an original row that does not vanish against the basis.
    let mut bad = good.clone();
    bad.ranks[0] = RankWitness {
        k: 1,
        rank: 1,
        basis: vec![vec![0, 1]],
        combo: vec![vec![0]],
    };
    // Make the Betti/connectivity arithmetic agree with the lie, so
    // only the witness verification itself can catch it.
    bad.betti = vec![1, 2];
    bad.connectivity = -1;
    assert!(rejected(check_homology(&bad)), "rank off by one must fail");
    // Lie about the Betti table while keeping the witness honest.
    let mut betti_lie = good.clone();
    betti_lie.betti = vec![1, 1];
    assert!(rejected(check_homology(&betti_lie)));
    // Lie about connectivity only.
    let mut conn_lie = good;
    conn_lie.connectivity = 1;
    assert!(rejected(check_homology(&conn_lie)));
}

#[test]
fn solvability_accepts_then_rejects_flipped_decision() {
    let good = consensus_cert();
    assert_eq!(check_solvability(&good), Ok(()));
    // Flip one decided value to something nobody holds in that view.
    let mut bad = good.clone();
    let SolvVerdict::Map(entries) = &mut bad.verdict else {
        unreachable!()
    };
    entries[0].1 = 1; // view {p0=0, p1=0} deciding 1: validity violation
    assert!(
        rejected(check_solvability(&bad)),
        "flipped decision must fail"
    );
    // Drop an entry: replay hits an uncovered view.
    let mut missing = good.clone();
    let SolvVerdict::Map(entries) = &mut missing.verdict else {
        unreachable!()
    };
    entries.remove(2);
    assert!(rejected(check_solvability(&missing)));
    // An exhaustion attestation at k ≥ n is impossible on its face.
    let mut absurd = good;
    absurd.k = 2;
    absurd.verdict = SolvVerdict::Exhausted {
        nodes: 5,
        symmetry_order: 2,
    };
    assert!(rejected(check_solvability(&absurd)));
}

#[test]
fn textual_mutations_are_rejected_end_to_end() {
    // Round-trip each kind through text, then corrupt the bytes the way
    // a broken (or malicious) producer would.
    for cert in [
        Cert::Shelling(path_cert()),
        Cert::Homology(circle_cert()),
        Cert::Solvability(consensus_cert()),
    ] {
        let text = cert.to_text();
        // The pristine text parses and checks.
        Cert::parse(&text).unwrap().check().unwrap();
        // Truncation (drop the final `done` sentinel and last line).
        let truncated: String = {
            let mut lines: Vec<&str> = text.lines().collect();
            lines.truncate(lines.len().saturating_sub(2));
            lines.join("\n")
        };
        assert!(
            Cert::parse(&truncated).is_err(),
            "truncated {} cert must not parse",
            cert.kind()
        );
        // Header tampering: an unknown kind is a parse error.
        let bad_header = text.replacen(cert.kind(), "nonsense", 1);
        assert!(Cert::parse(&bad_header).is_err());
    }
    // A numeric field corrupted in place: bump the claimed rank inside
    // the homology text (parse survives, the checker must not).
    let text = Cert::Homology(circle_cert()).to_text();
    let tampered = text.replacen("rank 1 2", "rank 1 3", 1);
    assert_ne!(text, tampered, "fixture text changed; update the tamper");
    // A stricter parser may refuse outright (rank > rows); if it
    // parses, the checker must reject.
    if let Ok(cert) = Cert::parse(&tampered) {
        assert!(cert.check().is_err(), "tampered rank must be rejected");
    }
}
