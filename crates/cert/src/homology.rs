//! GF(2) homology certificates: a reduced Betti table carried with an
//! explicit per-dimension rank witness.
//!
//! The witness makes both rank inequalities checkable without redoing
//! elimination blindly:
//!
//! - **rank ≥ r**: the certificate lists `r` basis rows with pairwise
//!   distinct leading columns (echelon shape ⇒ linearly independent)
//!   and, for each, the set of original boundary-row indices whose XOR
//!   reproduces it (⇒ each basis row really lies in the row space).
//! - **rank ≤ r**: the checker reduces *every* original boundary row
//!   against the basis; all of them must vanish.
//!
//! The original boundary rows themselves are **not** trusted from the
//! certificate: the checker rebuilds the face closure and the boundary
//! maps from the facet list with its own code (simple subset
//! enumeration + binary search), independent of the arena/echelon
//! machinery in `ksa_topology::chain`.

use crate::text::{push_label, push_nums, Cursor};
use crate::{strictly_ascending, symm_diff, CertError};
use std::collections::BTreeSet;

/// Hard cap on closure size the checker will rebuild (faces across all
/// dimensions). Way above anything the experiments emit; guards the
/// offline checker against adversarial blowup.
const MAX_CLOSURE_FACES: usize = 5_000_000;

/// An echelon basis + row-combination witness for `rank ∂_k = rank`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankWitness {
    /// Boundary dimension (`k ≥ 1`; the `k = 0` augmentation rank is
    /// always 1 for a nonempty complex and carried implicitly).
    pub k: u32,
    /// The certified rank.
    pub rank: u32,
    /// `rank` sparse rows (strictly ascending column indices into the
    /// sorted `(k−1)`-simplex list) with pairwise distinct leading
    /// columns.
    pub basis: Vec<Vec<u32>>,
    /// For each basis row, the strictly ascending indices (into the
    /// sorted `k`-simplex list) of the original boundary rows whose
    /// XOR equals it.
    pub combo: Vec<Vec<u32>>,
}

/// A reduced GF(2) Betti table for the complex spanned by `facets`,
/// certified by one [`RankWitness`] per boundary dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HomologyCert {
    /// Producer-assigned origin (model / round).
    pub label: String,
    /// Facets as strictly ascending vertex lists (mixed dimensions
    /// allowed; the checker closes them downward itself).
    pub facets: Vec<Vec<u32>>,
    /// Claimed reduced Betti numbers `b̃_0 … b̃_dim`.
    pub betti: Vec<u64>,
    /// Claimed connectivity in the `rounds` convention: the largest `c`
    /// with `b̃_0 = … = b̃_c = 0` minus nothing — concretely, first
    /// nonzero Betti index − 1, or `dim` when the whole table is zero
    /// (`−2` is reserved for empty complexes, which are never emitted).
    pub connectivity: i64,
    /// One witness per `k` in `1..=dim`, in order.
    pub ranks: Vec<RankWitness>,
}

impl HomologyCert {
    pub(crate) fn to_text_body(&self, out: &mut String) {
        push_label(out, &self.label);
        out.push_str(&format!("facets {}\n", self.facets.len()));
        for f in &self.facets {
            push_nums(out, f.iter().copied());
        }
        out.push_str("betti ");
        push_nums(out, self.betti.iter().copied());
        out.push_str(&format!("connectivity {}\n", self.connectivity));
        for w in &self.ranks {
            out.push_str(&format!("rank {} {}\n", w.k, w.rank));
            for (basis, combo) in w.basis.iter().zip(&w.combo) {
                out.push_str("basis ");
                push_nums(out, basis.iter().copied());
                out.push_str("combo ");
                push_nums(out, combo.iter().copied());
            }
        }
    }

    pub(crate) fn parse_body(cur: &mut Cursor<'_>) -> Result<Self, CertError> {
        let label = cur.tagged("label")?.to_string();
        let counts: Vec<usize> = crate::text::parse_nums(cur.tagged("facets")?)
            .map_err(|tok| cur.err(format!("bad facet count `{tok}`")))?;
        let [count] = counts[..] else {
            return Err(cur.err("expected `facets <count>`"));
        };
        let mut facets = Vec::with_capacity(count);
        for _ in 0..count {
            facets.push(cur.num_line::<u32>("a facet vertex line")?);
        }
        let betti: Vec<u64> = crate::text::parse_nums(cur.tagged("betti")?)
            .map_err(|tok| cur.err(format!("bad betti number `{tok}`")))?;
        let conns: Vec<i64> = crate::text::parse_nums(cur.tagged("connectivity")?)
            .map_err(|tok| cur.err(format!("bad connectivity `{tok}`")))?;
        let [connectivity] = conns[..] else {
            return Err(cur.err("expected `connectivity <c>`"));
        };
        let mut ranks = Vec::new();
        // One `rank k r` block per remaining dimension, each followed by
        // exactly r basis/combo line pairs. Betti length fixes how many
        // boundary dimensions there are.
        let dims = betti.len().saturating_sub(1);
        for _ in 0..dims {
            let header: Vec<u64> = crate::text::parse_nums(cur.tagged("rank")?)
                .map_err(|tok| cur.err(format!("bad rank header `{tok}`")))?;
            let [k, rank] = header[..] else {
                return Err(cur.err("expected `rank <k> <rank>`"));
            };
            let mut basis = Vec::with_capacity(rank as usize);
            let mut combo = Vec::with_capacity(rank as usize);
            for _ in 0..rank {
                let b = crate::text::parse_nums(cur.tagged("basis")?)
                    .map_err(|tok| cur.err(format!("bad basis column `{tok}`")))?;
                let c = crate::text::parse_nums(cur.tagged("combo")?)
                    .map_err(|tok| cur.err(format!("bad combo index `{tok}`")))?;
                basis.push(b);
                combo.push(c);
            }
            ranks.push(RankWitness {
                k: k as u32,
                rank: rank as u32,
                basis,
                combo,
            });
        }
        Ok(HomologyCert {
            label,
            facets,
            betti,
            connectivity,
            ranks,
        })
    }
}

/// Rebuild the face closure of `facets`, sorted per dimension. Returns
/// `closure[d]` = the strictly sorted list of `d`-simplexes.
fn face_closure(facets: &[Vec<u32>]) -> Result<Vec<Vec<Vec<u32>>>, CertError> {
    let dim = facets.iter().map(|f| f.len() - 1).max().unwrap_or(0);
    let mut by_dim: Vec<BTreeSet<Vec<u32>>> = vec![BTreeSet::new(); dim + 1];
    let mut total = 0usize;
    for f in facets {
        if f.len() > 25 {
            return Err(CertError::TooLarge(format!(
                "facet with {} vertices (subset closure would blow up)",
                f.len()
            )));
        }
        for mask in 1u32..(1u32 << f.len()) {
            let face: Vec<u32> = f
                .iter()
                .enumerate()
                .filter(|&(i, _)| (mask >> i) & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            let d = face.len() - 1;
            if by_dim[d].insert(face) {
                total += 1;
                if total > MAX_CLOSURE_FACES {
                    return Err(CertError::TooLarge(format!(
                        "face closure exceeds {MAX_CLOSURE_FACES} simplexes"
                    )));
                }
            }
        }
    }
    Ok(by_dim
        .into_iter()
        .map(|set| set.into_iter().collect())
        .collect())
}

/// Assemble the sparse GF(2) boundary rows `∂_k`: one row per
/// `k`-simplex, listing the indices of its `k+1` facets in the sorted
/// `(k−1)`-simplex list.
fn boundary_rows(k_simplexes: &[Vec<u32>], km1_simplexes: &[Vec<u32>]) -> Vec<Vec<u32>> {
    k_simplexes
        .iter()
        .map(|s| {
            let mut row: Vec<u32> = (0..s.len())
                .map(|drop| {
                    let face: Vec<u32> = s
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != drop)
                        .map(|(_, &v)| v)
                        .collect();
                    km1_simplexes
                        .binary_search(&face)
                        .expect("closure contains every face") as u32
                })
                .collect();
            row.sort_unstable();
            row
        })
        .collect()
}

/// Verify one [`RankWitness`] against independently rebuilt rows.
fn verify_witness(w: &RankWitness, rows: &[Vec<u32>], ncols: usize) -> Result<(), CertError> {
    let k = w.k;
    if w.basis.len() != w.rank as usize || w.combo.len() != w.rank as usize {
        return Err(CertError::Reject(format!(
            "rank witness for ∂_{k} claims rank {} but carries {} basis / {} combo rows",
            w.rank,
            w.basis.len(),
            w.combo.len()
        )));
    }
    // Each basis row: well-formed, reproduced by its combo, leading
    // columns pairwise distinct (echelon shape ⇒ independence).
    let mut leading: Vec<u32> = Vec::with_capacity(w.basis.len());
    for (i, (basis, combo)) in w.basis.iter().zip(&w.combo).enumerate() {
        if basis.is_empty()
            || !strictly_ascending(basis)
            || basis.iter().any(|&c| c as usize >= ncols)
        {
            return Err(CertError::Reject(format!(
                "∂_{k} basis row {i} is not a nonempty ascending column list below {ncols}"
            )));
        }
        if combo.is_empty()
            || !strictly_ascending(combo)
            || combo.iter().any(|&r| r as usize >= rows.len())
        {
            return Err(CertError::Reject(format!(
                "∂_{k} combo {i} is not a nonempty ascending row-index list below {}",
                rows.len()
            )));
        }
        let mut acc: Vec<u32> = Vec::new();
        for &r in combo {
            acc = symm_diff(&acc, &rows[r as usize]);
        }
        if acc != *basis {
            return Err(CertError::Reject(format!(
                "∂_{k} basis row {i} is not the XOR of its cited boundary rows"
            )));
        }
        if leading.contains(&basis[0]) {
            return Err(CertError::Reject(format!(
                "∂_{k} basis rows share leading column {} (not echelon)",
                basis[0]
            )));
        }
        leading.push(basis[0]);
    }
    // Every original row must reduce to zero against the basis, which
    // bounds the rank from above by the witnessed value.
    for (ri, row) in rows.iter().enumerate() {
        let mut acc = row.clone();
        while let Some(&lead) = acc.first() {
            let Some(bi) = leading.iter().position(|&l| l == lead) else {
                return Err(CertError::Reject(format!(
                    "∂_{k} row {ri} does not reduce to zero against the basis \
                     (leading column {lead} uncovered): rank is higher than claimed"
                )));
            };
            acc = symm_diff(&acc, &w.basis[bi]);
        }
    }
    Ok(())
}

/// Standalone checker for [`HomologyCert`].
///
/// Rebuilds the face closure and boundary maps from the facet list,
/// verifies every rank witness (independence + row-space membership +
/// full-row reduction), then recomputes the reduced Betti table
/// `b̃_k = c_k − rank ∂_k − rank ∂_{k+1}` (with the augmentation rank
/// `rank ∂_0 = 1`) and the connectivity, and compares both against the
/// certificate's claims.
///
/// # Errors
///
/// [`CertError::Reject`] with the refuting reason; [`CertError::TooLarge`]
/// if the closure exceeds the checker's replay cap.
pub fn check_homology(cert: &HomologyCert) -> Result<(), CertError> {
    ksa_obs::count(ksa_obs::Counter::CertsChecked, 1);
    if cert.facets.is_empty() {
        return Err(CertError::Reject("certificate has no facets".into()));
    }
    for (i, f) in cert.facets.iter().enumerate() {
        if f.is_empty() || !strictly_ascending(f) {
            return Err(CertError::Reject(format!(
                "facet {i} is not a strictly ascending nonempty vertex list"
            )));
        }
    }
    let closure = face_closure(&cert.facets)?;
    let dim = closure.len() - 1;
    if cert.betti.len() != dim + 1 {
        return Err(CertError::Reject(format!(
            "betti table has {} entries for a {dim}-dimensional complex",
            cert.betti.len()
        )));
    }
    if cert.ranks.len() != dim {
        return Err(CertError::Reject(format!(
            "expected one rank witness per dimension 1..={dim}, found {}",
            cert.ranks.len()
        )));
    }
    // rank ∂_0 (augmentation) = 1, rank ∂_{dim+1} = 0.
    let mut rank = vec![0u64; dim + 2];
    rank[0] = 1;
    for (i, w) in cert.ranks.iter().enumerate() {
        let k = i + 1;
        if w.k as usize != k {
            return Err(CertError::Reject(format!(
                "rank witness {i} is for ∂_{} but ∂_{k} was expected",
                w.k
            )));
        }
        let rows = boundary_rows(&closure[k], &closure[k - 1]);
        verify_witness(w, &rows, closure[k - 1].len())?;
        rank[k] = w.rank as u64;
    }
    for k in 0..=dim {
        let c_k = closure[k].len() as u64;
        let expect = c_k
            .checked_sub(rank[k] + rank[k + 1])
            .ok_or_else(|| CertError::Reject(format!("ranks exceed chain dimension at k = {k}")))?;
        if cert.betti[k] != expect {
            return Err(CertError::Reject(format!(
                "claimed b̃_{k} = {} but certified ranks give {expect}",
                cert.betti[k]
            )));
        }
    }
    let conn = connectivity_from_betti(&cert.betti, dim);
    if cert.connectivity != conn {
        return Err(CertError::Reject(format!(
            "claimed connectivity {} but the betti table gives {conn}",
            cert.connectivity
        )));
    }
    Ok(())
}

/// Connectivity in the `rounds` convention (first nonzero reduced Betti
/// index − 1; `dim` when the table vanishes entirely).
pub(crate) fn connectivity_from_betti(betti: &[u64], dim: usize) -> i64 {
    betti
        .iter()
        .position(|&b| b != 0)
        .map(|k| k as i64 - 1)
        .unwrap_or(dim as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hollow triangle: b̃ = (0, 1), rank ∂_1 = 2.
    fn circle() -> HomologyCert {
        HomologyCert {
            label: "circle".into(),
            facets: vec![vec![0, 1], vec![0, 2], vec![1, 2]],
            betti: vec![0, 1],
            connectivity: 0,
            ranks: vec![RankWitness {
                k: 1,
                rank: 2,
                // Rows of ∂_1 (edges sorted [01],[02],[12] over vertices
                // 0,1,2): [0,1], [0,2], [1,2].
                basis: vec![vec![0, 1], vec![1, 2]],
                combo: vec![vec![0], vec![2]],
            }],
        }
    }

    #[test]
    fn accepts_circle() {
        assert_eq!(check_homology(&circle()), Ok(()));
    }

    #[test]
    fn rejects_rank_off_by_one() {
        let mut cert = circle();
        cert.ranks[0].rank = 1;
        cert.ranks[0].basis.pop();
        cert.ranks[0].combo.pop();
        // Rank 1 can't reduce all three rows to zero.
        assert!(matches!(check_homology(&cert), Err(CertError::Reject(_))));
    }

    #[test]
    fn rejects_wrong_betti_or_connectivity() {
        let mut cert = circle();
        cert.betti = vec![0, 0];
        assert!(matches!(check_homology(&cert), Err(CertError::Reject(_))));
        let mut cert = circle();
        cert.connectivity = 1;
        assert!(matches!(check_homology(&cert), Err(CertError::Reject(_))));
    }

    #[test]
    fn rejects_fabricated_basis_row() {
        let mut cert = circle();
        // [0, 2] is in the row space, but not the XOR of rows {0}.
        cert.ranks[0].basis[1] = vec![0, 2];
        cert.ranks[0].combo[1] = vec![0];
        assert!(matches!(check_homology(&cert), Err(CertError::Reject(_))));
    }

    #[test]
    fn filled_triangle_is_a_disk() {
        // Solid triangle: contractible, b̃ = (0, 0, 0).
        let cert = HomologyCert {
            label: "disk".into(),
            facets: vec![vec![0, 1, 2]],
            betti: vec![0, 0, 0],
            connectivity: 2,
            ranks: vec![
                RankWitness {
                    k: 1,
                    rank: 2,
                    basis: vec![vec![0, 1], vec![1, 2]],
                    combo: vec![vec![0], vec![2]],
                },
                RankWitness {
                    k: 2,
                    rank: 1,
                    basis: vec![vec![0, 1, 2]],
                    combo: vec![vec![0]],
                },
            ],
        };
        assert_eq!(check_homology(&cert), Ok(()));
    }
}
