//! Standalone certificate checker: `cert-check <file-or-dir>...`
//!
//! Reads every argument (directories are scanned for `*.cert` files,
//! sorted by name), parses and re-verifies each certificate with the
//! `ksa-cert` checkers, and exits nonzero if any certificate fails to
//! parse or is rejected. CI runs this over the files emitted by
//! `experiments --smoke --certs <dir>` (DESIGN.md §11).

use ksa_cert::Cert;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn collect(path: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "cert"))
            .collect();
        entries.sort();
        files.extend(entries);
    } else {
        files.push(path.to_path_buf());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: cert-check <file-or-dir>...");
        return ExitCode::FAILURE;
    }
    let mut files = Vec::new();
    for arg in &args {
        if let Err(err) = collect(Path::new(arg), &mut files) {
            eprintln!("cert-check: cannot read {arg}: {err}");
            return ExitCode::FAILURE;
        }
    }
    if files.is_empty() {
        eprintln!("cert-check: no .cert files found under {args:?}");
        return ExitCode::FAILURE;
    }
    let mut failures = 0usize;
    for file in &files {
        let name = file.display();
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(err) => {
                println!("REJECTED {name}: unreadable: {err}");
                failures += 1;
                continue;
            }
        };
        match Cert::parse(&text).and_then(|cert| cert.check().map(|()| cert)) {
            Ok(cert) => println!("OK {name} ({} `{}`)", cert.kind(), cert.label()),
            Err(err) => {
                println!("REJECTED {name}: {err}");
                failures += 1;
            }
        }
    }
    println!(
        "cert-check: {} certificate(s), {} rejected",
        files.len(),
        failures
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
