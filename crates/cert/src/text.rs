//! Line-based text (de)serialization helpers shared by the cert kinds.

use crate::CertError;

/// A strict line cursor over a certificate payload.
///
/// Lines are right-trimmed; trailing blank lines are ignored; interior
/// blank lines are a parse error (they would silently shift records).
pub(crate) struct Cursor<'a> {
    lines: Vec<&'a str>,
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(input: &'a str) -> Self {
        let mut lines: Vec<&'a str> = input.lines().map(str::trim_end).collect();
        while lines.last().is_some_and(|l| l.is_empty()) {
            lines.pop();
        }
        Cursor { lines, pos: 0 }
    }

    /// The 1-based number of the line most recently consumed (or about
    /// to be consumed when none has been).
    fn line_no(&self) -> usize {
        self.pos.max(1)
    }

    pub(crate) fn err(&self, msg: impl Into<String>) -> CertError {
        CertError::Parse {
            line: self.line_no(),
            msg: msg.into(),
        }
    }

    /// Consume and return the next line; `what` names the expectation
    /// for the truncated-input error message.
    pub(crate) fn next(&mut self, what: &str) -> Result<&'a str, CertError> {
        let line = self.lines.get(self.pos).copied().ok_or(CertError::Parse {
            line: self.pos + 1,
            msg: format!("unexpected end of certificate, expected {what}"),
        })?;
        self.pos += 1;
        if line.is_empty() {
            return Err(self.err(format!("blank line, expected {what}")));
        }
        Ok(line)
    }

    /// Consume a line of the form `<tag> <rest>`, returning `rest`
    /// (which may be empty for tags that carry no payload).
    pub(crate) fn tagged(&mut self, tag: &str) -> Result<&'a str, CertError> {
        let line = self.next(&format!("`{tag} ...`"))?;
        match line.strip_prefix(tag) {
            Some("") => Ok(""),
            Some(rest) if rest.starts_with(' ') => Ok(rest.trim_start()),
            _ => Err(self.err(format!("expected `{tag} ...`, found `{line}`"))),
        }
    }

    /// Consume a line of whitespace-separated numbers.
    pub(crate) fn num_line<T: std::str::FromStr>(
        &mut self,
        what: &str,
    ) -> Result<Vec<T>, CertError> {
        let line = self.next(what)?;
        parse_nums(line).map_err(|tok| self.err(format!("bad number `{tok}` in {what}")))
    }

    pub(crate) fn expect_done(&mut self) -> Result<(), CertError> {
        if self.pos < self.lines.len() {
            self.pos += 1;
            Err(self.err("trailing content after certificate"))
        } else {
            Ok(())
        }
    }
}

/// Parse whitespace-separated numbers; on failure returns the bad token.
pub(crate) fn parse_nums<T: std::str::FromStr>(s: &str) -> Result<Vec<T>, String> {
    s.split_whitespace()
        .map(|tok| tok.parse::<T>().map_err(|_| tok.to_string()))
        .collect()
}

/// Append `nums` to `out` separated by single spaces, then a newline.
pub(crate) fn push_nums<T: std::fmt::Display>(out: &mut String, nums: impl IntoIterator<Item = T>) {
    let mut first = true;
    for n in nums {
        if !first {
            out.push(' ');
        }
        first = false;
        out.push_str(&n.to_string());
    }
    out.push('\n');
}

/// Validate and serialize a label line. Labels are free-form but must
/// be single-line and nonempty; producers pass model / figure names.
pub(crate) fn push_label(out: &mut String, label: &str) {
    let clean: String = label
        .chars()
        .map(|c| if c.is_control() { '?' } else { c })
        .collect();
    out.push_str("label ");
    out.push_str(if clean.is_empty() { "unnamed" } else { &clean });
    out.push('\n');
}
