//! Machine-checkable certificates for the expensive verdicts of the
//! k-set agreement pipeline, with tiny standalone checkers.
//!
//! Every costly verdict the workspace produces — a shelling order
//! (Fig. 4 / Lemma 4.6 of the paper), a table of GF(2) Betti numbers,
//! a one-round solvability decision — can be emitted as a compact,
//! plain-data **certificate** and re-verified by a checker in this
//! crate. The point of the split (DESIGN.md §11):
//!
//! - **Checker independence.** The checkers share *no* search code with
//!   the producers. The shelling checker re-implements the shelling
//!   step condition over sorted `u32` slices; the homology checker
//!   rebuilds the face closure and boundary rows from the facet list
//!   and verifies an explicit row-combination witness; the solvability
//!   checker replays the decision map over every execution. A bug in
//!   the portfolio search, the chain engine, or the CSP solver cannot
//!   silently re-confirm itself.
//! - **Differential surface for parallelism.** Certificates are checked
//!   in-run by the `fig4`/`rounds`/`solv` experiments and offline by
//!   the [`cert-check`](../src/bin/cert-check.rs) binary over files
//!   emitted with `experiments --certs <dir>`, at any `KSA_THREADS`.
//! - **Plain data.** Certificates serialize to a line-based text format
//!   ([`Cert::to_text`] / [`Cert::parse`]) with no serde machinery, so
//!   a third party can audit or re-implement a checker from the format
//!   description alone.
//!
//! # Soundness scope
//!
//! Positive verdicts are *fully* certified: an accepted
//! [`ShellingCert`] order, [`HomologyCert`] rank table or
//! [`SolvabilityCert`] decision map is correct for the instance
//! embedded in the certificate, whatever the producer did. Negative
//! verdicts are certified exactly where exhaustive re-checking is
//! cheap (the shelling checker brute-forces all facet orders up to 8
//! facets) and otherwise carried as structural **attestations**
//! (exhaustion statistics + symmetry-group signature) whose internal
//! consistency is checked but whose search is not replayed. Binding a
//! certificate's embedded instance (interned facets, expanded graphs)
//! back to the original model is the producer's job; the `label` field
//! records the claimed origin for auditing.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod homology;
mod shelling;
mod solvability;
mod text;

pub use homology::{check_homology, HomologyCert, RankWitness};
pub use shelling::{check_shelling, ShellingCert, ShellingVerdict, BRUTE_FORCE_MAX_FACETS};
pub use solvability::{check_solvability, SolvVerdict, SolvabilityCert};

use std::fmt;

/// Why a certificate failed to parse or verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// The text payload is not a well-formed certificate.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was expected or found there.
        msg: String,
    },
    /// The certificate parsed but the checker refuted its claim.
    Reject(String),
    /// Replaying the certificate would exceed the checker's hard work
    /// cap (a malformed or adversarial instance, not a verdict).
    TooLarge(String),
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            CertError::Reject(msg) => write!(f, "certificate rejected: {msg}"),
            CertError::TooLarge(msg) => write!(f, "certificate too large to replay: {msg}"),
        }
    }
}

impl std::error::Error for CertError {}

/// Magic first-line prefix of every serialized certificate.
pub const FORMAT_VERSION: &str = "ksa-cert/1";

/// A parsed certificate of any kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cert {
    /// A shellability verdict (order or exhaustion) for a pure complex.
    Shelling(ShellingCert),
    /// A reduced GF(2) Betti table with per-dimension rank witnesses.
    Homology(HomologyCert),
    /// A one-round solvability verdict (decision map or exhaustion).
    Solvability(SolvabilityCert),
}

impl Cert {
    /// The certificate kind tag used in the serialized header.
    pub fn kind(&self) -> &'static str {
        match self {
            Cert::Shelling(_) => "shelling",
            Cert::Homology(_) => "homology",
            Cert::Solvability(_) => "solvability",
        }
    }

    /// The producer-assigned origin label (model / figure / round).
    pub fn label(&self) -> &str {
        match self {
            Cert::Shelling(c) => &c.label,
            Cert::Homology(c) => &c.label,
            Cert::Solvability(c) => &c.label,
        }
    }

    /// Serialize to the line-based text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(FORMAT_VERSION);
        out.push(' ');
        out.push_str(self.kind());
        out.push('\n');
        match self {
            Cert::Shelling(c) => c.to_text_body(&mut out),
            Cert::Homology(c) => c.to_text_body(&mut out),
            Cert::Solvability(c) => c.to_text_body(&mut out),
        }
        out
    }

    /// Parse a certificate from its text serialization.
    pub fn parse(input: &str) -> Result<Cert, CertError> {
        let mut cur = text::Cursor::new(input);
        let header = cur.next("header")?;
        let mut tokens = header.split_whitespace();
        let version = tokens.next().unwrap_or("");
        if version != FORMAT_VERSION {
            return Err(cur.err(format!("expected `{FORMAT_VERSION} <kind>` header")));
        }
        let kind = tokens.next().unwrap_or("");
        let cert = match kind {
            "shelling" => Cert::Shelling(ShellingCert::parse_body(&mut cur)?),
            "homology" => Cert::Homology(HomologyCert::parse_body(&mut cur)?),
            "solvability" => Cert::Solvability(SolvabilityCert::parse_body(&mut cur)?),
            other => return Err(cur.err(format!("unknown certificate kind `{other}`"))),
        };
        cur.expect_done()?;
        Ok(cert)
    }

    /// Run the standalone checker for this certificate kind.
    pub fn check(&self) -> Result<(), CertError> {
        match self {
            Cert::Shelling(c) => check_shelling(c),
            Cert::Homology(c) => check_homology(c),
            Cert::Solvability(c) => check_solvability(c),
        }
    }
}

/// Sorted-slice symmetric difference (GF(2) row addition / set XOR).
///
/// Shared by the homology witness checks and the boundary-row replay;
/// exposed so adversarial tests can build witnesses without the chain
/// engine.
pub fn symm_diff(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

pub(crate) fn strictly_ascending(xs: &[u32]) -> bool {
    xs.windows(2).all(|w| w[0] < w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symm_diff_is_xor() {
        assert_eq!(symm_diff(&[1, 3, 5], &[3, 4]), vec![1, 4, 5]);
        assert_eq!(symm_diff(&[], &[2]), vec![2]);
        assert_eq!(symm_diff(&[2], &[2]), Vec::<u32>::new());
    }

    #[test]
    fn parse_rejects_bad_header() {
        assert!(matches!(
            Cert::parse("nonsense"),
            Err(CertError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            Cert::parse("ksa-cert/1 quux\n"),
            Err(CertError::Parse { line: 1, .. })
        ));
        assert!(matches!(Cert::parse(""), Err(CertError::Parse { .. })));
    }
}
