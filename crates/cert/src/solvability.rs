//! One-round solvability certificates: a decision map replayed over
//! every execution, or an impossibility attestation.
//!
//! The replay checker enumerates input assignments and process views
//! with its own counting loop — it shares no code with the CSP search,
//! propagation, or symmetry machinery in `ksa_core::solvability`, nor
//! with `ksa_core::verify::verify_decision_map` (the in-tree
//! differential tool the paper pipeline already had).

use crate::text::{push_label, push_nums, Cursor};
use crate::{strictly_ascending, CertError};

/// Hard cap on `graphs × executions × processes` replay work.
const MAX_REPLAY_WORK: u128 = 100_000_000;

/// One decision-map entry: a process view (strictly ascending
/// `(process, value)` pairs) and the decided value.
pub type MapEntry = (Vec<(u32, u32)>, u32);

/// The claim a [`SolvabilityCert`] makes about its task + graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolvVerdict {
    /// The task is solvable in one round: this decision map covers and
    /// solves every execution. Fully re-checked by replay.
    Map(Vec<MapEntry>),
    /// An exhaustive search (with symmetry breaking) proved the task
    /// unsolvable. Attested, not replayed: the checker validates the
    /// statistics' internal consistency and rejects claims that are
    /// impossible on their face (`k ≥ n`, or fewer values than `k+1`).
    Exhausted {
        /// Decision nodes the proving search explored.
        nodes: u64,
        /// Order of the symmetry group the search quotiented by; must
        /// divide `n! · (value_max+1)!`.
        symmetry_order: u64,
    },
}

/// A one-round k-set agreement verdict for an explicit execution set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolvabilityCert {
    /// Producer-assigned origin (model name + k).
    pub label: String,
    /// Number of processes.
    pub n: u32,
    /// Agreement bound: at most `k` distinct decisions per execution.
    pub k: u32,
    /// Inputs range over `0..=value_max`.
    pub value_max: u32,
    /// The executions: every communication graph of the (expanded)
    /// model, each given as `n` strictly ascending in-neighbour sets.
    pub graphs: Vec<Vec<Vec<u32>>>,
    /// The certified claim.
    pub verdict: SolvVerdict,
}

impl SolvabilityCert {
    pub(crate) fn to_text_body(&self, out: &mut String) {
        push_label(out, &self.label);
        out.push_str(&format!("task {} {} {}\n", self.n, self.k, self.value_max));
        out.push_str(&format!("graphs {}\n", self.graphs.len()));
        for g in &self.graphs {
            out.push_str("graph\n");
            for in_set in g {
                push_nums(out, in_set.iter().copied());
            }
        }
        match &self.verdict {
            SolvVerdict::Map(entries) => {
                out.push_str(&format!("map {}\n", entries.len()));
                for (view, decision) in entries {
                    out.push_str(&format!("entry {}", view.len()));
                    for &(p, v) in view {
                        out.push_str(&format!(" {p} {v}"));
                    }
                    out.push_str(&format!(" {decision}\n"));
                }
            }
            SolvVerdict::Exhausted {
                nodes,
                symmetry_order,
            } => {
                out.push_str(&format!("exhausted {nodes} {symmetry_order}\n"));
            }
        }
    }

    pub(crate) fn parse_body(cur: &mut Cursor<'_>) -> Result<Self, CertError> {
        let label = cur.tagged("label")?.to_string();
        let task: Vec<u32> = crate::text::parse_nums(cur.tagged("task")?)
            .map_err(|tok| cur.err(format!("bad task number `{tok}`")))?;
        let [n, k, value_max] = task[..] else {
            return Err(cur.err("expected `task <n> <k> <value_max>`"));
        };
        let gcounts: Vec<usize> = crate::text::parse_nums(cur.tagged("graphs")?)
            .map_err(|tok| cur.err(format!("bad graph count `{tok}`")))?;
        let [gcount] = gcounts[..] else {
            return Err(cur.err("expected `graphs <count>`"));
        };
        let mut graphs = Vec::with_capacity(gcount);
        for _ in 0..gcount {
            let marker = cur.next("`graph`")?;
            if marker != "graph" {
                return Err(cur.err(format!("expected `graph`, found `{marker}`")));
            }
            let mut in_sets = Vec::with_capacity(n as usize);
            for _ in 0..n {
                in_sets.push(cur.num_line::<u32>("an in-neighbour line")?);
            }
            graphs.push(in_sets);
        }
        let line = cur.next("`map <count>` or `exhausted <nodes> <sym>`")?;
        let verdict = if let Some(rest) = line.strip_prefix("map") {
            let counts: Vec<usize> = crate::text::parse_nums(rest)
                .map_err(|tok| cur.err(format!("bad entry count `{tok}`")))?;
            let [ecount] = counts[..] else {
                return Err(cur.err("expected `map <count>`"));
            };
            let mut entries = Vec::with_capacity(ecount);
            for _ in 0..ecount {
                let nums: Vec<u32> = crate::text::parse_nums(cur.tagged("entry")?)
                    .map_err(|tok| cur.err(format!("bad entry number `{tok}`")))?;
                let (&m, rest) = nums
                    .split_first()
                    .ok_or_else(|| cur.err("empty `entry` line"))?;
                if rest.len() != 2 * m as usize + 1 {
                    return Err(cur.err(format!(
                        "entry claims {m} pairs but carries {} numbers",
                        rest.len()
                    )));
                }
                let view: Vec<(u32, u32)> = rest[..2 * m as usize]
                    .chunks(2)
                    .map(|c| (c[0], c[1]))
                    .collect();
                entries.push((view, rest[2 * m as usize]));
            }
            SolvVerdict::Map(entries)
        } else if let Some(rest) = line.strip_prefix("exhausted") {
            let nums: Vec<u64> = crate::text::parse_nums(rest)
                .map_err(|tok| cur.err(format!("bad exhaustion number `{tok}`")))?;
            let [nodes, symmetry_order] = nums[..] else {
                return Err(cur.err("expected `exhausted <nodes> <symmetry_order>`"));
            };
            SolvVerdict::Exhausted {
                nodes,
                symmetry_order,
            }
        } else {
            return Err(cur.err(format!(
                "expected `map <count>` or `exhausted <nodes> <sym>`, found `{line}`"
            )));
        };
        Ok(SolvabilityCert {
            label,
            n,
            k,
            value_max,
            graphs,
            verdict,
        })
    }
}

/// Structural validation of the task and graph set.
fn check_instance(cert: &SolvabilityCert) -> Result<(), CertError> {
    let n = cert.n;
    if n == 0 {
        return Err(CertError::Reject("no processes".into()));
    }
    if cert.k == 0 {
        return Err(CertError::Reject("k = 0 admits no decisions at all".into()));
    }
    if cert.graphs.is_empty() {
        return Err(CertError::Reject("no communication graphs".into()));
    }
    for (gi, g) in cert.graphs.iter().enumerate() {
        if g.len() != n as usize {
            return Err(CertError::Reject(format!(
                "graph {gi} has {} in-sets for {n} processes",
                g.len()
            )));
        }
        for (p, in_set) in g.iter().enumerate() {
            if in_set.is_empty() || !strictly_ascending(in_set) || in_set.iter().any(|&q| q >= n) {
                return Err(CertError::Reject(format!(
                    "graph {gi} in-set of process {p} is not a nonempty ascending subset of 0..{n}"
                )));
            }
        }
    }
    Ok(())
}

/// Standalone checker for [`SolvabilityCert`].
///
/// For a [`SolvVerdict::Map`]: replays every execution — each graph of
/// the certificate against each of the `(value_max+1)^n` input
/// assignments — and checks **coverage** (every arising view is mapped),
/// **validity** (the decided value is held by some process in the view)
/// and **agreement** (at most `k` distinct decisions per execution).
/// For [`SolvVerdict::Exhausted`]: structural attestation only (see the
/// variant docs).
///
/// # Errors
///
/// [`CertError::Reject`] with the refuting reason; [`CertError::TooLarge`]
/// if replay would exceed the checker's hard work cap.
pub fn check_solvability(cert: &SolvabilityCert) -> Result<(), CertError> {
    ksa_obs::count(ksa_obs::Counter::CertsChecked, 1);
    check_instance(cert)?;
    let n = cert.n as usize;
    let values = cert.value_max as u128 + 1;
    match &cert.verdict {
        SolvVerdict::Map(entries) => {
            let executions = values
                .checked_pow(n as u32)
                .ok_or_else(|| CertError::TooLarge("input space overflows".into()))?;
            let work = executions
                .checked_mul(cert.graphs.len() as u128)
                .and_then(|w| w.checked_mul(n as u128))
                .ok_or_else(|| CertError::TooLarge("replay work overflows".into()))?;
            if work > MAX_REPLAY_WORK {
                return Err(CertError::TooLarge(format!(
                    "replay needs {work} view lookups (cap {MAX_REPLAY_WORK})"
                )));
            }
            for (i, (view, _)) in entries.iter().enumerate() {
                if view.is_empty() || !view.windows(2).all(|w| w[0].0 < w[1].0) {
                    return Err(CertError::Reject(format!(
                        "map entry {i} view is not strictly ascending by process"
                    )));
                }
                if i > 0 && entries[i - 1].0 >= entries[i].0 {
                    return Err(CertError::Reject(format!(
                        "map entries are not strictly sorted at index {i}"
                    )));
                }
            }
            // Replay: odometer over input assignments, decisions per
            // execution gathered and counted distinct.
            let mut inputs = vec![0u32; n];
            let mut view: Vec<(u32, u32)> = Vec::with_capacity(n);
            loop {
                for (gi, g) in cert.graphs.iter().enumerate() {
                    let mut decisions: Vec<u32> = Vec::with_capacity(n);
                    for in_set in g {
                        view.clear();
                        view.extend(in_set.iter().map(|&q| (q, inputs[q as usize])));
                        let idx = entries
                            .binary_search_by(|(v, _)| v.as_slice().cmp(view.as_slice()))
                            .map_err(|_| {
                                CertError::Reject(format!(
                                    "view {view:?} (graph {gi}, inputs {inputs:?}) is not mapped"
                                ))
                            })?;
                        let d = entries[idx].1;
                        if !view.iter().any(|&(_, v)| v == d) {
                            return Err(CertError::Reject(format!(
                                "decision {d} for view {view:?} is not a value in the view"
                            )));
                        }
                        decisions.push(d);
                    }
                    decisions.sort_unstable();
                    decisions.dedup();
                    if decisions.len() > cert.k as usize {
                        return Err(CertError::Reject(format!(
                            "{} distinct decisions (> k = {}) in graph {gi}, inputs {inputs:?}",
                            decisions.len(),
                            cert.k
                        )));
                    }
                }
                // Next input assignment.
                let mut pos = 0;
                while pos < n {
                    inputs[pos] += 1;
                    if inputs[pos] <= cert.value_max {
                        break;
                    }
                    inputs[pos] = 0;
                    pos += 1;
                }
                if pos == n {
                    break;
                }
            }
            Ok(())
        }
        SolvVerdict::Exhausted {
            nodes,
            symmetry_order,
        } => {
            if cert.k >= cert.n {
                return Err(CertError::Reject(
                    "k ≥ n is always solvable (decide any held value)".into(),
                ));
            }
            if values <= cert.k as u128 {
                return Err(CertError::Reject(
                    "fewer than k+1 input values is always solvable".into(),
                ));
            }
            if *nodes == 0 {
                return Err(CertError::Reject(
                    "exhaustion claims zero explored nodes".into(),
                ));
            }
            let full_group = factorial(cert.n as u128)
                .and_then(|a| factorial(values).and_then(|b| a.checked_mul(b)))
                .ok_or_else(|| CertError::TooLarge("symmetry group overflows".into()))?;
            if *symmetry_order == 0 || full_group % (*symmetry_order as u128) != 0 {
                return Err(CertError::Reject(format!(
                    "symmetry order {symmetry_order} does not divide n!·(value_max+1)! = {full_group}"
                )));
            }
            Ok(())
        }
    }
}

fn factorial(n: u128) -> Option<u128> {
    (1..=n).try_fold(1u128, |acc, i| acc.checked_mul(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Consensus (k = 1) on 2 processes over the complete graph with
    /// binary inputs: both processes always see everything, so "decide
    /// the minimum" works — 4 views, one per input assignment.
    fn consensus() -> SolvabilityCert {
        let entries: Vec<MapEntry> = vec![
            (vec![(0, 0), (1, 0)], 0),
            (vec![(0, 0), (1, 1)], 0),
            (vec![(0, 1), (1, 0)], 0),
            (vec![(0, 1), (1, 1)], 1),
        ];
        SolvabilityCert {
            label: "consensus-complete".into(),
            n: 2,
            k: 1,
            value_max: 1,
            graphs: vec![vec![vec![0, 1], vec![0, 1]]],
            verdict: SolvVerdict::Map(entries),
        }
    }

    #[test]
    fn accepts_consensus_map() {
        assert_eq!(check_solvability(&consensus()), Ok(()));
    }

    #[test]
    fn rejects_flipped_decision() {
        let mut cert = consensus();
        let SolvVerdict::Map(entries) = &mut cert.verdict else {
            unreachable!()
        };
        // Decide a value nobody holds.
        entries[0].1 = 1;
        assert!(matches!(
            check_solvability(&cert),
            Err(CertError::Reject(_))
        ));
    }

    #[test]
    fn rejects_agreement_violation() {
        let mut cert = consensus();
        // Two one-sided graphs make the processes decide their own
        // inputs on mixed assignments: 2 distinct decisions > k = 1.
        cert.graphs = vec![vec![vec![0], vec![1]]];
        let SolvVerdict::Map(entries) = &mut cert.verdict else {
            unreachable!()
        };
        *entries = vec![
            (vec![(0, 0)], 0),
            (vec![(0, 1)], 1),
            (vec![(1, 0)], 0),
            (vec![(1, 1)], 1),
        ];
        entries.sort();
        assert!(matches!(
            check_solvability(&cert),
            Err(CertError::Reject(_))
        ));
    }

    #[test]
    fn rejects_missing_view() {
        let mut cert = consensus();
        let SolvVerdict::Map(entries) = &mut cert.verdict else {
            unreachable!()
        };
        entries.pop();
        assert!(matches!(
            check_solvability(&cert),
            Err(CertError::Reject(_))
        ));
    }

    #[test]
    fn exhaustion_attestation_checks() {
        let good = SolvabilityCert {
            label: "imposs".into(),
            n: 3,
            k: 1,
            value_max: 1,
            graphs: vec![vec![vec![0], vec![1], vec![2]]],
            verdict: SolvVerdict::Exhausted {
                nodes: 10,
                symmetry_order: 12,
            },
        };
        assert_eq!(check_solvability(&good), Ok(()));
        let mut k_too_big = good.clone();
        k_too_big.k = 3;
        assert!(matches!(
            check_solvability(&k_too_big),
            Err(CertError::Reject(_))
        ));
        let mut bad_sym = good.clone();
        bad_sym.verdict = SolvVerdict::Exhausted {
            nodes: 10,
            symmetry_order: 7,
        };
        assert!(matches!(
            check_solvability(&bad_sym),
            Err(CertError::Reject(_))
        ));
    }
}
