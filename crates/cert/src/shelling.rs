//! Shellability certificates (§4.4, Figure 4 of the paper).
//!
//! The checker re-implements the shelling step condition from scratch
//! over sorted `u32` slices — it shares no code with
//! `ksa_topology::shelling`, whose simplex types and portfolio search
//! produce the certificates.

use crate::text::{push_label, push_nums, Cursor};
use crate::{strictly_ascending, CertError};

/// Above this facet count, a negative verdict is carried as an
/// attestation instead of being brute-forced (8! = 40320 orders).
pub const BRUTE_FORCE_MAX_FACETS: usize = 8;

/// The claim a [`ShellingCert`] makes about its facet list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShellingVerdict {
    /// The complex is shellable; the payload is a shelling order given
    /// as a permutation of facet indices. Fully re-checked.
    Order(Vec<u32>),
    /// The search proved no shelling order exists after exploring
    /// `states` dead facet subsets. Refuted by brute force up to
    /// [`BRUTE_FORCE_MAX_FACETS`] facets, attested above that.
    Exhausted {
        /// Dead used-sets recorded by the producing search (schedule-
        /// dependent for the portfolio; attestation data, not replayed).
        states: u64,
    },
}

/// A shellability verdict for a pure complex, carried with the facet
/// list itself (vertices interned to `u32` by the producer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShellingCert {
    /// Producer-assigned origin (figure / model / round).
    pub label: String,
    /// Facets as strictly ascending vertex lists, all the same length.
    pub facets: Vec<Vec<u32>>,
    /// The certified claim.
    pub verdict: ShellingVerdict,
}

impl ShellingCert {
    pub(crate) fn to_text_body(&self, out: &mut String) {
        push_label(out, &self.label);
        out.push_str(&format!("facets {}\n", self.facets.len()));
        for f in &self.facets {
            push_nums(out, f.iter().copied());
        }
        match &self.verdict {
            ShellingVerdict::Order(order) => {
                out.push_str("order ");
                push_nums(out, order.iter().copied());
            }
            ShellingVerdict::Exhausted { states } => {
                out.push_str(&format!("exhausted {states}\n"));
            }
        }
    }

    pub(crate) fn parse_body(cur: &mut Cursor<'_>) -> Result<Self, CertError> {
        let label = cur.tagged("label")?.to_string();
        let counts: Vec<usize> = crate::text::parse_nums(cur.tagged("facets")?)
            .map_err(|tok| cur.err(format!("bad facet count `{tok}`")))?;
        let [count] = counts[..] else {
            return Err(cur.err("expected `facets <count>`"));
        };
        let mut facets = Vec::with_capacity(count);
        for _ in 0..count {
            facets.push(cur.num_line::<u32>("a facet vertex line")?);
        }
        let line = cur.next("`order ...` or `exhausted <states>`")?;
        let verdict = if let Some(rest) = line.strip_prefix("order") {
            let order = crate::text::parse_nums(rest)
                .map_err(|tok| cur.err(format!("bad order index `{tok}`")))?;
            ShellingVerdict::Order(order)
        } else if let Some(rest) = line.strip_prefix("exhausted") {
            let nums: Vec<u64> = crate::text::parse_nums(rest)
                .map_err(|tok| cur.err(format!("bad state count `{tok}`")))?;
            let [states] = nums[..] else {
                return Err(cur.err("expected `exhausted <states>`"));
            };
            ShellingVerdict::Exhausted { states }
        } else {
            return Err(cur.err(format!(
                "expected `order ...` or `exhausted <states>`, found `{line}`"
            )));
        };
        Ok(ShellingCert {
            label,
            facets,
            verdict,
        })
    }
}

/// Sorted-slice intersection.
fn inter(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Whether sorted `a` ⊆ sorted `b`.
fn subset(a: &[u32], b: &[u32]) -> bool {
    inter(a, b).len() == a.len()
}

/// The shelling step condition, re-derived from the paper (§4.4): the
/// intersection of `facets[order[t]]` with the union of the earlier
/// facets must be non-void and pure of dimension `d − 1`, i.e. every
/// containment-maximal pairwise intersection has exactly `d` vertices.
fn step_admits(facets: &[Vec<u32>], order: &[u32], t: usize) -> bool {
    let new = &facets[order[t] as usize];
    let inters: Vec<Vec<u32>> = order[..t]
        .iter()
        .map(|&i| inter(&facets[i as usize], new))
        .filter(|s| !s.is_empty())
        .collect();
    if inters.is_empty() {
        return false;
    }
    inters.iter().enumerate().all(|(i, s)| {
        let dominated = inters
            .iter()
            .enumerate()
            .any(|(l, o)| l != i && s.len() < o.len() && subset(s, o));
        dominated || s.len() == new.len() - 1
    })
}

/// Whether `order` (a permutation of facet indices, already validated)
/// satisfies the step condition at every position.
#[cfg(test)]
fn order_shells(facets: &[Vec<u32>], order: &[u32]) -> bool {
    (1..order.len()).all(|t| step_admits(facets, order, t))
}

/// Structural validation shared by both verdict kinds: facets must be
/// nonempty, strictly ascending, pure (equal lengths) and distinct.
fn check_facets(facets: &[Vec<u32>]) -> Result<(), CertError> {
    if facets.is_empty() {
        return Err(CertError::Reject("certificate has no facets".into()));
    }
    let width = facets[0].len();
    for (i, f) in facets.iter().enumerate() {
        if f.is_empty() || !strictly_ascending(f) {
            return Err(CertError::Reject(format!(
                "facet {i} is not a strictly ascending nonempty vertex list"
            )));
        }
        if f.len() != width {
            return Err(CertError::Reject(format!(
                "facet {i} has {} vertices but facet 0 has {width} (not pure)",
                f.len()
            )));
        }
        if facets[..i].contains(f) {
            return Err(CertError::Reject(format!("facet {i} is a duplicate")));
        }
    }
    Ok(())
}

/// Standalone checker for [`ShellingCert`].
///
/// Accepts iff the facet list is structurally valid and the verdict
/// holds: a claimed order must be a permutation that satisfies the
/// independently re-implemented step condition at every position; a
/// claimed exhaustion is refuted by brute force over all facet orders
/// when there are at most [`BRUTE_FORCE_MAX_FACETS`] facets, and
/// otherwise only structurally attested (a complex with one facet is
/// always shellable, so tiny exhaustion claims are rejected outright).
///
/// # Errors
///
/// [`CertError::Reject`] with the refuting reason.
pub fn check_shelling(cert: &ShellingCert) -> Result<(), CertError> {
    ksa_obs::count(ksa_obs::Counter::CertsChecked, 1);
    check_facets(&cert.facets)?;
    let r = cert.facets.len();
    match &cert.verdict {
        ShellingVerdict::Order(order) => {
            if order.len() != r {
                return Err(CertError::Reject(format!(
                    "order has {} entries for {r} facets",
                    order.len()
                )));
            }
            let mut seen = vec![false; r];
            for &i in order {
                if (i as usize) >= r || seen[i as usize] {
                    return Err(CertError::Reject(format!(
                        "order is not a permutation of 0..{r} (index {i})"
                    )));
                }
                seen[i as usize] = true;
            }
            for t in 1..r {
                if !step_admits(&cert.facets, order, t) {
                    return Err(CertError::Reject(format!(
                        "step condition fails at position {t} (facet {})",
                        order[t]
                    )));
                }
            }
            Ok(())
        }
        ShellingVerdict::Exhausted { states } => {
            if r == 1 {
                return Err(CertError::Reject(
                    "a single-facet complex is always shellable".into(),
                ));
            }
            if *states == 0 {
                return Err(CertError::Reject(
                    "exhaustion claims zero explored states".into(),
                ));
            }
            if r <= BRUTE_FORCE_MAX_FACETS {
                // Independent refutation: try every order (Heap's
                // algorithm would do; plain recursion is clearer).
                let mut order: Vec<u32> = Vec::with_capacity(r);
                let mut used = vec![false; r];
                if some_order_shells(&cert.facets, &mut order, &mut used) {
                    return Err(CertError::Reject(
                        "a shelling order exists; exhaustion claim is false".into(),
                    ));
                }
            }
            Ok(())
        }
    }
}

/// Brute-force search for any valid order (checker-side refuter; prunes
/// on the step condition like any backtracker, but shares no code or
/// heuristics with the producer).
fn some_order_shells(facets: &[Vec<u32>], order: &mut Vec<u32>, used: &mut [bool]) -> bool {
    let r = facets.len();
    if order.len() == r {
        return true;
    }
    for i in 0..r {
        if used[i] {
            continue;
        }
        order.push(i as u32);
        let t = order.len() - 1;
        let ok = t == 0 || step_admits(facets, order, t);
        if ok {
            used[i] = true;
            if some_order_shells(facets, order, used) {
                return true;
            }
            used[i] = false;
        }
        order.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4a() -> Vec<Vec<u32>> {
        vec![vec![0, 1, 2], vec![0, 2, 3]]
    }

    fn fig4b() -> Vec<Vec<u32>> {
        vec![vec![0, 1, 2], vec![2, 3, 4]]
    }

    #[test]
    fn accepts_valid_order() {
        let cert = ShellingCert {
            label: "fig4a".into(),
            facets: fig4a(),
            verdict: ShellingVerdict::Order(vec![0, 1]),
        };
        assert_eq!(check_shelling(&cert), Ok(()));
    }

    #[test]
    fn rejects_order_on_unshellable_facets() {
        let cert = ShellingCert {
            label: "fig4b".into(),
            facets: fig4b(),
            verdict: ShellingVerdict::Order(vec![0, 1]),
        };
        assert!(matches!(check_shelling(&cert), Err(CertError::Reject(_))));
    }

    #[test]
    fn accepts_true_exhaustion_and_refutes_false_one() {
        let good = ShellingCert {
            label: "fig4b".into(),
            facets: fig4b(),
            verdict: ShellingVerdict::Exhausted { states: 2 },
        };
        assert_eq!(check_shelling(&good), Ok(()));
        let lie = ShellingCert {
            label: "fig4a".into(),
            facets: fig4a(),
            verdict: ShellingVerdict::Exhausted { states: 2 },
        };
        assert!(matches!(check_shelling(&lie), Err(CertError::Reject(_))));
    }

    #[test]
    fn step_condition_matches_paper_edge_cases() {
        // Shared vertex of the glued edge is dominated, not impure.
        let facets = vec![vec![0, 1, 5], vec![1, 6, 7], vec![0, 1, 2]];
        assert!(step_admits(&facets, &[0, 1, 2], 2));
        // A lone-vertex intersection alongside a full glue is impure.
        let facets = vec![vec![0, 1, 5], vec![2, 6, 7], vec![0, 1, 2]];
        assert!(!step_admits(&facets, &[0, 1, 2], 2));
    }

    #[test]
    fn order_shells_agrees_with_brute_force_on_path() {
        let path = vec![vec![0, 1], vec![1, 2], vec![2, 3]];
        assert!(order_shells(&path, &[0, 1, 2]));
        assert!(!order_shells(&path, &[0, 2, 1]));
    }
}
