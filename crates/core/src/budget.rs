//! Explicit exploration budgets — re-exported from [`ksa_graphs::budget`].
//!
//! [`RunBudget`] historically lived here (and before that in
//! `ksa-runtime::checker`); it moved to the bottom of the workspace so
//! the topology layer's multi-round pipeline can enforce the same budget
//! discipline without a dependency cycle (`ksa-core` depends on
//! `ksa-topology`, not the reverse). This module keeps the old paths
//! compiling: `ksa_core::budget::RunBudget` is the same type as
//! `ksa_graphs::budget::RunBudget`.

pub use ksa_graphs::budget::{BudgetExceeded, RunBudget};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_is_the_graphs_type() {
        // The re-export must stay the *same* type (not a copy), so
        // `From<BudgetExceeded> for CoreError` keeps accepting errors
        // produced by any layer.
        let err: ksa_graphs::budget::BudgetExceeded = RunBudget::new(1).admit("x", 2).unwrap_err();
        let _core: crate::error::CoreError = err.into();
    }
}
