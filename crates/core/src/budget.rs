//! Explicit exploration budgets, cancellation and deadlines —
//! re-exported from [`ksa_graphs::budget`] and [`ksa_graphs::cancel`].
//!
//! [`RunBudget`] historically lived here (and before that in
//! `ksa-runtime::checker`); it moved to the bottom of the workspace so
//! the topology layer's multi-round pipeline can enforce the same budget
//! discipline without a dependency cycle (`ksa-core` depends on
//! `ksa-topology`, not the reverse). This module keeps the old paths
//! compiling: `ksa_core::budget::RunBudget` is the same type as
//! `ksa_graphs::budget::RunBudget`.
//!
//! [`CancelToken`] and [`Deadline`] live next to the budget for the same
//! reason: every long-running search (the CSP k-sweep, the rounds/chain
//! pipeline, the shelling portfolio) polls the same token type, and the
//! graphs crate is the one layer all of them can see. A budget bounds
//! *how much* a computation may do; a token decides *whether it may keep
//! going* — both surface as dedicated [`CoreError`](crate::CoreError)
//! variants rather than sentinel verdicts.

pub use ksa_graphs::budget::{BudgetExceeded, RunBudget};
pub use ksa_graphs::cancel::{CancelToken, Deadline, Interrupted};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_is_the_graphs_type() {
        // The re-export must stay the *same* type (not a copy), so
        // `From<BudgetExceeded> for CoreError` keeps accepting errors
        // produced by any layer.
        let err: ksa_graphs::budget::BudgetExceeded = RunBudget::new(1).admit("x", 2).unwrap_err();
        let _core: crate::error::CoreError = err.into();
    }
}
