//! Homology-backed cross-check of the multi-round lower bounds
//! (Thm 5.1/5.4 at one round, Thm 6.10/6.11 at `r` rounds).
//!
//! The combinatorial multi-round lower bounds say: `k`-set agreement is
//! impossible in `r` rounds because the `r`-round protocol complex is
//! `(k−1)`-connected. [`crate::verify`] checks that claim topologically
//! at one round; this module extends the confrontation to a **round
//! sweep** — it builds the iterated-interpretation complexes of
//! [`ksa_topology::rounds`] for `r = 1, 2, …` over the chromatic input
//! complex and compares each round's measured homological connectivity
//! (DESIGN.md §2.2) with the `l` implied by
//! [`simple_multi_round_lower`](crate::bounds::lower::simple_multi_round_lower)
//! / [`general_multi_round_lower`](crate::bounds::lower::general_multi_round_lower)
//! on the product generators. The `rounds` experiment (EXPERIMENTS.md)
//! tabulates the sweep for the model zoo.
//!
//! The protocol complexes grow exponentially with the round count, so
//! the sweep is budget-guarded end to end ([`RunBudget`]) and intended
//! for the small zoo (`n ≤ 3`, a couple of rounds) — exactly the sizes
//! where the paper's worked examples live.

use crate::bounds::lower::best_lower_bound;
use crate::bounds::LowerBound;
use crate::budget::{CancelToken, RunBudget};
use crate::error::CoreError;
use crate::task::input_complex;
use ksa_models::ClosedAboveModel;
use ksa_topology::connectivity::Connectivity;
use ksa_topology::rounds::protocol_complex_rounds;
use std::fmt;

/// One round of the sweep: the topological measurement next to the
/// combinatorial prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundCrossCheck {
    /// The round count this row is about (1-based).
    pub round: usize,
    /// The strongest combinatorial lower bound at this round, if any
    /// (`None` when no non-trivial impossibility is proved).
    pub lower: Option<LowerBound>,
    /// The connectivity the lower-bound machinery implies for the
    /// protocol complex: `impossible_k − 1`, or `−1` when no bound
    /// applies (every non-void complex is `(−1)`-connected).
    pub predicted_l: isize,
    /// The measured homological connectivity of the round's complex.
    pub measured_connectivity: isize,
    /// The reduced Z/2 Betti numbers of the round's complex.
    pub betti: Vec<usize>,
    /// Facet count of the round's complex (size indicator).
    pub facets: usize,
    /// Distinct views interned at this round (arena footprint).
    pub interned_views: usize,
}

impl RoundCrossCheck {
    /// The theory requires the measured connectivity to reach the
    /// prediction: a violation would refute the combinatorial bound.
    pub fn is_consistent(&self) -> bool {
        self.measured_connectivity >= self.predicted_l
    }
}

/// The full round sweep for one model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundSweepReport {
    /// Number of processes.
    pub n: usize,
    /// Input values ranged over `{0, …, value_max}`.
    pub value_max: usize,
    /// One row per round, round 1 first.
    pub per_round: Vec<RoundCrossCheck>,
}

impl RoundSweepReport {
    /// Whether every round's measurement supports its prediction.
    pub fn is_consistent(&self) -> bool {
        self.per_round.iter().all(RoundCrossCheck::is_consistent)
    }
}

impl fmt::Display for RoundSweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "round sweep for n = {}, values ≤ {}:",
            self.n, self.value_max
        )?;
        for row in &self.per_round {
            writeln!(
                f,
                "  r = {}: facets {:>6}, conn {} (predicted ≥ {}), betti {:?}{}",
                row.round,
                row.facets,
                row.measured_connectivity,
                row.predicted_l,
                row.betti,
                if row.is_consistent() {
                    ""
                } else {
                    "  ← VIOLATION"
                }
            )?;
        }
        Ok(())
    }
}

/// Builds the `rounds`-round iterated protocol complexes of `model` over
/// `Ψ(Π, [0, value_max])` and confronts each round's homological
/// connectivity with the combinatorial multi-round lower bound
/// ([`best_lower_bound`], i.e. Thm 5.1/6.10 on simple models and
/// Thm 5.4/6.11 on general ones, with the scoping of DESIGN.md §5.3).
///
/// # Errors
///
/// [`CoreError::Topology`] when `budget` is exceeded (the input complex
/// and every round's facet product are admitted against it) and for
/// `rounds = 0`; graph-layer errors otherwise.
pub fn cross_check_round_sweep(
    model: &ClosedAboveModel,
    value_max: usize,
    rounds: usize,
    budget: impl Into<RunBudget>,
) -> Result<RoundSweepReport, CoreError> {
    round_sweep_impl(model, value_max, rounds, budget.into(), None)
}

/// [`cross_check_round_sweep`] with a cooperative [`CancelToken`]: the
/// token is polled per round in the complex construction and per rank
/// reduction in the homology sweep — the two places the pipeline spends
/// its time — and a fired token surfaces as [`CoreError::Cancelled`] /
/// [`CoreError::DeadlineExceeded`]. A token that never fires leaves the
/// report bit-identical to [`cross_check_round_sweep`] at any
/// `KSA_THREADS`.
///
/// # Errors
///
/// Same conditions as [`cross_check_round_sweep`], plus the two token
/// variants.
pub fn cross_check_round_sweep_cancellable(
    model: &ClosedAboveModel,
    value_max: usize,
    rounds: usize,
    budget: impl Into<RunBudget>,
    cancel: &CancelToken,
) -> Result<RoundSweepReport, CoreError> {
    round_sweep_impl(model, value_max, rounds, budget.into(), Some(cancel))
}

fn round_sweep_impl(
    model: &ClosedAboveModel,
    value_max: usize,
    rounds: usize,
    budget: RunBudget,
    cancel: Option<&CancelToken>,
) -> Result<RoundSweepReport, CoreError> {
    let n = ksa_models::ObliviousModel::n(model);
    let input = input_complex(n, value_max, budget.max_executions)?;
    let rc = match cancel {
        Some(token) => ksa_topology::rounds::protocol_complex_rounds_cancellable(
            model.generators(),
            &input,
            rounds,
            budget,
            token,
        )?,
        None => protocol_complex_rounds(model.generators(), &input, rounds, budget)?,
    };
    // One chain-engine sweep over all rounds: each round's Betti numbers
    // and connectivity share a single closure/rank pass, and reduced row
    // bases carry over between rounds whenever the complexes embed
    // (DESIGN.md §7.3).
    let homology = match cancel {
        Some(token) => rc.homology_sweep_cancellable(token)?,
        None => rc.homology_sweep(),
    };
    let mut per_round = Vec::with_capacity(rounds);
    for (r, step) in (1..=rounds).zip(homology) {
        let complex = rc.complex_at(r).expect("round was materialized");
        let lower = best_lower_bound(model, r)?;
        let predicted_l = lower
            .as_ref()
            .map(|b| b.impossible_k as isize - 1)
            .unwrap_or(-1);
        let measured_connectivity = match step.connectivity {
            Connectivity::Empty => -2,
            Connectivity::Exactly(k) | Connectivity::AtLeast(k) => k,
        };
        per_round.push(RoundCrossCheck {
            round: r,
            lower,
            predicted_l,
            measured_connectivity,
            betti: step.betti,
            facets: complex.facet_count(),
            interned_views: rc.table_at(r).expect("round was materialized").len(),
        });
    }
    Ok(RoundSweepReport {
        n,
        value_max,
        per_round,
    })
}

/// [`cross_check_round_sweep`] plus one machine-checkable
/// [`ksa_cert::HomologyCert`] per round (DESIGN.md §11): every row of
/// the returned report is re-derived through the *certified* Betti
/// path ([`ksa_topology::chain::reduced_betti_certified`]), whose
/// witness a standalone checker can re-verify from the facet list
/// alone. The report is bit-identical to the uncertified sweep — the
/// certified path runs the same engine in the same canonical order, it
/// just cannot reuse reduced bases across rounds, so it trades the
/// sweep's carry-over for per-round witnesses.
///
/// Certificates are labelled `"<label> r=<round>"`, round 1 first.
///
/// # Errors
///
/// Same conditions as [`cross_check_round_sweep`].
pub fn cross_check_round_sweep_certified(
    model: &ClosedAboveModel,
    value_max: usize,
    rounds: usize,
    budget: impl Into<RunBudget>,
    label: &str,
) -> Result<(RoundSweepReport, Vec<ksa_cert::HomologyCert>), CoreError> {
    let budget = budget.into();
    let n = ksa_models::ObliviousModel::n(model);
    let input = input_complex(n, value_max, budget.max_executions)?;
    let rc = protocol_complex_rounds(model.generators(), &input, rounds, budget)?;
    let mut per_round = Vec::with_capacity(rounds);
    let mut certs = Vec::with_capacity(rounds);
    for r in 1..=rounds {
        let complex = rc.complex_at(r).expect("round was materialized");
        let lower = best_lower_bound(model, r)?;
        let predicted_l = lower
            .as_ref()
            .map(|b| b.impossible_k as isize - 1)
            .unwrap_or(-1);
        let (betti, cert) =
            ksa_topology::chain::reduced_betti_certified(complex, &format!("{label} r={r}"))
                .expect("protocol complexes are never void");
        // `HomologyCert::connectivity` uses the same convention as
        // `Connectivity::from_reduced_betti`: first nonzero index minus
        // one, or the dimension when the table vanishes.
        let measured_connectivity = cert.connectivity as isize;
        per_round.push(RoundCrossCheck {
            round: r,
            lower,
            predicted_l,
            measured_connectivity,
            betti,
            facets: complex.facet_count(),
            interned_views: rc.table_at(r).expect("round was materialized").len(),
        });
        certs.push(cert);
    }
    Ok((
        RoundSweepReport {
            n,
            value_max,
            per_round,
        },
        certs,
    ))
}

/// [`cross_check_round_sweep`] with the model resolved from the builtin
/// registry by name (any canonical spec string works:
/// `"stars{n=3,s=1}"`, `"random{n=3,p=0.5,seed=7,count=4}"`, …). The
/// same `budget` guards materialization and the sweep, so one ceiling
/// covers the whole confrontation — this is the entry point the `hunt`
/// experiment drives over random ensembles.
///
/// # Errors
///
/// [`CoreError::Model`] for unknown names, admission refusals, and
/// models that are not closed-above (the sweep needs generators); the
/// [`cross_check_round_sweep`] errors otherwise.
pub fn cross_check_round_sweep_by_name(
    name: &str,
    value_max: usize,
    rounds: usize,
    budget: impl Into<RunBudget>,
) -> Result<RoundSweepReport, CoreError> {
    let budget = budget.into();
    let resolved = ksa_models::registry::builtin().resolve(name, budget)?;
    let model = resolved
        .as_closed_above()
        .ok_or_else(|| ksa_models::ModelError::Spec {
            message: format!("{name} is not closed-above; the round sweep needs generators"),
        })?;
    cross_check_round_sweep(model, value_max, rounds, budget)
}

/// [`cross_check_round_sweep_by_name`] with a cooperative
/// [`CancelToken`] (see [`cross_check_round_sweep_cancellable`]) — the
/// entry point the analysis server's `rounds` query drives, so client
/// deadlines reach every stage of the pipeline.
///
/// # Errors
///
/// Same conditions as [`cross_check_round_sweep_by_name`], plus the two
/// token variants.
pub fn cross_check_round_sweep_by_name_cancellable(
    name: &str,
    value_max: usize,
    rounds: usize,
    budget: impl Into<RunBudget>,
    cancel: &CancelToken,
) -> Result<RoundSweepReport, CoreError> {
    let budget = budget.into();
    cancel.checkpoint()?;
    let resolved = ksa_models::registry::builtin().resolve(name, budget)?;
    let model = resolved
        .as_closed_above()
        .ok_or_else(|| ksa_models::ModelError::Spec {
            message: format!("{name} is not closed-above; the round sweep needs generators"),
        })?;
    round_sweep_impl(model, value_max, rounds, budget, Some(cancel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_models::named;

    #[test]
    fn by_name_matches_direct_call() {
        let direct =
            cross_check_round_sweep(&named::simple_ring(3).unwrap(), 1, 2, 1_000_000u128).unwrap();
        let by_name = cross_check_round_sweep_by_name("ring{n=3}", 1, 2, 1_000_000u128).unwrap();
        assert_eq!(direct, by_name);
        assert!(cross_check_round_sweep_by_name("no such model", 1, 1, 1_000u128).is_err());
        // Explicit models are rejected with a model error, not a panic.
        assert!(cross_check_round_sweep_by_name("nonsplit{n=3}", 1, 1, 1_000_000u128).is_err());
    }

    #[test]
    fn silent_token_matches_plain_sweep() {
        let model = named::simple_ring(3).unwrap();
        let plain = cross_check_round_sweep(&model, 1, 2, 1_000_000u128).unwrap();
        let token = CancelToken::new();
        let cancellable =
            cross_check_round_sweep_cancellable(&model, 1, 2, 1_000_000u128, &token).unwrap();
        assert_eq!(plain, cancellable);
        let by_name =
            cross_check_round_sweep_by_name_cancellable("ring{n=3}", 1, 2, 1_000_000u128, &token)
                .unwrap();
        assert_eq!(plain, by_name);
    }

    #[test]
    fn fired_token_interrupts_the_sweep() {
        let token = CancelToken::new();
        token.cancel();
        let err = cross_check_round_sweep_cancellable(
            &named::simple_ring(3).unwrap(),
            1,
            2,
            1_000_000u128,
            &token,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Cancelled));
        let err =
            cross_check_round_sweep_by_name_cancellable("ring{n=3}", 1, 2, 1_000_000u128, &token)
                .unwrap_err();
        assert!(matches!(err, CoreError::Cancelled));
    }

    #[test]
    fn certified_sweep_matches_and_certs_check() {
        let m = named::simple_ring(3).unwrap();
        let plain = cross_check_round_sweep(&m, 1, 2, 1_000_000u128).unwrap();
        let (certified, certs) =
            cross_check_round_sweep_certified(&m, 1, 2, 1_000_000u128, "ring{n=3}").unwrap();
        // The certified path must reproduce the sweep bit-identically.
        assert_eq!(plain, certified);
        assert_eq!(certs.len(), 2);
        for (r, cert) in (1..=2usize).zip(&certs) {
            assert_eq!(cert.label, format!("ring{{n=3}} r={r}"));
            ksa_cert::check_homology(cert).unwrap();
            // Round-trip through the textual format.
            let text = ksa_cert::Cert::Homology(cert.clone()).to_text();
            ksa_cert::Cert::parse(&text).unwrap().check().unwrap();
        }
    }

    #[test]
    fn simple_ring_sweep_is_consistent() {
        // ↑C3: γ(C3) = 2 ⇒ consensus impossible at r = 1 (predicted
        // l = 0); γ(C3²) = 1 ⇒ no bound at r = 2 (predicted l = −1).
        let m = named::simple_ring(3).unwrap();
        let sweep = cross_check_round_sweep(&m, 1, 2, 1_000_000u128).unwrap();
        assert_eq!(sweep.per_round.len(), 2);
        assert_eq!(sweep.per_round[0].predicted_l, 0);
        assert!(sweep.is_consistent(), "{sweep}");
        // The display names violations only when they happen.
        assert!(!sweep.to_string().contains("VIOLATION"));
    }

    #[test]
    fn star_unions_sweep_is_consistent() {
        // Stars n = 3, s = 1: the bound refuses to weaken with rounds
        // (Thm 6.13) — predicted l = 1 at both rounds.
        let m = named::star_unions(3, 1).unwrap();
        let sweep = cross_check_round_sweep(&m, 1, 2, 10_000_000u128).unwrap();
        assert_eq!(sweep.per_round[0].predicted_l, 1);
        assert_eq!(sweep.per_round[1].predicted_l, 1);
        assert!(sweep.is_consistent(), "{sweep}");
        // Facets grow with the round count; the arena keeps the views
        // interned rather than nested.
        assert!(sweep.per_round[1].facets >= sweep.per_round[0].facets);
        assert!(sweep.per_round[1].interned_views > 0);
    }

    #[test]
    fn budget_and_rounds_validated() {
        let m = named::simple_ring(3).unwrap();
        assert!(cross_check_round_sweep(&m, 1, 1, 5u128).is_err());
        assert!(cross_check_round_sweep(&m, 1, 0, 1_000u128).is_err());
    }
}
