//! One-stop bound reports for a model and round count.

use crate::bounds::lower::{general_multi_round_lower, simple_multi_round_lower};
use crate::bounds::upper::{
    covering_upper_bounds, gamma_eq_upper_bound, gamma_upper_bound, sequence_upper_bound,
};
use crate::bounds::{LowerBound, UpperBound};
use crate::error::CoreError;
use ksa_models::ClosedAboveModel;
use std::fmt;

/// Everything the paper says about one `(model, rounds)` pair.
#[derive(Debug, Clone)]
pub struct BoundsReport {
    /// Number of processes.
    pub n: usize,
    /// Round count the report is about.
    pub rounds: usize,
    /// Number of generators of the model.
    pub generator_count: usize,
    /// All upper bounds that apply (each theorem's contribution).
    pub uppers: Vec<UpperBound>,
    /// The per-`i` covering-bound family of Thm 3.7/6.5.
    pub covering_family: Vec<(usize, usize)>,
    /// All lower bounds that apply.
    pub lowers: Vec<LowerBound>,
}

impl BoundsReport {
    /// Computes the full report.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadParameter`] for `r = 0`; graph-layer errors
    /// otherwise.
    pub fn compute(model: &ClosedAboveModel, rounds: usize) -> Result<Self, CoreError> {
        let n = ksa_models::ObliviousModel::n(model);
        let mut uppers = Vec::new();
        if model.is_simple() {
            uppers.push(gamma_upper_bound(model, rounds)?);
        }
        uppers.push(gamma_eq_upper_bound(model, rounds)?);
        let covering = covering_upper_bounds(model, rounds)?;
        let covering_family: Vec<(usize, usize)> =
            covering.iter().map(|(i, b)| (*i, b.k)).collect();
        if let Some(best_cov) = covering.into_iter().map(|(_, b)| b).min_by_key(|b| b.k) {
            uppers.push(best_cov);
        }
        if let Some(b) = sequence_upper_bound(model, rounds)? {
            uppers.push(b);
        }
        let mut lowers = Vec::new();
        if model.is_simple() {
            // Thm 5.4 is scoped to general models (see bounds::lower).
            if let Some(b) = simple_multi_round_lower(model, rounds)? {
                lowers.push(b);
            }
        } else if let Some(b) = general_multi_round_lower(model, rounds)? {
            lowers.push(b);
        }
        let report = BoundsReport {
            n,
            rounds,
            generator_count: model.generators().len(),
            uppers,
            covering_family,
            lowers,
        };
        debug_assert!(report.is_consistent(), "bounds crossed: {report}");
        Ok(report)
    }

    /// The best (smallest-`k`) upper bound.
    pub fn best_upper(&self) -> Option<&UpperBound> {
        self.uppers.iter().min_by_key(|b| b.k)
    }

    /// The best (largest impossible `k`) lower bound.
    pub fn best_lower(&self) -> Option<&LowerBound> {
        self.lowers.iter().max_by_key(|b| b.impossible_k)
    }

    /// Soundness: every impossible `k` is below every solvable `k`.
    pub fn is_consistent(&self) -> bool {
        match (self.best_upper(), self.best_lower()) {
            (Some(u), Some(l)) => l.impossible_k < u.k,
            _ => true,
        }
    }

    /// Whether the bounds meet: solvable `k` = impossible `k` + 1.
    pub fn is_tight(&self) -> bool {
        matches!(
            (self.best_upper(), self.best_lower()),
            (Some(u), Some(l)) if u.k == l.impossible_k + 1
        )
    }

    /// The gap between the best upper and best lower bound
    /// (`0` = tight; `None` when no lower bound exists).
    pub fn gap(&self) -> Option<usize> {
        match (self.best_upper(), self.best_lower()) {
            (Some(u), Some(l)) => Some(u.k - (l.impossible_k + 1)),
            _ => None,
        }
    }
}

impl fmt::Display for BoundsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "bounds for n = {}, {} generators, r = {}:",
            self.n, self.generator_count, self.rounds
        )?;
        for u in &self.uppers {
            writeln!(f, "  solvable:   {}-set agreement  [{}]", u.k, u.theorem)?;
        }
        for l in &self.lowers {
            writeln!(
                f,
                "  impossible: {}-set agreement  [{}]",
                l.impossible_k, l.theorem
            )?;
        }
        match self.gap() {
            Some(0) => writeln!(f, "  => TIGHT"),
            Some(g) => writeln!(f, "  => gap {g}"),
            None => writeln!(f, "  => no non-trivial lower bound"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_models::named;

    #[test]
    fn star_union_report_tight() {
        let m = named::star_unions(5, 2).unwrap();
        let r = BoundsReport::compute(&m, 1).unwrap();
        assert!(r.is_consistent());
        assert!(r.is_tight());
        assert_eq!(r.gap(), Some(0));
        assert_eq!(r.best_upper().unwrap().k, 4);
        assert_eq!(r.best_lower().unwrap().impossible_k, 3);
        let shown = r.to_string();
        assert!(shown.contains("TIGHT"));
    }

    #[test]
    fn fig1_second_model_report() {
        let m = named::fig1_second_model().unwrap();
        let r = BoundsReport::compute(&m, 1).unwrap();
        assert_eq!(r.best_upper().unwrap().k, 3);
        assert!(r.is_consistent());
        // The covering family contains the paper's i = 2 entry.
        assert!(r.covering_family.contains(&(2, 3)));
    }

    #[test]
    fn simple_ring_reports_across_rounds() {
        let m = named::simple_ring(4).unwrap();
        let r1 = BoundsReport::compute(&m, 1).unwrap();
        assert!(r1.is_tight(), "{r1}"); // γ = 2 solvable, 1 impossible
        let r3 = BoundsReport::compute(&m, 3).unwrap();
        assert_eq!(r3.best_upper().unwrap().k, 1);
        assert!(r3.best_lower().is_none());
        assert!(r3.is_consistent());
    }

    #[test]
    fn consistency_across_zoo() {
        let models = vec![
            named::non_empty_kernel(4).unwrap(),
            named::symmetric_ring(4).unwrap(),
            named::star_unions(5, 4).unwrap(),
            named::tournament_within(3, 1u128 << 10).unwrap(),
            named::fig1_star_model().unwrap(),
        ];
        for m in models {
            for r in 1..=2 {
                let rep = BoundsReport::compute(&m, r).unwrap();
                assert!(rep.is_consistent(), "{rep}");
            }
        }
    }
}
