//! Every bound of the paper, as labeled, executable functions.
//!
//! * [`upper`] — Thms 3.2, 3.4, 3.7 (one round) and 6.3, 6.4, 6.5,
//!   6.7/6.9 (multiple rounds): values of `k` for which `k`-set agreement
//!   **is solvable**, each realized by a concrete algorithm;
//! * [`lower`] — Thms 5.1, 5.4, Cor 5.5 (one round) and 6.10, 6.11
//!   (multiple rounds): values of `k` for which `k`-set agreement **is
//!   not solvable**;
//! * [`stars`] — the star-union family (Thm 6.13), where the two meet:
//!   the bounds are tight;
//! * [`report`] — one-stop [`report::BoundsReport`] assembling everything
//!   for a model and round count;
//! * [`cross_check`] — the multi-round lower bounds confronted with the
//!   measured connectivity of the iterated-interpretation protocol
//!   complexes (`ksa_topology::rounds`), round by round.
//!
//! Conventions: an *upper bound* `k` means "`k`-set agreement solvable"
//! (smaller is stronger); a *lower bound* is reported as the largest `k`
//! proved **impossible** (larger is stronger). Consistency requires
//! `best_upper ≥ best_impossible + 1`, which the report asserts and the
//! property tests check across random models.

pub mod cross_check;
pub mod extensions;
pub mod lower;
pub mod report;
pub mod stars;
pub mod upper;

/// An upper bound: `k`-set agreement is solvable, by the cited theorem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpperBound {
    /// The agreement degree that is solvable.
    pub k: usize,
    /// Which theorem produced the bound.
    pub theorem: &'static str,
    /// Rounds used by the witnessing algorithm.
    pub rounds: usize,
}

/// A lower bound: `impossible_k`-set agreement is **not** solvable, by the
/// cited theorem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerBound {
    /// The largest agreement degree proved impossible by this criterion.
    pub impossible_k: usize,
    /// Which theorem produced the bound.
    pub theorem: &'static str,
    /// Round count the impossibility is stated for.
    pub rounds: usize,
}
