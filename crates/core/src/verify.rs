//! Topological verification of the lower-bound engine (Thm 5.4 / App. B).
//!
//! The paper's argument: the one-round protocol complex of a closed-above
//! model over the input pseudosphere `Ψ(Π, [0, k])` is `l`-connected with
//! `l = min(γ_dist − 2, min_t t + M_t − 2)`; by the standard
//! connectivity-based impossibility, `(l+1)`-set agreement is then
//! unsolvable. This module rebuilds those protocol complexes explicitly
//! (small `n`) and measures their homological connectivity, confronting it
//! with the predicted `l` — the experiment behind EXPERIMENTS.md's `thm54`
//! rows.

use crate::bounds::lower::theorem_5_4_l;
use crate::error::CoreError;
use crate::solvability::DecisionMap;
use crate::task::{input_complex, Value};
use ksa_models::ClosedAboveModel;
use ksa_topology::connectivity::homological_connectivity;
use ksa_topology::interpretation::{protocol_complex_one_round, FlatView};

/// The outcome of one protocol-complex verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerificationReport {
    /// Number of processes.
    pub n: usize,
    /// Input values ranged over `{0, …, value_max}`.
    pub value_max: usize,
    /// The `l` predicted by Thm 5.4 from the combinatorial numbers.
    pub predicted_l: isize,
    /// The measured homological connectivity of the protocol complex.
    pub measured_connectivity: isize,
    /// Facet count of the protocol complex (size indicator).
    pub protocol_facets: usize,
}

impl VerificationReport {
    /// Thm 5.4 asserts the protocol complex is `l`-connected; the measured
    /// homological connectivity must be at least the prediction.
    pub fn is_consistent(&self) -> bool {
        self.measured_connectivity >= self.predicted_l
    }
}

/// Builds the one-round protocol complex of `model` over
/// `Ψ(Π, [0, value_max])` and confronts its homological connectivity with
/// the Thm 5.4 prediction.
///
/// Exponential in `n` (facet products) — intended for `n ≤ 4`,
/// `value_max ≤ 2`; `facet_limit` guards each materialized pseudosphere.
///
/// # Errors
///
/// [`CoreError::Topology`] when budgets are exceeded; graph-layer errors
/// otherwise.
pub fn verify_protocol_connectivity(
    model: &ClosedAboveModel,
    value_max: usize,
    facet_limit: u128,
) -> Result<VerificationReport, CoreError> {
    let n = ksa_models::ObliviousModel::n(model);
    let input = input_complex(n, value_max, facet_limit)?;
    let proto = protocol_complex_one_round(model.generators(), &input, facet_limit)?;
    let measured = homological_connectivity(&proto);
    let predicted = theorem_5_4_l(model.generators())?;
    Ok(VerificationReport {
        n,
        value_max,
        predicted_l: predicted,
        measured_connectivity: measured,
        protocol_facets: proto.facet_count(),
    })
}

/// The outcome of replaying a synthesized [`DecisionMap`] over every
/// execution of a model (all closure graphs × all input assignments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionReplayReport {
    /// Agreement target the map was synthesized for.
    pub k: usize,
    /// Executions replayed (closure graphs × input assignments).
    pub executions: usize,
    /// Largest number of distinct decisions any execution saw.
    pub max_distinct: usize,
    /// Views the map had no entry for (must be 0 — the decision
    /// procedure enumerates every reachable view).
    pub missing_views: usize,
    /// Decisions that violated validity (a value nobody in the view
    /// held; must be 0).
    pub invalid_decisions: usize,
}

impl DecisionReplayReport {
    /// Whether the map is a genuine k-set agreement algorithm on the
    /// replayed model: complete, valid, and within the agreement bound.
    pub fn is_valid(&self) -> bool {
        self.missing_views == 0 && self.invalid_decisions == 0 && self.max_distinct <= self.k
    }
}

/// Replays a [`DecisionMap`] witness (from
/// [`crate::solvability::decide_one_round`] or a sweep) over **every**
/// execution of `model` with inputs from `{0, …, value_max}`: every
/// closure graph of every generator × every input assignment × every
/// process. This checks the witness against the model itself, not
/// against the CSP encoding that produced it — the differential-test
/// backstop for the pruned search.
///
/// Exponential (closure enumeration × `values^n`); `graph_limit` guards
/// each generator's closure.
///
/// # Errors
///
/// [`CoreError::Graph`] when a closure exceeds `graph_limit`.
pub fn verify_decision_map(
    model: &ClosedAboveModel,
    k: usize,
    value_max: usize,
    map: &DecisionMap,
    graph_limit: usize,
) -> Result<DecisionReplayReport, CoreError> {
    let n = ksa_models::ObliviousModel::n(model);
    let values = value_max as Value + 1;
    let mut graphs = Vec::new();
    for g in model.generators() {
        graphs.extend(ksa_graphs::closure::enumerate_closure(g, graph_limit)?);
    }
    graphs.sort();
    graphs.dedup();
    let mut report = DecisionReplayReport {
        k,
        executions: 0,
        max_distinct: 0,
        missing_views: 0,
        invalid_decisions: 0,
    };
    for inputs in crate::solvability::input_assignments(n, values) {
        for g in &graphs {
            report.executions += 1;
            let mut decisions: Vec<Value> = Vec::with_capacity(n);
            for p in 0..n {
                let view: FlatView<Value> = g.in_set(p).iter().map(|q| (q, inputs[q])).collect();
                match map.decide(&view) {
                    None => report.missing_views += 1,
                    Some(d) => {
                        if !view.iter().any(|&(_, held)| held == d) {
                            report.invalid_decisions += 1;
                        }
                        if !decisions.contains(&d) {
                            decisions.push(d);
                        }
                    }
                }
            }
            report.max_distinct = report.max_distinct.max(decisions.len());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_models::named;
    use ksa_models::ClosedAboveModel;

    #[test]
    fn stars_n3_protocol_connectivity() {
        // n = 3, s = 1 stars: γ_dist = 3, M_t = n − t ⇒
        // l = min(1, 1 + 2 − 2) = 1. The protocol complex over binary-ish
        // inputs must be (homologically) at least 1-connected.
        let m = named::star_unions(3, 1).unwrap();
        let rep = verify_protocol_connectivity(&m, 1, 200_000).unwrap();
        assert_eq!(rep.predicted_l, 1);
        assert!(rep.is_consistent(), "{rep:?}");
    }

    #[test]
    fn ring_n3_protocol_connectivity() {
        let m = named::symmetric_ring(3).unwrap();
        let rep = verify_protocol_connectivity(&m, 1, 200_000).unwrap();
        assert!(rep.is_consistent(), "{rep:?}");
    }

    #[test]
    fn simple_model_protocol_connectivity() {
        let m = named::simple_ring(3).unwrap();
        let rep = verify_protocol_connectivity(&m, 2, 200_000).unwrap();
        assert!(rep.is_consistent(), "{rep:?}");
        assert!(rep.protocol_facets > 0);
    }

    #[test]
    fn clique_model_contractible_protocol() {
        // The clique's closure is a single graph: the protocol complex
        // over any input is one simplex per input facet glued along shared
        // views — connectivity at least 0 trivially, and the predicted l
        // is min(γ_dist−2, …) = −1 or less, consistent.
        let m = ClosedAboveModel::new(vec![ksa_graphs::Digraph::complete(3).unwrap()]).unwrap();
        let rep = verify_protocol_connectivity(&m, 1, 200_000).unwrap();
        assert!(rep.is_consistent(), "{rep:?}");
    }

    #[test]
    fn budget_guard() {
        let m = named::star_unions(4, 1).unwrap();
        assert!(verify_protocol_connectivity(&m, 3, 10).is_err());
    }

    #[test]
    fn decision_map_replay_validates_a_witness() {
        use crate::solvability::{decide_one_round, Solvability};
        let m = named::star_unions(3, 2).unwrap();
        let Solvability::Solvable(map) = decide_one_round(&m, 2, 2, 1 << 21, 1 << 24).unwrap()
        else {
            panic!("solvable");
        };
        let rep = verify_decision_map(&m, 2, 2, &map, 1 << 12).unwrap();
        assert!(rep.is_valid(), "{rep:?}");
        assert!(rep.executions > 0);
        assert_eq!(rep.max_distinct, 2);
        // The same map replayed against a stricter target must fail:
        // 1-set agreement is unsolvable on this model, so no witness can
        // keep every execution to one decision.
        let strict = verify_decision_map(&m, 1, 2, &map, 1 << 12).unwrap();
        assert!(!strict.is_valid());
    }

    #[test]
    fn decision_map_replay_budget_guard() {
        use crate::solvability::{decide_one_round, Solvability};
        let m = named::simple_ring(3).unwrap();
        let Solvability::Solvable(map) = decide_one_round(&m, 2, 2, 1 << 21, 1 << 24).unwrap()
        else {
            panic!("solvable");
        };
        assert!(verify_decision_map(&m, 2, 2, &map, 1).is_err());
    }
}
