//! Topological verification of the lower-bound engine (Thm 5.4 / App. B).
//!
//! The paper's argument: the one-round protocol complex of a closed-above
//! model over the input pseudosphere `Ψ(Π, [0, k])` is `l`-connected with
//! `l = min(γ_dist − 2, min_t t + M_t − 2)`; by the standard
//! connectivity-based impossibility, `(l+1)`-set agreement is then
//! unsolvable. This module rebuilds those protocol complexes explicitly
//! (small `n`) and measures their homological connectivity, confronting it
//! with the predicted `l` — the experiment behind EXPERIMENTS.md's `thm54`
//! rows.

use crate::bounds::lower::theorem_5_4_l;
use crate::error::CoreError;
use crate::task::input_complex;
use ksa_models::ClosedAboveModel;
use ksa_topology::connectivity::homological_connectivity;
use ksa_topology::interpretation::protocol_complex_one_round;

/// The outcome of one protocol-complex verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerificationReport {
    /// Number of processes.
    pub n: usize,
    /// Input values ranged over `{0, …, value_max}`.
    pub value_max: usize,
    /// The `l` predicted by Thm 5.4 from the combinatorial numbers.
    pub predicted_l: isize,
    /// The measured homological connectivity of the protocol complex.
    pub measured_connectivity: isize,
    /// Facet count of the protocol complex (size indicator).
    pub protocol_facets: usize,
}

impl VerificationReport {
    /// Thm 5.4 asserts the protocol complex is `l`-connected; the measured
    /// homological connectivity must be at least the prediction.
    pub fn is_consistent(&self) -> bool {
        self.measured_connectivity >= self.predicted_l
    }
}

/// Builds the one-round protocol complex of `model` over
/// `Ψ(Π, [0, value_max])` and confronts its homological connectivity with
/// the Thm 5.4 prediction.
///
/// Exponential in `n` (facet products) — intended for `n ≤ 4`,
/// `value_max ≤ 2`; `facet_limit` guards each materialized pseudosphere.
///
/// # Errors
///
/// [`CoreError::Topology`] when budgets are exceeded; graph-layer errors
/// otherwise.
pub fn verify_protocol_connectivity(
    model: &ClosedAboveModel,
    value_max: usize,
    facet_limit: u128,
) -> Result<VerificationReport, CoreError> {
    let n = ksa_models::ObliviousModel::n(model);
    let input = input_complex(n, value_max, facet_limit)?;
    let proto = protocol_complex_one_round(model.generators(), &input, facet_limit)?;
    let measured = homological_connectivity(&proto);
    let predicted = theorem_5_4_l(model.generators())?;
    Ok(VerificationReport {
        n,
        value_max,
        predicted_l: predicted,
        measured_connectivity: measured,
        protocol_facets: proto.facet_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_models::named;
    use ksa_models::ClosedAboveModel;

    #[test]
    fn stars_n3_protocol_connectivity() {
        // n = 3, s = 1 stars: γ_dist = 3, M_t = n − t ⇒
        // l = min(1, 1 + 2 − 2) = 1. The protocol complex over binary-ish
        // inputs must be (homologically) at least 1-connected.
        let m = named::star_unions(3, 1).unwrap();
        let rep = verify_protocol_connectivity(&m, 1, 200_000).unwrap();
        assert_eq!(rep.predicted_l, 1);
        assert!(rep.is_consistent(), "{rep:?}");
    }

    #[test]
    fn ring_n3_protocol_connectivity() {
        let m = named::symmetric_ring(3).unwrap();
        let rep = verify_protocol_connectivity(&m, 1, 200_000).unwrap();
        assert!(rep.is_consistent(), "{rep:?}");
    }

    #[test]
    fn simple_model_protocol_connectivity() {
        let m = named::simple_ring(3).unwrap();
        let rep = verify_protocol_connectivity(&m, 2, 200_000).unwrap();
        assert!(rep.is_consistent(), "{rep:?}");
        assert!(rep.protocol_facets > 0);
    }

    #[test]
    fn clique_model_contractible_protocol() {
        // The clique's closure is a single graph: the protocol complex
        // over any input is one simplex per input facet glued along shared
        // views — connectivity at least 0 trivially, and the predicted l
        // is min(γ_dist−2, …) = −1 or less, consistent.
        let m = ClosedAboveModel::new(vec![ksa_graphs::Digraph::complete(3).unwrap()]).unwrap();
        let rep = verify_protocol_connectivity(&m, 1, 200_000).unwrap();
        assert!(rep.is_consistent(), "{rep:?}");
    }

    #[test]
    fn budget_guard() {
        let m = named::star_unions(4, 1).unwrap();
        assert!(verify_protocol_connectivity(&m, 3, 10).is_err());
    }
}
