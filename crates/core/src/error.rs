//! Error type for the core bounds library.

use std::error::Error;
use std::fmt;

/// Errors produced by bound computations and verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An underlying graph-layer error.
    Graph(ksa_graphs::GraphError),
    /// An underlying topology-layer error.
    Topology(ksa_topology::TopologyError),
    /// An underlying model-layer error.
    Model(ksa_models::ModelError),
    /// A bound was requested that only applies to simple (single-generator)
    /// closed-above models.
    NotSimple,
    /// A parameter outside its documented domain.
    BadParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: usize,
        /// Human-readable domain.
        domain: &'static str,
    },
    /// An exhaustive procedure would exceed its explicit budget.
    Budget(crate::budget::BudgetExceeded),
    /// The computation's [`CancelToken`](crate::budget::CancelToken)
    /// was cancelled before it finished.
    Cancelled,
    /// The computation ran past its [`Deadline`](crate::budget::Deadline).
    DeadlineExceeded,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Topology(e) => write!(f, "topology error: {e}"),
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::NotSimple => {
                write!(f, "this bound applies only to simple closed-above models")
            }
            CoreError::BadParameter {
                name,
                value,
                domain,
            } => write!(f, "parameter {name} = {value} outside {domain}"),
            CoreError::Budget(e) => write!(f, "budget error: {e}"),
            CoreError::Cancelled => write!(f, "the operation was cancelled"),
            CoreError::DeadlineExceeded => {
                write!(f, "the operation ran past its deadline")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Topology(e) => Some(e),
            CoreError::Model(e) => Some(e),
            CoreError::Budget(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ksa_graphs::GraphError> for CoreError {
    fn from(e: ksa_graphs::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<ksa_topology::TopologyError> for CoreError {
    fn from(e: ksa_topology::TopologyError) -> Self {
        // Interruptions keep their identity across the layer boundary so
        // callers match one pair of variants no matter which stage of the
        // pipeline observed the fired token.
        match e {
            ksa_topology::TopologyError::Cancelled => CoreError::Cancelled,
            ksa_topology::TopologyError::DeadlineExceeded => CoreError::DeadlineExceeded,
            other => CoreError::Topology(other),
        }
    }
}

impl From<ksa_models::ModelError> for CoreError {
    fn from(e: ksa_models::ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<crate::budget::BudgetExceeded> for CoreError {
    fn from(e: crate::budget::BudgetExceeded) -> Self {
        CoreError::Budget(e)
    }
}

impl From<crate::budget::Interrupted> for CoreError {
    fn from(i: crate::budget::Interrupted) -> Self {
        match i {
            crate::budget::Interrupted::Cancelled => CoreError::Cancelled,
            crate::budget::Interrupted::DeadlineExceeded => CoreError::DeadlineExceeded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let errs: Vec<CoreError> = vec![
            ksa_graphs::GraphError::EmptyProcessSet.into(),
            ksa_topology::TopologyError::NotPure.into(),
            ksa_models::ModelError::BadParameter {
                name: "s",
                value: 0,
                domain: "[1, n]",
            }
            .into(),
            CoreError::NotSimple,
            CoreError::Cancelled,
            CoreError::DeadlineExceeded,
        ];
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
        assert!(errs[0].source().is_some());
        assert!(errs[3].source().is_none());
    }

    #[test]
    fn interrupted_maps_to_dedicated_variants() {
        use crate::budget::Interrupted;
        assert_eq!(
            CoreError::from(Interrupted::Cancelled),
            CoreError::Cancelled
        );
        assert_eq!(
            CoreError::from(Interrupted::DeadlineExceeded),
            CoreError::DeadlineExceeded
        );
    }
}
