//! The k-set agreement task (Chaudhuri \[10\] in the paper's references).
//!
//! Every process starts with an input value and must decide a value such
//! that
//!
//! * **validity** — every decided value is some process's input, and
//! * **k-agreement** — at most `k` distinct values are decided.
//!
//! `k = 1` is consensus. The paper's lower bounds work over the chromatic
//! input complex `Ψ(Π, [0, k])` (each process independently starts with a
//! value in `{0, …, k}`), built here as a pseudosphere.

use crate::error::CoreError;
use ksa_topology::complex::Complex;
use ksa_topology::pseudosphere::Pseudosphere;

/// Input/decision values. The set-agreement algorithms assume the usual
/// total order on values (they decide minima).
pub type Value = u32;

/// A violation of the k-set agreement specification, as reported by
/// [`KSetTask::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A process decided a value nobody started with.
    Validity {
        /// The offending process.
        proc: usize,
        /// The decided value.
        decided: Value,
    },
    /// More than `k` distinct values were decided.
    Agreement {
        /// The number of distinct decided values.
        distinct: usize,
        /// The bound `k`.
        k: usize,
    },
}

/// The k-set agreement task on `n` processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KSetTask {
    /// Number of processes.
    pub n: usize,
    /// Agreement degree: at most `k` distinct decisions.
    pub k: usize,
}

impl KSetTask {
    /// Creates the task.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadParameter`] unless `1 ≤ k` and `1 ≤ n`.
    pub fn new(n: usize, k: usize) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::BadParameter {
                name: "n",
                value: n,
                domain: "[1, 64]",
            });
        }
        if k == 0 {
            return Err(CoreError::BadParameter {
                name: "k",
                value: k,
                domain: "[1, n]",
            });
        }
        Ok(KSetTask { n, k })
    }

    /// Checks one execution's inputs/decisions against the specification.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] found (validity violations are
    /// reported before agreement violations).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `decisions` are not both of length `n`.
    pub fn check(&self, inputs: &[Value], decisions: &[Value]) -> Result<(), Violation> {
        assert_eq!(inputs.len(), self.n);
        assert_eq!(decisions.len(), self.n);
        for (p, &d) in decisions.iter().enumerate() {
            if !inputs.contains(&d) {
                return Err(Violation::Validity {
                    proc: p,
                    decided: d,
                });
            }
        }
        let mut distinct: Vec<Value> = decisions.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() > self.k {
            return Err(Violation::Agreement {
                distinct: distinct.len(),
                k: self.k,
            });
        }
        Ok(())
    }

    /// Number of distinct decided values (the quantity the bounds are
    /// about).
    ///
    /// # Panics
    ///
    /// Panics if `decisions.len() != n`.
    pub fn distinct_decisions(&self, decisions: &[Value]) -> usize {
        assert_eq!(decisions.len(), self.n);
        let mut d = decisions.to_vec();
        d.sort_unstable();
        d.dedup();
        d.len()
    }
}

/// The chromatic input complex `Ψ(Π, [0, k])` (App. B): each of the `n`
/// processes holds any value in `{0, …, k}` — a pseudosphere, hence pure of
/// dimension `n − 1` and `(n−2)`-connected (Lemma 4.7).
///
/// # Errors
///
/// [`CoreError::Topology`] if the complex exceeds `facet_limit` facets
/// (`(k+1)^n` facets total).
pub fn input_complex(n: usize, k: usize, facet_limit: u128) -> Result<Complex<Value>, CoreError> {
    let ps = Pseudosphere::new(
        (0..n)
            .map(|p| (p, (0..=k as Value).collect::<Vec<Value>>()))
            .collect(),
    )
    .expect("distinct colors");
    Ok(ps.try_to_complex(facet_limit)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_topology::connectivity::is_k_connected;

    #[test]
    fn constructor_validates() {
        assert!(KSetTask::new(3, 1).is_ok());
        assert!(KSetTask::new(0, 1).is_err());
        assert!(KSetTask::new(3, 0).is_err());
    }

    #[test]
    fn check_accepts_valid_execution() {
        let t = KSetTask::new(3, 2).unwrap();
        assert_eq!(t.check(&[5, 7, 9], &[5, 5, 7]), Ok(()));
        assert_eq!(t.check(&[5, 7, 9], &[9, 9, 9]), Ok(()));
    }

    #[test]
    fn check_rejects_invalid_value() {
        let t = KSetTask::new(2, 2).unwrap();
        assert_eq!(
            t.check(&[1, 2], &[1, 3]),
            Err(Violation::Validity {
                proc: 1,
                decided: 3
            })
        );
    }

    #[test]
    fn check_rejects_too_many_values() {
        let t = KSetTask::new(3, 1).unwrap();
        assert_eq!(
            t.check(&[1, 2, 3], &[1, 2, 1]),
            Err(Violation::Agreement { distinct: 2, k: 1 })
        );
    }

    #[test]
    fn distinct_count() {
        let t = KSetTask::new(4, 2).unwrap();
        assert_eq!(t.distinct_decisions(&[3, 3, 1, 3]), 2);
        assert_eq!(t.distinct_decisions(&[2, 2, 2, 2]), 1);
    }

    #[test]
    fn input_complex_shape() {
        // Ψ(3 procs, [0,1]): 2^3 = 8 facets, pure dim 2, 1-connected.
        let c = input_complex(3, 1, 10_000).unwrap();
        assert_eq!(c.facet_count(), 8);
        assert!(c.is_pure());
        assert_eq!(c.dim(), 2);
        assert!(is_k_connected(&c, 1));
    }

    #[test]
    fn input_complex_budget() {
        assert!(input_complex(10, 9, 1000).is_err());
    }
}
